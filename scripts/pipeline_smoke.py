"""Block-pipeline smoke: the PR-9 accelerators must be pure speed-ups.

Driven by ``scripts/check.sh --pipeline``.  Three gates:

1. **Differential connect** — a seeded chain of real P2PKH activity is
   replayed through every accelerator configuration (serial, batched
   signatures, cached UTXO set, both); the tip, UTXO snapshot, and
   serialized size must be identical, and a corrupted block must be
   rejected with the *same* first error on every path.
2. **Kill-mid-flush recovery** — the cached chain persists to a
   snapshotting :class:`~repro.store.BlockStore`, crashes without a
   clean close, and has its block-log tail torn off; recovery through
   the cache hierarchy must land on the exact state of an independent
   serial replay of the surviving prefix, then keep accepting blocks.
3. **Opt-out purity** — with the accelerators *not* opted into, the
   deterministic A1 fork-rate rows must stay bit-identical to the
   committed ``BENCH_pr2.json`` baseline: the pipeline code's presence
   alone must not perturb a single simulated event.

Exit status 0 means the pipeline gate passed.

Usage::

    PYTHONPATH=src python scripts/pipeline_smoke.py
"""

import json
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))

from repro.bitcoin import sigcache
from repro.bitcoin.block import Block, build_block
from repro.bitcoin.chain import Blockchain, ChainParams
from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.script import Script
from repro.bitcoin.sigcache import SignatureCache
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import COIN, TxOut
from repro.bitcoin.validation import ValidationError
from repro.bitcoin.wallet import Wallet
from repro.store import BlockStore, recover_chain

CONFIGS = [
    ("serial", {}),
    ("batch", {"batch_sig_verify": True}),
    ("cache", {"utxo_cache": True}),
    ("batch+cache", {"batch_sig_verify": True, "utxo_cache": True}),
]


def build_sequence():
    """A seeded chain: fund, four single spends, one multi-input spend."""
    net = RegtestNetwork()
    alice = Wallet.from_seed(b"pipeline-smoke-alice")
    bob = Wallet.from_seed(b"pipeline-smoke-bob")
    net.fund_wallet(alice, blocks=3)
    for i in range(4):
        net.send(
            alice.create_transaction(
                net.chain,
                [TxOut(1 * COIN + i, p2pkh_script(bob.key_hash))],
                fee=1000,
            )
        )
        net.confirm()
    net.send(
        alice.create_transaction(
            net.chain, [TxOut(120 * COIN, p2pkh_script(bob.key_hash))], fee=2000
        )
    )
    net.confirm()
    return net.chain.export_active()


def replay(blocks, **opts):
    sigcache.set_default_cache(SignatureCache())
    chain = Blockchain(ChainParams.regtest(), **opts)
    for block in blocks:
        if not chain.add_block(block):
            raise SystemExit("error: replay rejected a valid block")
    return chain


def gate_differential(blocks) -> None:
    states = {}
    for label, opts in CONFIGS:
        chain = replay(blocks, **opts)
        states[label] = (
            chain.tip.block.hash,
            chain.utxos.snapshot(),
            chain.utxos.serialized_size(),
        )
    reference = states["serial"]
    for label, state in states.items():
        if state != reference:
            raise SystemExit(f"error: config {label!r} diverged from serial")
    print(f"  differential: {len(CONFIGS)} configs x {len(blocks)} blocks,"
          f" identical tip/UTXO/size")

    # Corrupt one signature bit in the last block; every path must reject
    # with the identical first error and stay at the pre-block tip.
    source = blocks[-1]
    txs = list(source.txs)
    elements = txs[1].vin[0].script_sig.elements
    sig = bytearray(elements[0])
    sig[10] ^= 0x01
    txs[1] = txs[1].with_input_script(0, Script([bytes(sig), *elements[1:]]))
    errors = set()
    for label, opts in CONFIGS:
        chain = replay(blocks[:-1], **opts)
        bad = build_block(
            prev_hash=chain.tip.block.hash,
            txs=txs,
            timestamp=source.header.timestamp,
            bits=source.header.bits,
        )
        nonce = 0
        while not bad.header.meets_target():
            nonce += 1
            bad = Block(bad.header.with_nonce(nonce), bad.txs)
        try:
            chain.add_block(bad)
        except ValidationError as exc:
            errors.add(str(exc))
        else:
            raise SystemExit(f"error: config {label!r} accepted a bad block")
        if chain.tip.block.hash != blocks[-2].hash:
            raise SystemExit(f"error: config {label!r} moved tip on reject")
    if len(errors) != 1:
        raise SystemExit(f"error: divergent rejection errors: {errors}")
    print(f"  rejection: all configs raise {next(iter(errors))!r}")


def gate_crash_recovery(blocks, torn_bytes: int = 7) -> None:
    full_height = replay(blocks).height
    with tempfile.TemporaryDirectory(prefix="pipeline-smoke-") as root:
        chain = Blockchain(
            ChainParams.regtest(), batch_sig_verify=True, utxo_cache=True
        )
        sigcache.set_default_cache(SignatureCache())
        store = BlockStore(Path(root), snapshot_interval=3).open()
        chain.attach_store(store)
        for block in blocks:
            chain.add_block(block)
        # Crash: no store.close(), and the final append is torn mid-record.
        log = Path(root) / "blocks.log"
        log.write_bytes(log.read_bytes()[:-torn_bytes])

        recovered = recover_chain(
            BlockStore(Path(root)).open(),
            batch_sig_verify=True,
            utxo_cache=True,
        )
        if recovered.height != full_height - 1:  # lost only the torn tail
            raise SystemExit(
                f"error: recovered height {recovered.height}, expected"
                f" {full_height - 1}"
            )
        recovered_height = recovered.height
        serial = replay(blocks[:-1])
        if recovered.tip.block.hash != serial.tip.block.hash:
            raise SystemExit("error: recovered tip diverged from serial")
        if recovered.utxos.snapshot() != serial.utxos.snapshot():
            raise SystemExit("error: recovered UTXO state diverged")
        # The recovered cache must keep working: re-accept the torn block.
        if not recovered.add_block(blocks[-1]):
            raise SystemExit("error: recovered chain rejected the torn block")
        serial_full = replay(blocks)
        if recovered.utxos.snapshot() != serial_full.utxos.snapshot():
            raise SystemExit("error: post-recovery state diverged")
        print(f"  crash recovery: torn tail ({torn_bytes} bytes), recovered"
              f" height {recovered_height}, cache state matches serial")


def _newest_a1_baseline() -> "tuple[str, list] | None":
    """(filename, rows) of the newest committed BENCH_pr*.json carrying
    a1_fork_rate rows.  Anchoring to the newest recording lets deliberate
    protocol changes (PR 10's relay echo-to-origin fix) re-record the
    trajectory while still catching accidental drift afterwards."""
    best = None
    best_n = -1
    for path in REPO.glob("BENCH_pr*.json"):
        try:
            n = int(path.stem.removeprefix("BENCH_pr"))
        except ValueError:
            continue
        try:
            data = json.loads(path.read_text())
        except ValueError:
            continue
        rows = (
            data.get("experiments", {})
            .get("a1_fork_rate", {})
            .get("benches", {})
            .get("bench_a1_fork_rate_vs_latency", {})
            .get("extra_info", {})
            .get("rows")
        )
        if rows and n > best_n:
            best, best_n = (path.name, rows), n
    return best


def gate_a1_pin() -> None:
    from bench_a1_fork_rate import run_with_latency

    baseline = _newest_a1_baseline()
    if baseline is None:
        raise SystemExit("error: no BENCH_pr*.json baseline with A1 rows")
    baseline_name, baseline_rows = baseline
    for expected in baseline_rows:
        got = run_with_latency(expected["latency"])
        if got != expected:
            raise SystemExit(
                f"error: A1 row drifted at latency {expected['latency']}:\n"
                f"  baseline: {expected}\n  current:  {got}"
            )
    print(f"  A1 pin: {len(baseline_rows)} rows bit-identical to"
          f" {baseline_name} (accelerators opted out)")


def main() -> int:
    print("pipeline smoke: batch ECDSA + UTXO cache differential gates")
    blocks = build_sequence()
    gate_differential(blocks)
    gate_crash_recovery(blocks)
    gate_a1_pin()
    print("ok: pipeline smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
