#!/usr/bin/env bash
# Tier-1 gate: the full test suite must pass with observability off (the
# default) and on (REPRO_OBS=1), proving instrumentation never changes
# behavior. Pass --bench to also run the benchmark telemetry smoke pass
# (scripts/bench.sh), and --chaos to run the seeded fault-injection smoke
# (scripts/chaos_smoke.py), --recovery to run the seeded kill-mid-write
# durability smoke (scripts/recovery_smoke.py), and --monitors to run the
# chaos profiles under strict runtime invariant monitors
# (scripts/monitor_smoke.py), --profile to run the phase-profiling
# smoke (scripts/profile_smoke.py), and --service to run the seeded
# verification-service chaos smoke (scripts/service_smoke.py), and
# --pipeline to run the block-pipeline differential smoke
# (scripts/pipeline_smoke.py), and --swarm to run the 200-node
# population-driven compact-relay differential smoke
# (scripts/swarm_smoke.py). Run from
# anywhere; paths resolve relative to the repo root.
set -euo pipefail

run_bench=0
run_chaos=0
run_recovery=0
run_monitors=0
run_profile=0
run_service=0
run_pipeline=0
run_swarm=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench=1 ;;
    --chaos) run_chaos=1 ;;
    --recovery) run_recovery=1 ;;
    --monitors) run_monitors=1 ;;
    --profile) run_profile=1 ;;
    --service) run_service=1 ;;
    --pipeline) run_pipeline=1 ;;
    --swarm) run_swarm=1 ;;
    *) echo "usage: $0 [--bench] [--chaos] [--recovery] [--monitors] [--profile] [--service] [--pipeline] [--swarm]" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tier-1: observability disabled =="
env -u REPRO_OBS python -m pytest -x -q

echo "== tier-1: observability enabled (REPRO_OBS=1) =="
REPRO_OBS=1 python -m pytest -x -q

echo "ok: suite passes with observability off and on"

if [ "$run_chaos" = 1 ]; then
  echo "== chaos: seeded fault-injection smoke =="
  env -u REPRO_OBS python scripts/chaos_smoke.py
fi

if [ "$run_recovery" = 1 ]; then
  echo "== recovery: seeded kill-mid-write smoke =="
  env -u REPRO_OBS python scripts/recovery_smoke.py
fi

if [ "$run_monitors" = 1 ]; then
  echo "== monitors: chaos profiles under strict invariant monitors =="
  python scripts/monitor_smoke.py
fi

if [ "$run_service" = 1 ]; then
  echo "== service: seeded verification-service chaos smoke =="
  env -u REPRO_OBS python scripts/service_smoke.py
fi

if [ "$run_profile" = 1 ]; then
  echo "== profile: one profiled A1 run (ledger + folded output) =="
  python scripts/profile_smoke.py
fi

if [ "$run_pipeline" = 1 ]; then
  echo "== pipeline: batch ECDSA + UTXO cache differential smoke =="
  env -u REPRO_OBS python scripts/pipeline_smoke.py
fi

if [ "$run_swarm" = 1 ]; then
  echo "== swarm: 200-node compact-relay differential smoke =="
  env -u REPRO_OBS python scripts/swarm_smoke.py
fi

if [ "$run_bench" = 1 ]; then
  scripts/bench.sh
fi
