#!/usr/bin/env bash
# Benchmark telemetry smoke pass: record a 1-round trajectory for every
# experiment, validate it against the repro.bench/1 schema, and self-compare
# it through the regression gate (which must pass trivially). Catches broken
# benchmarks, schema drift, and gate bugs without paying for a full run.
# Run from anywhere; paths resolve relative to the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== bench: smoke trajectory (1 round per benchmark) =="
python benchmarks/runner.py --label smoke --smoke

echo "== bench: schema check (every committed trajectory) =="
# All BENCH_*.json at the repo root must stay loadable: schema drift in
# compare.py that silently orphans an old baseline is itself a bug.
python benchmarks/compare.py --check-schema BENCH_*.json

echo "== bench: self-compare (gate sanity) =="
python benchmarks/compare.py BENCH_smoke.json BENCH_smoke.json

echo "== bench: b3 block-pipeline gate (2x headline + state identity) =="
# Full standalone pass of the block-pipeline experiment: its in-bench
# asserts fail the script if the pipeline-warm connect drops under the 2x
# acceptance bar or any accelerator configuration diverges in UTXO state.
python benchmarks/bench_b3_block_pipeline.py

echo "== bench: regression gate vs committed BENCH_pr2.json baseline =="
# The smoke candidate runs 1 round per bench, so it can only trip the gate
# by regressing catastrophically (>25% over a full-run baseline); benches
# added after pr2 show up as candidate-only rows.
python benchmarks/compare.py BENCH_pr2.json BENCH_smoke.json

echo "ok: benchmark telemetry pipeline is healthy (BENCH_smoke.json)"
