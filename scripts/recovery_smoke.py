"""Seeded crash-recovery smoke: kill mid-write, recover byte-identical.

Driven by ``scripts/check.sh --recovery``.  Runs the kill-mid-write
chaos scenario (:func:`repro.bitcoin.faults.run_kill_mid_write`) in both
damage modes — a torn tail truncated mid-record and a flipped payload
byte caught by the CRC — and asserts the victim recovers to the exact
committed tip and UTXO state (verified against an independent
full-validation replay), re-downloading at most the one torn-off block.
A repeat run at the same seed must reproduce the identical outcome.

Exit status 0 means the recovery gate passed.

Usage::

    PYTHONPATH=src python scripts/recovery_smoke.py [seed]
"""

import sys
import tempfile

from repro.bitcoin.faults import run_kill_mid_write

MODES = ("truncate", "corrupt")


def run_mode(mode: str, seed: int):
    with tempfile.TemporaryDirectory(prefix=f"recovery-{mode}-") as root:
        return run_kill_mid_write(root, seed=seed, mode=mode)


def main(seed: int = 3) -> int:
    print(f"recovery smoke: kill-mid-write modes {', '.join(MODES)}"
          f" (seed {seed})")
    results = {}
    for mode in MODES:
        result = run_mode(mode, seed)
        results[mode] = result
        status = "ok" if result.ok else "FAIL"
        print(f"  {mode:>9}: recovered {result.recovered_height}"
              f"/{result.pre_crash_height}"
              f" tip_match={result.tip_match}"
              f" utxo_match={result.utxo_match}"
              f" refetched={result.refetched_blocks}"
              f" converged={result.converged} [{status}]")
        if not result.ok:
            print(f"error: mode {mode!r} failed recovery", file=sys.stderr)
            return 1

    # Determinism: the same (mode, seed) reproduces the identical run.
    again = run_mode("truncate", seed)
    reference = results["truncate"]
    if (again.recovered_height, again.refetched_blocks, again.final_height) != (
        reference.recovered_height,
        reference.refetched_blocks,
        reference.final_height,
    ):
        print("error: recovery run is not deterministic for its seed",
              file=sys.stderr)
        return 1
    print(f"  determinism: truncate re-run matches"
          f" (recovered {reference.recovered_height},"
          f" refetched {reference.refetched_blocks})")
    print("ok: recovery smoke passed")
    return 0


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    raise SystemExit(main(seed))
