"""Swarm smoke: a 200-node population-driven run, compact on vs off.

Driven by ``scripts/check.sh --swarm``.  Three gates:

1. **Differential tip identity** — the same seeded
   :class:`~repro.bitcoin.population.SyntheticPopulation` schedule is
   replayed through a 200-node swarm twice, full-block flooding vs
   compact relay (PR 10's tentpole).  Both runs must settle every round
   on the *identical* block hashes at the identical height: the compact
   wire format may change how blocks move, never which chain wins.
2. **Relay-byte cut** — the compact run must move strictly fewer block
   bytes than the flooding run (the whole point of announcing short
   txids to warm mempools).
3. **Partition heal** — mid-run the swarm is split in half, the halves
   mine divergent suffixes (two blocks vs one), and after healing every
   node must converge on the heavier side's tip — with compact relay
   on and off alike.

Transactions come from a million-user synthetic population: each
scheduled ``(time, wallet)`` event maps to a funded key that submits one
signed spend at a deterministic node.  Fees are made strictly distinct
so the metronome miner assembles byte-identical blocks in both runs
regardless of gossip arrival order.

Exit status 0 means the swarm gate passed.

Usage::

    PYTHONPATH=src python scripts/swarm_smoke.py
"""

import sys

from repro.bitcoin.faults import Partition
from repro.bitcoin.miner import Miner
from repro.bitcoin.network import Simulation, build_network
from repro.bitcoin.population import (
    PopulationConfig,
    SyntheticPopulation,
    fund_wallets,
)
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import TxOut
from repro.bitcoin.wallet import Wallet

SEED = 31
NODE_COUNT = 200
POPULATION = 1_000_000
WINDOW = 900.0  # one round: bursts, quiesce, mine
ACTIVE = 500.0  # submissions land in [start, start + ACTIVE)
MINE_AT = 850.0  # metronome miner fires after propagation settles
ROUNDS = 4
# The last metronome block fires at (ROUNDS-1)*WINDOW + MINE_AT and needs
# ~50 hops x 2 s mean to cross the 200-node ring; leave it room to settle
# before the convergence check and the partition.
SETTLE_AT = ROUNDS * WINDOW + 400.0
PARTITION_AT = SETTLE_AT + 10.0
HEAL_AT = PARTITION_AT + 590.0
END_AT = HEAL_AT + 600.0


def build_schedule():
    """The population's submission schedule plus pre-signed transactions.

    Every event's transaction is created once, against the funding
    chain, and replayed verbatim into both runs — the differential
    compares relay behavior, not transaction construction.
    """
    population = SyntheticPopulation(
        PopulationConfig(wallets=POPULATION, seed=SEED)
    )
    events = [
        (at, wallet)
        for i in range(ROUNDS)
        for at, wallet in population.events(i * WINDOW, ACTIVE)
    ]
    wallets = {
        w: Wallet.from_seed(b"swarm-wallet-%d" % w)
        for w in sorted({wallet for _at, wallet in events})
    }
    # One funded output per scheduled spend (wallets repeat per event).
    blocks = fund_wallets(
        [wallets[wallet].key_hash for _at, wallet in events]
    )
    from repro.bitcoin.chain import Blockchain
    from repro.bitcoin.population import sim_chain_params

    chain = Blockchain(sim_chain_params())
    for block in blocks:
        if not chain.add_block(block):
            raise RuntimeError("funding prefix rejected")

    spent: dict[int, set] = {}
    schedule = []
    for j, (at, wallet_id) in enumerate(sorted(events)):
        wallet = wallets[wallet_id]
        tx = wallet.create_transaction(
            chain,
            [TxOut(30_000, p2pkh_script(wallet.key_hash))],
            # Strictly distinct fees: the miner's fee-rate ordering (and
            # so each round's block bytes) is independent of tx arrival
            # order at the mining node.
            fee=10_000 + j,
            exclude=spent.setdefault(wallet_id, set()),
        )
        spent[wallet_id].update(txin.prevout for txin in tx.vin)
        schedule.append((at, wallet_id, tx))
    return blocks, schedule


def run_swarm(blocks, schedule, compact):
    sim = Simulation(seed=SEED)
    nodes = build_network(sim, NODE_COUNT)
    for node in nodes:
        node.compact_relay = compact
        for block in blocks:
            if not node.chain.add_block(block):
                raise RuntimeError("node rejected funding prefix")
    base_height = nodes[0].chain.height

    for at, wallet_id, tx in schedule:
        node = nodes[wallet_id % NODE_COUNT]
        sim.schedule(at, lambda n=node, t=tx: n.submit_transaction(t))

    bank = Wallet.from_seed(b"swarm-miner")
    round_tips = []

    def mine_on(node, extra_nonce):
        miner = Miner(node.chain, bank.key_hash)
        block = miner.assemble(
            node.mempool,
            timestamp=node.chain.median_time_past() + 1,
            extra_nonce=extra_nonce,
        )
        node.submit_block(block)
        return block

    for i in range(ROUNDS):
        sim.schedule(
            i * WINDOW + MINE_AT,
            lambda i=i: round_tips.append(
                mine_on(nodes[(i * 41) % NODE_COUNT], i + 1).hash
            ),
        )

    # The partition episode: halves diverge (2 blocks vs 1), then heal.
    episode = Partition(sim, nodes[: NODE_COUNT // 2], nodes[NODE_COUNT // 2 :])
    episode.schedule(PARTITION_AT, HEAL_AT)
    sim.schedule(PARTITION_AT + 150.0, lambda: mine_on(nodes[0], 101))
    sim.schedule(PARTITION_AT + 300.0, lambda: mine_on(nodes[0], 102))
    sim.schedule(
        PARTITION_AT + 150.0, lambda: mine_on(nodes[NODE_COUNT - 1], 201)
    )

    sim.run_until(SETTLE_AT)
    mid_tips = {n.chain.tip.block.hash for n in nodes}
    if len(mid_tips) != 1:
        raise RuntimeError(f"{len(mid_tips)} distinct tips before partition")
    if nodes[0].chain.height != base_height + ROUNDS:
        raise RuntimeError("metronome rounds did not all settle")

    sim.run_until(END_AT)
    final_tips = {n.chain.tip.block.hash for n in nodes}
    if len(final_tips) != 1:
        raise RuntimeError(f"{len(final_tips)} distinct tips after heal")
    if nodes[0].chain.height != base_height + ROUNDS + 2:
        raise RuntimeError("heavier partition side did not win")

    bytes_by_kind: dict[str, int] = {}
    for node in nodes:
        for kind, amount in node.bytes_sent.items():
            bytes_by_kind[kind] = bytes_by_kind.get(kind, 0) + amount
    return {
        "mode": "compact" if compact else "flood",
        "round_tips": list(round_tips),
        "tip": nodes[0].chain.tip.block.hash,
        "height": nodes[0].chain.height,
        "bytes_by_kind": bytes_by_kind,
        "events_processed": sim.events_processed,
    }


def main() -> int:
    print(f"swarm: building population schedule (seed {SEED}, "
          f"{POPULATION} wallets, {ROUNDS} rounds)")
    blocks, schedule = build_schedule()
    print(f"swarm: {len(schedule)} submissions from "
          f"{len({w for _at, w, _tx in schedule})} distinct wallets, "
          f"{len(blocks)} funding blocks")

    results = []
    for compact in (False, True):
        result = run_swarm(blocks, schedule, compact)
        block_bytes = sum(
            amount
            for kind, amount in result["bytes_by_kind"].items()
            if kind != "tx"
        )
        print(f"swarm: {result['mode']:>7}: height {result['height']}, "
              f"tip {result['tip'].hex()[:12]}, "
              f"block-relay bytes {block_bytes}")
        results.append((result, block_bytes))

    (flood, flood_bytes), (compact, compact_bytes) = results
    if flood["tip"] != compact["tip"]:
        print("swarm: FAIL — compact relay changed the winning chain")
        return 1
    if flood["round_tips"] != compact["round_tips"]:
        print("swarm: FAIL — per-round blocks differ between modes")
        return 1
    if flood["height"] != compact["height"]:
        print("swarm: FAIL — heights diverge between modes")
        return 1
    if compact_bytes >= flood_bytes:
        print("swarm: FAIL — compact relay did not cut block-relay bytes")
        return 1
    print(f"ok: 200-node swarm converges identically, compact cuts "
          f"block-relay bytes {flood_bytes / compact_bytes:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
