#!/usr/bin/env python
"""Profiling smoke: one profiled A1 run must yield a non-empty phase
ledger and parseable collapsed-stack output.

Runs the A1 fork-rate experiment (lowest latency point only, so the
smoke stays cheap) with the deterministic phase profiler installed and
the stack sampler hooked, then asserts:

* the phase ledger attributes time to at least the block-pipeline phases
  (``chain_connect``, ``utxo_apply``) and every touched phase is in the
  fixed taxonomy;
* self-times are non-negative and sum to no more than the profiled wall
  time (the no-double-count invariant);
* the sampler's folded output parses as valid collapsed-stack text.

Exit 0 on success.  ``scripts/check.sh --profile`` runs this.
"""

import importlib.util
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import obs  # noqa: E402
from repro.obs.profile import PHASE_NAMES, parse_folded  # noqa: E402
from repro.obs.report import render_phases  # noqa: E402


def load_a1():
    spec = importlib.util.spec_from_file_location(
        "bench_a1_fork_rate",
        os.path.join(REPO_ROOT, "benchmarks", "bench_a1_fork_rate.py"),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main() -> int:
    obs.enable()
    obs.reset()
    profiler = obs.PhaseProfiler()
    obs.set_profiler(profiler)
    sampler = obs.StackSampler()

    bench = load_a1()
    wall_start = time.perf_counter()
    with sampler:
        result = bench.run_with_latency(2.0)
    wall = time.perf_counter() - wall_start
    obs.set_profiler(None)

    snap = profiler.snapshot()
    phases = snap["phases"]
    print(render_phases(snap, title="A1 (latency=2.0)"))
    print(f"profiled wall time: {wall:.3f}s")

    assert result["height"] > 0, "A1 produced no chain"
    assert phases, "phase ledger is empty"
    for expected in ("chain_connect", "utxo_apply"):
        assert expected in phases, f"missing phase {expected!r}"
        assert phases[expected]["calls"] > 0
    unknown = set(phases) - PHASE_NAMES
    assert not unknown, f"phases outside the taxonomy: {unknown}"
    total_self = sum(cost["seconds"] for cost in phases.values())
    assert all(cost["seconds"] >= 0 for cost in phases.values())
    assert total_self <= wall * 1.05, (
        f"self-times ({total_self:.3f}s) exceed wall time ({wall:.3f}s):"
        " double-counted attribution"
    )

    folded = sampler.folded()
    entries = parse_folded(folded)
    assert entries, "sampler produced no stacks"
    deepest = max(entries, key=lambda entry: len(entry[0]))
    print(f"folded stacks: {len(entries)} unique"
          f" (deepest {len(deepest[0])} frames)")

    print("ok: profiling smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
