"""Seeded service-chaos smoke: zero wrong verdicts under faults, twice.

Driven by ``scripts/check.sh --service``.  Runs each service chaos
profile once, asserts the load-bearing invariant — the verification
service never returns a wrong verdict; infrastructure trouble surfaces
as ``timeout``/``overloaded``/``draining``/``error``, never as a false
``ok`` or ``invalid`` — then re-runs the inferno profile to prove the
verdict stream is a pure function of the seed.

Exit status 0 means the service gate passed.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [seed]
"""

import sys

from repro.bitcoin.faults import SERVICE_PROFILES, run_service_chaos

SMOKE_PROFILES = ("service-calm", "service-inferno")


def main(seed: int = 7) -> int:
    print(
        f"service smoke: profiles {', '.join(SMOKE_PROFILES)} (seed {seed})"
    )
    results = {}
    for name in SMOKE_PROFILES:
        result = run_service_chaos(SERVICE_PROFILES[name], seed=seed)
        results[name] = result
        status = "ok" if result.ok else "FAIL"
        print(
            f"  {name:>16}: answered={result.answered}"
            f" wrong={result.wrong_verdicts}"
            f" statuses={dict(sorted(result.statuses.items()))}"
            f" respawns={result.respawns}"
            f" poison_rejected={result.poison_rejected}"
            f" shed={result.shed} [{status}]"
        )
        if result.wrong_verdicts:
            print(
                f"error: profile {name!r} returned a wrong verdict",
                file=sys.stderr,
            )
            return 1
        if not result.answered:
            print(
                f"error: profile {name!r} answered nothing", file=sys.stderr
            )
            return 1

    # The inferno must actually have exercised the failure machinery:
    # kills recovered by respawn, poisoned memo entries rejected, and
    # overload shed rather than queued without bound.
    inferno = results["service-inferno"]
    for attr in ("respawns", "poison_rejected", "shed"):
        if not getattr(inferno, attr):
            print(
                f"error: inferno exercised no {attr} — profile too tame",
                file=sys.stderr,
            )
            return 1

    # Determinism: the same (profile, seed) reproduces the verdict
    # stream.  Checked on the calm profile — the inferno's overload
    # burst races real threads against admission, so its ok/overloaded
    # *split* is timing-dependent (its zero-wrong invariant is not).
    again = run_service_chaos(SERVICE_PROFILES["service-calm"], seed=seed)
    if again.statuses != results["service-calm"].statuses:
        print(
            "error: calm rerun diverged:"
            f" {again.statuses} != {results['service-calm'].statuses}",
            file=sys.stderr,
        )
        return 1
    print("  determinism: calm rerun reproduced the verdict stream")
    print("service smoke passed: zero wrong verdicts under chaos")
    return 0


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    raise SystemExit(main(seed))
