"""Seeded chaos smoke: the named fault profiles must converge, twice.

Driven by ``scripts/check.sh --chaos``.  Runs each profile once, asserts
every honest node reached one most-work tip with identical UTXO sets,
then re-runs one profile to prove the whole scenario — faults, attacker
schedule and all — is a pure function of its seed.

Exit status 0 means the chaos gate passed; any assertion prints the
failing profile and fails the build.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py [seed]
"""

import sys

from repro.bitcoin.faults import PROFILES, run_chaos

SMOKE_PROFILES = ("lossy", "partitioned", "byzantine")


def main(seed: int = 7) -> int:
    print(f"chaos smoke: profiles {', '.join(SMOKE_PROFILES)} (seed {seed})")
    results = {}
    for name in SMOKE_PROFILES:
        result = run_chaos(PROFILES[name], seed=seed)
        results[name] = result
        status = "ok" if result.converged and result.utxo_consistent else "FAIL"
        print(f"  {name:>12}: converged={result.converged}"
              f" utxo_consistent={result.utxo_consistent}"
              f" height={result.height}"
              f" banned_by={len(result.byzantine_banned_by)} [{status}]")
        if not result.converged:
            print(f"error: profile {name!r} did not converge", file=sys.stderr)
            return 1
        if not result.utxo_consistent:
            print(f"error: profile {name!r} diverged UTXO state", file=sys.stderr)
            return 1
    if not results["byzantine"].byzantine_banned_by:
        print("error: byzantine adversary was never banned", file=sys.stderr)
        return 1

    # Determinism: the same (profile, seed) reproduces the identical run.
    again = run_chaos(PROFILES["byzantine"], seed=seed)
    reference = results["byzantine"]
    if (again.tip, again.events_processed) != (
        reference.tip,
        reference.events_processed,
    ):
        print("error: chaos run is not deterministic for its seed",
              file=sys.stderr)
        return 1
    print(f"  determinism: byzantine re-run matches"
          f" (tip {reference.tip.hex()[:16]}…,"
          f" {reference.events_processed} events)")
    print("ok: chaos smoke passed")
    return 0


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    raise SystemExit(main(seed))
