"""Strict-monitor smoke: chaos profiles must run violation-free.

Driven by ``scripts/check.sh --monitors``.  Enables observability and
the runtime invariant monitors (:mod:`repro.obs.monitor`) in **strict**
mode — any violated invariant raises at the exact block — then runs
every named chaos profile.  Each must converge exactly as it does
unmonitored, with a non-zero check count and zero violations.

As a positive control, the script then injects a supply-inflation fault
(:func:`repro.bitcoin.faults.inject_supply_inflation`) into a fresh node
and asserts the ``supply`` monitor actually catches it — a gate that
always reports zero violations because the checks never ran would pass
silently otherwise.

Usage::

    PYTHONPATH=src python scripts/monitor_smoke.py [seed]
"""

import sys

from repro import obs
from repro.obs.monitor import InvariantViolation, MonitorRegistry, set_monitors

SMOKE_PROFILES = ("lossy", "partitioned", "byzantine", "inferno")


def main(seed: int = 7) -> int:
    obs.enable()
    from repro.bitcoin.faults import (
        PROFILES,
        inject_supply_inflation,
        run_chaos,
    )
    from repro.bitcoin.network import Node, Simulation
    from repro.bitcoin.chain import ChainParams

    print(f"monitor smoke: strict invariants over"
          f" {', '.join(SMOKE_PROFILES)} (seed {seed})")
    for name in SMOKE_PROFILES:
        obs.reset()
        registry = MonitorRegistry(enabled=True, strict=True, sample_interval=8)
        set_monitors(registry)
        try:
            result = run_chaos(PROFILES[name], seed=seed)
        except InvariantViolation as exc:
            print(f"error: profile {name!r} violated an invariant: {exc}",
                  file=sys.stderr)
            return 1
        print(f"  {name:>12}: converged={result.converged}"
              f" checks={result.monitor_checks}"
              f" violations={result.monitor_violations}")
        if not result.converged:
            print(f"error: profile {name!r} did not converge under monitors",
                  file=sys.stderr)
            return 1
        if result.monitor_checks == 0:
            print(f"error: profile {name!r} ran zero monitor checks",
                  file=sys.stderr)
            return 1
        if result.monitor_violations != 0:
            print(f"error: profile {name!r} reported violations",
                  file=sys.stderr)
            return 1

    # Positive control: a conjured-from-nowhere UTXO must be caught.
    obs.reset()
    registry = MonitorRegistry(enabled=True, strict=False)
    set_monitors(registry)
    sim = Simulation(seed=seed)
    params = ChainParams(
        max_target=2**252, retarget_window=2**31, require_pow=False
    )
    node = Node("canary", sim, params)
    inject_supply_inflation(node)
    registry.check_node(node, force=True)
    if not registry.violations:
        print("error: supply-inflation fault went undetected",
              file=sys.stderr)
        return 1
    print(f"  positive control: inflation caught"
          f" ({registry.violations[0][0]})")
    print("ok: monitor smoke passed")
    return 0


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    raise SystemExit(main(seed))
