#!/usr/bin/env python3
"""Open transactions and type-checking escrow: the puzzle prize of §7.

Alice awards a prize to the first person who can prove ∃n. n + 25 = 42.
Announcing !(solution ⊸ prize) would pay *everyone*; instead:

1. Alice publishes the puzzle vocabulary and escrows the prize under a
   2-of-3 multisig of escrow agents.
2. She signs an *open transaction*: prize in (from escrow), solution in
   (hole), solution out (to Alice), prize out (recipient hole).
3. Bob proves the solution on-chain, fills the holes, and asks the agents.
4. Each honest agent's policy: sign any instance that typechecks.  Two
   signatures unlock the prize — even with one agent compromised.

Run: ``python examples/escrow_puzzle.py``
"""

from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.transaction import OutPoint
from repro.core.builder import basis_publication
from repro.core.escrow import (
    EscrowAgent,
    EscrowError,
    OpenOutput,
    OpenTransaction,
    assemble_multisig_input,
    escrow_lock,
    sign_template,
)
from repro.core.overlay import build_carrier
from repro.core.proofs import obligation_lambda
from repro.core.transaction import TypecoinInput, TypecoinOutput, TypecoinTransaction
from repro.core.validate import Ledger, check_typecoin_transaction, world_at
from repro.core.wallet import TypecoinClient
from repro.crypto.keys import PrivateKey
from repro.lf.basis import Basis, KindDecl, NAT_T, PLUS, PLUS_REFL, PropDecl
from repro.lf.syntax import (
    Const,
    KIND_PROP,
    KPi,
    NatLit,
    TConst,
    Var,
    apply_family,
    apply_term,
)
from repro.logic.proofterms import (
    ExistsIntro,
    ForallElim,
    LolliElim,
    LolliIntro,
    OneIntro,
    PConst,
    PVar,
    TensorElim,
    TensorIntro,
)
from repro.logic.propositions import Atom, Exists, Forall, Lolli, One, Tensor

TARGET, KNOWN, SECRET = 42, 25, 17


def main() -> None:
    net = RegtestNetwork()
    ledger = Ledger()
    alice = TypecoinClient(net, b"puzzle-alice", ledger)
    bob = TypecoinClient(net, b"puzzle-bob", ledger)
    net.fund_wallet(alice.wallet)
    net.fund_wallet(bob.wallet)
    agents = [
        EscrowAgent(
            key=PrivateKey.from_seed(b"puzzle-agent" + bytes([i])),
            chain=net.chain,
            ledger=ledger,
        )
        for i in range(3)
    ]
    agents[2].honest = False  # one agent is compromised
    lock = escrow_lock([agent.pubkey for agent in agents])

    # --- 1. publish the puzzle; escrow the prize --------------------------
    basis = Basis()
    solution_ref = basis.declare_local("solution", KindDecl(KPi("n", NAT_T, KIND_PROP)))
    prize_ref = basis.declare_local("prize", KindDecl(KIND_PROP))
    basis.declare_local(
        "solve",
        PropDecl(Forall(
            "N", NAT_T,
            Lolli(
                Exists(
                    "x",
                    apply_family(TConst(PLUS), Var("N"), NatLit(KNOWN), NatLit(TARGET)),
                    One(),
                ),
                Atom(apply_family(TConst(solution_ref), Var("N"))),
            ),
        )),
    )
    publication = basis_publication(
        basis, agents[0].pubkey, grant=Atom(TConst(prize_ref))
    )
    pub_carrier = build_carrier(
        net.chain, alice.wallet, publication, fee=10_000,
        script_overrides={0: lock},
    )
    net.send(pub_carrier)
    net.confirm(1)
    check_typecoin_transaction(ledger, publication, world_at(net.chain))
    ledger.register(pub_carrier.txid, publication)
    bob.known[pub_carrier.txid] = publication
    basis_txid = pub_carrier.txid
    print(f"1. puzzle published; prize escrowed 2-of-3 ({pub_carrier.txid_hex[:16]}…)")

    prize_prop = ledger.output(basis_txid, 0).prop
    solution_res = solution_ref.resolved(basis_txid)
    solve_res = basis_txid  # for readability below
    sol_prop = Exists("n", NAT_T, Atom(apply_family(TConst(solution_res), Var("n"))))

    # --- 2. the signed open transaction ------------------------------------
    template = OpenTransaction(
        basis=Basis(),
        grant=One(),
        fixed_inputs=[TypecoinInput(basis_txid, 0, prize_prop, 600)],
        hole_prop=sol_prop,
        hole_amount=600,
        hole_position=1,
        outputs=[
            OpenOutput(sol_prop, 600, alice.pubkey),
            OpenOutput(prize_prop, 600, None),  # ← the recipient hole
        ],
        proof=LolliIntro(
            "p", Tensor(prize_prop, sol_prop),
            TensorElim("x", "y", PVar("p"), TensorIntro(PVar("y"), PVar("x"))),
        ),
    )
    issuer_signature = sign_template(alice.key, template)
    print("2. Alice signed the open transaction (solution in → prize out)")

    # --- 3. Bob solves and commits his solution on-chain -------------------
    from repro.lf.syntax import ConstRef

    solve_const = PConst(ConstRef(basis_txid, "solve"))
    packed = ExistsIntro(
        sol_prop,
        NatLit(SECRET),
        LolliElim(
            ForallElim(solve_const, NatLit(SECRET)),
            ExistsIntro(
                Exists(
                    "x",
                    apply_family(
                        TConst(PLUS), NatLit(SECRET), NatLit(KNOWN), NatLit(TARGET)
                    ),
                    One(),
                ),
                apply_term(Const(PLUS_REFL), NatLit(SECRET), NatLit(KNOWN)),
                OneIntro(),
            ),
        ),
    )
    sol_out = TypecoinOutput(sol_prop, 600, bob.pubkey)
    sol_txn = TypecoinTransaction(
        Basis(), One(), [], [sol_out],
        obligation_lambda(One(), [], [sol_out.receipt()], lambda *_: packed),
    )
    sol_carrier = bob.submit(sol_txn)
    net.confirm(1)
    bob.sync()
    print(f"3. Bob published his solution (n = {SECRET}) in"
          f" {sol_carrier.txid_hex[:16]}…")

    # --- 4. fill, collect agent signatures, claim ----------------------------
    solution_input = TypecoinInput(sol_carrier.txid, 0, sol_prop, 600)
    instance = template.fill(solution_input, bob.pubkey)
    carrier = build_carrier(
        net.chain, bob.wallet, instance, fee=10_000,
        skip_sign={OutPoint(basis_txid, 0)},
        exclude={OutPoint(t, i) for (t, i) in ledger.outputs},
    )
    signatures = {}
    for agent in agents:
        try:
            signatures[agent.pubkey] = agent.consider(
                template, alice.pubkey, issuer_signature,
                solution_input, bob.pubkey, carrier,
                escrow_input_index=0, escrow_script=lock,
                bundle=bob.claim_bundle(OutPoint(sol_carrier.txid, 0), sol_prop),
            )
            print(f"   agent #{agent.pubkey[:4].hex()} signed")
        except EscrowError as exc:
            print(f"   agent #{agent.pubkey[:4].hex()} refused: {exc}")
        if len(signatures) == 2:
            break
    carrier = assemble_multisig_input(carrier, 0, lock, signatures)
    net.send(carrier)
    net.confirm(1)
    check_typecoin_transaction(ledger, instance, world_at(net.chain))
    ledger.register(carrier.txid, instance)
    prize_holder = ledger.output(carrier.txid, 1).principal
    assert prize_holder == bob.principal
    print(f"4. prize claimed by Bob (principal #{prize_holder.hex()[:16]}…) —"
          " one compromised agent tolerated")


if __name__ == "__main__":
    main()
