#!/usr/bin/env python3
"""Quickstart: issue, transfer, and verify an affine resource.

This walks the core Typecoin loop from the paper's §2–3 on a private
regtest network:

1. Alice publishes a tiny basis declaring a ``ticket`` proposition.
2. Alice issues one affine ticket to Bob, backed by her signature.
3. Bob proves possession to a verifier with the §3 claim protocol.
4. Bob spends the ticket; the verifier sees the double-spend attempt fail.

Run: ``python examples/quickstart.py``
"""

from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.transaction import OutPoint
from repro.core.builder import basis_publication, build_with_payload, simple_transfer
from repro.core.overlay import OverlayError
from repro.core.proofs import obligation_lambda, tensor_intro_all
from repro.core.transaction import TypecoinOutput
from repro.core.validate import Ledger
from repro.core.verifier import VerificationError, verify_claim
from repro.core.wallet import TypecoinClient
from repro.lf.basis import Basis, KindDecl
from repro.lf.syntax import KIND_PROP, TConst
from repro.logic.propositions import Atom, One, Says


def main() -> None:
    # --- a fresh private network with two principals --------------------
    net = RegtestNetwork()
    ledger = Ledger()  # a shared view of verified Typecoin history
    alice = TypecoinClient(net, b"quickstart-alice", ledger)
    bob = TypecoinClient(net, b"quickstart-bob", ledger)
    net.fund_wallet(alice.wallet)
    net.fund_wallet(bob.wallet)
    print(f"Alice is principal #{alice.principal.hex()[:16]}…")
    print(f"Bob   is principal #{bob.principal.hex()[:16]}…")

    # --- 1. Alice publishes a basis declaring `ticket : prop` ------------
    basis = Basis()
    ticket_ref = basis.declare_local("ticket", KindDecl(KIND_PROP))
    publication = basis_publication(basis, alice.pubkey)
    pub_carrier = alice.submit(publication)
    net.confirm(1)
    alice.sync()
    print(f"\n1. basis published in carrier {pub_carrier.txid_hex[:16]}…")
    ticket = Atom(TConst(ticket_ref.resolved(pub_carrier.txid)))

    # --- 2. Alice issues ⟨Alice⟩ticket to Bob as an affine resource -----
    credential = Says(alice.principal_term, ticket)
    out = TypecoinOutput(credential, 600, bob.pubkey)
    issue = build_with_payload(
        Basis(), One(), [], [out],
        lambda payload: obligation_lambda(
            One(), [], [out.receipt()],
            lambda _c, _i, _r: tensor_intro_all(
                [alice.affirm_affine(ticket, payload)]
            ),
        ),
    )
    issue_carrier = alice.submit(issue)
    net.confirm(1)
    alice.sync()
    bob.known[issue_carrier.txid] = issue
    bob.known[pub_carrier.txid] = publication
    ticket_outpoint = OutPoint(issue_carrier.txid, 0)
    print(f"2. ticket issued to Bob in {issue_carrier.txid_hex[:16]}…")

    # --- 3. Bob proves possession to a third-party verifier -------------
    bundle = bob.claim_bundle(ticket_outpoint, credential)
    verify_claim(net.chain, bundle)
    print(f"3. verifier accepted Bob's claim of: {credential}")

    # --- 4. Bob spends the ticket; re-claiming it now fails -------------
    spend = simple_transfer(
        [bob.input_for(ticket_outpoint)],
        [TypecoinOutput(credential, 600, alice.pubkey)],  # hand it back
    )
    bob.submit(spend)
    net.confirm(1)
    bob.sync()
    print("4. Bob spent the ticket (returned it to Alice)")

    try:
        verify_claim(net.chain, bundle)
        raise SystemExit("BUG: double claim accepted")
    except VerificationError as exc:
        print(f"   re-claim rejected as expected: {exc}")

    try:
        bob.submit(spend)
        raise SystemExit("BUG: double spend accepted")
    except (OverlayError, Exception) as exc:
        print(f"   double spend rejected as expected: {type(exc).__name__}")

    print("\nquickstart complete — the resource was affine: used at most once.")


if __name__ == "__main__":
    main()
