#!/usr/bin/env python3
"""An expiring financial option (paper §5).

"An important financial contract is the option, which allows the holder to
purchase a commodity at a given price, or not, until the option expires"::

    receipt(payment ↠ Alice) ⊸ if(before(t), commodity)

The condition sits *beneath* the lolli: paying Alice yields a conditional
that is worthless after t.  (The incorrect alternative, with the condition
above the lolli, would let the holder discharge early and hold a
non-expiring option — this example demonstrates both the correct behaviour
and the expiry.)

Run: ``python examples/expiring_option.py``
"""

from repro.bitcoin.regtest import RegtestNetwork
from repro.core.builder import basis_publication
from repro.core.proofs import obligation_lambda
from repro.core.transaction import TypecoinOutput, TypecoinTransaction, trivial_output
from repro.core.validate import Ledger
from repro.core.wallet import ClientError, TypecoinClient
from repro.lf.basis import Basis, KindDecl, PropDecl
from repro.lf.syntax import KIND_PROP, NatLit, TConst
from repro.logic.conditions import Before
from repro.logic.proofterms import (
    IfBind,
    IfReturn,
    LolliElim,
    OneIntro,
    PConst,
    PVar,
    TensorIntro,
)
from repro.logic.propositions import Atom, IfProp, Lolli, One, Receipt


PRICE = 75_000  # satoshis


def main() -> None:
    net = RegtestNetwork()
    ledger = Ledger()
    alice = TypecoinClient(net, b"option-alice", ledger)  # the writer
    holder = TypecoinClient(net, b"option-holder", ledger)
    net.fund_wallet(alice.wallet)
    net.fund_wallet(holder.wallet)

    now = net.chain.tip.block.header.timestamp
    expiry = now + 40  # regtest blocks tick ~1 simulated second each

    # --- Alice publishes the option ---------------------------------------
    basis = Basis()
    commodity_ref = basis.declare_local("commodity", KindDecl(KIND_PROP))
    commodity_local = Atom(TConst(commodity_ref))
    basis.declare_local(
        "exercise",
        PropDecl(Lolli(
            Receipt(One(), PRICE, alice.principal_term),
            IfProp(Before(NatLit(expiry)), commodity_local),
        )),
    )
    publication = basis_publication(basis, alice.pubkey)
    pub_carrier = alice.submit(publication)
    net.confirm(1)
    alice.sync()
    holder.known[pub_carrier.txid] = publication
    basis_txid = pub_carrier.txid
    from repro.lf.syntax import ConstRef

    commodity = Atom(TConst(ConstRef(basis_txid, "commodity")))
    exercise = PConst(ConstRef(basis_txid, "exercise"))
    print(f"option published: pay {PRICE} sat before t={expiry} for the"
          " commodity")
    print(f"  (chain time is now {net.chain.tip.block.header.timestamp})")

    # --- the holder exercises in time ---------------------------------------
    def exercise_txn():
        commodity_out = TypecoinOutput(commodity, 600, holder.pubkey)
        payment_out = trivial_output(alice.pubkey, PRICE)
        condition = Before(NatLit(expiry))

        def body(_c, _ins, receipts):
            conditional = LolliElim(exercise, receipts[1])
            return IfBind(
                "got", conditional,
                IfReturn(condition, TensorIntro(PVar("got"), OneIntro())),
            )

        return TypecoinTransaction(
            Basis(), One(), [], [commodity_out, payment_out],
            obligation_lambda(
                One(), [],
                [commodity_out.receipt(), payment_out.receipt()],
                body,
            ),
        )

    carrier = holder.submit(exercise_txn())
    net.confirm(1)
    holder.sync()
    print(f"exercised in time: commodity acquired"
          f" ({carrier.txid_hex[:16]}…); payment of"
          f" {carrier.vout[1].value} sat went to Alice")

    # --- time passes; the option expires ------------------------------------
    net.confirm(60)  # ~60 simulated seconds of blocks
    print(f"  (chain time is now {net.chain.tip.block.header.timestamp},"
          f" past the t={expiry} expiry)")

    try:
        holder.submit(exercise_txn())
        raise SystemExit("BUG: expired option exercised")
    except ClientError as exc:
        print(f"late exercise rejected: {exc}")

    print("\nthe option expired worthless — exactly as §5 specifies.")


if __name__ == "__main__":
    main()
