#!/usr/bin/env python3
"""Batch mode: a credential server amortizing fees and latency (§3.2).

The university IT department runs a batch-mode server for campus Typecoin
use.  The bank issues meal credits (newcoins) straight to the server;
students swap them all day with zero fees and zero confirmation delay; a
graduating student withdraws her balance to her own key — one on-chain
transaction batching the whole virtual history.

"Note that batch mode does not compromise the trustlessness of the
network" — the final withdrawal is a perfectly ordinary Typecoin
transaction that any third party can verify with the §3 protocol.

Run: ``python examples/batch_server.py``
"""

from repro.bitcoin.transaction import OutPoint
from repro.core.batch import (
    BatchServer,
    VirtualOutput,
    VirtualTransaction,
    WriteThroughRequired,
    authorize,
)
from repro.core.builder import basis_publication, build_with_payload
from repro.core.currency import issue_proof, newcoin_basis, split_proof
from repro.core.proofs import obligation_lambda, tensor_intro_all
from repro.core.transaction import TypecoinOutput
from repro.core.validate import Ledger
from repro.core.verifier import verify_claim
from repro.core.wallet import TypecoinClient
from repro.lf.basis import Basis
from repro.lf.syntax import NatLit
from repro.logic.conditions import Before
from repro.logic.proofterms import IfReturn, LolliIntro, PVar
from repro.logic.propositions import One


def main() -> None:
    from repro.bitcoin.regtest import RegtestNetwork

    net = RegtestNetwork()
    ledger = Ledger()
    bank = TypecoinClient(net, b"batch-bank", ledger)
    student_a = TypecoinClient(net, b"batch-student-a", ledger)
    student_b = TypecoinClient(net, b"batch-student-b", ledger)
    net.fund_wallet(bank.wallet)
    server = BatchServer(net, b"batch-it-dept", ledger)
    net.fund_wallet(server.client.wallet)

    # --- publish the meal-credit currency and issue to the server ---------
    basis, vocab = newcoin_basis(bank.principal_term, bank.principal_term)
    pub = bank.submit(basis_publication(basis, bank.pubkey))
    net.confirm(1)
    bank.sync()
    vocab = vocab.resolved(pub.txid)

    out = TypecoinOutput(vocab.coin_prop(20), 1_800, server.pubkey)
    issue = build_with_payload(
        Basis(), One(), [], [out],
        lambda payload: obligation_lambda(
            One(), [], [out.receipt()],
            lambda _c, _i, _r: tensor_intro_all([
                issue_proof(
                    vocab, 20,
                    bank.affirm_affine(vocab.print_prop(20), payload),
                )
            ]),
        ),
    )
    issue_carrier = bank.submit(issue)
    net.confirm(1)
    bank.sync()
    bundle = bank.claim_bundle(OutPoint(issue_carrier.txid, 0), vocab.coin_prop(20))
    rid = server.deposit(bundle, owner=student_a.principal)
    print(f"deposited: 20 meal credits for student A (resource #{rid})")

    # --- instant, free, off-chain transactions -----------------------------
    height_before = net.chain.height
    split = VirtualTransaction(
        inputs=[rid],
        outputs=[
            VirtualOutput(vocab.coin_prop(12), 1_000, student_a.principal),
            VirtualOutput(vocab.coin_prop(8), 800, student_b.principal),
        ],
        proof=LolliIntro(
            "x", vocab.coin_prop(20), split_proof(vocab, 12, 8, PVar("x"))
        ),
    )
    server.transact(split, {student_a.principal: authorize(student_a.key, split)})
    print("student A paid student B 8 credits — no fee, no block, instant")
    assert net.chain.height == height_before

    # The server refuses conditional discharges (must write through, §5).
    b_rid = next(iter(server.holdings_of(student_b.principal)))
    risky = VirtualTransaction(
        inputs=[b_rid],
        outputs=[VirtualOutput(vocab.coin_prop(8), 800, student_b.principal)],
        proof=LolliIntro(
            "x", vocab.coin_prop(8),
            IfReturn(Before(NatLit(2_000_000_000)), PVar("x")),
        ),
    )
    try:
        server.transact(
            risky, {student_b.principal: authorize(student_b.key, risky)}
        )
        raise SystemExit("BUG: conditional accepted in batch mode")
    except WriteThroughRequired as exc:
        print(f"conditional transaction refused ({exc}) — write-through")

    # --- withdrawal: one on-chain transaction for the whole history --------
    carrier = server.withdraw(b_rid, student_b.pubkey)
    net.confirm(1)
    server.sync()
    print(f"student B graduated: withdrawal carrier"
          f" {carrier.txid_hex[:16]}… routes coin 8 to her key and"
          " the rest back to the server")

    # --- any third party can verify the withdrawn txout --------------------
    claim = server.client.claim_bundle(
        OutPoint(carrier.txid, 0), vocab.coin_prop(8)
    )
    verify_claim(net.chain, claim)
    print("a third-party verifier accepted the withdrawn resource —"
          " batch mode never compromised trustlessness")


if __name__ == "__main__":
    main()
