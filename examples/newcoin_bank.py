#!/usr/bin/env python3
"""The newcoin currency of paper §6 — including the Figure 3 purchase.

A full monetary system in an afternoon:

1. The bank publishes the coin/merge/split basis with the banker rules.
2. The president appoints a term-limited central banker (§6.1).
3. The banker publishes a revocable bitcoins-for-newcoins offer.
4. A customer buys newcoins using *the Figure 3 proof term, verbatim*.
5. The customer splits her coins and pays a friend.
6. The banker revokes the offer; later purchases fail.

Run: ``python examples/newcoin_bank.py``
"""

from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.transaction import OutPoint, TxOut
from repro.bitcoin.wallet import Spendable
from repro.core.builder import basis_publication, simple_transfer
from repro.core.currency import (
    banker_offer_prop,
    confirm_banker_proof,
    figure3_proof,
    newcoin_basis,
    split_proof,
)
from repro.core.proofs import obligation_lambda
from repro.core.transaction import TypecoinOutput, TypecoinTransaction, trivial_output
from repro.core.validate import Ledger
from repro.core.wallet import ClientError, TypecoinClient
from repro.lf.basis import Basis
from repro.lf.syntax import NatLit
from repro.logic.conditions import Before, CAnd, CNot, Spent
from repro.logic.proofterms import IfBind, IfReturn, OneIntro, PVar, TensorIntro, let_
from repro.logic.propositions import One, Says


def main() -> None:
    net = RegtestNetwork()
    ledger = Ledger()
    bank = TypecoinClient(net, b"nc-bank", ledger)
    carol = TypecoinClient(net, b"nc-carol", ledger)
    dave = TypecoinClient(net, b"nc-dave", ledger)
    for client in (bank, carol, dave):
        net.fund_wallet(client.wallet)

    # --- 1. publish the currency ------------------------------------------
    basis, vocab = newcoin_basis(bank.principal_term, bank.principal_term)
    publication = basis_publication(basis, bank.pubkey)
    pub_carrier = bank.submit(publication)
    net.confirm(1)
    bank.sync()
    vocab = vocab.resolved(pub_carrier.txid)
    print(f"1. newcoin basis published ({pub_carrier.txid_hex[:16]}…)")

    # --- 2. appoint the banker (the bank appoints itself here) -----------
    term_end = 2_000_000_000
    appointment = bank.affirm_persistent(
        vocab.appoint_prop(bank.principal_term, term_end)
    )
    print(f"2. banker appointed until t={term_end}")

    # --- 3. the revocable offer -------------------------------------------
    n_btc, n_newcoins = 50_000, 25
    revocation_tx = bank.wallet.create_transaction(
        net.chain, [TxOut(1_000, p2pkh_script(bank.wallet.key_hash))], fee=1_000
    )
    net.send(revocation_tx)
    net.confirm(1)
    revocation = Spent(revocation_tx.txid, 0)
    offer = banker_offer_prop(
        vocab, bank.principal_term, n_btc, n_newcoins, revocation
    )
    order = bank.affirm_persistent(offer)
    print(f"3. offer published: {offer}")

    # --- 4. Carol purchases with the Figure 3 proof term -------------------
    condition = CAnd(CNot(revocation), Before(NatLit(term_end)))
    coin_out = TypecoinOutput(vocab.coin_prop(n_newcoins), 1_200, carol.pubkey)
    payment_out = trivial_output(bank.pubkey, n_btc)
    banker_cred = confirm_banker_proof(
        vocab, bank.principal_term, term_end, appointment
    )

    def purchase_body(_c, _ins, receipts):
        fig3 = figure3_proof(
            vocab, bank.principal_term, term_end, n_newcoins, revocation,
            receipt_var="rcpt", order_var="ordr", banker_cred_var="bnkr",
        )
        core = let_(
            "ordr", Says(bank.principal_term, offer), order,
            let_(
                "bnkr", vocab.is_banker_prop(bank.principal_term, term_end),
                banker_cred,
                let_("rcpt", payment_out.receipt(), receipts[1], fig3),
            ),
        )
        return IfBind(
            "w", core, IfReturn(condition, TensorIntro(PVar("w"), OneIntro()))
        )

    purchase = TypecoinTransaction(
        Basis(), One(), [], [coin_out, payment_out],
        obligation_lambda(
            One(), [], [coin_out.receipt(), payment_out.receipt()],
            purchase_body,
        ),
    )
    purchase_carrier = carol.submit(purchase)
    net.confirm(1)
    carol.sync()
    print(f"4. Carol bought {n_newcoins} newcoins for {n_btc} satoshis"
          f" ({purchase_carrier.txid_hex[:16]}…)")
    print(f"   Bitcoin level: output 1 pays {purchase_carrier.vout[1].value}"
          " satoshis to the bank")

    # --- 5. Carol splits and pays Dave -------------------------------------
    coins = carol.input_for(OutPoint(purchase_carrier.txid, 0))
    split = simple_transfer(
        [coins],
        [
            TypecoinOutput(vocab.coin_prop(10), 600, dave.pubkey),
            TypecoinOutput(vocab.coin_prop(15), 600, carol.pubkey),
        ],
        body=lambda ins: split_proof(vocab, 10, 15, ins[0]),
    )
    split_carrier = carol.submit(split)
    net.confirm(1)
    carol.sync()
    print(f"5. Carol split her coins: 10 to Dave, 15 kept"
          f" ({split_carrier.txid_hex[:16]}…)")

    # --- 6. revocation ------------------------------------------------------
    entry = net.chain.utxos.get(OutPoint(revocation_tx.txid, 0))
    revoke = bank.wallet.create_transaction(
        net.chain,
        [TxOut(600, p2pkh_script(bank.wallet.key_hash))],
        fee=400,
        extra_inputs=[
            Spendable(OutPoint(revocation_tx.txid, 0), entry.output,
                      entry.height, entry.is_coinbase)
        ],
    )
    net.send(revoke)
    net.confirm(1)
    print("6. the banker revoked the offer by spending R")

    try:
        dave.submit(purchase)
        raise SystemExit("BUG: purchase accepted after revocation")
    except ClientError as exc:
        print(f"   post-revocation purchase rejected: {exc}")

    print("\nnewcoin example complete.")


if __name__ == "__main__":
    main()
