#!/usr/bin/env python3
"""Proof-carrying authorization: the homework scenario of paper §1–2.

Alice wants Bob to be able to turn in his homework exactly once.  A
persistent statement would let him resubmit forever, so she issues
⟨Alice⟩may-write(Bob, homework) as an *affine* resource.  The protocol:

1. Alice publishes the authorization vocabulary (files, may_write,
   may_write_this, and the nonce-infusion rule).
2. Alice issues the affine credential to Bob.
3. Bob asks the file server to write; it replies with a nonce n.
4. Bob commits on-chain: may_write(Bob, homework) ⊸
   may_write_this(Bob, homework, n).
5. The server verifies the §3 claim and performs the write.
6. Bob tries to write again — and cannot: the credential is spent.

Run: ``python examples/homework_pca.py``
"""

from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.transaction import OutPoint
from repro.core.builder import basis_publication, build_with_payload, simple_transfer
from repro.core.pca import FileServer, FileServerError, authorization_basis
from repro.core.proofs import obligation_lambda, tensor_intro_all
from repro.core.transaction import TypecoinOutput
from repro.core.validate import Ledger
from repro.core.wallet import TypecoinClient
from repro.lf.basis import Basis
from repro.lf.syntax import NatLit
from repro.logic.proofterms import ForallElim, LolliElim, PConst
from repro.logic.propositions import One, Says


def main() -> None:
    net = RegtestNetwork()
    ledger = Ledger()
    alice = TypecoinClient(net, b"hw-alice", ledger)
    bob = TypecoinClient(net, b"hw-bob", ledger)
    net.fund_wallet(alice.wallet)
    net.fund_wallet(bob.wallet)

    # --- 1. Alice publishes the vocabulary -------------------------------
    basis, vocab = authorization_basis(alice.principal_term, ["homework"])
    publication = basis_publication(basis, alice.pubkey)
    pub_carrier = alice.submit(publication)
    net.confirm(1)
    alice.sync()
    vocab = vocab.resolved(pub_carrier.txid)
    bob.known[pub_carrier.txid] = publication
    print(f"1. authorization basis published ({pub_carrier.txid_hex[:16]}…)")

    # --- 2. the affine credential ----------------------------------------
    may_write = vocab.may_write_prop(bob.principal_term, "homework")
    credential = Says(alice.principal_term, may_write)
    out = TypecoinOutput(credential, 600, bob.pubkey)
    issue = build_with_payload(
        Basis(), One(), [], [out],
        lambda payload: obligation_lambda(
            One(), [], [out.receipt()],
            lambda _c, _i, _r: tensor_intro_all(
                [alice.affirm_affine(may_write, payload)]
            ),
        ),
    )
    issue_carrier = alice.submit(issue)
    net.confirm(1)
    alice.sync()
    bob.known[issue_carrier.txid] = issue
    credential_outpoint = OutPoint(issue_carrier.txid, 0)
    print(f"2. Alice issued: {credential}")

    # --- 3. Bob requests a write, gets a nonce ---------------------------
    server = FileServer(chain=net.chain, vocab=vocab)
    nonce = server.request_write(bob.principal, "homework")
    print(f"3. file server issued nonce {nonce}")

    # --- 4. Bob commits: infuse the nonce, spending the credential -------
    target = vocab.may_write_this_prop(bob.principal_term, "homework", nonce)
    conversion = simple_transfer(
        [bob.input_for(credential_outpoint)],
        [TypecoinOutput(target, 600, bob.pubkey)],
        body=lambda ins: LolliElim(
            ForallElim(
                ForallElim(
                    ForallElim(PConst(vocab.use_write), bob.principal_term),
                    vocab.file_term("homework"),
                ),
                NatLit(nonce),
            ),
            ins[0],
        ),
    )
    conv_carrier = bob.submit(conversion)
    net.confirm(1)
    bob.sync()
    print(f"4. Bob committed to the write on-chain ({conv_carrier.txid_hex[:16]}…)")

    # --- 5. the server verifies and performs the write -------------------
    bundle = bob.claim_bundle(OutPoint(conv_carrier.txid, 0), target)
    server.complete_write(nonce, bundle, b"Bob's homework: 42.")
    print(f"5. write performed; homework = {server.contents['homework']!r}")

    # --- 6. a second hand-in attempt fails --------------------------------
    nonce2 = server.request_write(bob.principal, "homework")
    try:
        bob.input_for(credential_outpoint)
        conversion2 = simple_transfer(
            [bob.input_for(credential_outpoint)],
            [TypecoinOutput(
                vocab.may_write_this_prop(bob.principal_term, "homework", nonce2),
                600, bob.pubkey,
            )],
            body=lambda ins: LolliElim(
                ForallElim(
                    ForallElim(
                        ForallElim(PConst(vocab.use_write), bob.principal_term),
                        vocab.file_term("homework"),
                    ),
                    NatLit(nonce2),
                ),
                ins[0],
            ),
        )
        bob.submit(conversion2)
        raise SystemExit("BUG: credential was reused")
    except Exception as exc:
        print(f"6. second hand-in rejected: {type(exc).__name__} — the"
              " credential was affine")


if __name__ == "__main__":
    main()
