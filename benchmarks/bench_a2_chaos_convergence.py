"""A2 (ablation) — convergence time under fault injection.

Paper §1, items 3–6: the security argument assumes honest nodes converge
on one most-work chain *despite* an imperfect network.  A1 varied only
latency; this ablation runs the named chaos profiles — sustained 10 %
loss, a two-way partition with divergent mining, a funded byzantine
peer, and all of them at once ("inferno") — and measures how long past
the fault window the honest nodes need to agree on a single tip with
identical UTXO sets.  If convergence failed, or the recovery tail grew
toward the partition length itself, confirmations made during faults
would be worthless and the paper's commitment guarantee would not
survive contact with a real network.
"""

from repro.bitcoin.faults import PROFILES, run_chaos

SEED = 7
# Ordered mildest to nastiest so the printed table reads as a dose response.
PROFILE_ORDER = ("lossy", "partitioned", "byzantine", "inferno")


def run_profile(name, seed=SEED):
    profile = PROFILES[name]
    result = run_chaos(profile, seed=seed)
    recovery = (
        result.convergence_time - profile.duration
        if result.convergence_time is not None
        else None
    )
    return {
        "profile": name,
        "seed": seed,
        "converged": result.converged,
        "utxo_consistent": result.utxo_consistent,
        # Seconds past the fault window until all honest tips agreed
        # (0.0 means they already agreed when the faults stopped).
        "recovery_seconds": max(0.0, recovery) if recovery is not None else None,
        "height": result.height,
        "blocks_found": result.blocks_found,
        "banned_by": len(result.byzantine_banned_by),
        "events": result.events_processed,
    }


def bench_a2_chaos_convergence(benchmark):
    def run_all():
        return [run_profile(name) for name in PROFILE_ORDER]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nA2: convergence under chaos profiles"
          f" (seed {SEED}, 600 s blocks, 6 nodes)")
    print(f"{'profile':>12} {'converged':>10} {'utxo ok':>8}"
          f" {'recovery':>10} {'height':>7} {'found':>6} {'bans':>5}")
    for row in rows:
        recovery = (
            f"{row['recovery_seconds']:>9.0f}s"
            if row["recovery_seconds"] is not None
            else "      never"
        )
        print(f"{row['profile']:>12} {str(row['converged']):>10}"
              f" {str(row['utxo_consistent']):>8} {recovery}"
              f" {row['height']:>7} {row['blocks_found']:>6}"
              f" {row['banned_by']:>5}")

    for row in rows:
        assert row["converged"], f"{row['profile']} did not converge"
        assert row["utxo_consistent"], f"{row['profile']} diverged UTXO state"
        # Recovery must be well inside the convergence budget — agreeing
        # only at the deadline would mean the network barely heals.
        assert row["recovery_seconds"] < 2 * 3600.0
    # The byzantine profiles end with the adversary banned by a neighbor.
    assert all(r["banned_by"] > 0 for r in rows if r["profile"] in
               ("byzantine", "inferno"))
    benchmark.extra_info["rows"] = rows


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_a2_chaos_convergence)
