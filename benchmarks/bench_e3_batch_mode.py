"""E3 — batch mode amortizes fees and latency (paper §3.2).

"A Bitcoin transaction takes about an hour to be confirmed" and "a typical
transaction fee is 0.0005 bitcoin ... in any kind of automated application
it would add up quickly.  To resolve these problems, Typecoin can be
operated in batch mode."

N credential operations run twice: directly on-chain (one carrier + fee
each) and through a batch server (one deposit + N virtual ops + one
withdrawal).  We report total fees paid and mean per-operation latency
under the canonical 600 s block interval.
"""

from repro.bitcoin.transaction import OutPoint
from repro.core.batch import BatchServer, VirtualOutput, VirtualTransaction, authorize
from repro.core.builder import simple_transfer
from repro.core.transaction import TypecoinOutput
from repro.core.wallet import TypecoinClient
from repro.logic.proofterms import LolliIntro, PVar

from conftest import issue_coins, publish_newcoin

N_OPERATIONS = 25
FEE = 10_000  # satoshis per carrier — ~0.0005 BTC scaled to our regtest
BLOCK_INTERVAL = 600.0  # seconds; the realistic confirmation latency unit
CONFIRMATIONS = 6  # §1 item 6: "usually taken as five" subsequent blocks


def run_direct(net, bank, vocab):
    """N on-chain self-transfers: one carrier, one fee, one block each."""
    carrier, _ = issue_coins(net, bank, vocab, 1, bank.pubkey)
    outpoint = OutPoint(carrier.txid, 0)
    total_fees = FEE  # the issuance itself
    blocks_waited = CONFIRMATIONS
    for _ in range(N_OPERATIONS):
        txn = simple_transfer(
            [bank.input_for(outpoint)],
            [TypecoinOutput(vocab.coin_prop(1), 600, bank.pubkey)],
        )
        carrier = bank.submit(txn, fee=FEE)
        net.confirm(1)
        bank.sync()
        outpoint = OutPoint(carrier.txid, 0)
        total_fees += FEE
        blocks_waited += CONFIRMATIONS
    return total_fees, blocks_waited


def run_batched(net, bank, vocab, ledger):
    """One deposit, N virtual self-transfers, one withdrawal."""
    server = BatchServer(net, b"bench-batch-server", ledger)
    net.fund_wallet(server.client.wallet)
    carrier, _ = issue_coins(net, bank, vocab, 1, server.pubkey)
    bundle = bank.claim_bundle(OutPoint(carrier.txid, 0), vocab.coin_prop(1))
    rid = server.deposit(bundle, owner=bank.principal)
    total_fees = FEE  # the issuance/deposit carrier
    blocks_waited = CONFIRMATIONS

    for _ in range(N_OPERATIONS):
        vtx = VirtualTransaction(
            inputs=[rid],
            outputs=[VirtualOutput(vocab.coin_prop(1), 600, bank.principal)],
            proof=LolliIntro("x", vocab.coin_prop(1), PVar("x")),
        )
        server.transact(vtx, {bank.principal: authorize(bank.key, vtx)})
        rid = next(iter(server.holdings_of(bank.principal)))
        # No fee, no block: the server just records it.

    server.withdraw(rid, bank.pubkey, fee=FEE)
    net.confirm(1)
    server.sync()
    total_fees += FEE
    blocks_waited += CONFIRMATIONS
    return total_fees, blocks_waited


def bench_e3_direct_vs_batched(benchmark, net, bank, ledger):
    vocab, _ = publish_newcoin(net, bank)

    direct_fees, direct_blocks = run_direct(net, bank, vocab)
    batched_fees, batched_blocks = benchmark.pedantic(
        run_batched, args=(net, bank, vocab, ledger), rounds=1, iterations=1
    )

    direct_latency = direct_blocks * BLOCK_INTERVAL / (N_OPERATIONS + 1)
    batched_latency = batched_blocks * BLOCK_INTERVAL / (N_OPERATIONS + 1)

    print(f"\nE3: {N_OPERATIONS} credential operations, direct vs batch mode")
    print(f"{'':14}{'total fees (sat)':>18}{'mean latency (s/op)':>22}")
    print(f"{'direct':14}{direct_fees:>18,}{direct_latency:>22.0f}")
    print(f"{'batched':14}{batched_fees:>18,}{batched_latency:>22.0f}")
    print(f"{'improvement':14}{direct_fees / batched_fees:>17.1f}x"
          f"{direct_latency / batched_latency:>21.1f}x")

    # Shape: batch mode pays O(1) fees instead of O(N), and amortizes the
    # hour-scale confirmation wait across all N operations.
    assert batched_fees * 5 < direct_fees
    assert batched_latency * 5 < direct_latency
    benchmark.extra_info.update({
        "direct_fees": direct_fees,
        "batched_fees": batched_fees,
        "direct_latency_s": direct_latency,
        "batched_latency_s": batched_latency,
    })


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_e3_direct_vs_batched)
