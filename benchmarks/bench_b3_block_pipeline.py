"""B3 — high-throughput block pipeline (PR 9 batch ECDSA + UTXO cache +
zero-copy codecs).

Rule 4 of paper §2 makes signature verification the block-connect
bottleneck; this experiment measures the three PR-9 layers end to end and
differentially, on the same data in the same run:

* **Batched ECDSA** — :func:`repro.crypto.ecdsa.batch_verify` (one
  multi-scalar equation per block, parity-hinted R reconstruction) versus
  the serial :func:`verify` loop on identical triples, verdict-checked.
* **Zero-copy codecs** — ``Block.parse`` (struct/memoryview) versus a
  slice-based naive parser on a 10k-transaction block, equality-checked.
* **Block connect** — a 1000-spend P2PKH block connected on freshly
  replayed chains under serial/batch × plain/cached-UTXO × cold/warm
  sigcache configurations, state-identity-checked across every
  configuration.

The acceptance bar from ISSUE 9: the full pipeline (batch + UTXO cache +
the mempool-warmed sigcache, the live relay path) connects the 1k-tx
block at ≥ 2× the serial/cold/no-cache baseline *in the same run*, with
bit-identical resulting UTXO state.
"""

import time

from repro.bitcoin import sigcache
from repro.bitcoin.block import HEADER_SIZE, Block, BlockHeader, build_block
from repro.bitcoin.chain import Blockchain, ChainParams
from repro.bitcoin.miner import Miner
from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.script import Script
from repro.bitcoin.sigcache import SignatureCache
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import (
    OutPoint,
    Transaction,
    TxIn,
    TxOut,
    read_varint,
)
from repro.bitcoin.wallet import Wallet
from repro.crypto.ecdsa import batch_verify, verify as serial_verify
from repro.crypto.keys import PrivateKey

BLOCK_TXS = 1_000  # spends in the headline connect block
PARSE_TXS = 10_000  # transactions in the codec-throughput block
BATCH_SIGS = 256  # triples in the ECDSA micro-benchmark
SPEEDUP_FLOOR = 2.0  # ISSUE 9 acceptance bar, asserted in-run


# ----------------------------------------------------------------------
# Batched ECDSA vs serial, same triples
# ----------------------------------------------------------------------


def _triples(count=BATCH_SIGS, keys=8):
    privs = [PrivateKey.from_seed(b"b3-key" + bytes([i])) for i in range(keys)]
    out = []
    for i in range(count):
        key = privs[i % keys]
        digest = bytes([i & 0xFF, (i >> 8) & 0xFF, 0xB3, 0x00]) * 8
        # sign_digest warms the parity-hint table, the validating-node
        # steady state the batch path is designed for.
        out.append((key.public.point, digest, key.sign_digest(digest)))
    return out


def bench_b3_batch_ecdsa(benchmark):
    triples = _triples()
    serial_verdicts = [serial_verify(p, d, s) for p, d, s in triples]

    def run_batch():
        start = time.perf_counter()
        verdicts = batch_verify(triples)
        seconds = time.perf_counter() - start
        assert verdicts == serial_verdicts
        return len(triples) / seconds

    batch_ops = benchmark.pedantic(run_batch, rounds=3, iterations=1)

    start = time.perf_counter()
    for public, digest, signature in triples:
        assert serial_verify(public, digest, signature)
    serial_ops = len(triples) / (time.perf_counter() - start)

    benchmark.extra_info["batch_sigs"] = len(triples)
    benchmark.extra_info["batch_ops_per_s"] = batch_ops
    benchmark.extra_info["serial_ops_per_s"] = serial_ops
    benchmark.extra_info["speedup_batch_vs_serial"] = batch_ops / serial_ops

    print(f"\nB3: ECDSA batch vs serial ({len(triples)} sigs, hinted)")
    print(f"{'path':>10} {'ops/s':>9}")
    print(f"{'serial':>10} {serial_ops:>9.1f}")
    print(f"{'batched':>10} {batch_ops:>9.1f}  ({batch_ops / serial_ops:.2f}x)")


# ----------------------------------------------------------------------
# Zero-copy codec vs the naive slicing parser, same bytes
# ----------------------------------------------------------------------


def _naive_parse_script(data: bytes) -> Script:
    """The pre-PR script parser: IntEnum opcode decoding plus the
    validating constructor (kept here as the measured baseline)."""
    from repro.bitcoin.script import Op

    elements = []
    i = 0
    while i < len(data):
        byte = data[i]
        i += 1
        if 0x01 <= byte <= 0x4B:
            elements.append(bytes(data[i : i + byte]))
            i += byte
        elif byte == Op.OP_PUSHDATA1:
            n = data[i]
            i += 1
            elements.append(bytes(data[i : i + n]))
            i += n
        elif byte == Op.OP_PUSHDATA2:
            n = int.from_bytes(data[i : i + 2], "little")
            i += 2
            elements.append(bytes(data[i : i + n]))
            i += n
        else:
            elements.append(Op(byte))
    return Script(elements)


def _naive_parse_tx(data: bytes, start: int):
    """The pre-PR parser: per-field slicing with int.from_bytes (kept here
    as the measured differential baseline)."""
    offset = start
    version = int.from_bytes(data[offset : offset + 4], "little")
    offset += 4
    n_in, offset = read_varint(data, offset)
    vin = []
    for _ in range(n_in):
        txid = bytes(data[offset : offset + 32])
        index = int.from_bytes(data[offset + 32 : offset + 36], "little")
        offset += 36
        script_len, offset = read_varint(data, offset)
        script = _naive_parse_script(bytes(data[offset : offset + script_len]))
        offset += script_len
        sequence = int.from_bytes(data[offset : offset + 4], "little")
        offset += 4
        vin.append(TxIn(OutPoint(txid, index), script, sequence))
    n_out, offset = read_varint(data, offset)
    vout = []
    for _ in range(n_out):
        value = int.from_bytes(data[offset : offset + 8], "little", signed=True)
        offset += 8
        script_len, offset = read_varint(data, offset)
        vout.append(TxOut(value, _naive_parse_script(bytes(data[offset : offset + script_len]))))
        offset += script_len
    locktime = int.from_bytes(data[offset : offset + 4], "little")
    return Transaction(vin, vout, version=version, locktime=locktime), offset + 4


def _naive_parse_block(data: bytes) -> Block:
    header = BlockHeader.parse(data)
    count, offset = read_varint(data, HEADER_SIZE)
    txs = []
    for _ in range(count):
        tx, offset = _naive_parse_tx(data, offset)
        txs.append(tx)
    return Block(header, txs)


def _parse_block_wire(n_tx=PARSE_TXS) -> bytes:
    txs = []
    spk = p2pkh_script(b"\x07" * 20)
    for i in range(n_tx):
        txs.append(
            Transaction(
                vin=[
                    TxIn(
                        OutPoint(i.to_bytes(32, "little"), i & 3),
                        Script([b"\x30" * 71, b"\x02" * 33]),
                    )
                ],
                vout=[TxOut(1000 + i, spk)],
            )
        )
    return build_block(
        prev_hash=b"\x00" * 32, txs=txs, timestamp=1, bits=0x207FFFFF
    ).serialize()


def bench_b3_codec_parse(benchmark):
    wire = _parse_block_wire()
    mb = len(wire) / 1e6

    def run_fast():
        start = time.perf_counter()
        block = Block.parse(wire)
        seconds = time.perf_counter() - start
        assert len(block.txs) == PARSE_TXS
        return mb / seconds

    fast_mb_s = benchmark.pedantic(run_fast, rounds=3, iterations=1)

    start = time.perf_counter()
    naive_block = _naive_parse_block(wire)
    naive_mb_s = mb / (time.perf_counter() - start)
    # Differential: both parsers decode the same objects.
    assert naive_block.txs == Block.parse(wire).txs

    benchmark.extra_info["block_bytes"] = len(wire)
    benchmark.extra_info["parse_txs"] = PARSE_TXS
    benchmark.extra_info["zero_copy_mb_per_s"] = fast_mb_s
    benchmark.extra_info["naive_mb_per_s"] = naive_mb_s
    benchmark.extra_info["speedup_parse"] = fast_mb_s / naive_mb_s

    print(f"\nB3: block parse ({PARSE_TXS} txs, {mb:.1f} MB)")
    print(f"{'parser':>12} {'MB/s':>8}")
    print(f"{'naive slice':>12} {naive_mb_s:>8.1f}")
    print(f"{'zero-copy':>12} {fast_mb_s:>8.1f}  ({fast_mb_s / naive_mb_s:.2f}x)")


# ----------------------------------------------------------------------
# End-to-end block connect across pipeline configurations
# ----------------------------------------------------------------------


def _build_connect_scenario(n_tx=BLOCK_TXS):
    """A replayable base chain, a 1k-spend block, and the warm sigcache.

    One fanout transaction gives alice ``n_tx`` P2PKH outputs (non-coinbase,
    so no maturity wait); each becomes an independent single-signature
    spend.  Mempool acceptance verifies every spend once — warming the
    shared signature cache and the R-parity hints exactly as the live
    relay path would before the block arrives.
    """
    old_cache = sigcache.set_default_cache(SignatureCache())
    try:
        net = RegtestNetwork()
        alice = Wallet.from_seed(b"b3-alice")
        bob = Wallet.from_seed(b"b3-bob")
        net.fund_wallet(alice, blocks=1)
        per_output = 30_000
        fanout = alice.create_transaction(
            net.chain,
            [TxOut(per_output, p2pkh_script(alice.key_hash)) for _ in range(n_tx)],
            fee=40_000,
        )
        net.send(fanout)
        net.confirm()
        base_blocks = net.chain.export_active()
        lock = p2pkh_script(alice.key_hash)
        for i in range(n_tx):
            spend = Transaction(
                vin=[TxIn(fanout.outpoint(i))],
                vout=[TxOut(per_output - 2_000, p2pkh_script(bob.key_hash))],
            )
            net.mempool.accept(alice.sign_input(spend, 0, lock))
        miner = Miner(net.chain, alice.key_hash)
        block = miner.grind(miner.assemble(net.mempool))
        assert len(block.txs) == n_tx + 1
        return base_blocks, block, sigcache.default_cache()
    finally:
        sigcache.set_default_cache(old_cache)


def _connect_once(base_blocks, block, warm_cache, *, batch, cache, warm):
    """Replay the base chain under one configuration, time the big block."""
    old = sigcache.set_default_cache(
        warm_cache if warm else SignatureCache()
    )
    try:
        chain = Blockchain(
            ChainParams.regtest(), batch_sig_verify=batch, utxo_cache=cache
        )
        for prior in base_blocks:
            assert chain.add_block(prior)
        start = time.perf_counter()
        assert chain.add_block(block)
        seconds = time.perf_counter() - start
        return seconds, chain.utxos.snapshot()
    finally:
        sigcache.set_default_cache(old)


CONNECT_CONFIGS = [
    # (row label, batch_sig_verify, utxo_cache, warm sigcache)
    ("serial/cold", False, False, False),
    ("batch/cold", True, False, False),
    ("batch+cache/cold", True, True, False),
    ("pipeline/warm", True, True, True),
]


def bench_b3_block_connect(benchmark):
    base_blocks, block, warm_cache = _build_connect_scenario()

    def run_all():
        rows = []
        snapshots = []
        for label, batch, cache, warm in CONNECT_CONFIGS:
            seconds, snapshot = _connect_once(
                base_blocks, block, warm_cache, batch=batch, cache=cache,
                warm=warm,
            )
            rows.append(
                {
                    "config": label,
                    "connect_seconds": seconds,
                    "txs_per_s": BLOCK_TXS / seconds,
                }
            )
            snapshots.append(snapshot)
        # Every configuration must produce the identical UTXO state.
        assert all(snap == snapshots[0] for snap in snapshots[1:])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline = rows[0]["txs_per_s"]
    headline = rows[-1]["txs_per_s"]
    speedup = headline / baseline

    benchmark.extra_info["block_txs"] = BLOCK_TXS
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["speedup_pipeline_vs_serial"] = speedup
    benchmark.extra_info["speedup_batch_vs_serial"] = (
        rows[1]["txs_per_s"] / baseline
    )

    print(f"\nB3: block connect ({BLOCK_TXS} P2PKH spends per block)")
    print(f"{'config':>18} {'connect':>9} {'txs/s':>8} {'vs serial':>10}")
    for row in rows:
        print(
            f"{row['config']:>18} {row['connect_seconds'] * 1e3:>7.0f}ms"
            f" {row['txs_per_s']:>8.1f}"
            f" {row['txs_per_s'] / baseline:>9.2f}x"
        )
    assert speedup >= SPEEDUP_FLOOR, (
        f"pipeline speedup {speedup:.2f}x under the {SPEEDUP_FLOOR}x bar"
    )


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(
        bench_b3_batch_ecdsa, bench_b3_codec_parse, bench_b3_block_connect
    )
