"""A4 (ablation) — compact block relay vs full-block flooding.

PR 10's tentpole: with warm mempools, announcing a block as short txids
plus a prefilled coinbase (BIP 152 style) should cut relay bytes by an
order of magnitude, because every peer already holds the transaction
bodies and only needs to learn *which* ones the block commits to.

For each (node count, block size) cell the same seeded swarm runs twice
— full-block flooding vs compact relay — with identical funding, the
same gossip-warmed mempools, and byte counters zeroed right before the
block is submitted.  Relay cost comes from the unconditional per-node
``bytes_sent`` ledgers (no observability required); first-seen latency
is reconstructed from ``relay.hop`` events when observability is on.

The headline acceptance pin: on 1000-tx blocks the compact path moves
at least 5x fewer bytes than flooding.
"""

from repro import obs
from repro.bitcoin.chain import Blockchain
from repro.bitcoin.miner import Miner
from repro.bitcoin.network import Simulation, build_network
from repro.bitcoin.population import fund_wallets, sim_chain_params
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import TxOut
from repro.bitcoin.wallet import Wallet

SEED = 23
#: (node count, transactions per block) cells; each runs flood + compact.
MATRIX = ((8, 200), (8, 1000), (16, 200))
MAX_TXS = max(txs for _nodes, txs in MATRIX)
WARM_HORIZON = 900.0  # seconds of gossip to warm every mempool
RELAY_HORIZON = 300.0  # seconds for the block itself to settle
EVENT_CAPACITY = 500_000
#: The acceptance floor: compact relay on warm mempools, 1000-tx blocks.
MIN_RATIO_1K = 5.0

_FUNDING_CACHE: dict | None = None


def funded_transactions():
    """One funded chain prefix plus ``MAX_TXS`` independent signed
    spends, built once and replayed into every scenario (funding is
    deterministic, so every cell boots the identical chain)."""
    global _FUNDING_CACHE
    if _FUNDING_CACHE is None:
        wallets = [
            Wallet.from_seed(b"a4-wallet-%d" % i) for i in range(MAX_TXS)
        ]
        blocks = fund_wallets([w.key_hash for w in wallets])
        chain = Blockchain(sim_chain_params())
        for block in blocks:
            if not chain.add_block(block):
                raise RuntimeError("funding prefix rejected")
        txs = [
            w.create_transaction(
                chain,
                [TxOut(30_000, p2pkh_script(w.key_hash))],
                fee=10_000,
            )
            for w in wallets
        ]
        _FUNDING_CACHE = {"blocks": blocks, "txs": txs}
    return _FUNDING_CACHE["blocks"], _FUNDING_CACHE["txs"]


def _first_seen_latencies(events, trace_suffix, origin):
    """node -> first-seen latency for the measured block's trace."""
    origin_time = None
    first_seen = {}
    for event in events:
        if event["kind"] != "relay.hop":
            continue
        data = event["data"]
        trace = data["trace"]
        if not (trace.startswith("blk") and trace.endswith(trace_suffix)):
            continue
        if data["hop"] == 0:
            if origin_time is None:
                origin_time = data["sim_time"]
        elif data["to"] != origin:
            first_seen.setdefault(data["to"], data["sim_time"])
    if origin_time is None:
        return []
    return sorted(t - origin_time for t in first_seen.values())


def run_scenario(node_count, tx_count, compact, seed=SEED):
    """One warm-mempool block relay; byte ledger split out by kind."""
    blocks, txs = funded_transactions()
    previous_log = None
    if obs.ENABLED:
        previous_log = obs.set_event_log(
            obs.EventLog(capacity=EVENT_CAPACITY, clock=obs.clock)
        )
    try:
        sim = Simulation(seed=seed)
        nodes = build_network(sim, node_count)
        for node in nodes:
            node.compact_relay = compact
            for block in blocks:
                if not node.chain.add_block(block):
                    raise RuntimeError("node rejected funding prefix")
        for tx in txs[:tx_count]:
            nodes[0].submit_transaction(tx)
        sim.run_until(WARM_HORIZON)
        for node in nodes:
            if len(node.mempool) != tx_count:
                raise RuntimeError(
                    f"{node.name} mempool holds {len(node.mempool)}"
                    f"/{tx_count} txs after warming"
                )
            node.bytes_sent.clear()

        miner = Miner(nodes[0].chain, Wallet.from_seed(b"a4-miner").key_hash)
        block = miner.assemble(
            nodes[0].mempool,
            timestamp=nodes[0].chain.median_time_past() + 1,
            extra_nonce=1,
        )
        assert len(block.txs) == tx_count + 1  # every pooled tx + coinbase
        if obs.ENABLED:
            # Hand-assembled blocks need their causal trace minted the way
            # PoissonMiner does, or relay.hop events are not emitted.
            sim.mint_trace("blk", block.hash)
        nodes[0].submit_block(block)
        sim.run_until(WARM_HORIZON + RELAY_HORIZON)
        for node in nodes:
            if node.chain.tip.block.hash != block.hash:
                raise RuntimeError(f"{node.name} did not reach the block")

        by_kind: dict[str, int] = {}
        for node in nodes:
            for kind, amount in node.bytes_sent.items():
                by_kind[kind] = by_kind.get(kind, 0) + amount
        latencies = []
        if obs.ENABLED:
            latencies = _first_seen_latencies(
                obs.events().snapshot(), block.hash.hex()[:8], nodes[0].name
            )
    finally:
        if previous_log is not None:
            obs.set_event_log(previous_log)

    total = sum(by_kind.values())
    return {
        "nodes": node_count,
        "txs": tx_count,
        "mode": "compact" if compact else "flood",
        "seed": seed,
        "block_size": block.serialized_size(),
        "relay_bytes": total,
        "bytes_by_kind": by_kind,
        "arrivals": len(latencies),
        "p50_seconds": latencies[len(latencies) // 2] if latencies else 0.0,
        "max_seconds": latencies[-1] if latencies else 0.0,
    }


def bench_a4_compact_relay(benchmark):
    def run_all():
        global _FUNDING_CACHE
        try:
            rows = []
            for node_count, tx_count in MATRIX:
                for compact in (False, True):
                    rows.append(run_scenario(node_count, tx_count, compact))
            return rows
        finally:
            # The funding cache holds ~10^5 objects; keeping it alive
            # would tax every later experiment's GC passes in a full
            # runner sweep.
            _FUNDING_CACHE = None

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print(f"\nA4: relay bytes per settled block, flood vs compact"
          f" (seed {SEED}, warm mempools)")
    print(f"{'nodes':>6} {'txs':>6} {'mode':>8} {'block':>9}"
          f" {'relayed':>10} {'ratio':>7} {'p50':>7} {'max':>7}")
    for flood, compact in zip(rows[0::2], rows[1::2]):
        ratio = flood["relay_bytes"] / max(1, compact["relay_bytes"])
        for row in (flood, compact):
            shown = ratio if row is compact else 1.0
            print(f"{row['nodes']:>6} {row['txs']:>6} {row['mode']:>8}"
                  f" {row['block_size']:>9} {row['relay_bytes']:>10}"
                  f" {shown:>6.1f}x {row['p50_seconds']:>6.2f}s"
                  f" {row['max_seconds']:>6.2f}s")

    for flood, compact in zip(rows[0::2], rows[1::2]):
        assert flood["nodes"] == compact["nodes"]
        assert flood["txs"] == compact["txs"]
        # Flooding pushes full blocks; compact must always undercut it.
        assert compact["relay_bytes"] < flood["relay_bytes"]
        # Warm mempools mean no getblocktxn round-trips: the compact run
        # never falls back to full-block transfer.
        assert "block" not in compact["bytes_by_kind"]
        ratio = flood["relay_bytes"] / max(1, compact["relay_bytes"])
        if flood["txs"] >= 1000:
            assert ratio >= MIN_RATIO_1K, ratio
    benchmark.extra_info["rows"] = rows


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_a4_compact_relay)
