"""E8 — open transactions + type-checking escrow (paper §7).

The puzzle contest end-to-end under three fault configurations: 0, 1, and 2
compromised agents out of a 2-of-3 pool.  §7: "using a 2-of-3 script,
participants can tolerate one of the three agents becoming compromised."
We also time the escrow agent's policy check (typecheck + carrier audit),
since that is the trusted-party work the scheme minimizes.
"""

import time

from repro.bitcoin.regtest import RegtestNetwork
from repro.core.escrow import EscrowAgent
from repro.core.validate import Ledger
from repro.core.wallet import TypecoinClient
from repro.crypto.keys import PrivateKey

import sys
import pathlib

# The repo root, so the ``tests`` package resolves outside pytest too.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

from tests.core.test_escrow import TestPuzzleContest as _PuzzleContest  # noqa: E402


def run_configuration(sabotage):
    net = RegtestNetwork()
    ledger = Ledger()
    alice = TypecoinClient(net, b"e8-alice", ledger)
    bob = TypecoinClient(net, b"e8-bob", ledger)
    net.fund_wallet(alice.wallet)
    net.fund_wallet(bob.wallet)
    agents = [
        EscrowAgent(
            key=PrivateKey.from_seed(b"e8-agent" + bytes([i])),
            chain=net.chain,
            ledger=ledger,
        )
        for i in range(3)
    ]
    start = time.perf_counter()
    carrier, refusals = _PuzzleContest().run_contest(
        net, ledger, alice, bob, agents, sabotage=sabotage
    )
    elapsed = time.perf_counter() - start
    return {
        "compromised": sabotage,
        "prize_claimed": carrier is not None,
        "refusals": refusals,
        "wall_seconds": elapsed,
    }


def bench_e8_escrow_fault_tolerance(benchmark):
    def run_all():
        return [run_configuration(s) for s in (0, 1, 2)]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nE8: 2-of-3 type-checking escrow under agent compromise")
    print(f"{'compromised':>12} {'prize claimed':>14} {'refusals':>10}")
    for row in rows:
        print(f"{row['compromised']:>12} {str(row['prize_claimed']):>14}"
              f" {row['refusals']:>10}")

    assert rows[0]["prize_claimed"] and rows[0]["refusals"] == 0
    assert rows[1]["prize_claimed"] and rows[1]["refusals"] == 1
    assert not rows[2]["prize_claimed"]
    benchmark.extra_info["rows"] = rows


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_e8_escrow_fault_tolerance)
