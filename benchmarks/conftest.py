"""Shared scenario builders for the benchmark harness.

Each ``bench_*`` module regenerates one row/series of the paper's
quantitative claims (see DESIGN.md §2, EXPERIMENTS.md).  Everything here is
seeded and deterministic.
"""

import os

import pytest

from repro import obs
from repro.obs.report import render_report
from repro.bitcoin.regtest import RegtestNetwork
from repro.core.builder import basis_publication, build_with_payload
from repro.core.currency import issue_proof, newcoin_basis
from repro.core.proofs import obligation_lambda, tensor_intro_all
from repro.core.transaction import TypecoinOutput
from repro.core.validate import Ledger
from repro.core.wallet import TypecoinClient
from repro.lf.basis import Basis
from repro.logic.propositions import One


def pytest_configure(config):
    if os.environ.get("REPRO_OBS", "") not in ("", "0"):
        obs.enable()


@pytest.fixture(autouse=True)
def obs_per_bench(request):
    """Give each benchmark a clean metrics slate and attach its snapshot.

    When observability is on (``REPRO_OBS=1``), every ``bench_*`` gets a
    per-stage breakdown printed next to its headline number and the full
    snapshot stored in ``benchmark.extra_info["obs"]`` (JSON output).
    """
    if not obs.ENABLED:
        yield
        return
    obs.reset()
    # Resolve the benchmark fixture up front: it is no longer available by
    # the time this fixture's teardown runs.
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    snap = obs.snapshot()
    if benchmark is not None:
        benchmark.extra_info["obs"] = {
            "counters": snap["counters"],
            "gauges": snap["gauges"],
            "histograms": snap["histograms"],
        }
    print()
    print(render_report(snap, title=request.node.name))


@pytest.fixture
def net():
    return RegtestNetwork()


@pytest.fixture
def ledger():
    return Ledger()


@pytest.fixture
def bank(net, ledger):
    client = TypecoinClient(net, b"bench-bank", ledger)
    net.fund_wallet(client.wallet, blocks=4)
    return client


@pytest.fixture
def alice(net, ledger):
    client = TypecoinClient(net, b"bench-alice", ledger)
    net.fund_wallet(client.wallet, blocks=4)
    return client


def publish_newcoin(net, bank):
    basis, vocab = newcoin_basis(bank.principal_term, bank.principal_term)
    txn = basis_publication(basis, bank.pubkey)
    carrier = bank.submit(txn)
    net.confirm(1)
    bank.sync()
    return vocab.resolved(carrier.txid), carrier.txid


def issue_coins(net, bank, vocab, amount, recipient_pubkey, sats=600):
    out = TypecoinOutput(vocab.coin_prop(amount), sats, recipient_pubkey)
    txn = build_with_payload(
        Basis(), One(), [], [out],
        lambda payload: obligation_lambda(
            One(), [], [out.receipt()],
            lambda _c, _i, _r: tensor_intro_all([
                issue_proof(
                    vocab, amount,
                    bank.affirm_affine(vocab.print_prop(amount), payload),
                )
            ]),
        ),
    )
    carrier = bank.submit(txn)
    net.confirm(1)
    bank.sync()
    return carrier, txn
