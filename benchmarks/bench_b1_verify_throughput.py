"""B1 — verification fast-path throughput (PR 4 layered caches).

Rule 4 of paper §2 (every input signature must validate) dominates wall
time, so this experiment pins the three fast-path layers against their
pre-PR baselines:

* **ECDSA verify ops/s** — the w-NAF/GLV/Strauss-Shamir `dual_scalar_mult`
  path versus the naive double-and-add verify it replaced (reconstructed
  here from :func:`scalar_mult_naive`), with the per-point table cache both
  warm (repeated pubkeys, the realistic wallet pattern) and cold.
* **Block-connect txs/s** — connecting a block of P2PKH spends with the
  shared signature cache cold (nothing pre-verified) versus warm
  (transactions were mempool-accepted first, as on the live relay path).

The acceptance bars from ISSUE 4: ≥ 3× on verify ops/s and ≥ 2× on
warm-sigcache block connect.  Verdict equivalence is covered by
``tests/bitcoin/test_sigcache.py``; this file measures only speed.
"""

import time

from repro.bitcoin import sigcache
from repro.bitcoin.miner import Miner
from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.sigcache import SignatureCache
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import TxOut
from repro.bitcoin.wallet import Wallet
from repro.crypto import secp256k1 as ec
from repro.crypto.ecdsa import Signature, _digest_to_int, verify as fast_verify
from repro.crypto.keys import PrivateKey
from repro.crypto.secp256k1 import (
    CURVE_ORDER,
    point_add,
    scalar_mult_naive,
)

VERIFY_BATCH = 48
VERIFY_KEYS = 6  # repeated pubkeys: the warm per-point-table pattern
NAIVE_SAMPLE = 12  # naive verifies are ~5 ms each; sample, don't sweep
CONNECT_TXS = 12


def _naive_verify(public, digest, signature) -> bool:
    """The pre-PR verify: two independent double-and-add ladders joined by
    an affine addition — kept here as the measured baseline."""
    r, s = signature.r, signature.s
    if not (1 <= r < CURVE_ORDER and 1 <= s < CURVE_ORDER):
        return False
    z = _digest_to_int(digest)
    s_inv = pow(s, CURVE_ORDER - 2, CURVE_ORDER)
    u1 = (z * s_inv) % CURVE_ORDER
    u2 = (r * s_inv) % CURVE_ORDER
    point = point_add(scalar_mult_naive(u1), scalar_mult_naive(u2, public))
    if point.is_infinity:
        return False
    return point.x % CURVE_ORDER == r


def _signature_batch(count=VERIFY_BATCH, keys=VERIFY_KEYS):
    batch = []
    privs = [PrivateKey.from_seed(b"b1-key" + bytes([i])) for i in range(keys)]
    for i in range(count):
        key = privs[i % keys]
        digest = bytes([i & 0xFF, (i >> 8) & 0xFF]) * 16
        batch.append((key.public.point, digest, key.sign_digest(digest)))
    return batch


def _ops_per_s(fn, batch) -> float:
    start = time.perf_counter()
    for public, digest, signature in batch:
        assert fn(public, digest, signature)
    return len(batch) / (time.perf_counter() - start)


def bench_b1_ecdsa_verify(benchmark):
    batch = _signature_batch()
    ec._POINT_TABLE_CACHE.clear()
    _ops_per_s(fast_verify, batch)  # build generator + point tables once

    def run_warm():
        return _ops_per_s(fast_verify, batch)

    warm_ops = benchmark.pedantic(run_warm, rounds=3, iterations=1)

    # Cold: every pubkey's w-NAF table is rebuilt (one batched inversion).
    ec._POINT_TABLE_CACHE.clear()
    cold_ops = _ops_per_s(fast_verify, batch)
    naive_ops = _ops_per_s(_naive_verify, batch[:NAIVE_SAMPLE])

    benchmark.extra_info["fast_warm_ops_per_s"] = warm_ops
    benchmark.extra_info["fast_cold_ops_per_s"] = cold_ops
    benchmark.extra_info["naive_ops_per_s"] = naive_ops
    benchmark.extra_info["speedup_warm_vs_naive"] = warm_ops / naive_ops
    benchmark.extra_info["speedup_cold_vs_naive"] = cold_ops / naive_ops

    print(f"\nB1: ECDSA verify ({VERIFY_BATCH} sigs, {VERIFY_KEYS} keys)")
    print(f"{'path':>24} {'ops/s':>9} {'vs naive':>9}")
    print(f"{'naive double-and-add':>24} {naive_ops:>9.1f} {'1.00x':>9}")
    print(f"{'fast (cold tables)':>24} {cold_ops:>9.1f}"
          f" {cold_ops / naive_ops:>8.2f}x")
    print(f"{'fast (warm tables)':>24} {warm_ops:>9.1f}"
          f" {warm_ops / naive_ops:>8.2f}x")


def _build_block_scenario(n_tx=CONNECT_TXS):
    """A chain plus one unconnected block of ``n_tx`` P2PKH spends.

    Acceptance into the mempool verifies every script once — exactly what
    warms the shared signature cache on the live path.
    """
    net = RegtestNetwork()
    alice = Wallet.from_seed(b"b1-alice")
    bob = Wallet.from_seed(b"b1-bob")
    net.fund_wallet(alice, blocks=n_tx)
    for i in range(n_tx):
        tx = alice.create_transaction(
            net.chain,
            [TxOut(1000 + i, p2pkh_script(bob.key_hash))],
            fee=2000,
            exclude=set(net.mempool._spent),
        )
        net.send(tx)
    miner = Miner(net.chain, alice.key_hash)
    block = miner.grind(miner.assemble(net.mempool))
    return net, block


def _time_connect(warm: bool) -> float:
    """Seconds to connect the scenario block with the sigcache warm/cold."""
    old = sigcache.set_default_cache(SignatureCache())
    try:
        net, block = _build_block_scenario()
        cache = sigcache.default_cache()
        if not warm:
            cache.clear()
        start = time.perf_counter()
        assert net.chain.add_block(block)
        return time.perf_counter() - start
    finally:
        sigcache.set_default_cache(old)


def bench_b1_block_connect(benchmark):
    def run_warm():
        return _time_connect(warm=True)

    warm_seconds = benchmark.pedantic(run_warm, rounds=3, iterations=1)
    cold_seconds = min(_time_connect(warm=False) for _ in range(2))

    warm_tps = CONNECT_TXS / warm_seconds
    cold_tps = CONNECT_TXS / cold_seconds
    benchmark.extra_info["block_txs"] = CONNECT_TXS
    benchmark.extra_info["warm_sigcache_txs_per_s"] = warm_tps
    benchmark.extra_info["cold_sigcache_txs_per_s"] = cold_tps
    benchmark.extra_info["speedup_warm_vs_cold"] = warm_tps / cold_tps

    print(f"\nB1: block connect ({CONNECT_TXS} P2PKH spends per block)")
    print(f"{'sigcache':>10} {'connect':>9} {'txs/s':>8}")
    print(f"{'cold':>10} {cold_seconds * 1e3:>7.1f}ms {cold_tps:>8.1f}")
    print(f"{'warm':>10} {warm_seconds * 1e3:>7.1f}ms {warm_tps:>8.1f}"
          f"  ({warm_tps / cold_tps:.2f}x)")


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_b1_ecdsa_verify, bench_b1_block_connect)
