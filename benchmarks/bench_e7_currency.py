"""E7 — Typecoin specializes to a practical currency (paper §2, §6).

"Observe that we can specialize Typecoin back to a crypto-currency ...  a
more practical encoding uses an indexed type coin(n), with rules
coin(m+n) ⊸ coin(m) ⊗ coin(n) and vice versa."

We measure proof-checking throughput for indexed-coin transactions and how
checking cost scales with a chain of alternating split/merge operations —
the workload a newcoin-denominated application would generate.
"""

from repro.core.currency import merge_proof, newcoin_basis, split_proof
from repro.core.proofs import obligation_lambda
from repro.core.validate import Ledger, check_typecoin_transaction
from repro.core.transaction import TypecoinInput, TypecoinOutput, TypecoinTransaction
from repro.core.builder import basis_publication
from repro.lf.basis import Basis
from repro.lf.syntax import PrincipalLit
from repro.logic.conditions import WorldView
from repro.logic.checker import CheckerContext, infer
from repro.logic.proofterms import LolliIntro, PVar

BANK = PrincipalLit(b"\xbb" * 20)
PUBKEY = b"\x02" + b"\x77" * 32
WORLD = WorldView.at_time(1_000_000_000)


def make_ledger():
    basis, vocab = newcoin_basis(BANK, BANK)
    publication = basis_publication(basis, PUBKEY, grant=vocab.coin_prop(1024))
    ledger = Ledger()
    check_typecoin_transaction(ledger, publication, WORLD)
    txid = b"\x01" * 32
    ledger.register(txid, publication)
    return ledger, vocab.resolved(txid), txid


def split_txn(vocab, txid, n, m):
    inp = TypecoinInput(txid, 0, vocab.coin_prop(n + m), 600)
    outs = [
        TypecoinOutput(vocab.coin_prop(n), 300, PUBKEY),
        TypecoinOutput(vocab.coin_prop(m), 300, PUBKEY),
    ]
    proof = obligation_lambda(
        __one__(), [inp.prop], [o.receipt() for o in outs],
        lambda _c, ins, _r: split_proof(vocab, n, m, ins[0]),
    )
    return TypecoinTransaction(Basis(), __one__(), [inp], outs, proof)


def __one__():
    from repro.logic.propositions import One

    return One()


def chained_proof(vocab, rounds):
    """coin(2^k) split and re-merged ``rounds`` times, as one proof term."""
    total = 1024

    def body(acc, step):
        if step == rounds:
            return acc
        half = total // 2
        split = split_proof(vocab, half, total - half, acc)
        from repro.logic.proofterms import TensorElim

        return TensorElim(
            f"l{step}", f"r{step}", split,
            body(
                merge_proof(
                    vocab, half, total - half,
                    PVar(f"l{step}"), PVar(f"r{step}"),
                ),
                step + 1,
            ),
        )

    return LolliIntro("c", vocab.coin_prop(total), body(PVar("c"), 0))


def bench_e7_transaction_check_throughput(benchmark):
    """Full transaction validation (formation judgement) per §6 split."""
    ledger, vocab, txid = make_ledger()
    txn = split_txn(vocab, txid, 700, 324)

    result = benchmark(
        lambda: check_typecoin_transaction(ledger, txn, WORLD)
    )
    print("\nE7a: one indexed-coin split transaction fully validates in"
          f" ~{benchmark.stats['mean'] * 1000:.1f} ms")


def bench_e7_split_merge_chain_scaling(benchmark):
    """Proof-checking cost for alternating split/merge chains."""
    ledger, vocab, txid = make_ledger()
    ctx = CheckerContext(basis=ledger.global_basis)

    import time

    def measure():
        timings = {}
        for rounds in (1, 4, 16, 64):
            proof = chained_proof(vocab, rounds)
            start = time.perf_counter()
            infer(ctx, proof)
            timings[rounds] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(measure, rounds=3, iterations=1)
    print("\nE7b: proof-checking cost vs split/merge chain length")
    print(f"{'rounds':>8} {'check time':>12}")
    for rounds, elapsed in timings.items():
        print(f"{rounds:>8} {elapsed * 1000:>10.2f}ms")
    # Roughly linear scaling in proof size.
    assert timings[64] / timings[4] < 64
    assert timings[64] > timings[1]


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(
        bench_e7_transaction_check_throughput,
        bench_e7_split_merge_chain_scaling,
    )
