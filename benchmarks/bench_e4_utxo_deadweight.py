"""E4 — metadata embedding and unspent-txout-table deadweight (§3.3).

"Unrecoverable txouts mean permanent deadweight in the table. ...  adding
an uncollectable entry for each Typecoin transaction would only exacerbate
the problem."  The paper therefore embeds metadata as the bogus half of a
1-of-2 multisig, whose entry *can* be garbage collected.

N Typecoin transactions are carried under each embedding strategy; all
Typecoin outputs are then spent (cracked open for their bitcoins, §3.1) and
we measure what remains in the UTXO table.
"""

from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.standard import ScriptType
from repro.bitcoin.transaction import OutPoint
from repro.core.builder import simple_transfer
from repro.core.overlay import EmbeddingStrategy
from repro.core.transaction import TypecoinOutput
from repro.core.validate import Ledger
from repro.core.wallet import TypecoinClient
from repro.logic.propositions import One

N_TRANSACTIONS = 30


def run_strategy(strategy):
    net = RegtestNetwork()
    ledger = Ledger()
    client = TypecoinClient(net, b"e4-" + strategy.value.encode(), ledger)
    net.fund_wallet(client.wallet, blocks=4)
    baseline = len(net.chain.utxos)

    outpoints = []
    for i in range(N_TRANSACTIONS):
        txn = simple_transfer([], [TypecoinOutput(One(), 600, client.pubkey)])
        carrier = client.submit(txn, strategy=strategy)
        outpoints.append(OutPoint(carrier.txid, 0))
        net.confirm(1)
        client.sync()
    after_create = len(net.chain.utxos)

    # Cleanup: spend every Typecoin output back into plain bitcoins.
    for i, outpoint in enumerate(outpoints):
        txn = simple_transfer(
            [client.input_for(outpoint)],
            [TypecoinOutput(One(), 600, client.pubkey)],
        )
        client.submit(txn, strategy=EmbeddingStrategy.OP_RETURN)
        net.confirm(1)
        client.sync()

    counts = net.chain.utxos.count_by_type()
    # Deadweight: entries that can never be spent — P2PK outputs whose
    # "keys" are metadata.  (Change/coinbase outputs are all P2PKH; live
    # Typecoin outputs are MULTISIG.)
    deadweight = counts.get(ScriptType.P2PK, 0)
    return {
        "strategy": strategy.value,
        "utxos_after_create": after_create - baseline,
        "deadweight_entries": deadweight,
        "table_bytes": net.chain.utxos.serialized_size(),
    }


def bench_e4_utxo_deadweight(benchmark):
    def run_all():
        return [
            run_strategy(strategy)
            for strategy in (
                EmbeddingStrategy.MULTISIG_1OF2,
                EmbeddingStrategy.BOGUS_OUTPUT,
                EmbeddingStrategy.OP_RETURN,
            )
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print(f"\nE4: UTXO-table state after {N_TRANSACTIONS} Typecoin txs +"
          " full cleanup")
    print(f"{'strategy':>16} {'deadweight entries':>20} {'table bytes':>14}")
    for row in rows:
        print(f"{row['strategy']:>16} {row['deadweight_entries']:>20}"
              f" {row['table_bytes']:>14,}")

    by_name = {row["strategy"]: row for row in rows}
    # Shape 1: the paper's 1-of-2 embedding leaves NO deadweight.
    assert by_name["multisig-1of2"]["deadweight_entries"] == 0
    # Shape 2: the rejected bogus-output strategy leaves one permanent
    # entry per transaction.
    assert by_name["bogus-output"]["deadweight_entries"] == N_TRANSACTIONS
    # Shape 3: OP_RETURN (the modern channel) also leaves none.
    assert by_name["op-return"]["deadweight_entries"] == 0
    benchmark.extra_info["rows"] = rows


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_e4_utxo_deadweight)
