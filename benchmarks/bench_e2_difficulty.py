"""E2 — difficulty adjustment and confirmation latency (paper §1).

Footnote 4: "Bitcoin dynamically adjusts the mining difficulty so that new
blocks are always generated approximately every ten minutes, even as the
computational power of the network changes."  Item 6: six confirmations
"takes roughly an hour."

We quadruple the network hashpower mid-run and watch the retarget rule pull
the block interval back to ~600 s, then measure the 6-confirmation latency.
"""

from repro.bitcoin.chain import ChainParams
from repro.bitcoin.network import Node, PoissonMiner, Simulation
from repro.bitcoin.pow import block_work, target_to_bits

WINDOW = 36  # retarget window (shortened from 2016 to keep the sim fast)
INTERVAL = 600.0


def run_hashpower_ramp(seed=3):
    sim = Simulation(seed=seed)
    params = ChainParams(
        max_target=2**252,
        retarget_window=WINDOW,
        block_interval=int(INTERVAL),
        require_pow=False,
    )
    node = Node("n", sim, params)
    base_rate = block_work(target_to_bits(2**252)) / INTERVAL
    miner = PoissonMiner(node, base_rate, miner_id=1)
    miner.start()

    # Phase 1: calibrated hashpower for three windows.
    sim.run_until(INTERVAL * WINDOW * 3)
    phase1_height = node.chain.height

    # Phase 2: hashpower quadruples (new ASICs arrive).
    miner.hashrate = base_rate * 4
    sim.run_until(sim.now + INTERVAL * WINDOW * 4)

    timestamps = [
        node.chain.block_at(h).header.timestamp
        for h in range(1, node.chain.height + 1)
    ]
    intervals = [b - a for a, b in zip(timestamps, timestamps[1:])]

    def mean(xs):
        return sum(xs) / len(xs) if xs else float("nan")

    # Mean interval right after the hashpower jump (pre-retarget window)
    # and in the final (fully re-targeted) window.
    jump = phase1_height
    post_jump = intervals[jump : jump + WINDOW // 2]
    final = intervals[-WINDOW:]
    return {
        "phase1_mean": mean(intervals[WINDOW : phase1_height - 1]),
        "post_jump_mean": mean(post_jump),
        "final_mean": mean(final),
        "height": node.chain.height,
        "confirmation_latency": mean(
            [sum(intervals[i : i + 6]) for i in range(len(intervals) - 6)]
        ),
    }


def bench_e2_difficulty_adjustment(benchmark):
    stats = benchmark.pedantic(run_hashpower_ramp, rounds=1, iterations=1)

    print("\nE2: block intervals under a 4× hashpower ramp (target 600 s)")
    print(f"  calibrated phase : {stats['phase1_mean']:8.1f} s/block")
    print(f"  right after jump : {stats['post_jump_mean']:8.1f} s/block")
    print(f"  after retargeting: {stats['final_mean']:8.1f} s/block")
    print(f"  6-conf latency   : {stats['confirmation_latency']:8.1f} s"
          f" (paper: 'roughly an hour' = 3600 s)")

    # Shape 1: calibrated phase near the 600-second target.
    assert 0.6 * 600 < stats["phase1_mean"] < 1.5 * 600
    # Shape 2: the jump crushes the interval toward ~150 s.
    assert stats["post_jump_mean"] < 0.5 * 600
    # Shape 3: retargeting restores ~600 s.
    assert 0.6 * 600 < stats["final_mean"] < 1.5 * 600
    # Shape 4: six confirmations take on the order of an hour.
    assert 1800 < stats["confirmation_latency"] < 7200
    benchmark.extra_info.update(stats)


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_e2_difficulty_adjustment)
