"""E5 — revocation latency (paper §5).

"Alice can revoke the offer at any time (with about fifteen minutes average
latency), simply by spending I."  Revocation takes effect when the spend of
the revocation txout enters a block; careful counterparties may wait one
extra confirmation.

We run the Poisson mining simulator for many simulated days, pick random
revocation instants, and measure the time until the next block (inclusion)
and the block after (one confirmation).
"""

import random

from repro.bitcoin.chain import ChainParams
from repro.bitcoin.network import Node, PoissonMiner, Simulation
from repro.bitcoin.pow import block_work, target_to_bits

TRIALS = 400
INTERVAL = 600.0


def run_trials(seed=11):
    sim = Simulation(seed=seed)
    params = ChainParams(
        max_target=2**252, retarget_window=2**31, require_pow=False
    )
    node = Node("n", sim, params)
    miner = PoissonMiner(
        node, block_work(target_to_bits(2**252)) / INTERVAL, miner_id=1
    )
    miner.start()
    sim.run_until(INTERVAL * (TRIALS + 50))

    genesis_time = node.chain.genesis.header.timestamp
    block_times = sorted(
        node.chain.block_at(h).header.timestamp - genesis_time
        for h in range(1, node.chain.height + 1)
    )
    horizon = block_times[-2]

    rng = random.Random(seed)
    inclusion, one_conf = [], []
    for _ in range(TRIALS):
        revoke_at = rng.uniform(0, horizon - 4 * INTERVAL)
        later = [t for t in block_times if t > revoke_at]
        if len(later) < 2:
            continue
        inclusion.append(later[0] - revoke_at)
        one_conf.append(later[1] - revoke_at)

    def mean(xs):
        return sum(xs) / len(xs)

    def percentile(xs, p):
        ordered = sorted(xs)
        return ordered[int(p * (len(ordered) - 1))]

    return {
        "inclusion_mean": mean(inclusion),
        "inclusion_p90": percentile(inclusion, 0.9),
        "one_conf_mean": mean(one_conf),
        "one_conf_p90": percentile(one_conf, 0.9),
        "trials": len(inclusion),
    }


def bench_e5_revocation_latency(benchmark):
    stats = benchmark.pedantic(run_trials, rounds=1, iterations=1)

    print(f"\nE5: revocation latency over {stats['trials']} trials"
          " (600 s blocks)")
    print(f"{'':24}{'mean':>10}{'p90':>10}")
    print(f"{'until inclusion':24}{stats['inclusion_mean']:>9.0f}s"
          f"{stats['inclusion_p90']:>9.0f}s")
    print(f"{'until 1 confirmation':24}{stats['one_conf_mean']:>9.0f}s"
          f"{stats['one_conf_p90']:>9.0f}s")
    print("paper: 'about fifteen minutes average latency' = 900 s")

    # Shape: the paper's ~15-minute claim sits between bare inclusion
    # (memoryless wait, mean ≈ 600 s) and inclusion + one confirmation
    # (mean ≈ 1200 s).  Both brackets must hold.
    assert 400 < stats["inclusion_mean"] < 850
    assert 900 < stats["one_conf_mean"] < 1600
    assert stats["inclusion_mean"] < 900 < stats["one_conf_mean"]
    benchmark.extra_info.update(stats)


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_e5_revocation_latency)
