"""E9 — Bitcoin-level overhead of carrying a Typecoin transaction (§3).

"Thus, every transaction-output carries both a bitcoin amount and a type
... the Bitcoin network sees only its hash."  The network-visible cost of a
Typecoin transaction is a constant: one 1-of-2 multisig output per Typecoin
output (33 extra "key" bytes) and the dust riding on it.  We compare a
plain payment's carrier with an equivalent Typecoin carrier on size and
full script-validation time.
"""

import time

from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import TxOut
from repro.bitcoin.validation import check_tx_inputs
from repro.core.builder import simple_transfer
from repro.core.transaction import TypecoinOutput
from repro.core.validate import Ledger
from repro.core.wallet import TypecoinClient
from repro.logic.propositions import One


def build_pair():
    net = RegtestNetwork()
    client = TypecoinClient(net, b"e9-client", Ledger())
    net.fund_wallet(client.wallet, blocks=2)

    plain = client.wallet.create_transaction(
        net.chain, [TxOut(600, p2pkh_script(client.wallet.key_hash))], fee=10_000
    )
    typecoin_txn = simple_transfer(
        [], [TypecoinOutput(One(), 600, client.pubkey)]
    )
    from repro.core.overlay import build_carrier

    carrier = build_carrier(
        net.chain, client.wallet, typecoin_txn, fee=10_000,
        exclude={txin.prevout for txin in plain.vin},
    )
    return net, plain, carrier, typecoin_txn


def bench_e9_overlay_overhead(benchmark):
    net, plain, carrier, typecoin_txn = build_pair()

    def validate_both():
        check_tx_inputs(plain, net.chain.utxos, net.chain.height + 1)
        check_tx_inputs(carrier, net.chain.utxos, net.chain.height + 1)

    benchmark(validate_both)

    plain_size = len(plain.serialize())
    carrier_size = len(carrier.serialize())

    start = time.perf_counter()
    for _ in range(50):
        check_tx_inputs(plain, net.chain.utxos, net.chain.height + 1)
    plain_time = (time.perf_counter() - start) / 50
    start = time.perf_counter()
    for _ in range(50):
        check_tx_inputs(carrier, net.chain.utxos, net.chain.height + 1)
    carrier_time = (time.perf_counter() - start) / 50

    typecoin_size = len(typecoin_txn.serialize())

    print("\nE9: network-visible overhead of the Typecoin overlay")
    print(f"{'':22}{'bytes':>8}{'validate':>12}")
    print(f"{'plain payment':22}{plain_size:>8}{plain_time * 1000:>10.2f}ms")
    print(f"{'typecoin carrier':22}{carrier_size:>8}"
          f"{carrier_time * 1000:>10.2f}ms")
    print(f"{'overhead':22}{carrier_size - plain_size:>8}"
          f"{(carrier_time - plain_time) * 1000:>10.2f}ms")
    print(f"(the {typecoin_size}-byte Typecoin transaction itself never"
          " touches the network — only its 32-byte hash does)")

    # Shape 1: constant small overhead — one extra pubkey-sized push plus
    # multisig scaffolding, well under 100 bytes per output.
    assert 0 < carrier_size - plain_size < 120
    # Shape 2: the Bitcoin network never validates propositions; carrier
    # validation stays the same order of magnitude as a plain payment.
    assert carrier_time < plain_time * 4
    # Shape 3: the Typecoin payload (which the network never sees) is
    # bigger than the 32-byte hash that represents it on-chain — and this
    # is a *minimal* transaction; realistic payloads (bases, Figure 3
    # proofs) run to kilobytes while the on-chain cost stays constant.
    assert typecoin_size > 32
    benchmark.extra_info.update({
        "plain_bytes": plain_size,
        "carrier_bytes": carrier_size,
        "typecoin_payload_bytes": typecoin_size,
    })


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_e9_overlay_overhead)
