"""Diff two benchmark trajectory files and gate on regressions.

The regression gate for ``BENCH_<label>.json`` files written by
``benchmarks/runner.py``: compares per-experiment wall time (and
per-bench mean timings, for detail) between a baseline and a candidate
trajectory, prints a table, and exits non-zero when any experiment
regressed beyond the threshold (default: >25% wall-time regression).

Usage::

    python benchmarks/compare.py BENCH_base.json BENCH_new.json
    python benchmarks/compare.py BENCH_base.json BENCH_new.json --threshold 0.10
    python benchmarks/compare.py --check-schema BENCH_new.json

Experiments present in the baseline but missing from the candidate are
failures too (a deleted benchmark must be an explicit decision, not a
silent hole in the trajectory), unless ``--allow-missing`` is given.
"""

from __future__ import annotations

import argparse
import json
import sys

BENCH_SCHEMA = "repro.bench/1"


class SchemaError(ValueError):
    """A trajectory file does not match the documented schema."""


def load_trajectory(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    check_schema(data, path)
    return data


def check_schema(data: dict, path: str = "<data>") -> None:
    """Raise :class:`SchemaError` unless ``data`` is a valid trajectory."""
    if not isinstance(data, dict):
        raise SchemaError(f"{path}: trajectory must be an object")
    if data.get("schema") != BENCH_SCHEMA:
        raise SchemaError(
            f"{path}: schema {data.get('schema')!r} != {BENCH_SCHEMA!r}"
        )
    for field in ("label", "created_unix", "git_sha", "experiments"):
        if field not in data:
            raise SchemaError(f"{path}: missing field {field!r}")
    experiments = data["experiments"]
    if not isinstance(experiments, dict) or not experiments:
        raise SchemaError(f"{path}: experiments must be a non-empty object")
    for key, record in experiments.items():
        for field in ("file", "wall_seconds", "benches", "ok"):
            if field not in record:
                raise SchemaError(f"{path}: experiment {key!r} missing {field!r}")
        for bench_name, bench in record["benches"].items():
            if "stats" not in bench:
                raise SchemaError(
                    f"{path}: bench {key}/{bench_name} missing 'stats'"
                )
            for stat in ("min", "mean", "max", "rounds"):
                if stat not in bench["stats"]:
                    raise SchemaError(
                        f"{path}: bench {key}/{bench_name} stats missing {stat!r}"
                    )


def compare(
    base: dict,
    new: dict,
    threshold: float = 0.25,
    allow_missing: bool = False,
) -> tuple[list[str], list[str]]:
    """Compare trajectories; returns (report lines, failure descriptions)."""
    lines: list[str] = []
    failures: list[str] = []
    lines.append(
        f"baseline {base['label']} ({base['git_sha'][:12]})"
        f"  vs  candidate {new['label']} ({new['git_sha'][:12]})"
    )
    lines.append(f"threshold: +{threshold:.0%} wall time per experiment")
    lines.append(f"{'experiment':<28}{'base':>10}{'new':>10}{'delta':>9}  verdict")

    for key in sorted(base["experiments"]):
        base_record = base["experiments"][key]
        new_record = new["experiments"].get(key)
        if new_record is None:
            verdict = "MISSING"
            if not allow_missing:
                failures.append(f"{key}: missing from candidate")
            lines.append(f"{key:<28}{base_record['wall_seconds']:>9.2f}s"
                         f"{'-':>10}{'-':>9}  {verdict}")
            continue
        if not new_record["ok"]:
            failures.append(f"{key}: candidate run failed")
            lines.append(f"{key:<28}{base_record['wall_seconds']:>9.2f}s"
                         f"{new_record['wall_seconds']:>9.2f}s{'-':>9}  FAILED")
            continue
        base_wall = base_record["wall_seconds"]
        new_wall = new_record["wall_seconds"]
        delta = (new_wall - base_wall) / base_wall if base_wall else 0.0
        if delta > threshold:
            verdict = "REGRESSED"
            failures.append(
                f"{key}: wall time {base_wall:.2f}s -> {new_wall:.2f}s"
                f" (+{delta:.0%} > +{threshold:.0%})"
            )
        elif delta < -threshold:
            verdict = "faster"
        else:
            verdict = "ok"
        lines.append(f"{key:<28}{base_wall:>9.2f}s{new_wall:>9.2f}s"
                     f"{delta:>+8.0%}  {verdict}")

    new_only = sorted(set(new["experiments"]) - set(base["experiments"]))
    for key in new_only:
        lines.append(f"{key:<28}{'-':>10}"
                     f"{new['experiments'][key]['wall_seconds']:>9.2f}s"
                     f"{'-':>9}  new")
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("files", nargs="+",
                        help="trajectory files: BASE NEW, or one file with"
                             " --check-schema")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fail on wall-time regression beyond this"
                             " fraction (default 0.25)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="don't fail when the candidate lacks a baseline"
                             " experiment")
    parser.add_argument("--check-schema", action="store_true",
                        help="only validate the given file(s) against the"
                             " trajectory schema")
    args = parser.parse_args(argv)

    if args.check_schema:
        for path in args.files:
            try:
                data = load_trajectory(path)
            except (OSError, json.JSONDecodeError, SchemaError) as exc:
                print(f"schema check FAILED: {exc}", file=sys.stderr)
                return 1
            print(f"{path}: schema ok"
                  f" ({len(data['experiments'])} experiments,"
                  f" label {data['label']!r}, sha {data['git_sha'][:12]})")
        return 0

    if len(args.files) != 2:
        parser.error("expected exactly two files: BASE NEW")
    try:
        base = load_trajectory(args.files[0])
        new = load_trajectory(args.files[1])
    except (OSError, json.JSONDecodeError, SchemaError) as exc:
        print(f"cannot load trajectory: {exc}", file=sys.stderr)
        return 1

    lines, failures = compare(
        base, new, threshold=args.threshold, allow_missing=args.allow_missing
    )
    print("\n".join(lines))
    if failures:
        print(f"\nREGRESSION GATE FAILED ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nregression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
