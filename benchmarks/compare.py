"""Diff two benchmark trajectory files and gate on regressions.

The regression gate for ``BENCH_<label>.json`` files written by
``benchmarks/runner.py``: compares per-experiment wall time (and
per-bench mean timings, for detail) between a baseline and a candidate
trajectory, prints a table, and exits non-zero when any experiment
regressed beyond the threshold (default: >25% wall-time regression).

Usage::

    python benchmarks/compare.py BENCH_base.json BENCH_new.json
    python benchmarks/compare.py BENCH_base.json BENCH_new.json --threshold 0.10
    python benchmarks/compare.py BENCH_base.json BENCH_new.json --blame
    python benchmarks/compare.py --check-schema BENCH_new.json

Experiments present in the baseline but missing from the candidate are
failures too (a deleted benchmark must be an explicit decision, not a
silent hole in the trajectory), unless ``--allow-missing`` is given.
Experiments that *failed in the baseline* are skipped with a note — a
broken baseline row cannot meaningfully gate a candidate.

Blame mode
----------

When both trajectories carry per-phase cost vectors (the ``"profile"``
section ``runner.py`` records unless ``--no-profile``), every wall-time
regression is annotated with the phases whose self-time grew the most —
"A1 regressed, and 78% of the growth is in ``script``" — so the gate
names a suspect instead of just a symptom.  ``--blame`` prints the
per-phase diff for every experiment, regressed or not.
"""

from __future__ import annotations

import argparse
import json
import sys

BENCH_SCHEMA = "repro.bench/1"
PROFILE_SCHEMA = "repro.profile/1"

# How many regressing phases a blame annotation names.
BLAME_TOP = 3


class SchemaError(ValueError):
    """A trajectory file does not match the documented schema."""


def load_trajectory(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    check_schema(data, path)
    return data


def check_schema(data: dict, path: str = "<data>") -> None:
    """Raise :class:`SchemaError` unless ``data`` is a valid trajectory."""
    if not isinstance(data, dict):
        raise SchemaError(f"{path}: trajectory must be an object")
    if data.get("schema") != BENCH_SCHEMA:
        raise SchemaError(
            f"{path}: schema {data.get('schema')!r} != {BENCH_SCHEMA!r}"
        )
    for field in ("label", "created_unix", "git_sha", "experiments"):
        if field not in data:
            raise SchemaError(f"{path}: missing field {field!r}")
    experiments = data["experiments"]
    if not isinstance(experiments, dict) or not experiments:
        raise SchemaError(f"{path}: experiments must be a non-empty object")
    for key, record in experiments.items():
        for field in ("file", "wall_seconds", "benches", "ok"):
            if field not in record:
                raise SchemaError(f"{path}: experiment {key!r} missing {field!r}")
        for bench_name, bench in record["benches"].items():
            if "stats" not in bench:
                raise SchemaError(
                    f"{path}: bench {key}/{bench_name} missing 'stats'"
                )
            for stat in ("min", "mean", "max", "rounds"):
                if stat not in bench["stats"]:
                    raise SchemaError(
                        f"{path}: bench {key}/{bench_name} stats missing {stat!r}"
                    )
        if "profile" in record:
            _check_profile(record["profile"], key, path)


def _check_profile(profile: object, key: str, path: str) -> None:
    """Validate an experiment's optional per-phase cost vector."""
    if not isinstance(profile, dict):
        raise SchemaError(f"{path}: experiment {key!r} profile must be an object")
    if profile.get("schema") != PROFILE_SCHEMA:
        raise SchemaError(
            f"{path}: experiment {key!r} profile schema"
            f" {profile.get('schema')!r} != {PROFILE_SCHEMA!r}"
        )
    phases = profile.get("phases")
    if not isinstance(phases, dict):
        raise SchemaError(
            f"{path}: experiment {key!r} profile must map phases to costs"
        )
    for phase, entry in phases.items():
        if not isinstance(entry, dict):
            raise SchemaError(
                f"{path}: experiment {key!r} phase {phase!r} must be an object"
            )
        if not isinstance(entry.get("seconds"), (int, float)):
            raise SchemaError(
                f"{path}: experiment {key!r} phase {phase!r} missing 'seconds'"
            )
        if not isinstance(entry.get("calls"), int):
            raise SchemaError(
                f"{path}: experiment {key!r} phase {phase!r} missing 'calls'"
            )


def phase_seconds(record: dict) -> dict[str, float] | None:
    """The per-phase self-seconds vector of an experiment record, if any."""
    profile = record.get("profile")
    if not isinstance(profile, dict):
        return None
    phases = profile.get("phases")
    if not isinstance(phases, dict):
        return None
    return {
        phase: float(entry.get("seconds", 0.0))
        for phase, entry in phases.items()
        if isinstance(entry, dict)
    }


def blame_phases(
    base_record: dict, new_record: dict, top: int = BLAME_TOP
) -> list[str]:
    """Name the phases whose self-time grew the most between two records.

    Returns human-readable annotation lines, or ``[]`` when either record
    lacks a phase vector (old trajectory files, ``--no-profile`` runs) or
    no phase got slower.  Growth percentages are of the summed positive
    growth, so the lines answer "where did the extra time go?".
    """
    base_phases = phase_seconds(base_record)
    new_phases = phase_seconds(new_record)
    if base_phases is None or new_phases is None:
        return []
    deltas = {
        phase: new_phases.get(phase, 0.0) - base_phases.get(phase, 0.0)
        for phase in set(base_phases) | set(new_phases)
    }
    regressing = sorted(
        ((delta, phase) for phase, delta in deltas.items() if delta > 0),
        key=lambda pair: (-pair[0], pair[1]),
    )
    if not regressing:
        return []
    total_growth = sum(delta for delta, _ in regressing)
    lines = []
    for delta, phase in regressing[:top]:
        share = delta / total_growth if total_growth else 0.0
        lines.append(
            f"blame: {phase} +{delta:.3f}s ({share:.0%} of phase growth;"
            f" {base_phases.get(phase, 0.0):.3f}s ->"
            f" {new_phases.get(phase, 0.0):.3f}s)"
        )
    return lines


def compare(
    base: dict,
    new: dict,
    threshold: float = 0.25,
    allow_missing: bool = False,
    blame_all: bool = False,
) -> tuple[list[str], list[str]]:
    """Compare trajectories; returns (report lines, failure descriptions).

    Regressed experiments are annotated with the top regressing phases
    when both records carry phase vectors; ``blame_all=True`` prints the
    phase diff for every comparable experiment.
    """
    lines: list[str] = []
    failures: list[str] = []
    lines.append(
        f"baseline {base['label']} ({base['git_sha'][:12]})"
        f"  vs  candidate {new['label']} ({new['git_sha'][:12]})"
    )
    lines.append(f"threshold: +{threshold:.0%} wall time per experiment")
    lines.append(f"{'experiment':<28}{'base':>10}{'new':>10}{'delta':>9}  verdict")

    for key in sorted(base["experiments"]):
        base_record = base["experiments"][key]
        new_record = new["experiments"].get(key)
        if new_record is None:
            verdict = "MISSING"
            if not allow_missing:
                failures.append(f"{key}: missing from candidate")
            lines.append(f"{key:<28}{base_record['wall_seconds']:>9.2f}s"
                         f"{'-':>10}{'-':>9}  {verdict}")
            continue
        if not base_record.get("ok", True):
            # A failed baseline row has no meaningful timing to gate
            # against; note it and move on rather than comparing garbage.
            lines.append(f"{key:<28}{'-':>10}"
                         f"{new_record['wall_seconds']:>9.2f}s"
                         f"{'-':>9}  skipped (baseline run failed)")
            continue
        if not new_record["ok"]:
            failures.append(f"{key}: candidate run failed")
            lines.append(f"{key:<28}{base_record['wall_seconds']:>9.2f}s"
                         f"{new_record['wall_seconds']:>9.2f}s{'-':>9}  FAILED")
            continue
        base_wall = base_record["wall_seconds"]
        new_wall = new_record["wall_seconds"]
        delta = (new_wall - base_wall) / base_wall if base_wall else 0.0
        blame = blame_phases(base_record, new_record)
        if delta > threshold:
            verdict = "REGRESSED"
            failure = (
                f"{key}: wall time {base_wall:.2f}s -> {new_wall:.2f}s"
                f" (+{delta:.0%} > +{threshold:.0%})"
            )
            if blame:
                # "blame: script +0.42s (78% ...)" -> "script +0.42s"
                failure += f" [{blame[0].removeprefix('blame: ').split(' (')[0]}]"
            failures.append(failure)
        elif delta < -threshold:
            verdict = "faster"
        else:
            verdict = "ok"
        lines.append(f"{key:<28}{base_wall:>9.2f}s{new_wall:>9.2f}s"
                     f"{delta:>+8.0%}  {verdict}")
        if blame and (verdict == "REGRESSED" or blame_all):
            lines.extend(f"{'':<28}{annotation}" for annotation in blame)

    new_only = sorted(set(new["experiments"]) - set(base["experiments"]))
    for key in new_only:
        lines.append(f"{key:<28}{'-':>10}"
                     f"{new['experiments'][key]['wall_seconds']:>9.2f}s"
                     f"{'-':>9}  new")
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("files", nargs="+",
                        help="trajectory files: BASE NEW, or one file with"
                             " --check-schema")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fail on wall-time regression beyond this"
                             " fraction (default 0.25)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="don't fail when the candidate lacks a baseline"
                             " experiment")
    parser.add_argument("--check-schema", action="store_true",
                        help="only validate the given file(s) against the"
                             " trajectory schema")
    parser.add_argument("--blame", action="store_true",
                        help="print the per-phase cost diff for every"
                             " experiment, not just regressed ones")
    args = parser.parse_args(argv)

    if args.check_schema:
        for path in args.files:
            try:
                data = load_trajectory(path)
            except (OSError, json.JSONDecodeError, SchemaError) as exc:
                print(f"schema check FAILED: {exc}", file=sys.stderr)
                return 1
            print(f"{path}: schema ok"
                  f" ({len(data['experiments'])} experiments,"
                  f" label {data['label']!r}, sha {data['git_sha'][:12]})")
        return 0

    if len(args.files) != 2:
        parser.error("expected exactly two files: BASE NEW")
    try:
        base = load_trajectory(args.files[0])
        new = load_trajectory(args.files[1])
    except (OSError, json.JSONDecodeError, SchemaError) as exc:
        print(f"cannot load trajectory: {exc}", file=sys.stderr)
        return 1

    lines, failures = compare(
        base,
        new,
        threshold=args.threshold,
        allow_missing=args.allow_missing,
        blame_all=args.blame,
    )
    print("\n".join(lines))
    if failures:
        print(f"\nREGRESSION GATE FAILED ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nregression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
