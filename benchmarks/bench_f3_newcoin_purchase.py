"""F3 — the Figure 3 proof term, end to end (paper §6.1).

The most intricate artifact in the paper: purchasing newcoins through a
receipt, a published affirmation, the if/say commutation, two ifweakens,
and the term-limited issue rule.  We run the full scenario on regtest
(appoint banker → publish offer → purchase → revoke → purchase fails) and
benchmark validation of the Figure 3 transaction.
"""

import sys
import pathlib
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tests"))

from repro.bitcoin.regtest import RegtestNetwork
from repro.core.validate import (
    Ledger,
    ValidationFailure,
    check_typecoin_transaction,
    world_at,
)
from repro.core.wallet import ClientError, TypecoinClient

from tests.core.test_currency import TestFigure3 as _Figure3  # noqa: E402


def build_scenario():
    net = RegtestNetwork()
    ledger = Ledger()
    bank = TypecoinClient(net, b"f3-bank", ledger)
    alice = TypecoinClient(net, b"f3-alice", ledger)
    net.fund_wallet(bank.wallet)
    net.fund_wallet(alice.wallet)
    fixture = _Figure3()
    (vocab, term_end, n_btc, n_newcoins, revocation, order, appointment,
     revocation_tx) = fixture.setup_offer(net, bank, alice)
    txn = fixture.purchase_txn(
        vocab, bank, alice, term_end, n_btc, n_newcoins, revocation,
        order, appointment,
    )
    return net, ledger, bank, alice, txn, vocab, n_newcoins


def bench_f3_figure3_validation(benchmark):
    net, ledger, bank, alice, txn, vocab, n_newcoins = build_scenario()
    world = world_at(net.chain)

    benchmark(lambda: check_typecoin_transaction(ledger, txn, world))

    # End-to-end: actually submit, confirm, and inspect the coin.
    carrier = alice.submit(txn)
    net.confirm(1)
    alice.sync()
    from repro.logic.propositions import props_equal

    entry = alice.ledger.output(carrier.txid, 0)
    assert props_equal(entry.prop, vocab.coin_prop(n_newcoins))

    print("\nF3: the Figure 3 purchase validates in"
          f" ~{benchmark.stats['mean'] * 1000:.1f} ms and mints"
          f" coin {n_newcoins} on-chain ({carrier.txid_hex[:16]}…)")
    print(f"   Bitcoin level saw {len(carrier.serialize())} bytes; the"
          " proof term itself stayed off-chain")


def bench_f3_revocation_flips_validity(benchmark):
    """After the banker spends R the very same proof term is rejected."""

    def run():
        net = RegtestNetwork()
        ledger = Ledger()
        bank = TypecoinClient(net, b"f3b-bank", ledger)
        alice = TypecoinClient(net, b"f3b-alice", ledger)
        net.fund_wallet(bank.wallet)
        net.fund_wallet(alice.wallet)
        fixture = _Figure3()
        (vocab, term_end, n_btc, n_newcoins, revocation, order, appointment,
         revocation_tx) = fixture.setup_offer(net, bank, alice)
        txn = fixture.purchase_txn(
            vocab, bank, alice, term_end, n_btc, n_newcoins, revocation,
            order, appointment,
        )
        check_typecoin_transaction(ledger, txn, world_at(net.chain))

        # Revoke: the banker spends R.
        from repro.bitcoin.standard import p2pkh_script
        from repro.bitcoin.transaction import OutPoint, TxOut
        from repro.bitcoin.wallet import Spendable

        entry = net.chain.utxos.get(OutPoint(revocation_tx.txid, 0))
        revoke = bank.wallet.create_transaction(
            net.chain, [TxOut(600, p2pkh_script(bank.wallet.key_hash))],
            fee=400,
            extra_inputs=[Spendable(
                OutPoint(revocation_tx.txid, 0), entry.output, entry.height,
                entry.is_coinbase,
            )],
        )
        net.send(revoke)
        net.confirm(1)
        try:
            check_typecoin_transaction(ledger, txn, world_at(net.chain))
            return False
        except ValidationFailure:
            return True

    flipped = benchmark.pedantic(run, rounds=1, iterations=1)
    assert flipped
    print("\nF3b: after spending R, the identical Figure 3 transaction is"
          " rejected — revocation works with no signature from the buyer")


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(
        bench_f3_figure3_validation,
        bench_f3_revocation_flips_validity,
    )
