"""F2 — Figure 2: the conditional monad and its entailment calculus.

Checks every proof form of Figure 2 / Appendix A against the proof checker
(ifreturn, ifbind, ifweaken, if/say — and the deliberate *absence* of
discharge), and benchmarks the classical-sequent entailment prover over a
family of condition formulas of growing size.
"""

import random

from repro.lf.basis import builtin_basis, KindDecl
from repro.lf.syntax import KIND_PROP, NatLit, PrincipalLit, TConst, ConstRef, THIS
from repro.logic.checker import CheckerContext, check_proof, infer
from repro.logic.conditions import (
    Before,
    CAnd,
    CNot,
    CTrue,
    Spent,
    entails,
)
from repro.logic.proofterms import (
    IfBind,
    IfReturn,
    IfSay,
    IfWeaken,
    OneIntro,
    PVar,
    SayReturn,
    TensorIntro,
)
from repro.logic.propositions import Atom, IfProp, One, Says, props_equal

ALICE = PrincipalLit(b"\xaa" * 20)


def check_figure2_rules():
    """Each Figure 2 / Appendix A conditional rule, as a checked instance."""
    basis = builtin_basis()
    flag = ConstRef(THIS, "flag")
    basis.declare(flag, KindDecl(KIND_PROP))
    prop = Atom(TConst(flag))
    ctx = CheckerContext(basis=basis)
    phi = Before(NatLit(100))
    stronger = CAnd(Before(NatLit(50)), CNot(Spent(b"\x01" * 32, 0)))

    checked = 0
    # ifreturn: Σ;Ψ;Γ;Δ ⊢ ifreturn_φ(M) : if(φ, A)
    inner = ctx.with_affine("x", prop)
    proved, _ = infer(inner, IfReturn(phi, PVar("x")))
    assert props_equal(proved, IfProp(phi, prop))
    checked += 1
    # ifbind
    inner = ctx.with_affine("i", IfProp(phi, prop))
    proved, _ = infer(
        inner,
        IfBind("x", PVar("i"), IfReturn(phi, TensorIntro(PVar("x"), OneIntro()))),
    )
    assert props_equal(proved, IfProp(phi, __import__("repro.logic.propositions", fromlist=["Tensor"]).Tensor(prop, One())))
    checked += 1
    # ifweaken (φ ⊃ φ′ premise via the sequent prover)
    inner = ctx.with_affine("i", IfProp(phi, prop))
    proved, _ = infer(inner, IfWeaken(stronger, PVar("i")))
    assert props_equal(proved, IfProp(stronger, prop))
    checked += 1
    # if/say
    proved = check_proof(
        ctx, IfSay(SayReturn(ALICE, IfReturn(phi, OneIntro())))
    )
    assert props_equal(proved, IfProp(phi, Says(ALICE, One())))
    checked += 1
    # No discharge form exists (§5: "we have no explicit discharge
    # operation at all").
    import repro.logic.proofterms as pt

    assert not hasattr(pt, "Discharge")
    checked += 1
    return checked


def random_condition(rng, depth):
    if depth == 0:
        return rng.choice([
            CTrue(),
            Before(NatLit(rng.randrange(100))),
            Spent(bytes([rng.randrange(4)]) * 32, rng.randrange(3)),
        ])
    left = random_condition(rng, depth - 1)
    if rng.random() < 0.3:
        return CNot(left)
    return CAnd(left, random_condition(rng, depth - 1))


def entailment_workload():
    rng = random.Random(5)
    proved = 0
    for depth in (2, 3, 4):
        for _ in range(60):
            phi = random_condition(rng, depth)
            # Reflexivity and ∧-projection must always hold.
            assert entails([phi], [phi])
            assert entails([CAnd(phi, CTrue())], [phi])
            proved += 2
    return proved


def bench_f2_conditional_rules(benchmark):
    checked = benchmark(check_figure2_rules)
    print(f"\nF2a: all {checked} Figure 2 conditional rules check")


def bench_f2_entailment_prover(benchmark):
    proved = benchmark(entailment_workload)
    rate = proved / benchmark.stats["mean"]
    print(f"\nF2b: entailment prover decided {proved} sequents per pass"
          f" (~{rate:,.0f}/s)")


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(
        bench_f2_conditional_rules,
        bench_f2_entailment_prover,
    )
