"""Benchmark telemetry runner: every experiment, one trajectory file.

Discovers each ``benchmarks/bench_*.py`` experiment, runs its bench
functions through the :mod:`obs_harness` stub driver (same fixture
injection, same pytest-benchmark-shaped stats), and writes one
schema-versioned ``BENCH_<label>.json`` at the repo root with, per
experiment: wall time, per-bench timing stats and ``extra_info``, and the
observability metric snapshot — plus the git SHA and timestamp of the
run.  ``benchmarks/compare.py`` diffs two such files and gates on
regressions, so every perf PR can state "here is the before/after
trajectory" instead of a claim.

Usage::

    PYTHONPATH=src python benchmarks/runner.py --label pr2
    PYTHONPATH=src python benchmarks/runner.py --label smoke --smoke
    PYTHONPATH=src python benchmarks/runner.py --label x --only e6 --only f1

Observability is enabled by default (the snapshot is part of the
artifact; overhead is identical across runs being compared).  Use
``--no-obs`` for a bare-timing run — the file records which mode it was.
"""

from __future__ import annotations

import argparse
import gc
import importlib
import json
import os
import subprocess
import sys
import time
import traceback

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
for path in (os.path.join(REPO_ROOT, "src"), BENCH_DIR):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro import obs  # noqa: E402
from repro.obs.report import render_report  # noqa: E402

from obs_harness import StubBenchmark, run_bench  # noqa: E402

# Bump when the trajectory file shape changes.
BENCH_SCHEMA = "repro.bench/1"


def discover_experiments(only: list[str] | None = None) -> list[str]:
    """Sorted ``bench_*.py`` module names, optionally substring-filtered."""
    names = sorted(
        entry[:-3]
        for entry in os.listdir(BENCH_DIR)
        if entry.startswith("bench_") and entry.endswith(".py")
    )
    if only:
        names = [n for n in names if any(pattern in n for pattern in only)]
    return names


def experiment_key(module_name: str) -> str:
    return module_name.removeprefix("bench_")


def bench_functions(module) -> list:
    """The module's ``bench_*`` callables, in definition order."""
    functions = [
        obj
        for name, obj in vars(module).items()
        if name.startswith("bench_") and callable(obj)
    ]
    functions.sort(key=lambda fn: fn.__code__.co_firstlineno)
    return functions


def git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _obs_metrics(snapshot: dict) -> dict:
    """The metric portion of a snapshot (spans/events stay out of the
    trajectory file: they are per-run detail, not comparable series)."""
    return {
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": snapshot["histograms"],
    }


def run_experiment(
    module_name: str,
    max_rounds: int | None = None,
    quiet: bool = True,
    profile: bool = False,
) -> dict:
    """Run one experiment module; returns its trajectory record.

    With ``profile=True`` a fresh :class:`repro.obs.PhaseProfiler` is
    installed for the experiment's duration and its per-phase cost vector
    lands in the record's ``"profile"`` section — the input
    ``compare.py --blame`` uses to name which phase a wall-time
    regression came from.
    """
    record: dict = {"file": f"{module_name}.py", "benches": {}, "ok": True}
    wall_start = time.perf_counter()
    try:
        module = importlib.import_module(module_name)
    except Exception:
        record["ok"] = False
        record["error"] = traceback.format_exc(limit=3)
        record["wall_seconds"] = time.perf_counter() - wall_start
        return record
    if obs.ENABLED:
        obs.reset()
    prev_profiler = None
    if profile and obs.ENABLED:
        prev_profiler = obs.set_profiler(obs.PhaseProfiler())
    try:
        for bench in bench_functions(module):
            stub = StubBenchmark(max_rounds=max_rounds)
            bench_record: dict = {"ok": True}
            try:
                run_bench(bench, stub)
            except Exception:
                bench_record["ok"] = False
                bench_record["error"] = traceback.format_exc(limit=3)
                record["ok"] = False
            bench_record["stats"] = stub.stats.as_dict()
            bench_record["extra_info"] = _jsonable(stub.extra_info)
            record["benches"][bench.__name__] = bench_record
        record["wall_seconds"] = time.perf_counter() - wall_start
        if obs.ENABLED:
            snap = obs.snapshot()
            record["obs"] = _obs_metrics(snap)
            if profile:
                record["profile"] = obs.PROFILER.snapshot()
            if not quiet:
                print(render_report(snap, title=module_name))
    finally:
        if profile and obs.ENABLED:
            obs.set_profiler(prev_profiler)
    return record


def _jsonable(value):
    """extra_info may hold bytes keys/values and tuples; normalize them."""
    if isinstance(value, dict):
        return {_jsonable_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _jsonable_key(key) -> str:
    if isinstance(key, bytes):
        return key.hex()
    return str(key)


def run_all(
    label: str,
    only: list[str] | None = None,
    max_rounds: int | None = None,
    use_obs: bool = True,
    out_path: str | None = None,
    profile: bool = True,
) -> tuple[dict, str]:
    """Run every experiment and write ``BENCH_<label>.json``.

    Returns (trajectory dict, output path).  Phase profiling is on by
    default when observability is (the deterministic profiler costs a
    few clock reads per span/hook, identical across the runs being
    compared); ``profile=False`` drops the per-phase vectors.
    """
    if use_obs:
        obs.enable()
    profile = profile and use_obs
    trajectory: dict = {
        "schema": BENCH_SCHEMA,
        "label": label,
        "created_unix": time.time(),
        "git_sha": git_sha(),
        "obs_enabled": use_obs,
        "profile_enabled": profile,
        "smoke": max_rounds is not None,
        "python": sys.version.split()[0],
        "experiments": {},
    }
    names = discover_experiments(only)
    for index, module_name in enumerate(names, 1):
        key = experiment_key(module_name)
        print(f"[{index}/{len(names)}] {key} ...", flush=True)
        # Collect the previous experiment's garbage outside the timed
        # window, so a heap-heavy experiment (A3's 20-node swarm) cannot
        # tax its alphabetical successors with its collection pauses.
        gc.collect()
        started = time.perf_counter()
        record = run_experiment(
            module_name, max_rounds=max_rounds, profile=profile
        )
        status = "ok" if record["ok"] else "FAILED"
        print(f"    {status} in {time.perf_counter() - started:.1f}s", flush=True)
        trajectory["experiments"][key] = record
    out_path = out_path or os.path.join(REPO_ROOT, f"BENCH_{label}.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return trajectory, out_path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--label", required=True,
                        help="trajectory label; writes BENCH_<label>.json")
    parser.add_argument("--only", action="append", default=None,
                        help="substring filter on experiment names (repeatable)")
    parser.add_argument("--smoke", action="store_true",
                        help="clamp every benchmark to 1 round (CI smoke mode)")
    parser.add_argument("--no-obs", dest="use_obs", action="store_false",
                        help="run without the observability snapshot")
    parser.add_argument("--no-profile", dest="profile", action="store_false",
                        help="skip the per-phase cost vectors")
    parser.add_argument("--out", default=None,
                        help="output path (default: <repo>/BENCH_<label>.json)")
    args = parser.parse_args(argv)

    trajectory, out_path = run_all(
        args.label,
        only=args.only,
        max_rounds=1 if args.smoke else None,
        use_obs=args.use_obs,
        out_path=args.out,
        profile=args.profile,
    )
    failed = [
        key for key, record in trajectory["experiments"].items()
        if not record["ok"]
    ]
    total = sum(
        record["wall_seconds"] for record in trajectory["experiments"].values()
    )
    print(f"\nwrote {out_path}: {len(trajectory['experiments'])} experiments,"
          f" {total:.1f}s total")
    if failed:
        print(f"FAILED experiments: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
