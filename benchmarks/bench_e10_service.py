"""E10 — verification-service latency: memoization and chaos overhead.

The §3 protocol re-verifies the whole upstream set on every claim (E6
pins that curve).  The service memoizes per-transaction verdicts by
txid, so a warm claim costs only the non-memoizable tail (chain
presence, carrier correspondence, claimed-prop equality, spentness).
This bench measures the cold→warm collapse per depth, warm throughput,
and proves the fault-tolerance machinery answers correctly — zero wrong
verdicts — under the inferno chaos profile without collapsing
throughput.
"""

import time

from repro.bitcoin.faults import SERVICE_PROFILES, _service_world, run_service_chaos
from repro.service import ServiceClient, VerificationService

DEPTHS = (2, 4, 8)
WARM_REQUESTS = 20


def bench_e10_service(benchmark):
    worlds = {depth: _service_world(depth) for depth in DEPTHS}

    def measure():
        out = {}
        for depth, (net, valid, _invalid) in worlds.items():
            service = VerificationService(net.chain)
            client = ServiceClient(service, sleep=lambda _d: None)
            start = time.perf_counter()
            verdict = client.verify(valid)
            cold = time.perf_counter() - start
            assert verdict.status == "ok", verdict
            start = time.perf_counter()
            for _ in range(WARM_REQUESTS):
                assert client.verify(valid).status == "ok"
            warm_total = time.perf_counter() - start
            service.close()
            out[depth] = {
                "cold_s": cold,
                "warm_s": warm_total / WARM_REQUESTS,
                "warm_rps": WARM_REQUESTS / warm_total,
            }
        return out

    timings = benchmark.pedantic(measure, rounds=3, iterations=1)

    # The inferno profile: kills, stragglers, poisoning, overload — the
    # service must keep answering and never answer wrongly.
    start = time.perf_counter()
    chaos = run_service_chaos(SERVICE_PROFILES["service-inferno"], seed=0)
    chaos_seconds = time.perf_counter() - start
    assert chaos.ok, chaos
    assert chaos.wrong_verdicts == 0

    print("\nE10: service verify latency vs upstream depth")
    print(f"{'depth':>6} {'cold':>10} {'warm':>10} {'warm rps':>10}")
    for depth, t in timings.items():
        print(
            f"{depth:>6} {t['cold_s'] * 1000:>8.1f}ms"
            f" {t['warm_s'] * 1000:>8.1f}ms {t['warm_rps']:>10.0f}"
        )
    print(
        f"inferno chaos: {chaos.answered} answered, 0 wrong,"
        f" {chaos.respawns} respawns, {chaos.shed} shed,"
        f" {chaos_seconds:.2f}s"
    )

    # Shape 1: warm requests skip the proof/LF re-checks — the memoized
    # path must beat cold clearly at the shallowest chain, where the
    # one-off cold cost dominates.  (Warm cost still grows with depth:
    # chain presence, carrier correspondence, and the digest re-hash are
    # per-upstream-tx and deliberately never memoized, so the deep-chain
    # ratio converges to a constant rather than diverging — the memo's
    # win is the large constant, not the asymptote.)
    assert timings[2]["warm_s"] < timings[2]["cold_s"] / 2
    # Shape 2: the memo never *loses* — warm beats cold at every depth,
    # with slack for single-round timing noise on millisecond samples.
    for depth in DEPTHS:
        assert timings[depth]["warm_s"] < timings[depth]["cold_s"] * 0.8
    # Shape 3: chaos answered every non-shed request with a real verdict.
    assert chaos.answered > 0

    benchmark.extra_info["per_depth"] = {
        depth: {k: v for k, v in t.items()} for depth, t in timings.items()
    }
    benchmark.extra_info["chaos"] = {
        "profile": "service-inferno",
        "answered": chaos.answered,
        "wrong_verdicts": chaos.wrong_verdicts,
        "statuses": dict(chaos.statuses),
        "respawns": chaos.respawns,
        "poison_rejected": chaos.poison_rejected,
        "shed": chaos.shed,
        "retries": chaos.retries,
        "seconds": chaos_seconds,
    }


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_e10_service)
