"""A1 (ablation) — fork rate vs propagation latency.

Paper §1, item 4: fast propagation relative to the block interval is what
makes the blockchain a *list* rather than a tree — "the time to create a
block [is] much greater than the time needed to disseminate a block."
This ablation turns that knob: with one-hop latency at 0.3 %, 3 % and 30 %
of the block interval, how much mining work lands on orphaned branches?
If latency approached the interval, Typecoin's commitment guarantee (and
Bitcoin's) would erode — stale blocks mean cheap reorgs.
"""

from repro.bitcoin.chain import ChainParams
from repro.bitcoin.network import PoissonMiner, Simulation, build_network
from repro.bitcoin.pow import block_work, target_to_bits

INTERVAL = 600.0
LATENCIES = (2.0, 20.0, 180.0)  # seconds per hop


def run_with_latency(latency, seed=17, hours=60):
    sim = Simulation(seed=seed)
    params = ChainParams(
        max_target=2**252, retarget_window=2**31, require_pow=False
    )
    nodes = build_network(sim, 6, params=params, latency=latency)
    rate = block_work(target_to_bits(2**252)) / INTERVAL
    miners = [
        PoissonMiner(nodes[i], rate / 6, miner_id=i) for i in range(6)
    ]
    for miner in miners:
        miner.start()
    sim.run_until(hours * 3600)
    found = sum(miner.blocks_found for miner in miners)
    height = max(node.chain.height for node in nodes)
    orphaned = found - height
    return {
        "latency": latency,
        "found": found,
        "height": height,
        "orphan_rate": orphaned / found if found else 0.0,
    }


def bench_a1_fork_rate_vs_latency(benchmark):
    def run_all():
        return [run_with_latency(latency) for latency in LATENCIES]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nA1: orphaned-block rate vs one-hop propagation latency"
          " (600 s blocks, 6 miners)")
    print(f"{'latency':>9} {'blocks found':>13} {'chain height':>13}"
          f" {'orphan rate':>12}")
    for row in rows:
        print(f"{row['latency']:>8.0f}s {row['found']:>13} {row['height']:>13}"
              f" {row['orphan_rate']:>11.1%}")

    # Shape: orphan rate grows with latency, staying negligible at
    # realistic (seconds) propagation and becoming material at 30 %.
    assert rows[0]["orphan_rate"] <= rows[2]["orphan_rate"]
    assert rows[0]["orphan_rate"] < 0.05
    assert rows[2]["orphan_rate"] > 0.05
    benchmark.extra_info["rows"] = rows


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_a1_fork_rate_vs_latency)
