"""E6 — verifier cost scales with the upstream set (paper §3).

"he provides the Typecoin transaction T_I ..., as well as 𝔗, the set of
all Typecoin transactions upstream of T_I.  The type-checker then checks
... for each T ∈ 𝔗."  Verification is linear in the depth of the
transaction's history; this bench measures that curve.
"""

import time

from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.transaction import OutPoint
from repro.core.builder import simple_transfer
from repro.core.transaction import TypecoinOutput
from repro.core.validate import Ledger
from repro.core.verifier import verify_claim
from repro.core.wallet import TypecoinClient
from repro.logic.propositions import One

DEPTHS = (1, 2, 4, 8, 16, 32)


def build_chain(depth):
    """A transfer chain of the given depth; returns (chain, client, tip)."""
    net = RegtestNetwork()
    client = TypecoinClient(net, b"e6-prover", Ledger())
    net.fund_wallet(client.wallet, blocks=2)

    txn = simple_transfer([], [TypecoinOutput(One(), 600, client.pubkey)])
    carrier = client.submit(txn)
    net.confirm(1)
    client.sync()
    outpoint = OutPoint(carrier.txid, 0)
    for _ in range(depth - 1):
        txn = simple_transfer(
            [client.input_for(outpoint)],
            [TypecoinOutput(One(), 600, client.pubkey)],
        )
        carrier = client.submit(txn)
        net.confirm(1)
        client.sync()
        outpoint = OutPoint(carrier.txid, 0)
    return net, client, outpoint


def bench_e6_verifier_scaling(benchmark):
    scenarios = {depth: build_chain(depth) for depth in DEPTHS}

    def verify_all():
        timings = {}
        for depth, (net, client, outpoint) in scenarios.items():
            bundle = client.claim_bundle(outpoint, One())
            start = time.perf_counter()
            verify_claim(net.chain, bundle)
            timings[depth] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(verify_all, rounds=3, iterations=1)

    print("\nE6: §3 claim-verification cost vs upstream depth")
    print(f"{'depth':>6} {'bundle size':>12} {'verify time':>12}")
    for depth, (net, client, outpoint) in scenarios.items():
        bundle = client.claim_bundle(outpoint, One())
        print(f"{depth:>6} {len(bundle.transactions):>12}"
              f" {timings[depth] * 1000:>10.1f}ms")

    # Shape 1: the bundle really contains the whole upstream set.
    for depth, (net, client, outpoint) in scenarios.items():
        assert len(client.claim_bundle(outpoint, One()).transactions) == depth
    # Shape 2: cost grows roughly linearly — 32 deep costs much more than
    # 1 deep, but not quadratically more.
    ratio = timings[32] / timings[1]
    assert 8 < ratio < 150
    benchmark.extra_info["timings_ms"] = {
        depth: timings[depth] * 1000 for depth in DEPTHS
    }


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_e6_verifier_scaling)
