"""F1 — Figure 1 syntax coverage through the surface language.

Every syntactic class of Figure 1 (kinds, type families, index terms,
propositions, conditions) is constructed, pretty-printed, re-parsed, and
compared up to α-equivalence — the executable counterpart of the figure.
The benchmark measures parse+print round-trip throughput on the corpus.
"""

from repro.lf.basis import NAT_T
from repro.lf.normalize import families_equal, terms_equal
from repro.lf.syntax import ConstRef, THIS, alpha_equal
from repro.logic.conditions import conditions_equal
from repro.logic.propositions import props_equal
from repro.surface.parser import (
    Resolver,
    parse_cond,
    parse_family,
    parse_kind,
    parse_prop,
    parse_term,
)
from repro.surface.pretty import (
    pretty_cond,
    pretty_family,
    pretty_kind,
    pretty_prop,
    pretty_term,
)

ALICE = "#" + "aa" * 20
TXID = "0x" + "11" * 32

KINDS = ["type", "prop", "pi n:nat. prop", "pi k:principal. pi t:nat. prop"]
FAMILIES = ["nat", "principal", "nat -> nat", "plus 1 2 3", "pi n:nat. plus n n 4"]
TERMS = ["42", ALICE, "\\x:nat. add x 1", "add (add 1 2) 3"]
CONDS = [
    "true",
    "before(99)",
    f"spent({TXID}.0)",
    f"~spent({TXID}.1)",
    "before(1) /\\ before(2) /\\ ~true",
]
PROPS = [
    # One sample per Figure 1 proposition form.
    "coin 5",                                   # atomic c m…
    "coin 1 -o coin 2",                         # A ⊸ A
    "coin 1 & coin 2",                          # A & A
    "coin 1 * coin 2",                          # A ⊗ A
    "coin 1 + coin 2",                          # A ⊕ A
    "0",                                        # 0
    "1",                                        # 1
    "!coin 1",                                  # !A
    "forall u:nat. coin u",                     # ∀u:τ.A
    "exists u:nat. coin u",                     # ∃u:τ.A
    f"[{ALICE}] coin 1",                        # ⟨m⟩A
    f"receipt(coin 1/600 ->> {ALICE})",         # receipt(A/n ↠ m)
    "if(before(9), coin 1)",                    # if(φ, A)  (Figure 2)
    # The paper's flagship composite forms:
    "forall N:nat. forall M:nat. forall P:nat."
    " (exists x:plus N M P. 1) -o coin N * coin M -o coin P",
    f"!([{ALICE}] (coin 1 -o forall K:principal. coin 2))",
    f"receipt(1/50000 ->> {ALICE}) -o if(~spent({TXID}.0), coin 25)",
]


def resolver():
    return Resolver(families={"coin": ConstRef(THIS, "coin")})


def roundtrip_corpus():
    res = resolver()
    count = 0
    for text in KINDS:
        kind = parse_kind(text, res)
        assert alpha_equal(parse_kind(pretty_kind(kind), res), kind)
        count += 1
    for text in FAMILIES:
        family = parse_family(text, res)
        assert families_equal(parse_family(pretty_family(family), res), family)
        count += 1
    for text in TERMS:
        term = parse_term(text, res)
        assert terms_equal(parse_term(pretty_term(term), res), term)
        count += 1
    for text in CONDS:
        cond = parse_cond(text, res)
        assert conditions_equal(parse_cond(pretty_cond(cond), res), cond)
        count += 1
    for text in PROPS:
        prop = parse_prop(text, res)
        assert props_equal(parse_prop(pretty_prop(prop), res), prop)
        count += 1
    return count


def bench_f1_figure1_roundtrip(benchmark):
    count = benchmark(roundtrip_corpus)
    per_second = count / benchmark.stats["mean"]
    print(f"\nF1: {count} Figure 1 syntax samples round-trip"
          f" (~{per_second:,.0f} parse+print+compare per second)")
    assert count == len(KINDS) + len(FAMILIES) + len(TERMS) + len(CONDS) + len(PROPS)


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_f1_figure1_roundtrip)
