"""A3 (ablation) — block propagation latency vs swarm size.

Paper §1, item 4: confirmations are only as strong as how quickly a
freshly-mined block reaches every honest node — a slow gossip layer
widens the window an attacker's private chain can exploit.  A1 measured
the *consequence* (fork rate vs latency); this ablation measures the
propagation itself, reconstructed purely from the ``relay.hop`` causal
trace events the swarm telemetry emits: for growing node counts, the
p50/p95/p99 first-seen latency of a mined block across the network.

Everything is derived from the event log alone — no simulator state is
consulted — which doubles as an end-to-end check that the propagation
tree really is reconstructable from telemetry (the property the swarm
observability layer exists to provide).
"""

from repro import obs
from repro.bitcoin.network import PoissonMiner, Simulation, build_network
from repro.bitcoin.pow import block_work, target_to_bits

SEED = 11
NODE_COUNTS = (8, 16, 32)
BLOCK_INTERVAL = 600.0
DURATION = 24 * 3600.0  # simulated seconds (~140 blocks at 600 s)
EVENT_CAPACITY = 500_000  # hold every relay.hop of the largest run


def _quantile(ordered, q):
    """Nearest-rank quantile of an already-sorted list."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def first_seen_latencies(events):
    """Per-(block, node) first-seen latency from relay.hop events alone.

    The origin of each trace is its hop-0 event (miner submission, where
    ``from == to``); every other node's first arrival of that trace
    contributes ``sim_time - origin_time``.
    """
    origin_time: dict[str, float] = {}
    first_seen: dict[tuple[str, str], float] = {}
    for event in events:
        if event["kind"] != "relay.hop":
            continue
        data = event["data"]
        trace = data["trace"]
        if not trace.startswith("blk"):
            continue
        if data["hop"] == 0:
            origin_time.setdefault(trace, data["sim_time"])
            continue
        key = (trace, data["to"])
        if key not in first_seen:
            first_seen[key] = data["sim_time"]
    return [
        arrival - origin_time[trace]
        for (trace, _node), arrival in first_seen.items()
        if trace in origin_time
    ]


def run_swarm(node_count, seed=SEED):
    """One seeded swarm run; latency quantiles from the event log."""
    # The default ring is too small for ~100 blocks × N nodes of hops;
    # give this run its own roomy event log, restored afterwards.
    previous_log = obs.set_event_log(
        obs.EventLog(capacity=EVENT_CAPACITY, clock=obs.clock)
    )
    try:
        sim = Simulation(seed=seed)
        nodes = build_network(sim, node_count)
        total_rate = block_work(target_to_bits(2**252)) / BLOCK_INTERVAL
        miner_count = min(4, node_count)
        miners = [
            PoissonMiner(nodes[i], total_rate / miner_count, miner_id=i)
            for i in range(miner_count)
        ]
        for miner in miners:
            miner.start()
        sim.run_until(DURATION)
        latencies = sorted(first_seen_latencies(obs.events().snapshot()))
    finally:
        obs.set_event_log(previous_log)
    return {
        "nodes": node_count,
        "seed": seed,
        "blocks_found": sum(m.blocks_found for m in miners),
        "arrivals": len(latencies),
        "p50_seconds": _quantile(latencies, 0.50),
        "p95_seconds": _quantile(latencies, 0.95),
        "p99_seconds": _quantile(latencies, 0.99),
    }


def bench_a3_propagation(benchmark):
    if not obs.ENABLED:
        # The measurement *is* the telemetry; without it there is no data.
        print("A3: skipped (observability disabled; run with REPRO_OBS=1)")
        benchmark.extra_info["rows"] = []
        return

    def run_all():
        return [run_swarm(count) for count in NODE_COUNTS]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print(f"\nA3: block first-seen latency vs node count"
          f" (seed {SEED}, 600 s blocks, 2 s mean hop)")
    print(f"{'nodes':>6} {'blocks':>7} {'arrivals':>9}"
          f" {'p50':>8} {'p95':>8} {'p99':>8}")
    for row in rows:
        print(f"{row['nodes']:>6} {row['blocks_found']:>7}"
              f" {row['arrivals']:>9} {row['p50_seconds']:>7.1f}s"
              f" {row['p95_seconds']:>7.1f}s {row['p99_seconds']:>7.1f}s")

    for row in rows:
        assert row["blocks_found"] > 0
        # Every reachable node eventually hears of (nearly) every block.
        assert row["arrivals"] > 0
        assert (
            row["p50_seconds"]
            <= row["p95_seconds"]
            <= row["p99_seconds"]
        )
        # The ring-plus-chords diameter grows ~linearly in node count,
        # at 2 s mean per hop; even p99 should stay far below a block
        # interval (otherwise fork rates would explode).
        assert row["p99_seconds"] < BLOCK_INTERVAL
    benchmark.extra_info["rows"] = rows


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_a3_propagation)
