"""B2 (systems) — startup recovery time from the durable block store.

Paper §3.3: a node "maintain[s] a table of all unspent txouts" — and a
*restarting* node must rebuild that table from its own disk, not by
re-trusting peers.  This benchmark measures what that costs: recover a
chain of N committed blocks from the append-only log, with and without a
UTXO snapshot to bound the replay suffix.  The interesting shape is that
full-replay cost grows with chain length while snapshot recovery stays
bounded by the post-snapshot tail — the property that makes long-running
nodes restartable at all.
"""

import shutil
import tempfile
import time

from repro.bitcoin.chain import Blockchain, ChainParams
from repro.bitcoin.miner import Miner
from repro.bitcoin.wallet import Wallet
from repro.store import BlockStore, recover_chain

MINER_KEY = Wallet.from_seed(b"bench-recovery").key_hash
CHAIN_LENGTHS = (64, 256)
SNAPSHOT_INTERVAL = 64  # blocks between UTXO snapshots in the "snap" rows


def build_store(root, blocks, snapshot_interval):
    """Mine ``blocks`` regtest blocks mirrored into a store at ``root``."""
    chain = Blockchain(ChainParams.regtest())
    store = BlockStore(root, snapshot_interval=snapshot_interval).open()
    chain.attach_store(store)
    miner = Miner(chain, MINER_KEY)
    for i in range(blocks):
        # add_block writes the log record and, when the interval is due,
        # the UTXO snapshot — same path a live node takes.
        miner.mine_block(extra_nonce=i)
    tip = chain.tip.block.hash
    size = chain.utxos.serialized_size()
    store.close()
    return tip, size


def run_recovery(blocks, snapshot_interval):
    root = tempfile.mkdtemp(prefix="bench-recovery-")
    try:
        tip, utxo_size = build_store(root, blocks, snapshot_interval)
        store = BlockStore(root, snapshot_interval=snapshot_interval).open()
        start = time.perf_counter()
        chain = recover_chain(store, ChainParams.regtest())
        elapsed = time.perf_counter() - start
        assert chain.tip.block.hash == tip, "recovered to the wrong tip"
        assert chain.utxos.serialized_size() == utxo_size
        store.close()
        return {
            "blocks": blocks,
            "snapshot": snapshot_interval > 0,
            "recover_seconds": elapsed,
            "blocks_per_second": blocks / elapsed if elapsed else float("inf"),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_b2_recovery(benchmark):
    def run_all():
        rows = []
        for blocks in CHAIN_LENGTHS:
            rows.append(run_recovery(blocks, snapshot_interval=0))
            rows.append(run_recovery(blocks, SNAPSHOT_INTERVAL))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nB2: startup recovery from the durable block store")
    print(f"{'blocks':>7} {'snapshot':>9} {'recovery':>10} {'blocks/s':>10}")
    for row in rows:
        print(f"{row['blocks']:>7} {str(row['snapshot']):>9}"
              f" {row['recover_seconds']:>9.3f}s"
              f" {row['blocks_per_second']:>10.0f}")

    # Every variant must land on the committed tip (asserted inside), and
    # snapshot recovery must not be slower than full replay at the longest
    # chain by more than noise allows — it replays a bounded suffix.
    longest = [r for r in rows if r["blocks"] == max(CHAIN_LENGTHS)]
    full = next(r for r in longest if not r["snapshot"])
    snap = next(r for r in longest if r["snapshot"])
    assert snap["recover_seconds"] <= full["recover_seconds"] * 1.5
    benchmark.extra_info["rows"] = rows


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(bench_b2_recovery)
