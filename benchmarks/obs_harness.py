"""Standalone runner so ``python benchmarks/bench_*.py`` works directly.

The benchmarks are written against the pytest-benchmark fixture API.  This
module provides a minimal stand-in (``pedantic``, call syntax,
``extra_info``) and a driver that honours ``REPRO_OBS=1``: with
observability on, each benchmark prints the :mod:`repro.obs.report`
per-stage breakdown next to its headline output::

    PYTHONPATH=src REPRO_OBS=1 python benchmarks/bench_e6_verifier_scaling.py
"""

from __future__ import annotations

import os
import time

from repro import obs
from repro.obs.report import render_report


class StubBenchmark:
    """Just enough of pytest-benchmark's fixture for standalone runs."""

    def __init__(self) -> None:
        self.extra_info: dict = {}
        self.stats: list[float] = []

    def __call__(self, fn, *args, **kwargs):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        self.stats.append(time.perf_counter() - start)
        return result

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1,
                 warmup_rounds=0, setup=None):
        kwargs = kwargs or {}
        result = None
        for _ in range(max(1, rounds)):
            call_args = args
            if setup is not None:
                prepared = setup()
                if prepared is not None:
                    call_args, kwargs = prepared
            for _ in range(max(1, iterations)):
                start = time.perf_counter()
                result = fn(*call_args, **kwargs)
                self.stats.append(time.perf_counter() - start)
        return result


def run_standalone(*benches) -> None:
    """Run benchmark functions outside pytest, with optional observability."""
    if os.environ.get("REPRO_OBS", "") not in ("", "0"):
        obs.enable()
    for bench in benches:
        if obs.ENABLED:
            obs.reset()
        stub = StubBenchmark()
        print(f"== {bench.__name__} ==")
        bench(stub)
        if obs.ENABLED:
            print()
            print(render_report(obs.snapshot(), title=bench.__name__))
        print()
