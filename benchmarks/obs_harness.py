"""Standalone runner so ``python benchmarks/bench_*.py`` works directly.

The benchmarks are written against the pytest-benchmark fixture API.  This
module provides a minimal stand-in (``pedantic``, call syntax,
``extra_info``, pytest-benchmark-shaped ``stats``) plus the conftest
fixtures a few benchmarks take (``net``/``ledger``/``bank``/``alice``),
and a driver that honours ``REPRO_OBS=1``: with observability on, each
benchmark prints the :mod:`repro.obs.report` per-stage breakdown next to
its headline output::

    PYTHONPATH=src REPRO_OBS=1 python benchmarks/bench_e6_verifier_scaling.py

Set ``REPRO_OBS_TRACE=<path>`` / ``REPRO_OBS_EVENTS=<path>`` to also dump
a Perfetto-loadable Chrome trace and a JSONL event log of the last
benchmark run.  ``REPRO_OBS_PROFILE=1`` adds the per-phase self-time
table (``repro.obs.profile``), and ``REPRO_OBS_FOLDED=<path>`` runs the
call-stack sampler and writes speedscope-loadable collapsed stacks.
``benchmarks/runner.py`` drives the same machinery to record whole
trajectories.
"""

from __future__ import annotations

import inspect
import math
import os
import time

from repro import obs
from repro.obs.export import write_chrome_trace, write_folded
from repro.obs.report import render_phases, render_report


class StubStats:
    """Timing stats in the shape pytest-benchmark reports.

    pytest-benchmark's ``benchmark.stats`` supports both attribute and
    item access (``stats.mean`` / ``stats["mean"]``); this mirrors the
    fields the benchmarks and the telemetry runner consume, computed from
    the raw per-round timings.
    """

    FIELDS = ("min", "max", "mean", "median", "stddev", "rounds", "total", "ops")

    def __init__(self, timings: list[float]):
        self._timings = timings

    # list-compatibility: older call sites appended to ``benchmark.stats``.
    def append(self, value: float) -> None:
        self._timings.append(value)

    @property
    def rounds(self) -> int:
        return len(self._timings)

    @property
    def total(self) -> float:
        return sum(self._timings)

    @property
    def min(self) -> float:
        return min(self._timings) if self._timings else 0.0

    @property
    def max(self) -> float:
        return max(self._timings) if self._timings else 0.0

    @property
    def mean(self) -> float:
        return self.total / len(self._timings) if self._timings else 0.0

    @property
    def median(self) -> float:
        if not self._timings:
            return 0.0
        ordered = sorted(self._timings)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    @property
    def stddev(self) -> float:
        if len(self._timings) < 2:
            return 0.0
        mean = self.mean
        var = sum((t - mean) ** 2 for t in self._timings) / (len(self._timings) - 1)
        return math.sqrt(var)

    @property
    def ops(self) -> float:
        mean = self.mean
        return 1.0 / mean if mean else 0.0

    def __getitem__(self, key: str):
        if key not in self.FIELDS:
            raise KeyError(key)
        return getattr(self, key)

    def as_dict(self) -> dict:
        return {field: getattr(self, field) for field in self.FIELDS}


class StubBenchmark:
    """Just enough of pytest-benchmark's fixture for standalone runs.

    ``max_rounds`` clamps every ``pedantic(rounds=...)`` request — the
    telemetry runner's smoke mode sets it to 1 so a full trajectory stays
    cheap enough for CI.
    """

    def __init__(self, max_rounds: int | None = None) -> None:
        self.extra_info: dict = {}
        self.max_rounds = max_rounds
        self._timings: list[float] = []
        self.stats = StubStats(self._timings)

    def __call__(self, fn, *args, **kwargs):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        self._timings.append(time.perf_counter() - start)
        return result

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1,
                 warmup_rounds=0, setup=None):
        kwargs = kwargs or {}
        rounds = max(1, rounds)
        if self.max_rounds is not None:
            rounds = min(rounds, self.max_rounds)
        result = None
        for _ in range(rounds):
            call_args = args
            if setup is not None:
                prepared = setup()
                if prepared is not None:
                    call_args, kwargs = prepared
            for _ in range(max(1, iterations)):
                start = time.perf_counter()
                result = fn(*call_args, **kwargs)
                self._timings.append(time.perf_counter() - start)
        return result


def build_fixtures(names) -> dict:
    """Construct the conftest fixtures a benchmark's signature asks for.

    Mirrors ``benchmarks/conftest.py``: ``net`` and ``ledger`` are shared
    instances, ``bank``/``alice`` are funded Typecoin clients on them.
    """
    from repro.bitcoin.regtest import RegtestNetwork
    from repro.core.validate import Ledger
    from repro.core.wallet import TypecoinClient

    cache: dict = {}

    def get(name: str):
        if name in cache:
            return cache[name]
        if name == "net":
            value = RegtestNetwork()
        elif name == "ledger":
            value = Ledger()
        elif name in ("bank", "alice"):
            client = TypecoinClient(
                get("net"), b"bench-" + name.encode(), get("ledger")
            )
            get("net").fund_wallet(client.wallet, blocks=4)
            value = client
        else:
            raise ValueError(f"no standalone fixture named {name!r}")
        cache[name] = value
        return value

    return {name: get(name) for name in names}


def run_bench(bench, benchmark: StubBenchmark) -> object:
    """Call one bench function, injecting any conftest fixtures it takes."""
    params = list(inspect.signature(bench).parameters)
    fixtures = build_fixtures(name for name in params if name != "benchmark")
    fixtures["benchmark"] = benchmark
    return bench(**{name: fixtures[name] for name in params})


def run_standalone(*benches) -> None:
    """Run benchmark functions outside pytest, with optional observability."""
    if os.environ.get("REPRO_OBS", "") not in ("", "0"):
        obs.enable()
    trace_path = os.environ.get("REPRO_OBS_TRACE")
    events_path = os.environ.get("REPRO_OBS_EVENTS")
    profile = os.environ.get("REPRO_OBS_PROFILE", "") not in ("", "0")
    folded_path = os.environ.get("REPRO_OBS_FOLDED")
    for bench in benches:
        if obs.ENABLED:
            obs.reset()
        prev_profiler = None
        if profile and obs.ENABLED:
            prev_profiler = obs.set_profiler(obs.PhaseProfiler())
        sampler = obs.StackSampler() if folded_path else None
        stub = StubBenchmark()
        print(f"== {bench.__name__} ==")
        try:
            if sampler is not None:
                with sampler:
                    run_bench(bench, stub)
            else:
                run_bench(bench, stub)
        finally:
            if profile and obs.ENABLED:
                profiled = obs.set_profiler(prev_profiler)
        if obs.ENABLED:
            print()
            print(render_report(obs.snapshot(), title=bench.__name__))
            if profile:
                print(render_phases(profiled.snapshot(), title=bench.__name__))
            if trace_path:
                count = write_chrome_trace(trace_path)
                print(f"chrome trace ({count} events) -> {trace_path}")
            if events_path:
                count = obs.events().write_jsonl(events_path)
                print(f"event log ({count} events) -> {events_path}")
        if sampler is not None:
            count = write_folded(folded_path, sampler.folded())
            print(f"folded stacks ({count} stacks) -> {folded_path}")
        print()
