"""E1 — confirmation security (paper §1, items 5–6).

"As new blocks follow a transaction's block, his likelihood of success
drops exponentially" and "once a transaction has several subsequent blocks
(usually taken as five), it may be considered irreversible."

Regenerates the reversal-probability table: attacker share q × burial depth
z, from three models (Nakamoto's analytic Poisson approximation, the exact
negative-binomial curve, and the Monte-Carlo race simulator), plus a
spot-check of the full consensus-machinery simulator.
"""

import random

from repro.bitcoin.network import (
    nakamoto_reversal_probability,
    reversal_probability_exact,
    simulate_race,
    simulate_race_full,
)

Q_VALUES = (0.10, 0.20, 0.30)
DEPTHS = tuple(range(0, 7))


def reversal_table(trials=1500, seed=7):
    rng = random.Random(seed)
    rows = []
    for q in Q_VALUES:
        for z in DEPTHS:
            rows.append({
                "q": q,
                "z": z,
                "nakamoto": nakamoto_reversal_probability(q, z),
                "exact": reversal_probability_exact(q, z),
                "monte_carlo": simulate_race(q, z, trials, rng),
            })
    return rows


def bench_e1_reversal_probability_models(benchmark):
    rows = benchmark.pedantic(reversal_table, rounds=1, iterations=1)

    print("\nE1: P(reversal) by attacker share q and confirmations z")
    print(f"{'q':>5} {'z':>3} {'nakamoto':>10} {'exact':>10} {'monte carlo':>12}")
    for row in rows:
        print(
            f"{row['q']:>5.2f} {row['z']:>3d} {row['nakamoto']:>10.5f}"
            f" {row['exact']:>10.5f} {row['monte_carlo']:>12.5f}"
        )

    by_key = {(round(r["q"], 2), r["z"]): r for r in rows}
    # Shape 1: z=0 is always reversible; probability decays with depth.
    for q in Q_VALUES:
        series = [by_key[(q, z)]["exact"] for z in DEPTHS]
        assert series[0] == 1.0
        assert all(a > b for a, b in zip(series, series[1:]))
    # Shape 2: the paper's operating point — a minority attacker against
    # ~6 confirmations is negligible.
    assert by_key[(0.10, 6)]["exact"] < 0.005
    # Shape 3: Monte Carlo tracks the exact curve.
    for row in rows:
        assert abs(row["monte_carlo"] - row["exact"]) < 0.05
    # Shape 4: stronger attackers do strictly better at every depth.
    for z in DEPTHS[1:]:
        assert by_key[(0.30, z)]["exact"] > by_key[(0.10, z)]["exact"]

    benchmark.extra_info["table"] = rows


def bench_e1_full_consensus_spot_check(benchmark):
    """A handful of races on real Blockchain objects (reorgs included)."""

    def run():
        outcomes = [
            simulate_race_full(0.30, 2, sim_seed=seed, horizon_blocks=120)
            for seed in range(12)
        ]
        return sum(o.attacker_won for o in outcomes) / len(outcomes)

    win_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = reversal_probability_exact(0.30, 2)
    print(f"\nE1 spot check: full-simulator win rate {win_rate:.2f} vs exact"
          f" {exact:.2f} (q=0.30, z=2)")
    # Wide tolerance: 12 trials of a ~0.43 Bernoulli.
    assert abs(win_rate - exact) < 0.35


if __name__ == "__main__":
    from obs_harness import run_standalone

    run_standalone(
        bench_e1_reversal_probability_models,
        bench_e1_full_consensus_spot_check,
    )
