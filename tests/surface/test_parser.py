"""Tests for the surface parser and pretty-printer round trip."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lf.basis import NAT, NAT_T, PLUS, PRINCIPAL
from repro.lf.normalize import families_equal, terms_equal
from repro.lf.syntax import (
    ConstRef,
    KIND_PROP,
    KPi,
    Lam,
    NatLit,
    PrincipalLit,
    TApp,
    TConst,
    THIS,
    TPi,
    Var,
    alpha_equal,
)
from repro.logic.conditions import (
    Before,
    CAnd,
    CNot,
    CTrue,
    Spent,
    conditions_equal,
)
from repro.logic.propositions import (
    Atom,
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Plus,
    Receipt,
    Says,
    Tensor,
    With,
    Zero,
    props_equal,
)
from repro.surface.parser import (
    ParseError,
    Resolver,
    parse_basis_text,
    parse_cond,
    parse_family,
    parse_kind,
    parse_prop,
    parse_term,
)
from repro.surface.pretty import (
    pretty_cond,
    pretty_family,
    pretty_kind,
    pretty_prop,
    pretty_term,
)

COIN = ConstRef(THIS, "coin")


@pytest.fixture
def resolver():
    return Resolver(families={"coin": COIN})


def coin(n):
    return Atom(TApp(TConst(COIN), NatLit(n) if isinstance(n, int) else n))


class TestTermParsing:
    def test_literals(self, resolver):
        assert parse_term("42") == NatLit(42)
        lit = parse_term("#" + "ab" * 20)
        assert isinstance(lit, PrincipalLit)

    def test_lambda(self, resolver):
        term = parse_term("\\x:nat. x", resolver)
        assert isinstance(term, Lam)
        assert term.body == Var("x")

    def test_application_left_assoc(self, resolver):
        term = parse_term("add 1 2", resolver)
        assert terms_equal(term, NatLit(3))

    def test_unknown_identifier(self, resolver):
        with pytest.raises(ParseError, match="unknown term"):
            parse_term("mystery", resolver)

    def test_qualified_this(self, resolver):
        resolver.terms["x"] = ConstRef(THIS, "x")
        assert parse_term("this.x", resolver) == parse_term("x", resolver)

    def test_qualified_txid(self, resolver):
        term = parse_term("0x" + "11" * 32 + ".mint", resolver)
        from repro.lf.syntax import Const

        assert term == Const(ConstRef(b"\x11" * 32, "mint"))

    def test_bad_txid_length(self, resolver):
        with pytest.raises(ParseError, match="32 bytes"):
            parse_term("0x1122.mint", resolver)


class TestFamilyParsing:
    def test_builtins(self):
        assert parse_family("nat") == NAT_T
        assert parse_family("time") == NAT_T  # alias, fn. 10
        assert parse_family("principal") == TConst(PRINCIPAL)

    def test_arrow_right_assoc(self):
        family = parse_family("nat -> nat -> nat")
        assert isinstance(family, TPi)
        assert isinstance(family.body, TPi)

    def test_pi(self):
        family = parse_family("pi n:nat. plus n n 4")
        assert isinstance(family, TPi)
        assert "n" in str(family.body)

    def test_application(self):
        family = parse_family("plus 1 2 3")
        assert isinstance(family, TApp)


class TestKindParsing:
    def test_base_kinds(self):
        assert parse_kind("type").sort.value == "type"
        assert parse_kind("prop").sort.value == "prop"

    def test_pi_kind(self):
        kind = parse_kind("pi n:nat. prop")
        assert kind == KPi("n", NAT_T, KIND_PROP)


class TestCondParsing:
    def test_atoms(self):
        assert parse_cond("true") == CTrue()
        assert parse_cond("before(99)") == Before(NatLit(99))
        spent = parse_cond("spent(0x" + "22" * 32 + ".3)")
        assert spent == Spent(b"\x22" * 32, 3)

    def test_negation_and_conjunction(self):
        cond = parse_cond("~spent(0x" + "22" * 32 + ".0) /\\ before(10)")
        assert isinstance(cond, CAnd)
        assert isinstance(cond.left, CNot)

    def test_parens(self):
        cond = parse_cond("~(true /\\ true)")
        assert isinstance(cond, CNot)
        assert isinstance(cond.body, CAnd)


class TestPropParsing:
    def test_units(self, resolver):
        assert parse_prop("1", resolver) == One()
        assert parse_prop("0", resolver) == Zero()

    def test_other_numbers_rejected(self, resolver):
        with pytest.raises(ParseError, match="only 0 and 1"):
            parse_prop("2", resolver)

    def test_precedence_lolli_loosest(self, resolver):
        prop = parse_prop("coin 1 * coin 2 -o coin 3", resolver)
        assert isinstance(prop, Lolli)
        assert isinstance(prop.antecedent, Tensor)

    def test_lolli_right_assoc(self, resolver):
        prop = parse_prop("coin 1 -o coin 2 -o coin 3", resolver)
        assert isinstance(prop, Lolli)
        assert isinstance(prop.consequent, Lolli)

    def test_tensor_binds_tighter_than_with(self, resolver):
        prop = parse_prop("coin 1 & coin 2 * coin 3", resolver)
        assert isinstance(prop, With)
        assert isinstance(prop.right, Tensor)

    def test_with_binds_tighter_than_plus(self, resolver):
        prop = parse_prop("coin 1 + coin 2 & coin 3", resolver)
        assert isinstance(prop, Plus)
        assert isinstance(prop.right, With)

    def test_bang(self, resolver):
        prop = parse_prop("!coin 1", resolver)
        assert prop == Bang(coin(1))

    def test_affirmation(self, resolver):
        alice = "#" + "aa" * 20
        prop = parse_prop(f"[{alice}] coin 1", resolver)
        assert isinstance(prop, Says)
        assert isinstance(prop.principal, PrincipalLit)

    def test_quantifier_extends_right(self, resolver):
        prop = parse_prop("forall n:nat. coin n -o coin n", resolver)
        assert isinstance(prop, Forall)
        assert isinstance(prop.body, Lolli)

    def test_exists(self, resolver):
        prop = parse_prop("exists x:plus 1 1 2. 1", resolver)
        assert isinstance(prop, Exists)

    def test_if_prop(self, resolver):
        prop = parse_prop("if(before(5), coin 1)", resolver)
        assert prop == IfProp(Before(NatLit(5)), coin(1))

    def test_receipt_forms(self, resolver):
        alice = "#" + "aa" * 20
        full = parse_prop(f"receipt(coin 1/600 ->> {alice})", resolver)
        assert isinstance(full, Receipt)
        assert full.amount == 600
        money = parse_prop(f"receipt(450 ->> {alice})", resolver)
        assert money.prop == One()
        assert money.amount == 450
        pure = parse_prop(f"receipt(coin 1 ->> {alice})", resolver)
        assert pure.amount == 0

    def test_receipt_zero_prop_round_trips(self, resolver):
        # receipt(0 ->> K) re-parses as amount 0 over One(); the printer
        # must write 0/0 so Receipt(Zero(), 0, K) survives a round trip.
        alice = "#" + "aa" * 20
        original = Receipt(Zero(), 0, PrincipalLit(b"\xaa" * 20))
        printed = pretty_prop(original)
        assert printed == f"receipt(0/0 ->> {alice})"
        assert parse_prop(printed, resolver) == original

    def test_unknown_family(self, resolver):
        with pytest.raises(ParseError, match="unknown proposition"):
            parse_prop("wealth 5", resolver)


class TestBasisText:
    def test_newcoin_basis_parses(self):
        source = """
        family coin : pi n:nat. prop
        rule merge : forall N:nat. forall M:nat. forall P:nat.
                     (exists x:plus N M P. 1) -o coin N * coin M -o coin P
        rule split : forall N:nat. forall M:nat. forall P:nat.
                     (exists x:plus N M P. 1) -o coin P -o coin N * coin M
        """
        basis, resolver = parse_basis_text(source)
        assert len(basis) == 3
        assert resolver.family("coin") == ConstRef(THIS, "coin")
        assert "merge" in resolver.props

    def test_forward_reference_rejected(self):
        with pytest.raises(ParseError, match="unknown"):
            parse_basis_text("rule r : later 1\nfamily later : pi n:nat. prop")

    def test_term_declarations(self):
        basis, resolver = parse_basis_text("term lucky : nat")
        assert "lucky" in resolver.terms

    def test_bad_keyword(self):
        with pytest.raises(ParseError, match="family"):
            parse_basis_text("axiom x : nat")


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------

principals = st.builds(PrincipalLit, st.binary(min_size=20, max_size=20))
nat_lits = st.builds(NatLit, st.integers(min_value=0, max_value=1000))

atoms = st.one_of(
    st.builds(One),
    st.builds(Zero),
    st.builds(lambda n: coin(n.value), nat_lits),
)

conds = st.recursive(
    st.one_of(
        st.builds(CTrue),
        st.builds(Before, nat_lits),
        st.builds(Spent, st.just(b"\x33" * 32), st.integers(0, 5)),
    ),
    lambda sub: st.one_of(st.builds(CAnd, sub, sub), st.builds(CNot, sub)),
    max_leaves=4,
)

props = st.recursive(
    atoms,
    lambda sub: st.one_of(
        st.builds(Lolli, sub, sub),
        st.builds(Tensor, sub, sub),
        st.builds(With, sub, sub),
        st.builds(Plus, sub, sub),
        st.builds(Bang, sub),
        st.builds(Says, principals, sub),
        st.builds(IfProp, conds, sub),
        st.builds(
            Receipt, sub, st.integers(min_value=0, max_value=10_000), principals
        ),
        st.builds(lambda body: Forall("q", NAT_T, body), sub),
        st.builds(lambda body: Exists("q", NAT_T, body), sub),
    ),
    max_leaves=8,
)


class TestRoundTrip:
    @given(props)
    @settings(max_examples=200, deadline=None)
    def test_prop_roundtrip(self, prop):
        resolver = Resolver(families={"coin": COIN})
        reparsed = parse_prop(pretty_prop(prop), resolver)
        assert props_equal(prop, reparsed)

    @given(conds)
    @settings(max_examples=100, deadline=None)
    def test_cond_roundtrip(self, cond):
        reparsed = parse_cond(pretty_cond(cond))
        assert conditions_equal(cond, reparsed)

    def test_kind_roundtrip(self):
        for text in ("type", "prop", "pi n:nat. pi m:nat. prop"):
            kind = parse_kind(text)
            assert alpha_equal(parse_kind(pretty_kind(kind)), kind)

    def test_family_roundtrip(self):
        for text in ("nat", "nat -> nat", "pi n:nat. plus n n 2", "plus 1 2 3"):
            family = parse_family(text)
            reparsed = parse_family(pretty_family(family))
            assert families_equal(family, reparsed)

    def test_term_roundtrip(self):
        resolver = Resolver()
        for text in ("42", "\\x:nat. add x 1", "add (add 1 2) 3"):
            term = parse_term(text, resolver)
            reparsed = parse_term(pretty_term(term), resolver)
            assert terms_equal(term, reparsed)

    def test_figure_1_syntax_coverage(self):
        """Every Figure 1 syntactic form is expressible and round-trips."""
        resolver = Resolver(families={"coin": COIN})
        alice = "#" + "aa" * 20
        samples = [
            "coin 5",
            "coin 1 -o coin 2",
            "coin 1 & coin 2",
            "coin 1 * coin 2",
            "coin 1 + coin 2",
            "0",
            "1",
            "!coin 1",
            "forall u:nat. coin u",
            "exists u:nat. coin u",
            f"[{alice}] coin 1",
            f"receipt(coin 1/5 ->> {alice})",
            "if(true, coin 1)",
            "if(before(9) /\\ ~spent(0x" + "44" * 32 + ".0), coin 1)",
        ]
        for text in samples:
            prop = parse_prop(text, resolver)
            assert props_equal(prop, parse_prop(pretty_prop(prop), resolver))
