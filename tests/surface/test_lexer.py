"""Tests for the surface lexer."""

import pytest

from repro.surface.lexer import LexError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def test_empty_source():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_identifiers_and_numbers():
    assert kinds("coin 42") == [TokenKind.IDENT, TokenKind.NUMBER]


def test_operators():
    assert kinds("-o -> ->> * & + ! ~ /\\ /") == [
        TokenKind.LOLLI,
        TokenKind.ARROW,
        TokenKind.SENDS,
        TokenKind.STAR,
        TokenKind.AMP,
        TokenKind.PLUS,
        TokenKind.BANG,
        TokenKind.TILDE,
        TokenKind.WEDGE,
        TokenKind.SLASH,
    ]


def test_maximal_munch_arrow_family():
    # "->>" must lex as SENDS, not ARROW then '>'.
    assert kinds("->>") == [TokenKind.SENDS]


def test_principal_literal():
    text = "#" + "ab" * 20
    [token] = tokenize(text)[:-1]
    assert token.kind is TokenKind.PRINCIPAL
    assert token.text == "ab" * 20


def test_short_hash_is_comment():
    # Fewer than 40 hex digits after '#': it's a comment.
    assert kinds("coin #deadbeef\n42") == [TokenKind.IDENT, TokenKind.NUMBER]


def test_comment_to_end_of_line():
    assert kinds("# a comment with -o and * inside\ncoin") == [TokenKind.IDENT]


def test_hexblob():
    [token] = tokenize("0x11aaBB")[:-1]
    assert token.kind is TokenKind.HEXBLOB
    assert token.text == "11aabb"


def test_empty_hexblob_rejected():
    with pytest.raises(LexError, match="hex"):
        tokenize("0x")


def test_unexpected_character():
    with pytest.raises(LexError, match="unexpected"):
        tokenize("coin @ 5")


def test_positions_tracked():
    tokens = tokenize("a\n  b")
    assert tokens[0].line == 1 and tokens[0].column == 1
    assert tokens[1].line == 2 and tokens[1].column == 3


def test_keywords_flagged():
    [token] = tokenize("forall")[:-1]
    assert token.is_keyword
    [token] = tokenize("forallx")[:-1]
    assert not token.is_keyword


def test_primes_in_identifiers():
    [token] = tokenize("x'")[:-1]
    assert token.text == "x'"
