"""Tests for the proof-term surface syntax."""

import pytest

from repro.crypto.keys import PrivateKey
from repro.lf.basis import KindDecl, NAT_T, PropDecl, builtin_basis
from repro.lf.syntax import ConstRef, KIND_PROP, KPi, NatLit, PrincipalLit, TApp, TConst, THIS, Var
from repro.logic import proofterms as pt
from repro.logic.checker import CheckerContext, check_proof, persistent_assert_payload
from repro.logic.conditions import Before, CAnd, CNot, CTrue, Spent
from repro.logic.encoding import encode_proof
from repro.logic.propositions import (
    Atom,
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Plus,
    Says,
    Tensor,
    With,
    Zero,
    props_equal,
)
from repro.surface.parser import ParseError, Resolver
from repro.surface.proofs import parse_proof, pretty_proof

COIN = ConstRef(THIS, "coin")
RULE = ConstRef(THIS, "step")


@pytest.fixture
def resolver():
    return Resolver(families={"coin": COIN}, props={"step": RULE})


@pytest.fixture
def basis():
    b = builtin_basis()
    b.declare(COIN, KindDecl(KPi("n", NAT_T, KIND_PROP)))
    b.declare(RULE, PropDecl(Lolli(coin(1), coin(2))))
    return b


def coin(n):
    return Atom(TApp(TConst(COIN), NatLit(n) if isinstance(n, int) else n))


def roundtrip(proof, resolver):
    text = pretty_proof(proof)
    reparsed = parse_proof(text, resolver)
    assert encode_proof(reparsed) == encode_proof(proof), text
    return text


class TestParsing:
    def test_identity(self, resolver, basis):
        proof = parse_proof("fn x : coin 1. x", resolver)
        assert props_equal(
            check_proof(CheckerContext(basis=basis), proof),
            Lolli(coin(1), coin(1)),
        )

    def test_unit_and_bang(self, resolver):
        assert parse_proof("<>", resolver) == pt.OneIntro()
        assert parse_proof("!<>", resolver) == pt.BangIntro(pt.OneIntro())

    def test_tensor_let(self, resolver, basis):
        proof = parse_proof(
            "fn p : coin 1 * coin 2. let a * b = p in b * a", resolver
        )
        proved = check_proof(CheckerContext(basis=basis), proof)
        assert props_equal(
            proved, Lolli(Tensor(coin(1), coin(2)), Tensor(coin(2), coin(1)))
        )

    def test_with_intro_and_projections(self, resolver, basis):
        proof = parse_proof("fn x : coin 1. fst (x, x)", resolver)
        proved = check_proof(CheckerContext(basis=basis), proof)
        assert props_equal(proved, Lolli(coin(1), coin(1)))

    def test_case(self, resolver, basis):
        proof = parse_proof(
            "fn s : coin 1 + coin 1. case s of inl l => l | inr r => r",
            resolver,
        )
        proved = check_proof(CheckerContext(basis=basis), proof)
        assert props_equal(proved, Lolli(Plus(coin(1), coin(1)), coin(1)))

    def test_injections(self, resolver, basis):
        proof = parse_proof("inl[coin 2] <>", resolver)
        proved = check_proof(CheckerContext(basis=basis), proof)
        assert props_equal(proved, Plus(One(), coin(2)))

    def test_abort(self, resolver, basis):
        proof = parse_proof("fn z : 0. abort[coin 7] z", resolver)
        proved = check_proof(CheckerContext(basis=basis), proof)
        assert props_equal(proved, Lolli(Zero(), coin(7)))

    def test_type_abstraction_and_application(self, resolver, basis):
        proof = parse_proof("tfn n : nat. fn x : coin n. x", resolver)
        proved = check_proof(CheckerContext(basis=basis), proof)
        assert isinstance(proved, Forall)
        applied = parse_proof("(tfn n : nat. fn x : coin n. x) [5]", resolver)
        proved = check_proof(CheckerContext(basis=basis), applied)
        assert props_equal(proved, Lolli(coin(5), coin(5)))

    def test_pack_unpack(self, resolver, basis):
        proof = parse_proof("pack[exists n:nat. 1](3, <>)", resolver)
        proved = check_proof(CheckerContext(basis=basis), proof)
        assert props_equal(proved, Exists("n", NAT_T, One()))
        consume = parse_proof(
            "fn e : exists n:nat. coin n. let (n, c) = unpack e in <>",
            resolver,
        )
        proved = check_proof(CheckerContext(basis=basis), consume)
        assert props_equal(proved, Lolli(Exists("n", NAT_T, coin(Var("n"))), One()))

    def test_say_monad(self, resolver, basis):
        alice = "#" + "aa" * 20
        proof = parse_proof(
            f"fn s : [{alice}] coin 1."
            f" saybind x <- s in sayreturn[{alice}](x)",
            resolver,
        )
        proved = check_proof(CheckerContext(basis=basis), proof)
        assert isinstance(proved, Lolli)
        assert isinstance(proved.consequent, Says)

    def test_if_monad(self, resolver, basis):
        proof = parse_proof(
            "fn i : if(before(100), coin 1)."
            " ifbind x <- i in ifreturn[before(100)](x * <>)",
            resolver,
        )
        proved = check_proof(CheckerContext(basis=basis), proof)
        assert isinstance(proved.consequent, IfProp)

    def test_ifweaken_and_ifsay(self, resolver, basis):
        alice = "#" + "aa" * 20
        txid = "0x" + "22" * 32
        proof = parse_proof(
            f"ifweaken[before(50) /\\ ~spent({txid}.0)]"
            "(ifreturn[before(100)](<>))",
            resolver,
        )
        check_proof(CheckerContext(basis=basis), proof)
        proof = parse_proof(
            f"ifsay(sayreturn[{alice}](ifreturn[true](<>)))", resolver
        )
        check_proof(CheckerContext(basis=basis), proof)

    def test_assert_persistent(self, resolver, basis):
        key = PrivateKey.from_seed(b"surface-assert")
        principal = PrincipalLit(key.public.key_hash)
        prop = coin(1)
        sig = key.sign(persistent_assert_payload(prop))
        text = (
            f"assertp[#{principal.key_hash.hex()}]"
            f"(coin 1; 0x{key.public.encoded.hex()}; 0x{sig.encode().hex()})"
        )
        proof = parse_proof(text, resolver)
        proved = check_proof(CheckerContext(basis=basis), proof)
        assert props_equal(proved, Says(principal, coin(1)))

    def test_proof_constants(self, resolver, basis):
        proof = parse_proof("fn x : coin 1. step x", resolver)
        proved = check_proof(CheckerContext(basis=basis), proof)
        assert props_equal(proved, Lolli(coin(1), coin(2)))

    def test_unknown_identifier(self, resolver):
        with pytest.raises(ParseError, match="unknown proof identifier"):
            parse_proof("mystery", resolver)

    def test_figure3_shape_parses(self, resolver, basis):
        """A Figure 3-shaped nesting parses (checkability needs the full
        newcoin scenario; this is a syntax test)."""
        alice = "#" + "aa" * 20
        txid = "0x" + "33" * 32
        text = (
            f"fn p : [{alice}] if(~spent({txid}.0), coin 25)."
            f" fn b : coin 9."
            f" ifbind z <- ifweaken[~spent({txid}.0) /\\ before(2000000000)]"
            f"(ifsay(p)) in"
            f" ifreturn[~spent({txid}.0) /\\ before(2000000000)](z * b)"
        )
        proof = parse_proof(text, resolver)
        check_proof(CheckerContext(basis=basis), proof)


class TestRoundTrip:
    def test_structural_corpus(self, resolver):
        alice = PrincipalLit(b"\xaa" * 20)
        samples = [
            pt.OneIntro(),
            pt.LolliIntro("x", coin(1), pt.PVar("x")),
            pt.LolliIntro(
                "p", Tensor(coin(1), coin(2)),
                pt.TensorElim(
                    "a", "b", pt.PVar("p"),
                    pt.TensorIntro(pt.PVar("b"), pt.PVar("a")),
                ),
            ),
            pt.LolliIntro("x", coin(1), pt.WithIntro(pt.PVar("x"), pt.PVar("x"))),
            pt.WithFst(pt.WithIntro(pt.OneIntro(), pt.OneIntro())),
            pt.PlusInl(coin(2), pt.OneIntro()),
            pt.LolliIntro(
                "s", Plus(coin(1), coin(1)),
                pt.PlusCase(pt.PVar("s"), "l", pt.PVar("l"), "r", pt.PVar("r")),
            ),
            pt.LolliIntro("z", Zero(), pt.ZeroElim(pt.PVar("z"), coin(3))),
            pt.BangIntro(pt.OneIntro()),
            pt.LolliIntro(
                "b", Bang(coin(1)),
                pt.BangElim("x", pt.PVar("b"),
                            pt.TensorIntro(pt.PVar("x"), pt.PVar("x"))),
            ),
            pt.ForallIntro("n", NAT_T, pt.LolliIntro("x", coin(Var("n")), pt.PVar("x"))),
            pt.ExistsIntro(Exists("n", NAT_T, One()), NatLit(3), pt.OneIntro()),
            pt.LolliIntro(
                "e", Exists("n", NAT_T, coin(Var("n"))),
                pt.ExistsElim("n", "c", pt.PVar("e"), pt.OneIntro()),
            ),
            pt.SayReturn(alice, pt.OneIntro()),
            pt.LolliIntro(
                "s", Says(alice, coin(1)),
                pt.SayBind("x", pt.PVar("s"), pt.SayReturn(alice, pt.PVar("x"))),
            ),
            pt.IfReturn(Before(NatLit(5)), pt.OneIntro()),
            pt.IfWeaken(
                CAnd(Before(NatLit(3)), CNot(Spent(b"\x01" * 32, 0))),
                pt.IfReturn(Before(NatLit(5)), pt.OneIntro()),
            ),
            pt.IfSay(pt.SayReturn(alice, pt.IfReturn(CTrue(), pt.OneIntro()))),
            pt.PConst(RULE),
            pt.LolliElim(pt.PConst(RULE), pt.OneIntro()),
            pt.AssertPersistent(
                alice, coin(1), pt.Affirmation(b"\x02" * 33, b"\x03" * 64)
            ),
        ]
        for proof in samples:
            roundtrip(proof, resolver)

    def test_machine_generated_proofs_roundtrip(self, resolver):
        """Proofs built by obligation_lambda (fresh $-suffixed names)
        survive pretty → parse with the collision-avoiding renamer."""
        from repro.core.proofs import obligation_lambda, tensor_intro_all
        from repro.logic.propositions import Receipt

        proof = obligation_lambda(
            coin(9),
            [coin(1), coin(2)],
            [Receipt(coin(1), 5, PrincipalLit(b"\xaa" * 20))],
            lambda c, ins, rs: tensor_intro_all([c, *ins]),
        )
        roundtrip(proof, resolver)

    def test_renamer_avoids_collisions(self, resolver):
        # Two distinct binders that clean to the same base name.
        proof = pt.LolliIntro(
            "x$1", coin(1),
            pt.LolliIntro(
                "x$2", coin(2),
                pt.TensorIntro(pt.PVar("x$1"), pt.PVar("x$2")),
            ),
        )
        text = roundtrip(proof, resolver)
        assert "x" in text and "x_2" in text
