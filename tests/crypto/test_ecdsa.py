"""Tests for secp256k1 point arithmetic and ECDSA."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ecdsa import Signature, deterministic_nonce, sign, verify
from repro.crypto.keys import PrivateKey, PublicKey, new_private_key
from repro.crypto.secp256k1 import (
    CURVE_ORDER,
    GENERATOR,
    INFINITY,
    Point,
    point_add,
    scalar_mult,
)


def test_generator_on_curve():
    # Construction validates the curve equation.
    Point(GENERATOR.x, GENERATOR.y)


def test_known_multiples_of_g():
    # Standard vectors for 2G and 3G.
    p2 = scalar_mult(2)
    assert p2.x == 0xC6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5
    p3 = scalar_mult(3)
    assert p3.x == 0xF9308A019258C31049344F85F89D5229B531C845836F99B08601F113BCE036F9


def test_order_annihilates():
    assert scalar_mult(CURVE_ORDER).is_infinity


def test_point_add_identity():
    assert point_add(INFINITY, GENERATOR) == GENERATOR
    assert point_add(GENERATOR, INFINITY) == GENERATOR


def test_point_add_inverse():
    assert GENERATOR.y is not None
    from repro.crypto.secp256k1 import FIELD_PRIME

    neg = Point(GENERATOR.x, FIELD_PRIME - GENERATOR.y)
    assert point_add(GENERATOR, neg).is_infinity


@given(st.integers(min_value=1, max_value=2**64))
@settings(max_examples=20, deadline=None)
def test_scalar_mult_distributes(k):
    # (k+1)G == kG + G
    assert scalar_mult(k + 1) == point_add(scalar_mult(k), GENERATOR)


def test_off_curve_point_rejected():
    with pytest.raises(ValueError):
        Point(1, 1)


def test_sec1_roundtrip_compressed_and_uncompressed():
    p = scalar_mult(12345)
    assert Point.decode(p.encode(compressed=True)) == p
    assert Point.decode(p.encode(compressed=False)) == p


def test_decode_rejects_garbage():
    with pytest.raises(ValueError):
        Point.decode(b"\x05" + b"\x00" * 32)


def test_sign_verify_roundtrip():
    key = PrivateKey.from_seed(b"test")
    digest = b"\xab" * 32
    sig = sign(key.secret, digest)
    assert verify(key.public.point, digest, sig)


def test_verify_rejects_wrong_digest():
    key = PrivateKey.from_seed(b"test")
    sig = sign(key.secret, b"\xab" * 32)
    assert not verify(key.public.point, b"\xac" * 32, sig)


def test_verify_rejects_wrong_key():
    key = PrivateKey.from_seed(b"test")
    other = PrivateKey.from_seed(b"other")
    sig = sign(key.secret, b"\xab" * 32)
    assert not verify(other.public.point, b"\xab" * 32, sig)


def test_signatures_deterministic():
    key = PrivateKey.from_seed(b"det")
    assert sign(key.secret, b"\x01" * 32) == sign(key.secret, b"\x01" * 32)


def test_low_s_normalization():
    key = PrivateKey.from_seed(b"lows")
    for i in range(8):
        sig = sign(key.secret, bytes([i]) * 32)
        assert sig.s <= CURVE_ORDER // 2


def test_nonce_depends_on_message_and_key():
    k1 = deterministic_nonce(5, b"\x01" * 32)
    k2 = deterministic_nonce(5, b"\x02" * 32)
    k3 = deterministic_nonce(6, b"\x01" * 32)
    assert len({k1, k2, k3}) == 3


def test_signature_compact_roundtrip():
    sig = Signature(r=123456789, s=987654321)
    assert Signature.decode(sig.encode()) == sig


def test_signature_decode_length_check():
    with pytest.raises(ValueError):
        Signature.decode(b"\x00" * 63)


def test_reject_degenerate_signatures():
    key = PrivateKey.from_seed(b"degenerate")
    assert not verify(key.public.point, b"\x01" * 32, Signature(0, 1))
    assert not verify(key.public.point, b"\x01" * 32, Signature(1, 0))
    assert not verify(key.public.point, b"\x01" * 32, Signature(CURVE_ORDER, 1))


@given(st.binary(min_size=1, max_size=64))
@settings(max_examples=15, deadline=None)
def test_message_level_api(message):
    key = PrivateKey.from_seed(b"api")
    sig = key.sign(message)
    assert key.public.verify(message, sig)


def test_private_key_range_validation():
    with pytest.raises(ValueError):
        PrivateKey(0)
    with pytest.raises(ValueError):
        PrivateKey(CURVE_ORDER)


def test_new_private_key_unique():
    assert new_private_key().secret != new_private_key().secret


def test_principal_is_key_hash():
    key = PrivateKey.from_seed(b"principal")
    assert key.public.principal == key.public.key_hash
    assert len(key.public.principal) == 20


def test_address_roundtrip():
    key = PrivateKey.from_seed(b"addr")
    assert PublicKey.hash_from_address(key.public.address) == key.public.key_hash
