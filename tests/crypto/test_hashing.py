"""Tests for SHA-256d, RIPEMD-160, and HASH160."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import hash160, ripemd160, sha256, sha256d
from repro.crypto.ripemd160 import ripemd160_pure

# Official RIPEMD-160 test vectors from the Dobbertin/Bosselaers/Preneel spec.
RIPEMD_VECTORS = [
    (b"", "9c1185a5c5e9fc54612808977ee8f548b2258d31"),
    (b"a", "0bdc9d2d256b3ee9daae347be6f4dc835a467ffe"),
    (b"abc", "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc"),
    (b"message digest", "5d0689ef49d2fae572b881b123a85ffa21595f36"),
    (b"abcdefghijklmnopqrstuvwxyz", "f71c27109c692c1b56bbdceb5b9d2865b3708dbc"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "12a053384a9c0c88e405a06c27dcf49ada62eb2b",
    ),
    (
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
        "b0e20b6e3116640286ed3a87a5713079b21f5189",
    ),
    (b"1234567890" * 8, "9b752e45573d4b39f4dbd3323cab82bf63326bfb"),
]


@pytest.mark.parametrize("message,expected", RIPEMD_VECTORS)
def test_ripemd160_pure_vectors(message, expected):
    assert ripemd160_pure(message).hex() == expected


def test_ripemd160_million_a():
    assert ripemd160_pure(b"a" * 1_000_000).hex() == (
        "52783243c1697bdbe16d37f97f68f08325dc1528"
    )


@given(st.binary(max_size=300))
def test_ripemd160_matches_openssl_when_available(data):
    try:
        h = hashlib.new("ripemd160")
    except ValueError:
        pytest.skip("OpenSSL lacks ripemd160")
    h.update(data)
    assert ripemd160_pure(data) == h.digest()


def test_sha256_matches_hashlib():
    assert sha256(b"typecoin") == hashlib.sha256(b"typecoin").digest()


def test_sha256d_is_double_hash():
    assert sha256d(b"x") == hashlib.sha256(hashlib.sha256(b"x").digest()).digest()


def test_hash160_composition():
    data = b"\x02" + b"\x11" * 32
    assert hash160(data) == ripemd160(sha256(data))


def test_hash160_length():
    assert len(hash160(b"anything")) == 20


@given(st.binary(max_size=200), st.binary(max_size=200))
def test_sha256d_injective_in_practice(a, b):
    if a != b:
        assert sha256d(a) != sha256d(b)
