"""Batch ECDSA verification must be verdict-identical to serial.

The batch path (parity-hinted R reconstruction, random-coefficient
aggregation into one multi-scalar multiplication, bisection on failure)
is an accelerator only: every test here pins its verdicts against the
serial :func:`repro.crypto.ecdsa.verify` on the same triples — valid,
corrupted, structurally broken, hint-free, and adversarially mis-hinted.
"""

import random

import pytest

from repro.crypto import ecdsa
from repro.crypto.ecdsa import (
    Signature,
    batch_verify,
    clear_parity_hints,
    sign,
    verify,
)
from repro.crypto.secp256k1 import (
    CURVE_ORDER,
    GENERATOR,
    INFINITY,
    Point,
    lift_x,
    multi_scalar_mult,
    point_add,
    scalar_mult,
    scalar_mult_naive,
)


@pytest.fixture(autouse=True)
def _fresh_hints():
    """Each test controls its own parity-hint state."""
    clear_parity_hints()
    yield
    clear_parity_hints()


def _make_triples(seed: int, count: int):
    """``count`` seeded triples, roughly half corrupted in varied ways.

    Returns ``(triples, kinds)`` where kinds records how each was built —
    useful for failure messages only; the expected verdict always comes
    from serial ``verify``.
    """
    rng = random.Random(seed)
    triples = []
    kinds = []
    for i in range(count):
        secret = rng.randrange(1, CURVE_ORDER)
        public = scalar_mult(secret)
        digest = rng.randbytes(32)
        sig = sign(secret, digest)
        kind = rng.choice(
            ["valid", "valid", "valid", "bad_s", "bad_digest", "bad_pubkey",
             "range_r", "range_s", "infinity"]
        )
        if kind == "bad_s":
            sig = Signature(sig.r, (sig.s + 1) % CURVE_ORDER or 1)
        elif kind == "bad_digest":
            digest = rng.randbytes(32)
        elif kind == "bad_pubkey":
            public = scalar_mult(rng.randrange(1, CURVE_ORDER))
        elif kind == "range_r":
            sig = Signature(0, sig.s)
        elif kind == "range_s":
            sig = Signature(sig.r, CURVE_ORDER)
        elif kind == "infinity":
            public = INFINITY
        triples.append((public, digest, sig))
        kinds.append(kind)
    return triples, kinds


def test_seeded_verdicts_match_serial_warm_and_cold():
    # ~200 triples; signing warmed the hint table, so the warm run
    # aggregates the valid ones and bisects around the corrupted ones.
    triples, kinds = _make_triples(0xBA7C4, 200)
    expected = [verify(p, d, s) for p, d, s in triples]
    got_warm = batch_verify(triples)
    assert got_warm == expected, [
        (i, k) for i, (k, a, b) in enumerate(zip(kinds, expected, got_warm))
        if a != b
    ]
    # Cold (no hints): everything routes through the serial leaf inside
    # batch_verify — verdicts must still be identical.
    clear_parity_hints()
    got_cold = batch_verify(triples)
    assert got_cold == expected


def test_seed_changes_coefficients_not_verdicts():
    triples, _ = _make_triples(0x5EED, 40)
    expected = [verify(p, d, s) for p, d, s in triples]
    for seed in (0, 1, 2, 0xFFFF_FFFF):
        assert batch_verify(triples, seed=seed) == expected


def test_empty_and_single_item_batches():
    assert batch_verify([]) == []
    secret = 0xA11CE
    digest = b"\x42" * 32
    sig = sign(secret, digest)
    assert batch_verify([(scalar_mult(secret), digest, sig)]) == [True]
    bad = Signature(sig.r, (sig.s + 1) % CURVE_ORDER)
    assert batch_verify([(scalar_mult(secret), digest, bad)]) == [False]


def test_bisection_pinpoints_single_culprit():
    # 24 valid signatures, one corrupted — with a *planted* hint so the bad
    # triple aggregates instead of taking the serial path, forcing the
    # failure to surface in the aggregate and bisect down to the culprit.
    rng = random.Random(0xC0FFEE)
    triples = []
    for i in range(24):
        secret = rng.randrange(1, CURVE_ORDER)
        digest = rng.randbytes(32)
        sig = sign(secret, digest)
        triples.append((scalar_mult(secret), digest, sig))
    culprit = 13
    public, digest, sig = triples[culprit]
    bad = Signature(sig.r, (sig.s + 1) % CURVE_ORDER)
    ecdsa._PARITY_HINTS[(digest, bad.r, bad.s)] = True  # plausible-but-wrong
    triples[culprit] = (public, digest, bad)
    verdicts = batch_verify(triples)
    assert verdicts == [i != culprit for i in range(24)]


def test_wrong_hint_on_valid_signature_still_verifies():
    # A flipped parity hint makes the aggregate fail, but bisection ends
    # in serial leaves — the verdict must survive the bad hint.
    rng = random.Random(0xF11)
    triples = []
    for i in range(8):
        secret = rng.randrange(1, CURVE_ORDER)
        digest = rng.randbytes(32)
        sig = sign(secret, digest)
        key = (digest, sig.r, sig.s)
        if i == 3:
            ecdsa._PARITY_HINTS[key] = not ecdsa._PARITY_HINTS[key]
        triples.append((scalar_mult(secret), digest, sig))
    assert batch_verify(triples) == [True] * 8


def test_unhinted_triples_warm_the_table():
    secret = 0xB0B
    digest = b"\x17" * 32
    sig = sign(secret, digest)
    clear_parity_hints()
    assert batch_verify([(scalar_mult(secret), digest, sig)]) == [True]
    # The serial leaf recorded the parity it computed.
    assert (digest, sig.r, sig.s) in ecdsa._PARITY_HINTS


def test_hint_table_is_bounded(monkeypatch):
    monkeypatch.setattr(ecdsa, "_PARITY_HINTS_MAX", 4)
    clear_parity_hints()
    for i in range(10):
        ecdsa._remember_parity(bytes([i]) * 32, i + 1, i + 1, bool(i & 1))
    assert len(ecdsa._PARITY_HINTS) == 4


def test_sign_records_parity_consistent_with_verify():
    # The hint sign() stores must equal the parity of the point verify()
    # computes — including through the low-s negation.
    rng = random.Random(0xD1CE)
    for _ in range(25):
        secret = rng.randrange(1, CURVE_ORDER)
        digest = rng.randbytes(32)
        sig = sign(secret, digest)
        hint = ecdsa._PARITY_HINTS[(digest, sig.r, sig.s)]
        clear_parity_hints()
        assert verify(scalar_mult(secret), digest, sig)
        assert ecdsa._PARITY_HINTS[(digest, sig.r, sig.s)] == hint
        r_point = lift_x(sig.r, odd=hint)
        assert r_point is not None and r_point.x == sig.r


def test_lift_x_parity_and_non_residue():
    point = scalar_mult(7)
    even = lift_x(point.x, odd=False)
    odd = lift_x(point.x, odd=True)
    assert even is not None and odd is not None
    assert even.x == odd.x == point.x
    assert even.y % 2 == 0 and odd.y % 2 == 1
    assert point in (even, odd)
    # x = 5 has no curve point (5³+7 is a quadratic non-residue mod p).
    assert lift_x(5, odd=False) is None


def _naive_sum(terms):
    acc = INFINITY
    for k, point in terms:
        k %= CURVE_ORDER
        if k == 0 or point.is_infinity:
            continue
        part = scalar_mult_naive(k) if point == GENERATOR else None
        if part is None:
            # naive double-and-add on an arbitrary point
            part = INFINITY
            addend = point
            while k:
                if k & 1:
                    part = point_add(part, addend)
                addend = point_add(addend, addend)
                k >>= 1
        acc = point_add(acc, part)
    return acc


@pytest.mark.parametrize("seed,count", [(1, 0), (2, 1), (3, 2), (4, 5), (5, 9)])
def test_multi_scalar_mult_matches_naive(seed, count):
    rng = random.Random(seed)
    terms = []
    for _ in range(count):
        k = rng.getrandbits(rng.choice([1, 64, 128, 256]))
        base = rng.choice(
            [GENERATOR, scalar_mult_naive(rng.randrange(1, 1000))]
        )
        terms.append((k, base))
    assert multi_scalar_mult(terms) == _naive_sum(terms)


def test_multi_scalar_mult_folds_repeated_points():
    p = scalar_mult_naive(12345)
    k1, k2 = 2**130 + 7, 2**90 + 3
    assert multi_scalar_mult([(k1, p), (k2, p)]) == _naive_sum([(k1 + k2, p)])


def test_multi_scalar_mult_edge_scalars():
    p = scalar_mult_naive(99)
    assert multi_scalar_mult([]) .is_infinity
    assert multi_scalar_mult([(0, p), (CURVE_ORDER, GENERATOR)]).is_infinity
    assert multi_scalar_mult([(CURVE_ORDER + 1, p)]) == p
    assert multi_scalar_mult([(1, INFINITY), (3, GENERATOR)]) == scalar_mult_naive(3)


def test_multi_scalar_mult_cancellation_to_infinity():
    # c·P + (n−c)·P must hit the identity mid-ladder without blowing up.
    p = scalar_mult_naive(4242)
    c = 2**127 + 11
    assert multi_scalar_mult([(c, p), (CURVE_ORDER - c, p)]).is_infinity
    assert multi_scalar_mult(
        [(c, GENERATOR), (CURVE_ORDER - c, GENERATOR)]
    ).is_infinity


def test_batch_width_aggregate_congruence():
    # The exact shape _batch_check builds for a 16-signature batch:
    # 33 terms (2 per sig + folded generator), 128-bit coefficients, GLV
    # splitting every scalar.  The one-pass result must equal the naive
    # term-by-term sum.
    rng = random.Random(0x61F)
    terms = []
    for _ in range(16):
        q = scalar_mult_naive(rng.randrange(1, CURVE_ORDER))
        r_pt = scalar_mult_naive(rng.randrange(1, CURVE_ORDER))
        c = rng.getrandbits(128) | 1
        u2 = rng.randrange(1, CURVE_ORDER)
        terms.append((c * u2 % CURVE_ORDER, q))
        terms.append((CURVE_ORDER - c, r_pt))
    terms.append((rng.randrange(1, CURVE_ORDER), GENERATOR))
    assert multi_scalar_mult(terms) == _naive_sum(terms)
