"""Property tests for the fast EC multiplication paths.

The fast paths (fixed-window generator tables, per-point w-NAF, GLV split,
Strauss/Shamir dual multiplication) must agree with the naive
double-and-add ladder on every scalar, including the awkward ones: 0, 1,
n−1, and values at or beyond the curve order.
"""

import random

import pytest

from repro.crypto.secp256k1 import (
    CURVE_ORDER,
    GENERATOR,
    INFINITY,
    Point,
    _glv_split,
    _wnaf,
    dual_scalar_mult,
    point_add,
    scalar_mult,
    scalar_mult_naive,
)

_EDGE_SCALARS = [
    0,
    1,
    2,
    3,
    CURVE_ORDER - 1,
    CURVE_ORDER,
    CURVE_ORDER + 1,
    2 * CURVE_ORDER - 1,
    2**255,
    (1 << 256) - 1,
]


def _seeded_scalars(seed: int, count: int) -> list[int]:
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        bits = rng.choice([1, 8, 64, 128, 200, 255, 256])
        out.append(rng.getrandbits(bits))
    return out


SCALARS = _EDGE_SCALARS + _seeded_scalars(0xEC0FFEE, 200)

# A few fixed non-generator base points for the arbitrary-point path.
BASE_POINTS = [scalar_mult_naive(k) for k in (7, 0xDEADBEEF, CURVE_ORDER - 2)]


@pytest.mark.parametrize("k", SCALARS)
def test_generator_mult_matches_naive(k):
    assert scalar_mult(k) == scalar_mult_naive(k)


@pytest.mark.parametrize("k", SCALARS[:60])
@pytest.mark.parametrize("base", BASE_POINTS)
def test_arbitrary_point_mult_matches_naive(k, base):
    assert scalar_mult(k, base) == scalar_mult_naive(k, base)


@pytest.mark.parametrize("k", SCALARS)
def test_wnaf_recoding_reconstructs_scalar(k):
    for width in (4, 5, 8):
        digits = _wnaf(k, width)
        value = 0
        for i, d in enumerate(digits):
            assert d == 0 or (d % 2 == 1 and abs(d) < (1 << (width - 1)))
            value += d << i
        assert value == k
        # Non-adjacency: no two consecutive nonzero digits.
        for a, b in zip(digits, digits[1:]):
            assert a == 0 or b == 0


@pytest.mark.parametrize("k", [k % CURVE_ORDER for k in SCALARS])
def test_glv_split_congruence(k):
    lam = 0x5363AD4CC05C30E0A5261C028812645A122E22EA20816678DF02967C1B23BD72
    k1, k2 = _glv_split(k)
    assert (k1 + k2 * lam - k) % CURVE_ORDER == 0
    assert abs(k1) < 1 << 129
    assert abs(k2) < 1 << 129


def test_dual_scalar_mult_matches_naive_pairs():
    rng = random.Random(0x5A5A)
    q = scalar_mult_naive(rng.getrandbits(255) | 1)
    for _ in range(100):
        u1 = rng.getrandbits(rng.choice([1, 64, 255, 256]))
        u2 = rng.getrandbits(rng.choice([1, 64, 255, 256]))
        expected = point_add(scalar_mult_naive(u1), scalar_mult_naive(u2, q))
        assert dual_scalar_mult(u1, u2, q) == expected


@pytest.mark.parametrize(
    "u1,u2",
    [
        (0, 0),
        (0, 1),
        (1, 0),
        (CURVE_ORDER, CURVE_ORDER),
        (CURVE_ORDER - 1, CURVE_ORDER - 1),
        (CURVE_ORDER + 5, 3),
    ],
)
def test_dual_scalar_mult_edge_scalars(u1, u2):
    q = scalar_mult_naive(12345)
    expected = point_add(scalar_mult_naive(u1), scalar_mult_naive(u2, q))
    assert dual_scalar_mult(u1, u2, q) == expected


def test_dual_scalar_mult_infinity_q():
    assert dual_scalar_mult(5, 7, INFINITY) == scalar_mult_naive(5)
    assert dual_scalar_mult(0, 7, INFINITY) == INFINITY


def test_dual_scalar_mult_cancellation_to_infinity():
    # u1·G + u2·Q with Q = -G and u1 == u2 cancels to the identity.
    g = GENERATOR
    assert g.y is not None
    neg_g = Point(g.x, (-g.y) % (2**256 - 2**32 - 977))
    assert dual_scalar_mult(9, 9, neg_g).is_infinity


def test_point_table_cache_bounded():
    from repro.crypto import secp256k1 as ec

    ec._POINT_TABLE_CACHE.clear()
    rng = random.Random(77)
    points = [scalar_mult_naive(rng.getrandbits(200) | 1) for _ in range(12)]
    saved_max = ec._POINT_TABLE_CACHE_MAX
    ec._POINT_TABLE_CACHE_MAX = 8
    try:
        for p in points:
            assert scalar_mult(3, p) == scalar_mult_naive(3, p)
        assert len(ec._POINT_TABLE_CACHE) <= 8
        # Cached and uncached paths agree.
        for p in points:
            assert scalar_mult(99, p) == scalar_mult_naive(99, p)
    finally:
        ec._POINT_TABLE_CACHE_MAX = saved_max
        ec._POINT_TABLE_CACHE.clear()
