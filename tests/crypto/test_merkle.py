"""Tests for Bitcoin-style Merkle trees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import sha256d
from repro.crypto.merkle import merkle_branch, merkle_root, verify_branch

leaves_strategy = st.lists(
    st.binary(min_size=32, max_size=32), min_size=1, max_size=33
)


def test_single_leaf_is_root():
    leaf = sha256d(b"only")
    assert merkle_root([leaf]) == leaf


def test_empty_root_is_zero():
    assert merkle_root([]) == b"\x00" * 32


def test_two_leaves():
    a, b = sha256d(b"a"), sha256d(b"b")
    assert merkle_root([a, b]) == sha256d(a + b)


def test_odd_level_duplicates_last():
    a, b, c = (sha256d(x) for x in (b"a", b"b", b"c"))
    expected = sha256d(sha256d(a + b) + sha256d(c + c))
    assert merkle_root([a, b, c]) == expected


@given(leaves_strategy)
@settings(max_examples=30, deadline=None)
def test_every_branch_verifies(leaves):
    root = merkle_root(leaves)
    for i, leaf in enumerate(leaves):
        assert verify_branch(leaf, merkle_branch(leaves, i), i, root)


@given(leaves_strategy)
@settings(max_examples=30, deadline=None)
def test_wrong_leaf_fails(leaves):
    root = merkle_root(leaves)
    fake = sha256d(b"not a real leaf")
    for i in range(len(leaves)):
        if leaves[i] != fake:
            assert not verify_branch(fake, merkle_branch(leaves, i), i, root)


def test_branch_index_out_of_range():
    with pytest.raises(IndexError):
        merkle_branch([sha256d(b"a")], 1)


def test_root_depends_on_order():
    a, b = sha256d(b"a"), sha256d(b"b")
    assert merkle_root([a, b]) != merkle_root([b, a])
