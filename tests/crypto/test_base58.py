"""Tests for base58check encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.base58 import (
    Base58Error,
    b58check_decode,
    b58check_encode,
    b58decode,
    b58encode,
)


@given(st.binary(max_size=64))
def test_b58_roundtrip(data):
    assert b58decode(b58encode(data)) == data


@given(st.binary(min_size=1, max_size=40), st.integers(min_value=0, max_value=255))
def test_b58check_roundtrip(payload, version):
    version_out, payload_out = b58check_decode(b58check_encode(payload, version))
    assert version_out == version
    assert payload_out == payload


def test_leading_zeros_preserved():
    data = b"\x00\x00\x01\x02"
    assert b58decode(b58encode(data)) == data
    assert b58encode(data).startswith("11")


def test_invalid_character_rejected():
    with pytest.raises(Base58Error):
        b58decode("0OIl")


def test_checksum_failure_detected():
    encoded = b58check_encode(b"\x01" * 20, version=0x6F)
    # Corrupt one character (swap between two alphabet letters).
    corrupted = ("2" if encoded[-1] != "2" else "3") + encoded[1:]
    with pytest.raises(Base58Error):
        b58check_decode(corrupted)


def test_too_short_rejected():
    with pytest.raises(Base58Error):
        b58check_decode("11")


def test_known_vector():
    # 20 zero bytes with version 0 is the canonical "burn" address prefix.
    encoded = b58check_encode(b"\x00" * 20, version=0x00)
    assert encoded == "1111111111111111111114oLvT2"
