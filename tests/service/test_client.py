"""Client retry policy: what retries, how delays grow, how seeds differ."""

import pytest

from repro.service.client import RETRYABLE_STATUSES, ServiceClient
from repro.service.server import Verdict


class ScriptedService:
    """Returns a scripted sequence of statuses, then repeats the last."""

    def __init__(self, *statuses):
        self.statuses = list(statuses)
        self.calls = 0

    def verify(self, bundle, *, deadline=None):
        index = min(self.calls, len(self.statuses) - 1)
        self.calls += 1
        return Verdict(self.statuses[index])


def make_client(service, **kwargs):
    kwargs.setdefault("sleep", lambda _delay: None)
    return ServiceClient(service, **kwargs)


class TestPolicy:
    def test_ok_returns_immediately(self):
        service = ScriptedService("ok")
        client = make_client(service)
        assert client.verify(object()).status == "ok"
        assert service.calls == 1
        assert client.retries == 0

    def test_invalid_is_final_never_retried(self):
        service = ScriptedService("invalid", "ok")
        client = make_client(service)
        assert client.verify(object()).status == "invalid"
        assert service.calls == 1

    def test_draining_is_terminal(self):
        service = ScriptedService("draining", "ok")
        client = make_client(service)
        assert client.verify(object()).status == "draining"
        assert service.calls == 1

    @pytest.mark.parametrize("transient", sorted(RETRYABLE_STATUSES))
    def test_transient_statuses_retry_until_verdict(self, transient):
        service = ScriptedService(transient, transient, "ok")
        client = make_client(service)
        assert client.verify(object()).status == "ok"
        assert service.calls == 3
        assert client.retries == 2
        assert client.last_attempts == 3

    def test_exhausted_attempts_return_last_transient(self):
        service = ScriptedService("overloaded")
        client = make_client(service, max_attempts=3)
        assert client.verify(object()).status == "overloaded"
        assert service.calls == 3
        assert client.retries == 2

    def test_request_timeout_installs_a_deadline(self):
        seen = {}

        class DeadlineSpy:
            def verify(self, bundle, *, deadline=None):
                seen["deadline"] = deadline
                return Verdict("ok")

        client = make_client(DeadlineSpy(), request_timeout=0.5)
        client.verify(object())
        assert seen["deadline"] is not None
        assert 0 < seen["deadline"].remaining() <= 0.5

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            make_client(ScriptedService("ok"), max_attempts=0)


class TestBackoff:
    def recorded_delays(self, seed, attempts=5):
        delays = []
        service = ScriptedService("timeout")
        client = ServiceClient(
            service,
            max_attempts=attempts,
            seed=seed,
            sleep=delays.append,
        )
        client.verify(object())
        return delays

    def test_delays_grow_and_cap(self):
        service = ScriptedService("timeout")
        delays = []
        client = ServiceClient(
            service,
            max_attempts=10,
            base_delay=0.05,
            max_delay=0.4,
            jitter=0.0,
            sleep=delays.append,
        )
        client.verify(object())
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.4, 0.4, 0.4, 0.4, 0.4]

    def test_distinct_seeds_give_divergent_jitter(self):
        a = self.recorded_delays(seed=0)
        b = self.recorded_delays(seed=1)
        assert len(a) == len(b) == 4
        assert a != b

    def test_same_seed_reproduces_exactly(self):
        assert self.recorded_delays(seed=7) == self.recorded_delays(seed=7)

    def test_jitter_stays_within_band(self):
        for delay, nominal in zip(
            self.recorded_delays(seed=3), [0.05, 0.1, 0.2, 0.4]
        ):
            assert nominal * 0.8 <= delay <= nominal * 1.2
