"""Seeded service-chaos scenarios: the no-wrong-verdict invariant."""

from repro.bitcoin.faults import (
    SERVICE_PROFILES,
    ServiceChaosProfile,
    run_service_chaos,
)


class TestCalmProfile:
    def test_every_request_answered_correctly(self):
        result = run_service_chaos(SERVICE_PROFILES["service-calm"], seed=0)
        assert result.ok
        assert result.wrong_verdicts == 0
        # No faults configured: every request resolves to a verdict.
        assert result.statuses == {"ok": 9, "invalid": 3}
        assert result.respawns == 0
        assert result.shed == 0

    def test_deterministic_per_seed(self):
        first = run_service_chaos(SERVICE_PROFILES["service-calm"], seed=5)
        second = run_service_chaos(SERVICE_PROFILES["service-calm"], seed=5)
        assert first.statuses == second.statuses
        assert first.wrong_verdicts == second.wrong_verdicts == 0


class TestFaultPaths:
    def test_poisoning_is_rejected_not_believed(self):
        profile = ServiceChaosProfile(
            name="poison-only",
            depth=4,
            requests=8,
            workers=0,  # in-process: isolates the memo from pool effects
            poison_every=2,
            invalid_every=3,
        )
        result = run_service_chaos(profile, seed=0)
        assert result.ok
        assert result.wrong_verdicts == 0
        assert result.poison_rejected > 0

    def test_worker_kills_recovered_without_wrong_verdicts(self):
        # Poison each round too: without it the memo warms after the
        # first request and the killed pool would never be exercised.
        profile = ServiceChaosProfile(
            name="kill-only",
            depth=3,
            requests=3,
            workers=1,
            kill_every=1,
            poison_every=1,
        )
        result = run_service_chaos(profile, seed=0)
        assert result.ok
        assert result.wrong_verdicts == 0
        assert result.respawns >= 1
        # Every request still got a real verdict: the respawn path
        # answers, it does not shed.
        assert result.answered == profile.requests
