"""The memo and affirmation caches: LRU mechanics and poison rejection."""

import pytest

from repro.logic import checker as _checker
from repro.service.cache import (
    LRU,
    AffirmationCache,
    TxMemoTable,
    install_affirmation_cache,
    tx_digest,
)


class TestLRU:
    def test_get_put_roundtrip(self):
        lru = LRU(4)
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.get("missing") is None
        assert lru.hits == 1
        assert lru.misses == 1

    def test_capacity_evicts_least_recent(self):
        lru = LRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # refresh "a": "b" is now least recent
        lru.put("c", 3)
        assert lru.get("b") is None
        assert lru.get("a") == 1
        assert lru.get("c") == 3
        assert lru.evictions == 1

    def test_put_existing_key_updates_without_evicting(self):
        lru = LRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)
        assert len(lru) == 2
        assert lru.get("a") == 10
        assert lru.evictions == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRU(0)


class TestTxMemoTable:
    TXID = b"\x11" * 32

    def test_miss_then_hit(self):
        memo = TxMemoTable()
        digest = tx_digest(b"payload")
        assert not memo.lookup(self.TXID, digest)
        memo.record(self.TXID, digest)
        assert memo.lookup(self.TXID, digest)
        assert memo.hits == 1
        assert memo.misses == 1

    def test_poisoned_entry_rejected_and_evicted(self):
        memo = TxMemoTable()
        digest = tx_digest(b"payload")
        memo.record(self.TXID, digest)
        memo.poison(self.TXID, b"\x00" * 32)
        # The digest check catches the corruption: no hit, entry gone.
        assert not memo.lookup(self.TXID, digest)
        assert memo.poison_rejected == 1
        # The table is empty again, so an honest re-record works.
        memo.record(self.TXID, digest)
        assert memo.lookup(self.TXID, digest)

    def test_capacity_bounds_entries(self):
        memo = TxMemoTable(capacity=2)
        for i in range(5):
            memo.record(bytes([i]) * 32, tx_digest(bytes([i])))
        assert len(memo) == 2


class TestAffirmationCacheInstall:
    def test_install_returns_previous_and_restores(self):
        original = _checker.AFFIRMATION_CACHE
        first = AffirmationCache()
        second = AffirmationCache()
        try:
            assert install_affirmation_cache(first) is original
            assert install_affirmation_cache(second) is first
            assert install_affirmation_cache(None) is second
            assert _checker.AFFIRMATION_CACHE is None
        finally:
            install_affirmation_cache(original)
        assert _checker.AFFIRMATION_CACHE is original
