"""The verification service: verdicts, caches, degradation, lifecycle."""

import threading

import pytest

from repro import cancel
from repro.service import (
    PoolBroken,
    VerificationService,
    WorkerPool,
)
from repro.service.breaker import OPEN
from repro.logic import checker as _checker


@pytest.fixture
def service(net):
    svc = VerificationService(net.chain)
    yield svc
    svc.close()


class TestVerdicts:
    def test_valid_claim_is_ok(self, service, valid_bundle):
        verdict = service.verify(valid_bundle)
        assert verdict.status == "ok", verdict.detail
        assert verdict.is_verdict
        assert not verdict.degraded

    def test_wrong_claimed_type_is_invalid(self, service, invalid_bundle):
        verdict = service.verify(invalid_bundle)
        assert verdict.status == "invalid"
        assert "claimed type" in verdict.detail
        assert verdict.is_verdict

    def test_expired_deadline_is_timeout_not_a_verdict(
        self, service, valid_bundle
    ):
        verdict = service.verify(
            valid_bundle, deadline=cancel.Deadline.after(-1.0)
        )
        assert verdict.status == "timeout"
        assert not verdict.is_verdict

    def test_verify_never_raises(self, net, valid_bundle, monkeypatch):
        svc = VerificationService(net.chain)
        try:
            monkeypatch.setattr(
                svc, "_run_protocol",
                lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
            )
            verdict = svc.verify(valid_bundle)
            assert verdict.status == "error"
            assert "boom" in verdict.detail
        finally:
            svc.close()


class TestMemo:
    def test_second_request_is_fully_memoized(self, service, valid_bundle):
        assert service.verify(valid_bundle).status == "ok"
        assert service.memo.hits == 0
        assert service.verify(valid_bundle).status == "ok"
        assert service.memo.hits == len(valid_bundle.transactions)

    def test_poisoned_entry_rejected_and_verdict_still_right(
        self, service, valid_bundle
    ):
        assert service.verify(valid_bundle).status == "ok"
        victim = next(iter(valid_bundle.transactions))
        service.memo.poison(victim, b"\x00" * 32)
        assert service.verify(valid_bundle).status == "ok"
        assert service.memo.poison_rejected == 1

    def test_memo_never_answers_for_an_invalid_claim(
        self, service, valid_bundle, invalid_bundle
    ):
        # Warm the memo with the shared upstream set...
        assert service.verify(valid_bundle).status == "ok"
        # ...the wrong-type claim over the same transactions must still
        # fail: the claim-equality tail is never memoized.
        assert service.verify(invalid_bundle).status == "invalid"


class TestAdmission:
    def test_zero_capacity_sheds_with_overloaded(self, net, valid_bundle):
        svc = VerificationService(net.chain, max_inflight=0)
        try:
            verdict = svc.verify(valid_bundle)
            assert verdict.status == "overloaded"
            assert not verdict.is_verdict
            assert svc.shed == 1
        finally:
            svc.close()

    def test_concurrent_burst_sheds_above_capacity(self, net, valid_bundle):
        svc = VerificationService(net.chain, max_inflight=1)
        release = threading.Event()
        original = svc._run_protocol

        def gated(bundle, deadline, **kwargs):
            release.wait(timeout=10)
            return original(bundle, deadline, **kwargs)

        svc._run_protocol = gated
        try:
            verdicts = [None, None]

            def fire(slot):
                verdicts[slot] = svc.verify(valid_bundle)

            threads = [
                threading.Thread(target=fire, args=(slot,)) for slot in (0, 1)
            ]
            threads[0].start()
            # Deterministic ordering: wait until the first request holds
            # the only slot before firing the second.
            while svc.health()["inflight"] == 0:
                pass
            threads[1].start()
            threads[1].join()  # the shed one returns immediately
            release.set()
            threads[0].join()
            statuses = sorted(v.status for v in verdicts)
            assert statuses == ["ok", "overloaded"]
        finally:
            svc.close()

    def test_draining_service_says_so(self, net, valid_bundle):
        svc = VerificationService(net.chain)
        try:
            assert svc.drain(timeout=1.0)
            verdict = svc.verify(valid_bundle)
            assert verdict.status == "draining"
            assert svc.health() == {
                "ready": False,
                "draining": True,
                "inflight": 0,
                "breaker": "closed",
                "memo_entries": 0,
                "requests": 1,
                "shed": 0,
            }
        finally:
            svc.close()

    def test_drain_waits_for_inflight_request(self, net, valid_bundle):
        svc = VerificationService(net.chain)
        entered = threading.Event()
        release = threading.Event()
        original = svc._run_protocol

        def gated(bundle, deadline, **kwargs):
            entered.set()
            release.wait(timeout=10)
            return original(bundle, deadline, **kwargs)

        svc._run_protocol = gated
        done = {}

        def request():
            done["verdict"] = svc.verify(valid_bundle)

        thread = threading.Thread(target=request)
        thread.start()
        try:
            assert entered.wait(timeout=5)
            assert not svc.drain(timeout=0.05)  # still in flight
            release.set()
            assert svc.drain(timeout=5.0)
            thread.join(timeout=5)
            # The in-flight request finished with a real verdict.
            assert done["verdict"].status == "ok"
        finally:
            release.set()
            thread.join(timeout=5)
            svc.close()


class _RiggedPool:
    """A pool whose run() always reports the executor as unrecoverable."""

    def __init__(self):
        self.respawns = 0
        self.calls = 0

    def run(self, jobs, deadline=None):
        self.calls += 1
        raise PoolBroken("rigged")

    def close(self):
        pass


class TestDegradation:
    def test_pool_broken_falls_back_serially_same_verdict(
        self, net, valid_bundle
    ):
        pool = _RiggedPool()
        svc = VerificationService(net.chain, pool=pool)
        try:
            verdict = svc.verify(valid_bundle)
            assert verdict.status == "ok"
            assert pool.calls > 0
        finally:
            svc.close()

    def test_repeated_pool_failures_trip_the_breaker(self, net, valid_bundle):
        svc = VerificationService(net.chain, pool=_RiggedPool())
        try:
            for _ in range(svc.breaker.failure_threshold):
                assert svc.verify(valid_bundle).status == "ok"
            assert svc.breaker.state == OPEN
            # Breaker open: served degraded (cache-off, in-process)...
            verdict = svc.verify(valid_bundle)
            assert verdict.status == "ok"
            assert verdict.degraded
        finally:
            svc.close()

    def test_degraded_path_runs_cache_off(self, net, valid_bundle):
        svc = VerificationService(net.chain, pool=_RiggedPool())
        observed = {}
        original = svc._run_protocol

        def spying(bundle, deadline, **kwargs):
            observed["affirmation_cache"] = _checker.AFFIRMATION_CACHE
            observed["kwargs"] = kwargs
            return original(bundle, deadline, **kwargs)

        svc._run_protocol = spying
        try:
            for _ in range(svc.breaker.failure_threshold):
                svc.verify(valid_bundle)
            svc.memo.poison(next(iter(valid_bundle.transactions)), b"\x01" * 32)
            verdict = svc.verify(valid_bundle)
            assert verdict.status == "ok"
            assert verdict.degraded
            # The affirmation sigcache was uninstalled for the request and
            # the memo was not consulted (the poisoned entry stayed put).
            assert observed["affirmation_cache"] is None
            assert observed["kwargs"] == {
                "use_pool": False, "use_caches": False,
            }
            assert svc.memo.poison_rejected == 0
            # ...and reinstalled afterwards.
            assert _checker.AFFIRMATION_CACHE is svc._affirmations
        finally:
            svc.close()

    def test_invalid_verdicts_never_feed_the_breaker(
        self, net, invalid_bundle
    ):
        svc = VerificationService(net.chain, workers=0)
        try:
            for _ in range(5):
                assert svc.verify(invalid_bundle).status == "invalid"
            assert svc.breaker.state == "closed"
        finally:
            svc.close()


class TestClose:
    def test_close_restores_prior_affirmation_cache(self, net):
        before = _checker.AFFIRMATION_CACHE
        svc = VerificationService(net.chain)
        assert _checker.AFFIRMATION_CACHE is svc._affirmations
        svc.close()
        assert _checker.AFFIRMATION_CACHE is before

    def test_close_is_idempotent(self, net):
        svc = VerificationService(net.chain)
        svc.close()
        svc.close()
