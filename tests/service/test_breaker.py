"""The circuit breaker's full cycle, pinned under a manual clock."""

import pytest

from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, reset_timeout=5.0, clock=clock)


class TestTrip:
    def test_closed_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_after_threshold_consecutive_failures(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never reached 3 in a row

    def test_threshold_must_be_positive(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)


class TestHalfOpen:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN

    def test_open_rejects_until_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent request: stay degraded
        assert not breaker.allow()

    def test_probe_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.allow()  # no probe slot: fully closed

    def test_probe_failure_reopens_for_fresh_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow()
        # A fresh full cooldown is needed, not the remainder of the old one.
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_full_cycle_trip_halfopen_close(self, breaker, clock):
        """The acceptance-criteria cycle in one pass."""
        self._trip(breaker)  # closed -> open
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN  # open -> half-open
        assert breaker.allow()
        breaker.record_success()  # half-open -> closed
        assert breaker.state == CLOSED
        assert breaker.trips == 1
