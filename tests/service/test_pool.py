"""Worker pool: job flattening, crash recovery, deadline propagation."""

import pytest

from repro import cancel
from repro.core.validate import world_at
from repro.core.wire import encode_transaction
from repro.service.pool import (
    PoolBroken,
    WorkerPool,
    make_job,
    run_job,
    spent_atoms,
)


@pytest.fixture(scope="module")
def jobs(world):
    """One CheckJob per transaction of the valid bundle, level by level."""
    net, bundle, _ = world
    from repro.core.validate import Ledger
    from repro.core.verifier import _topological_order

    ledger = Ledger()
    built = []
    # Parents first, registering as we go, so later jobs resolve inputs.
    for txid in _topological_order(bundle.transactions):
        txn = bundle.transactions[txid]
        _, height = net.chain.get_transaction(txid)
        job = make_job(
            txid, txn, encode_transaction(txn), ledger,
            world_at(net.chain, height),
        )
        built.append(job)
        ledger.register(txid, txn)
    return built


class TestJobs:
    def test_jobs_pickle(self, jobs):
        import pickle

        for job in jobs:
            assert pickle.loads(pickle.dumps(job)).txid == job.txid

    def test_run_job_inline_ok(self, jobs):
        for job in jobs:
            result = run_job(job)
            assert result.status == "ok", result.detail

    def test_run_job_maps_garbage_to_invalid(self, jobs):
        import dataclasses

        broken = dataclasses.replace(jobs[0], txn_bytes=b"\xff" * 8)
        assert run_job(broken).status == "invalid"

    def test_run_job_expired_budget_is_timeout(self, jobs):
        import dataclasses

        broken = dataclasses.replace(jobs[0], budget=-1.0)
        assert run_job(broken).status == "timeout"

    def test_spent_atoms_on_plain_transfer_is_empty(self, world):
        _, bundle, _ = world
        for txn in bundle.transactions.values():
            assert spent_atoms(txn) == frozenset()


class TestWorkerPool:
    def test_pooled_results_in_submission_order(self, jobs):
        pool = WorkerPool(workers=2)
        try:
            results = pool.run(jobs)
            assert [r.txid for r in results] == [j.txid for j in jobs]
            assert all(r.status == "ok" for r in results)
        finally:
            pool.close()

    def test_worker_death_respawns_and_completes(self, jobs):
        pool = WorkerPool(workers=1)
        try:
            pool.kill_worker()
            results = pool.run(jobs)
            assert all(r.status == "ok" for r in results)
            assert pool.respawns == 1
        finally:
            pool.close()

    def test_exhausted_respawns_raise_pool_broken(self, jobs, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        pool = WorkerPool(workers=1, max_respawns=0)

        class BrokenExecutor:
            def submit(self, fn, *args):
                raise BrokenProcessPool("rigged")

            def shutdown(self, **kwargs):
                pass

        monkeypatch.setattr(
            pool, "_ensure_executor", lambda: BrokenExecutor()
        )
        with pytest.raises(PoolBroken):
            pool.run(jobs[:1])
        assert pool.respawns == 1

    def test_deadline_cuts_off_slow_pool(self, jobs):
        pool = WorkerPool(workers=1)
        try:
            pool.slow_worker(delay=5.0)  # straggler occupies the only worker
            with pytest.raises(cancel.DeadlineExceeded):
                pool.run(jobs[:1], deadline=cancel.Deadline.after(0.2))
        finally:
            pool.close()

    def test_injectors_tolerate_broken_pool(self, jobs):
        pool = WorkerPool(workers=1)
        try:
            pool.kill_worker()
            pool.slow_worker(0.01)  # no-op, must not raise
            pool.kill_worker()  # already broken, must not raise
            assert all(r.status == "ok" for r in pool.run(jobs[:1]))
        finally:
            pool.close()
