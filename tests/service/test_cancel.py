"""Cooperative cancellation: deadlines, scoping, and checker integration."""

import pytest

from repro import cancel


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestDeadline:
    def test_after_and_remaining(self):
        clock = ManualClock()
        deadline = cancel.Deadline.after(5.0, clock=clock)
        assert deadline.remaining() == 5.0
        assert not deadline.expired()
        clock.now = 5.0
        assert deadline.expired()
        clock.now = 7.5
        assert deadline.remaining() == -2.5


class TestScope:
    def test_none_scope_is_a_no_op(self):
        with cancel.deadline_scope(None):
            assert not cancel.ACTIVE
            assert cancel.current_deadline() is None
            cancel.checkpoint()  # must not raise

    def test_scope_installs_and_removes(self):
        deadline = cancel.Deadline.after(60.0)
        assert not cancel.ACTIVE
        with cancel.deadline_scope(deadline):
            assert cancel.ACTIVE
            assert cancel.current_deadline() is deadline
        assert not cancel.ACTIVE
        assert cancel.current_deadline() is None

    def test_expired_deadline_trips_checkpoint(self):
        clock = ManualClock()
        deadline = cancel.Deadline.after(1.0, clock=clock)
        with cancel.deadline_scope(deadline):
            cancel.checkpoint()  # alive
            clock.now = 2.0
            with pytest.raises(cancel.DeadlineExceeded):
                for _ in range(cancel.CHECK_STRIDE + 1):
                    cancel.checkpoint()

    def test_nested_outer_expiry_trips_inside_inner_scope(self):
        clock = ManualClock()
        outer = cancel.Deadline.after(1.0, clock=clock)
        inner = cancel.Deadline.after(100.0, clock=clock)
        with cancel.deadline_scope(outer):
            with cancel.deadline_scope(inner):
                clock.now = 2.0  # outer expired, inner fine
                with pytest.raises(cancel.DeadlineExceeded):
                    for _ in range(cancel.CHECK_STRIDE + 1):
                        cancel.checkpoint()

    def test_scope_cleans_up_on_exception(self):
        with pytest.raises(RuntimeError):
            with cancel.deadline_scope(cancel.Deadline.after(60.0)):
                raise RuntimeError("boom")
        assert not cancel.ACTIVE

    def test_deadline_exceeded_is_not_a_checker_error(self):
        """Expiry must unwind through ``except ProofError`` handlers."""
        from repro.core.validate import ValidationFailure
        from repro.lf.typecheck import LFTypeError
        from repro.logic.checker import ProofError

        for error in (ProofError, LFTypeError, ValidationFailure):
            assert not issubclass(cancel.DeadlineExceeded, error)


class TestCheckerIntegration:
    def test_deep_proof_check_is_cancellable(self, world):
        """An expired deadline unwinds the real checkers mid-flight."""
        from repro.core.validate import Ledger, check_typecoin_transaction, world_at
        from repro.core.verifier import _topological_order

        net, bundle, _ = world
        clock = ManualClock()
        deadline = cancel.Deadline(1.0, clock=clock)
        clock.now = 2.0  # already expired
        ledger = Ledger()
        # The root transaction: checkable against an empty ledger.
        txid = _topological_order(bundle.transactions)[0]
        txn = bundle.transactions[txid]
        _, height = net.chain.get_transaction(txid)
        with cancel.deadline_scope(deadline):
            with pytest.raises(cancel.DeadlineExceeded):
                check_typecoin_transaction(
                    ledger, txn, world_at(net.chain, height)
                )
