"""Shared fixtures: one regtest world carrying a verifiable claim.

Building the chain costs a few hundred milliseconds, so the world is
session-scoped and shared read-only: service tests construct their own
:class:`VerificationService` over the same chain but never mutate it.
"""

import pytest

from repro.bitcoin.faults import _service_world


@pytest.fixture(scope="session")
def world():
    """(net, valid_bundle, invalid_bundle) over a depth-4 transfer chain."""
    return _service_world(4)


@pytest.fixture
def net(world):
    return world[0]


@pytest.fixture
def valid_bundle(world):
    return world[1]


@pytest.fixture
def invalid_bundle(world):
    """Same txout, wrong claimed type: the correct verdict is ``invalid``."""
    return world[2]
