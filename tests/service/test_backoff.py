"""The shared backoff math: capping, jitter bounds, seeded divergence."""

import pytest

from repro.backoff import backoff_delay, backoff_sequence, derive_rng


class TestDelay:
    def test_doubles_until_cap(self):
        delays = backoff_sequence(6, base=1.0, cap=10.0)
        assert delays == [1.0, 2.0, 4.0, 8.0, 10.0, 10.0]

    def test_custom_factor(self):
        assert backoff_delay(3, base=1.0, cap=100.0, factor=3.0) == 9.0

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            backoff_delay(0, base=1.0, cap=10.0)

    def test_no_rng_means_no_jitter(self):
        # jitter requested but no rng supplied: deterministic nominal.
        assert backoff_delay(2, base=1.0, cap=10.0, jitter=0.5) == 2.0

    def test_jitter_band_is_multiplicative(self):
        rng = derive_rng("band-test")
        for attempt in range(1, 8):
            nominal = min(10.0, 2.0 ** (attempt - 1))
            delay = backoff_delay(
                attempt, base=1.0, cap=10.0, jitter=0.25, rng=rng
            )
            # Never near-zero (these double as timeouts), never above band.
            assert nominal * 0.75 <= delay <= nominal * 1.25


class TestDeriveRng:
    def test_same_parts_same_stream(self):
        a = derive_rng("x", 1, "peer").random()
        b = derive_rng("x", 1, "peer").random()
        assert a == b

    def test_distinct_parts_diverge(self):
        streams = {
            derive_rng("x", seed, "peer").random() for seed in range(8)
        }
        assert len(streams) == 8

    def test_part_boundaries_matter(self):
        # ("ab", "c") and ("a", "bc") must not collide into one stream.
        assert (
            derive_rng("ab", "c").random() != derive_rng("a", "bc").random()
        )

    def test_jittered_sequences_from_distinct_seeds_diverge(self):
        make = lambda seed: backoff_sequence(
            5, base=1.0, cap=30.0, jitter=0.2,
            rng=derive_rng("seq", seed),
        )
        assert make(0) != make(1)
        assert make(0) == make(0)
