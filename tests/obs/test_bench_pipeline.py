"""The benchmark telemetry pipeline: stub stats, runner pieces, compare gate."""

import json
import os
import sys

import pytest

pytestmark = pytest.mark.obs

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
sys.path.insert(0, os.path.abspath(BENCH_DIR))

import compare  # noqa: E402
import runner  # noqa: E402
from obs_harness import StubBenchmark, StubStats, run_bench  # noqa: E402


class TestStubStats:
    def test_pytest_benchmark_shape(self):
        stub = StubBenchmark()
        for value in (1, 2, 3):
            stub(lambda v=value: v)
        stats = stub.stats
        assert stats.rounds == 3
        assert stats.min <= stats.mean <= stats.max
        assert stats["mean"] == stats.mean  # item access, like pytest-benchmark
        assert stats["rounds"] == 3
        for field in ("min", "max", "mean", "median", "stddev", "rounds",
                      "total", "ops"):
            assert field in stats.as_dict()

    def test_median_and_stddev(self):
        stats = StubStats([1.0, 2.0, 9.0])
        assert stats.median == 2.0
        assert stats.total == 12.0
        assert stats.stddev > 0
        assert StubStats([5.0]).stddev == 0.0
        assert StubStats([]).mean == 0.0

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            StubStats([1.0])["iqr_outliers"]

    def test_pedantic_records_rounds(self):
        stub = StubBenchmark()
        stub.pedantic(lambda: None, rounds=4)
        assert stub.stats.rounds == 4

    def test_max_rounds_clamps_pedantic(self):
        stub = StubBenchmark(max_rounds=1)
        stub.pedantic(lambda: None, rounds=50)
        assert stub.stats.rounds == 1


class TestRunBench:
    def test_injects_conftest_fixtures(self):
        seen = {}

        def bench_probe(benchmark, net, ledger):
            seen["net"] = net
            seen["ledger"] = ledger
            benchmark(lambda: None)

        run_bench(bench_probe, StubBenchmark())
        from repro.bitcoin.regtest import RegtestNetwork
        from repro.core.validate import Ledger

        assert isinstance(seen["net"], RegtestNetwork)
        assert isinstance(seen["ledger"], Ledger)

    def test_unknown_fixture_rejected(self):
        def bench_bad(benchmark, warp_drive):
            pass

        with pytest.raises(ValueError, match="warp_drive"):
            run_bench(bench_bad, StubBenchmark())


class TestRunnerDiscovery:
    def test_discovers_all_twenty_experiments(self):
        names = runner.discover_experiments()
        assert len(names) == 20
        assert all(name.startswith("bench_") for name in names)
        assert "bench_b3_block_pipeline" in names
        assert "bench_e6_verifier_scaling" in names
        assert "bench_e10_service" in names
        assert "bench_a2_chaos_convergence" in names
        assert "bench_a3_propagation" in names
        assert "bench_b1_verify_throughput" in names
        assert "bench_b2_recovery" in names

    def test_only_filter(self):
        names = runner.discover_experiments(only=["e6", "f1"])
        assert names == ["bench_e6_verifier_scaling",
                         "bench_f1_syntax_roundtrip"]

    def test_experiment_key(self):
        assert runner.experiment_key("bench_e6_verifier_scaling") == (
            "e6_verifier_scaling"
        )


def make_trajectory(label="base", wall=1.0, ok=True, sha="a" * 40):
    stats = {"min": wall, "max": wall, "mean": wall, "median": wall,
             "stddev": 0.0, "rounds": 1, "total": wall, "ops": 1 / wall}
    return {
        "schema": compare.BENCH_SCHEMA,
        "label": label,
        "created_unix": 0.0,
        "git_sha": sha,
        "obs_enabled": True,
        "smoke": True,
        "python": "3",
        "experiments": {
            "e1": {"file": "bench_e1.py", "wall_seconds": wall, "ok": ok,
                   "benches": {"bench_e1": {"ok": ok, "stats": stats,
                                            "extra_info": {}}}},
        },
    }


class TestCompare:
    def test_identical_trajectories_pass(self):
        base = make_trajectory()
        _lines, failures = compare.compare(base, base)
        assert failures == []

    def test_regression_beyond_threshold_fails(self):
        base = make_trajectory(wall=1.0)
        slow = make_trajectory(label="slow", wall=2.0)
        _lines, failures = compare.compare(base, slow, threshold=0.25)
        assert len(failures) == 1
        assert "e1" in failures[0] and "+100%" in failures[0]

    def test_regression_within_threshold_passes(self):
        base = make_trajectory(wall=1.0)
        slightly = make_trajectory(label="s", wall=1.2)
        _lines, failures = compare.compare(base, slightly, threshold=0.25)
        assert failures == []

    def test_speedup_passes(self):
        base = make_trajectory(wall=2.0)
        fast = make_trajectory(label="fast", wall=0.5)
        lines, failures = compare.compare(base, fast)
        assert failures == []
        assert any("faster" in line for line in lines)

    def test_missing_experiment_fails_unless_allowed(self):
        base = make_trajectory()
        new = make_trajectory(label="new")
        new["experiments"] = {"other": base["experiments"]["e1"]}
        _lines, failures = compare.compare(base, new)
        assert any("missing" in failure for failure in failures)
        _lines, failures = compare.compare(base, new, allow_missing=True)
        assert failures == []

    def test_failed_candidate_experiment_fails(self):
        base = make_trajectory()
        broken = make_trajectory(label="broken", ok=False)
        _lines, failures = compare.compare(base, broken)
        assert any("failed" in failure for failure in failures)

    def test_cli_round_trip(self, tmp_path, capsys):
        base_path = tmp_path / "BENCH_base.json"
        slow_path = tmp_path / "BENCH_slow.json"
        base_path.write_text(json.dumps(make_trajectory(wall=1.0)))
        slow_path.write_text(json.dumps(make_trajectory("slow", wall=3.0)))
        assert compare.main([str(base_path), str(base_path)]) == 0
        assert compare.main([str(base_path), str(slow_path)]) == 1
        assert compare.main(["--check-schema", str(base_path)]) == 0


class TestSchema:
    def test_valid(self):
        compare.check_schema(make_trajectory())

    def test_wrong_schema_string(self):
        bad = make_trajectory()
        bad["schema"] = "repro.bench/0"
        with pytest.raises(compare.SchemaError, match="schema"):
            compare.check_schema(bad)

    def test_missing_top_level_field(self):
        bad = make_trajectory()
        del bad["git_sha"]
        with pytest.raises(compare.SchemaError, match="git_sha"):
            compare.check_schema(bad)

    def test_empty_experiments(self):
        bad = make_trajectory()
        bad["experiments"] = {}
        with pytest.raises(compare.SchemaError, match="non-empty"):
            compare.check_schema(bad)

    def test_bench_missing_stats_field(self):
        bad = make_trajectory()
        del bad["experiments"]["e1"]["benches"]["bench_e1"]["stats"]["mean"]
        with pytest.raises(compare.SchemaError, match="mean"):
            compare.check_schema(bad)


class TestRunExperiment:
    def test_records_failure_without_crashing(self, tmp_path, monkeypatch):
        # A module whose bench raises must yield ok=False, not a crash.
        bad = tmp_path / "bench_zz_broken.py"
        bad.write_text(
            "def bench_zz_boom(benchmark):\n"
            "    raise RuntimeError('intentional')\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        record = runner.run_experiment("bench_zz_broken")
        assert record["ok"] is False
        bench = record["benches"]["bench_zz_boom"]
        assert bench["ok"] is False
        assert "intentional" in bench["error"]

    def test_import_failure_recorded(self, tmp_path, monkeypatch):
        bad = tmp_path / "bench_zz_unimportable.py"
        bad.write_text("raise ImportError('no such dep')\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        record = runner.run_experiment("bench_zz_unimportable")
        assert record["ok"] is False
        assert "no such dep" in record["error"]

    def test_extra_info_bytes_normalized(self):
        assert runner._jsonable({b"\x01": (b"\x02", 3)}) == {"01": ["02", 3]}
