"""Chrome trace export and histogram quantile estimation."""

import json

import pytest

from repro import obs
from repro.obs.export import (
    snapshot_quantiles,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import Histogram, quantile_from_cumulative

pytestmark = pytest.mark.obs


class TestQuantileFromCumulative:
    def test_empty_histogram_yields_zero(self):
        hist = Histogram(buckets=(1.0, 2.0))
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.99) == 0.0

    def test_known_uniform_distribution(self):
        # 100 observations uniformly counted in bucket (0, 10].
        pairs = [[10.0, 100], ["+Inf", 100]]
        # rank q*100 interpolated across (0, 10].
        assert quantile_from_cumulative(0.5, pairs) == pytest.approx(5.0)
        assert quantile_from_cumulative(0.95, pairs) == pytest.approx(9.5)
        assert quantile_from_cumulative(1.0, pairs) == pytest.approx(10.0)

    def test_multi_bucket_interpolation(self):
        # 10 obs <= 1, then 10 more in (1, 3].
        pairs = [[1.0, 10], [3.0, 20], ["+Inf", 20]]
        assert quantile_from_cumulative(0.5, pairs) == pytest.approx(1.0)
        assert quantile_from_cumulative(0.75, pairs) == pytest.approx(2.0)

    def test_quantile_in_overflow_clamps_to_last_finite_edge(self):
        # Everything landed beyond the last finite edge.
        pairs = [[1.0, 0], [2.0, 0], ["+Inf", 50]]
        assert quantile_from_cumulative(0.5, pairs) == 2.0
        assert quantile_from_cumulative(0.99, pairs) == 2.0

    def test_empty_intermediate_buckets_skipped(self):
        pairs = [[1.0, 4], [2.0, 4], [3.0, 4], [4.0, 8], ["+Inf", 8]]
        # p50 sits exactly at the cumulative boundary of the first bucket.
        assert quantile_from_cumulative(0.5, pairs) == pytest.approx(1.0)
        # p75 is in the (3, 4] bucket, halfway through its 4 observations.
        assert quantile_from_cumulative(0.75, pairs) == pytest.approx(3.5)

    def test_exact_observations_match_histogram(self):
        hist = Histogram(buckets=(0.001, 0.01, 0.1, 1.0))
        for value in [0.005] * 90 + [0.5] * 10:
            hist.observe(value)
        # p50 within (0.001, 0.01]; p95 within (0.1, 1.0].
        assert 0.001 < hist.quantile(0.5) <= 0.01
        assert 0.1 < hist.quantile(0.95) <= 1.0

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError):
            quantile_from_cumulative(1.5, [[1.0, 1], ["+Inf", 1]])

    def test_snapshot_includes_quantiles_and_round_trips(self):
        registry = obs.Registry()
        for value in (0.002, 0.003, 0.2):
            registry.observe("x.seconds", value)
        snap = registry.snapshot()["histograms"]["x.seconds"]
        for key in ("p50", "p95", "p99"):
            assert key in snap
        # Identical estimates from the saved-JSON shape.
        reloaded = json.loads(json.dumps(snap))
        assert snapshot_quantiles(reloaded)["p50"] == snap["p50"]
        assert snapshot_quantiles(reloaded)["p99"] == snap["p99"]

    def test_render_text_exposes_quantiles(self):
        registry = obs.Registry()
        registry.observe("y.seconds", 0.004)
        text = registry.render_text()
        assert 'y_seconds{quantile="0.5"}' in text
        assert 'y_seconds{quantile="0.99"}' in text


class TestDegenerateHistograms:
    """Hand-built or truncated snapshots must render, not crash."""

    def test_empty_pairs_yield_zero(self):
        assert quantile_from_cumulative(0.5, []) == 0.0
        assert quantile_from_cumulative(0.99, []) == 0.0

    def test_single_bucket_all_mass(self):
        # Only an overflow bucket: clamp to 0.0 (no finite edge exists).
        assert quantile_from_cumulative(0.5, [["+Inf", 7]]) == 0.0
        # One finite bucket holding everything interpolates within it.
        assert quantile_from_cumulative(
            0.5, [[2.0, 10], ["+Inf", 10]]
        ) == pytest.approx(1.0)

    def test_snapshot_quantiles_tolerates_missing_buckets(self):
        for degenerate in ({}, {"buckets": []}, {"buckets": None},
                           {"count": 3, "sum": 1.5}):
            estimates = snapshot_quantiles(degenerate)
            assert estimates == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_render_report_tolerates_fieldless_histograms(self):
        from repro.obs.report import render_report

        snap = {
            "histograms": {
                "truncated.seconds": {},           # nothing at all
                "partial.seconds": {"count": 3},   # no sum/mean/quantiles
                "single.seconds": {"count": 1, "sum": 0.5, "mean": 0.5,
                                   "p50": 0.5},    # p95/p99 missing
            },
        }
        text = render_report(snap, title="degenerate")
        assert "truncated.seconds" in text
        assert "partial.seconds" in text
        # Missing quantiles render as placeholders, never KeyError.
        assert "-" in text


class TestChromeTrace:
    def make_spans(self, manual_clock):
        obs.enable()
        obs.reset()
        with obs.trace_span("outer", height=3):
            manual_clock.advance(0.010)
            with obs.trace_span("inner", kind="proof"):
                manual_clock.advance(0.002)
            manual_clock.advance(0.001)
        return obs.snapshot()

    def test_structure_under_fake_clock(self, manual_clock):
        snap = self.make_spans(manual_clock)
        trace = to_chrome_trace(snap["spans"])
        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        # One metadata record plus one complete event per span.
        phases = [event["ph"] for event in events]
        assert phases.count("M") == 1
        assert phases.count("X") == 2
        # Every non-metadata event is a complete ("X") event — no unmatched
        # B/E pairs possible by construction.
        assert set(phases) <= {"M", "X"}

    def test_timestamps_monotonic_and_durations_positive(self, manual_clock):
        snap = self.make_spans(manual_clock)
        events = to_chrome_trace(snap["spans"])["traceEvents"]
        ts = [event["ts"] for event in events]
        assert ts == sorted(ts)
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0
        # Microsecond conversion: inner span lasted 2000µs.
        inner = next(e for e in events if e["name"] == "inner")
        assert inner["dur"] == pytest.approx(2000.0)

    def test_nesting_contained_within_parent(self, manual_clock):
        snap = self.make_spans(manual_clock)
        events = to_chrome_trace(snap["spans"])["traceEvents"]
        outer = next(e for e in events if e["name"] == "outer")
        inner = next(e for e in events if e["name"] == "inner")
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
        assert inner["args"]["parent"] == outer["args"]["span_id"]

    def test_attrs_become_args(self, manual_clock):
        snap = self.make_spans(manual_clock)
        events = to_chrome_trace(snap["spans"])["traceEvents"]
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["args"]["height"] == 3
        assert outer["cat"] == "outer"

    def test_events_become_instants(self, manual_clock):
        obs.enable()
        obs.reset()
        manual_clock.advance(1.0)
        obs.emit("proof.checked", outcome="ok")
        snap = obs.snapshot()
        events = to_chrome_trace(snap["spans"], snap["events"])["traceEvents"]
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["name"] == "proof.checked"
        assert instant["ts"] == pytest.approx(1e6)
        assert instant["args"] == {"outcome": "ok"}

    def test_write_chrome_trace_is_valid_json(self, tmp_path, manual_clock):
        snap = self.make_spans(manual_clock)
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), snap)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count == 3
        for event in loaded["traceEvents"]:
            for key in ("ph", "name", "pid", "tid", "ts"):
                assert key in event

    def test_regtest_run_dumps_loadable_trace(self, tmp_path):
        """Acceptance: a REPRO_OBS pipeline run exports a Perfetto-shaped
        trace and a JSONL event log whose every line validates."""
        from repro.bitcoin.regtest import RegtestNetwork
        from repro.bitcoin.standard import p2pkh_script
        from repro.bitcoin.transaction import TxOut
        from repro.bitcoin.wallet import Wallet
        from repro.obs.events import validate_event

        obs.enable()
        obs.reset()
        net = RegtestNetwork()
        wallet = Wallet.from_seed(b"export-e2e")
        net.fund_wallet(wallet, blocks=2)
        tx = wallet.create_transaction(
            net.chain, [TxOut(600, p2pkh_script(wallet.key_hash))], fee=10_000
        )
        net.send(tx)
        net.confirm(1)

        trace_path = tmp_path / "trace.json"
        events_path = tmp_path / "events.jsonl"
        write_chrome_trace(str(trace_path))
        obs.events().write_jsonl(str(events_path))

        trace = json.loads(trace_path.read_text())
        assert {e["ph"] for e in trace["traceEvents"]} <= {"M", "X", "i"}
        ts = [e["ts"] for e in trace["traceEvents"]]
        assert ts == sorted(ts)
        assert any(
            e["name"] == "chain.connect_block" for e in trace["traceEvents"]
        )
        lines = events_path.read_text().splitlines()
        assert lines
        for line in lines:
            validate_event(json.loads(line))
