"""The phase profiler: taxonomy, self-time attribution, span integration,
the stack sampler's folded output, and the compare.py blame acceptance
test (an injected per-phase slowdown must be named as the top regressor).
"""

import json
import os
import sys

import pytest

from repro import obs
from repro.obs.export import phase_counter_events, write_folded
from repro.obs.profile import (
    PHASE_NAMES,
    PHASES,
    PROFILE_SCHEMA,
    PhaseLedger,
    PhaseProfiler,
    StackSampler,
    parse_folded,
    phase_of,
)
from repro.obs.report import render_phases

pytestmark = pytest.mark.obs

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
sys.path.insert(0, os.path.abspath(BENCH_DIR))

import compare  # noqa: E402


class TestTaxonomy:
    def test_phases_are_unique_and_described(self):
        names = [name for name, _ in PHASES]
        assert len(names) == len(set(names))
        assert all(desc for _, desc in PHASES)
        assert "other" in PHASE_NAMES

    def test_span_mapping_covers_pipeline_spans(self):
        assert phase_of("chain.connect_block") == "chain_connect"
        assert phase_of("utxo.apply_block") == "utxo_apply"
        assert phase_of("utxo.undo_block") == "utxo_undo"
        assert phase_of("miner.build_template") == "miner_template"
        assert phase_of("store.recover") == "store_recover"
        assert phase_of("proof.check") == "logic_check"
        assert phase_of("verify.claim") == "core_verify"

    def test_prefix_fallback_and_other(self):
        assert phase_of("batch.transact") == "core_batch"
        assert phase_of("batch.withdraw") == "core_batch"
        assert phase_of("verify.something_new") == "core_verify"
        assert phase_of("lf.anything") == "lf_typecheck"
        assert phase_of("mempool.accept") == "other"
        assert phase_of("nodots") == "other"

    def test_every_mapped_phase_is_in_the_taxonomy(self):
        from repro.obs.profile import _PREFIX_PHASES, _SPAN_PHASES

        for phase in list(_SPAN_PHASES.values()) + list(_PREFIX_PHASES.values()):
            assert phase in PHASE_NAMES


class TestPhaseLedger:
    def test_accumulates_and_sorts(self):
        ledger = PhaseLedger()
        ledger.count("script")
        ledger.add("script", 0.5)
        ledger.count("ecmult", 3)
        ledger.add("ecmult", 0.25)
        view = ledger.phases()
        assert list(view) == ["ecmult", "script"]
        assert view["script"] == {"seconds": 0.5, "calls": 1}
        assert view["ecmult"] == {"seconds": 0.25, "calls": 3}
        assert ledger.total_seconds() == pytest.approx(0.75)

    def test_alloc_bytes_only_when_touched(self):
        ledger = PhaseLedger()
        ledger.count("parse")
        ledger.add("parse", 0.1)
        ledger.count("script")
        ledger.add("script", 0.1, alloc_bytes=2048)
        view = ledger.phases()
        assert "alloc_bytes" not in view["parse"]
        assert view["script"]["alloc_bytes"] == 2048


class TestSelfTime:
    def test_nested_phases_attribute_self_time(self, manual_clock):
        prof = PhaseProfiler(clock=manual_clock)
        prof.enter("chain_connect")
        manual_clock.advance(1.0)
        prof.enter("utxo_apply")
        manual_clock.advance(0.5)
        prof.exit()
        manual_clock.advance(0.25)
        prof.exit()
        phases = prof.snapshot()["phases"]
        assert phases["chain_connect"]["seconds"] == pytest.approx(1.25)
        assert phases["utxo_apply"]["seconds"] == pytest.approx(0.5)

    def test_self_times_sum_to_wall_time(self, manual_clock):
        prof = PhaseProfiler(clock=manual_clock)
        prof.enter("script")
        manual_clock.advance(0.2)
        prof.enter("sighash")
        manual_clock.advance(0.3)
        prof.enter("ecmult")
        manual_clock.advance(0.4)
        prof.exit()
        prof.exit()
        manual_clock.advance(0.1)
        prof.exit()
        assert prof.ledger.total_seconds() == pytest.approx(1.0)

    def test_recursion_collapses_without_clock_reads(self, manual_clock):
        prof = PhaseProfiler(clock=manual_clock)
        prof.enter("lf_typecheck")
        manual_clock.advance(0.1)
        prof.enter("lf_typecheck")  # recursion: counter bump only
        prof.enter("lf_typecheck")
        manual_clock.advance(0.1)
        prof.exit()
        prof.exit()
        prof.exit()
        phases = prof.snapshot()["phases"]
        assert phases["lf_typecheck"]["seconds"] == pytest.approx(0.2)
        assert phases["lf_typecheck"]["calls"] == 3

    def test_interleaved_recursion_keeps_region_open(self, manual_clock):
        # lf -> logic -> lf must NOT collapse (different phase between).
        prof = PhaseProfiler(clock=manual_clock)
        prof.enter("logic_check")
        manual_clock.advance(0.1)
        prof.enter("lf_typecheck")
        manual_clock.advance(0.2)
        prof.exit()
        manual_clock.advance(0.1)
        prof.exit()
        phases = prof.snapshot()["phases"]
        assert phases["logic_check"]["seconds"] == pytest.approx(0.2)
        assert phases["lf_typecheck"]["seconds"] == pytest.approx(0.2)

    def test_exit_on_empty_stack_is_noop(self):
        prof = PhaseProfiler()
        prof.exit()  # must not raise
        assert prof.snapshot()["phases"] == {}

    def test_reset_clears_everything(self, manual_clock):
        prof = PhaseProfiler(clock=manual_clock)
        prof.enter("script")
        manual_clock.advance(1.0)
        prof.exit()
        prof.checkpoint()
        prof.reset()
        assert prof.snapshot()["phases"] == {}
        assert prof.checkpoints == []

    def test_snapshot_shape(self, manual_clock):
        prof = PhaseProfiler(clock=manual_clock)
        prof.enter("parse")
        manual_clock.advance(0.5)
        prof.exit()
        snap = prof.snapshot()
        assert snap["schema"] == PROFILE_SCHEMA
        assert snap["track_alloc"] is False
        json.dumps(snap)  # must be JSON-able


class TestSpanIntegration:
    def test_trace_span_feeds_the_profiler(self, manual_clock):
        obs.enable()
        prof = PhaseProfiler(clock=manual_clock)
        obs.set_profiler(prof)
        with obs.trace_span("chain.connect_block", height=1):
            manual_clock.advance(1.0)
            with obs.trace_span("utxo.apply_block"):
                manual_clock.advance(0.5)
        phases = prof.snapshot()["phases"]
        assert phases["chain_connect"]["seconds"] == pytest.approx(1.0)
        assert phases["utxo_apply"]["seconds"] == pytest.approx(0.5)

    def test_unmapped_span_lands_in_other(self, manual_clock):
        obs.enable()
        prof = PhaseProfiler(clock=manual_clock)
        obs.set_profiler(prof)
        with obs.trace_span("mempool.accept_tx"):
            manual_clock.advance(0.25)
        assert prof.snapshot()["phases"]["other"]["seconds"] == pytest.approx(0.25)

    def test_node_scope_spans_still_profile(self, manual_clock):
        obs.enable()
        prof = PhaseProfiler(clock=manual_clock)
        obs.set_profiler(prof)
        telemetry = obs.NodeTelemetry("n0")
        with obs.node_scope(telemetry):
            with obs.trace_span("proof.check"):
                manual_clock.advance(0.125)
        assert prof.snapshot()["phases"]["logic_check"]["seconds"] == (
            pytest.approx(0.125)
        )

    def test_exception_inside_span_still_exits_phase(self, manual_clock):
        obs.enable()
        prof = PhaseProfiler(clock=manual_clock)
        obs.set_profiler(prof)
        with pytest.raises(RuntimeError):
            with obs.trace_span("verify.claim"):
                manual_clock.advance(0.5)
                raise RuntimeError("boom")
        assert prof._stack == []
        assert prof.snapshot()["phases"]["core_verify"]["seconds"] == (
            pytest.approx(0.5)
        )


class TestPipelinePhases:
    def test_end_to_end_validation_touches_expected_phases(self):
        from repro.bitcoin.regtest import RegtestNetwork
        from repro.bitcoin.standard import p2pkh_script
        from repro.bitcoin.transaction import TxOut
        from repro.bitcoin.wallet import Wallet

        obs.enable()
        prof = PhaseProfiler()
        obs.set_profiler(prof)
        net = RegtestNetwork()
        wallet = Wallet.from_seed(b"profile-e2e")
        net.fund_wallet(wallet, blocks=2)
        tx = wallet.create_transaction(
            net.chain, [TxOut(600, p2pkh_script(wallet.key_hash))], fee=10_000
        )
        net.send(tx)
        net.confirm(1)
        phases = prof.snapshot()["phases"]
        for expected in ("chain_connect", "utxo_apply", "script",
                         "sighash", "ecmult", "sigcache"):
            assert expected in phases, f"missing {expected}: {sorted(phases)}"
            assert phases[expected]["calls"] > 0
        assert all(phase in PHASE_NAMES for phase in phases)
        # No region may be left open after a balanced pipeline run.
        assert prof._stack == []

    def test_typecoin_pipeline_touches_proof_phases(self):
        from repro.bitcoin.regtest import RegtestNetwork
        from repro.core.builder import simple_transfer
        from repro.core.transaction import TypecoinOutput
        from repro.core.validate import Ledger
        from repro.core.wallet import TypecoinClient
        from repro.logic.propositions import One

        obs.enable()
        prof = PhaseProfiler()
        obs.set_profiler(prof)
        net = RegtestNetwork()
        client = TypecoinClient(net, b"profile-tc", Ledger())
        net.fund_wallet(client.wallet, blocks=2)
        txn = simple_transfer([], [TypecoinOutput(One(), 600, client.pubkey)])
        client.submit(txn)
        net.confirm(1)
        client.sync()
        phases = prof.snapshot()["phases"]
        assert phases["logic_check"]["calls"] > 0
        assert phases["lf_typecheck"]["calls"] > 0


class TestAllocTracking:
    def test_track_alloc_records_net_bytes(self):
        prof = PhaseProfiler(track_alloc=True)
        try:
            prof.enter("parse")
            blob = [bytes(64 * 1024) for _ in range(4)]
            prof.exit()
            phases = prof.snapshot()["phases"]
            assert phases["parse"]["alloc_bytes"] > 4 * 60 * 1024
            assert prof.snapshot()["track_alloc"] is True
            del blob
        finally:
            prof.close()

    def test_child_alloc_subtracted_from_parent(self):
        prof = PhaseProfiler(track_alloc=True)
        try:
            prof.enter("chain_connect")
            prof.enter("utxo_apply")
            blob = bytes(512 * 1024)
            prof.exit()
            prof.exit()
            phases = prof.snapshot()["phases"]
            assert phases["utxo_apply"]["alloc_bytes"] > 500 * 1024
            # Parent self-alloc excludes the child's half-megabyte.
            assert phases["chain_connect"].get("alloc_bytes", 0) < 100 * 1024
            del blob
        finally:
            prof.close()


class TestCheckpoints:
    def test_checkpoints_render_as_counter_events(self, manual_clock):
        prof = PhaseProfiler(clock=manual_clock)
        prof.enter("script")
        manual_clock.advance(1.0)
        prof.exit()
        prof.checkpoint()
        manual_clock.advance(1.0)
        prof.enter("ecmult")
        manual_clock.advance(0.5)
        prof.exit()
        prof.checkpoint()
        events = phase_counter_events(prof.checkpoints)
        assert [e["ph"] for e in events] == ["C", "C"]
        assert events[0]["ts"] == pytest.approx(1.0 * 1e6)
        assert events[0]["args"] == {"script": 1.0}
        assert events[1]["args"] == {"ecmult": 0.5, "script": 1.0}


class TestStackSampler:
    def test_folded_output_round_trips(self, tmp_path):
        sampler = StackSampler()

        def leaf():
            return sum(range(2000))

        def trunk():
            return [leaf() for _ in range(50)]

        with sampler:
            trunk()
        folded = sampler.folded()
        assert folded
        entries = parse_folded(folded)
        assert entries
        joined = [";".join(frames) for frames, _ in entries]
        assert any("trunk" in stack and "leaf" in stack for stack in joined)
        assert all(value > 0 for _, value in entries)
        # write_folded round-trip
        path = tmp_path / "out.folded"
        count = write_folded(str(path), folded)
        assert count == len(entries)
        assert parse_folded(path.read_text()) == entries

    def test_install_uninstall_restores_previous_hook(self):
        sentinel_calls = []

        def sentinel(frame, event, arg):
            sentinel_calls.append(event)

        previous = sys.getprofile()
        sys.setprofile(sentinel)
        try:
            sampler = StackSampler()
            sampler.install()
            assert sys.getprofile() == sampler._hook
            sampler.uninstall()
            assert sys.getprofile() == sentinel
        finally:
            sys.setprofile(previous)

    def test_parse_folded_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_folded("no_value_here\n")
        with pytest.raises(ValueError):
            parse_folded("frame;frame notanumber\n")
        with pytest.raises(ValueError):
            parse_folded("frame;;frame 10\n")
        with pytest.raises(ValueError):
            parse_folded("frame -5\n")
        assert parse_folded("") == []
        assert parse_folded("a;b 10\n\nc 5\n") == [(["a", "b"], 10), (["c"], 5)]


class TestRenderPhases:
    def test_orders_by_self_time(self, manual_clock):
        prof = PhaseProfiler(clock=manual_clock)
        prof.enter("ecmult")
        manual_clock.advance(0.1)
        prof.exit()
        prof.enter("script")
        manual_clock.advance(0.9)
        prof.exit()
        text = render_phases(prof.snapshot())
        lines = text.splitlines()
        script_at = next(i for i, l in enumerate(lines) if l.startswith("script"))
        ecmult_at = next(i for i, l in enumerate(lines) if l.startswith("ecmult"))
        assert script_at < ecmult_at
        assert "90.0%" in lines[script_at]

    def test_empty_profile_renders_placeholder(self):
        assert "no phase activity" in render_phases({"phases": {}})
        assert "no profiler installed" in render_phases(None)


def _trajectory(label, experiments):
    return {
        "schema": "repro.bench/1",
        "label": label,
        "created_unix": 0.0,
        "git_sha": label * 10,
        "experiments": experiments,
    }


def _experiment(wall, phases=None, ok=True):
    record = {
        "file": "bench_x.py",
        "wall_seconds": wall,
        "ok": ok,
        "benches": {
            "bench_x": {"stats": {"min": wall, "mean": wall, "max": wall,
                                  "rounds": 1}}
        },
    }
    if phases is not None:
        record["profile"] = {
            "schema": PROFILE_SCHEMA,
            "track_alloc": False,
            "phases": {
                phase: {"seconds": seconds, "calls": 10}
                for phase, seconds in phases.items()
            },
        }
    return record


class TestBlame:
    def test_injected_slowdown_names_the_phase(self, manual_clock):
        """The acceptance test: profile a baseline run and a run with an
        artificial slowdown injected into one phase; --blame must name
        that phase as the top regressor."""
        def profile_run(script_cost):
            prof = PhaseProfiler(clock=manual_clock)
            prof.enter("chain_connect")
            manual_clock.advance(0.4)
            prof.enter("script")
            manual_clock.advance(script_cost)  # the injected slowdown
            prof.exit()
            prof.enter("ecmult")
            manual_clock.advance(0.3)
            prof.exit()
            prof.exit()
            return prof.snapshot()

        base_profile = profile_run(0.2)
        slow_profile = profile_run(0.8)  # +0.6s injected into "script"

        base_record = _experiment(0.9, None)
        base_record["profile"] = base_profile
        slow_record = _experiment(1.5, None)
        slow_record["profile"] = slow_profile

        base = _trajectory("base", {"a1": base_record})
        new = _trajectory("slow", {"a1": slow_record})
        lines, failures = compare.compare(base, new)
        blame_lines = [l for l in lines if "blame:" in l]
        assert blame_lines, lines
        assert "script" in blame_lines[0]
        assert "+0.600s" in blame_lines[0]
        assert "100% of phase growth" in blame_lines[0]
        assert len(failures) == 1 and "[script +0.600s]" in failures[0]

    def test_blame_skips_records_without_profiles(self):
        base = _trajectory("base", {"a1": _experiment(1.0)})
        new = _trajectory("new", {"a1": _experiment(2.0)})
        lines, failures = compare.compare(base, new)
        assert failures  # still gates on wall time
        assert not any("blame:" in l for l in lines)

    def test_blame_all_prints_for_non_regressed(self):
        base = _trajectory("base", {"a1": _experiment(1.0, {"script": 0.5})})
        new = _trajectory("new", {"a1": _experiment(1.01, {"script": 0.52})})
        lines, failures = compare.compare(base, new, blame_all=True)
        assert not failures
        assert any("blame: script" in l for l in lines)

    def test_failed_baseline_skipped_with_note(self):
        base = _trajectory("base", {"a1": _experiment(1.0, ok=False)})
        new = _trajectory("new", {"a1": _experiment(5.0)})
        lines, failures = compare.compare(base, new)
        assert not failures
        assert any("skipped (baseline run failed)" in l for l in lines)

    def test_missing_and_new_experiments_do_not_crash(self):
        base = _trajectory("base", {"gone": _experiment(1.0)})
        new = _trajectory("new", {"added": _experiment(1.0)})
        lines, failures = compare.compare(base, new, allow_missing=True)
        assert not failures
        assert any("MISSING" in l for l in lines)
        assert any(l.startswith("added") and "new" in l for l in lines)


class TestProfileSchema:
    def test_valid_profile_section_passes(self):
        data = _trajectory("ok", {"a1": _experiment(1.0, {"script": 0.5})})
        compare.check_schema(data)

    def test_profileless_trajectory_still_valid(self):
        data = _trajectory("ok", {"a1": _experiment(1.0)})
        compare.check_schema(data)

    def test_bad_profile_schema_rejected(self):
        data = _trajectory("bad", {"a1": _experiment(1.0, {"script": 0.5})})
        data["experiments"]["a1"]["profile"]["schema"] = "nope/9"
        with pytest.raises(compare.SchemaError):
            compare.check_schema(data)

    def test_phase_missing_seconds_rejected(self):
        data = _trajectory("bad", {"a1": _experiment(1.0, {"script": 0.5})})
        del data["experiments"]["a1"]["profile"]["phases"]["script"]["seconds"]
        with pytest.raises(compare.SchemaError):
            compare.check_schema(data)

    def test_phase_missing_calls_rejected(self):
        data = _trajectory("bad", {"a1": _experiment(1.0, {"script": 0.5})})
        del data["experiments"]["a1"]["profile"]["phases"]["script"]["calls"]
        with pytest.raises(compare.SchemaError):
            compare.check_schema(data)


class TestRunnerIntegration:
    def test_run_experiment_embeds_profile(self):
        import runner

        obs.enable()
        record = runner.run_experiment(
            "bench_f2_conditionals", max_rounds=1, profile=True
        )
        assert record["ok"], record.get("error")
        profile = record["profile"]
        assert profile["schema"] == PROFILE_SCHEMA
        assert profile["phases"], "expected phase activity in F2"
        assert all(phase in PHASE_NAMES for phase in profile["phases"])

    def test_run_experiment_without_profile_has_no_section(self):
        import runner

        obs.enable()
        record = runner.run_experiment(
            "bench_f2_conditionals", max_rounds=1, profile=False
        )
        assert record["ok"]
        assert "profile" not in record
