"""Causal trace propagation: the relay tree from the event log alone.

The ISSUE acceptance property: for a mined block in a >=20-node seeded
run, the full propagation tree — who heard it from whom, at which hop,
after how long — must be reconstructable purely from ``relay.hop``
events, with first-seen latency monotone along every tree path.
"""

import pytest

from repro import obs

pytestmark = pytest.mark.obs

NODE_COUNT = 20
DURATION = 6 * 3600.0
BLOCK_INTERVAL = 600.0
SEED = 17


@pytest.fixture
def enabled(manual_clock):
    obs.enable()
    obs.reset()
    return manual_clock


def _run_swarm():
    from repro.bitcoin.network import PoissonMiner, Simulation, build_network
    from repro.bitcoin.pow import block_work, target_to_bits

    # The default ring is sized for unit tests; hold every hop of the run.
    previous = obs.set_event_log(
        obs.EventLog(capacity=200_000, clock=obs.clock)
    )
    try:
        sim = Simulation(seed=SEED)
        nodes = build_network(sim, NODE_COUNT)
        rate = block_work(target_to_bits(2**252)) / BLOCK_INTERVAL
        miner = PoissonMiner(nodes[0], rate, miner_id=1)
        miner.start()
        sim.run_until(DURATION)
        events = obs.events().snapshot()
    finally:
        obs.set_event_log(previous)
    return nodes, events


def _block_trees(events):
    """trace -> {origin, origin_time, first_seen: node -> event-data}.

    Built from relay.hop events alone — no simulator state consulted.
    """
    trees = {}
    for event in events:
        if event["kind"] != "relay.hop":
            continue
        data = event["data"]
        if not data["trace"].startswith("blk"):
            continue
        tree = trees.setdefault(
            data["trace"], {"origin": None, "origin_time": None,
                            "first_seen": {}, "hops": 0}
        )
        tree["hops"] += 1
        if data["hop"] == 0:
            if tree["origin"] is None:
                tree["origin"] = data["to"]
                tree["origin_time"] = data["sim_time"]
            continue
        if data["to"] == tree["origin"]:
            continue  # the miner's own block echoed back: redundant
        tree["first_seen"].setdefault(data["to"], data)
    return trees


class TestPropagationTree:
    def test_tree_reconstructable_from_event_log_alone(self, enabled):
        _nodes, events = _run_swarm()
        trees = _block_trees(events)
        assert trees, "the run must mine at least one block"

        # Blocks mined well before the cutoff have fully propagated.
        settled = {
            trace: tree
            for trace, tree in trees.items()
            if tree["origin_time"] is not None
            and tree["origin_time"] < DURATION - BLOCK_INTERVAL
        }
        assert len(settled) >= 10

        for trace, tree in settled.items():
            origin = tree["origin"]
            first_seen = tree["first_seen"]
            # Every other node heard of the block.
            assert len(first_seen) == NODE_COUNT - 1, trace
            assert origin not in first_seen

            for node, data in first_seen.items():
                parent = data["from"]
                # The sender is the origin or another node that itself
                # first heard the block earlier — the edges form a tree
                # rooted at the miner.
                if parent == origin:
                    parent_hop = 0
                    parent_time = tree["origin_time"]
                else:
                    assert parent in first_seen, (trace, node, parent)
                    parent_hop = first_seen[parent]["hop"]
                    parent_time = first_seen[parent]["sim_time"]
                # Hop counts grow by exactly one per tree edge, and
                # first-seen latency is monotone along the path.
                assert data["hop"] == parent_hop + 1, (trace, node)
                assert data["sim_time"] >= parent_time, (trace, node)

            # Walking parents from any node terminates at the origin
            # (no cycles: each step strictly decreases the hop count).
            for node in first_seen:
                steps = 0
                while node != origin:
                    node = first_seen[node]["from"]
                    steps += 1
                    assert steps <= NODE_COUNT

    def test_redundant_receives_are_visible(self, enabled):
        _nodes, events = _run_swarm()
        trees = _block_trees(events)
        arrivals = sum(len(t["first_seen"]) for t in trees.values())
        hops = sum(t["hops"] for t in trees.values())
        # A cyclic gossip graph always delivers duplicate copies; the
        # event log must show them, not just the first-seen edges.
        assert hops > arrivals
        assert (
            obs.registry().counter("relay.redundant_total").value > 0
        )

    def test_latencies_scale_sanely(self, enabled):
        _nodes, events = _run_swarm()
        trees = _block_trees(events)
        latencies = [
            data["sim_time"] - tree["origin_time"]
            for tree in trees.values()
            if tree["origin_time"] is not None
            for data in tree["first_seen"].values()
        ]
        assert latencies
        assert all(lat >= 0 for lat in latencies)
        # 2 s mean per hop over a ~20-node ring-plus-chords: even the
        # slowest arrival sits far below a block interval.
        assert max(latencies) < BLOCK_INTERVAL


class TestNoEchoToOrigin:
    """PR 10's headline bugfix: a node never relays a block or tx back
    to the peer it first arrived from.  Pre-fix, every arrival was echoed
    upstream, doubling relay traffic (it showed up as one extra redundant
    ``relay.hop`` receive per delivered copy)."""

    def _orphaned_suffixes(self, events):
        """8-hex-char hash prefixes of blocks that were ever parked as
        orphans — their adoption re-relays with no origin, so the echo
        accounting below doesn't apply to them."""
        return {
            event["data"]["hash"].hex()[:8]
            for event in events
            if event["kind"] == "orphan.parked"
        }

    def test_two_node_line_has_zero_redundant_receives(self, enabled):
        from repro.bitcoin.network import (
            PoissonMiner,
            Simulation,
            build_network,
        )
        from repro.bitcoin.pow import block_work, target_to_bits

        sim = Simulation(seed=5)
        nodes = build_network(sim, 2)
        rate = block_work(target_to_bits(2**252)) / BLOCK_INTERVAL
        miner = PoissonMiner(nodes[0], rate, miner_id=1)
        miner.start()
        sim.run_until(4 * 3600.0)
        assert nodes[0].chain.height > 0
        assert nodes[1].chain.height == nodes[0].chain.height
        # On a 2-node line the only possible duplicate is the echo; with
        # the origin excluded there must be none at all.
        assert obs.registry().counter("relay.redundant_total").value == 0

    def test_swarm_relays_exactly_degree_minus_origin(self, enabled):
        _nodes, events = _run_swarm()
        orphaned = self._orphaned_suffixes(events)
        trees = _block_trees(events)
        settled = {
            trace: tree
            for trace, tree in trees.items()
            if tree["origin_time"] is not None
            and tree["origin_time"] < DURATION - BLOCK_INTERVAL
            and trace.rsplit("-", 1)[-1] not in orphaned
        }
        assert len(settled) >= 10
        # Ring-plus-chords over 20 nodes: 30 edges, degree sum 60.  Each
        # non-origin node forwards to its degree-1 non-origin peers, the
        # miner to all of its peers, so every settled block generates
        # exactly 60 - 19 = 41 deliveries (+1 hop-0 origin event).  The
        # pre-fix echo relayed to *every* peer: 60 sends, 61 hop events —
        # this pin is the recorded drop.
        degree_sum = sum(len(n.peers) for n in _nodes)
        assert degree_sum == 60
        expected_hops = degree_sum - (NODE_COUNT - 1) + 1
        for trace, tree in settled.items():
            assert tree["hops"] == expected_hops, trace

    def test_swarm_never_echoes_to_first_seen_origin(self, enabled):
        _nodes, events = _run_swarm()
        orphaned = self._orphaned_suffixes(events)
        first_seen = {}  # (trace, node) -> the node's first-seen sender
        origins = {}  # trace -> miner (its sends are by fiat, not relay)
        for event in events:
            if event["kind"] != "relay.hop":
                continue
            data = event["data"]
            if not data["trace"].startswith("blk"):
                continue
            if data["trace"].rsplit("-", 1)[-1] in orphaned:
                continue
            if data["hop"] == 0:
                origins.setdefault(data["trace"], data["to"])
            elif data["to"] != origins.get(data["trace"]):
                # A late redundant copy delivered *to* the miner must not
                # count as the miner's "first seen" upstream.
                first_seen.setdefault(
                    (data["trace"], data["to"]), data["from"]
                )
        assert first_seen
        for event in events:
            if event["kind"] != "relay.hop":
                continue
            data = event["data"]
            sender = data["from"]
            if data["hop"] == 0 or sender == data["to"]:
                continue
            upstream = first_seen.get((data["trace"], sender))
            # The sender's own first-seen origin must never be a target.
            assert upstream != data["to"], (data["trace"], sender)


class TestTraceMinting:
    def test_trace_ids_deterministic_and_idempotent(self, enabled):
        from repro.bitcoin.network import Simulation

        sim = Simulation(seed=1)
        first = sim.mint_trace("blk", b"\xaa" * 32)
        again = sim.mint_trace("blk", b"\xaa" * 32)
        other = sim.mint_trace("tx", b"\xbb" * 32)
        assert first == again == "blk1-aaaaaaaa"
        assert other == "tx2-bbbbbbbb"

    def test_local_submission_mints_tx_trace(self, enabled):
        from repro.bitcoin.chain import ChainParams
        from repro.bitcoin.network import Node, Simulation
        from repro.bitcoin.standard import p2pkh_script
        from repro.bitcoin.transaction import OutPoint, TxIn, TxOut

        sim = Simulation(seed=2)
        params = ChainParams(
            max_target=2**252, retarget_window=2**31, require_pow=False
        )
        node = Node("w", sim, params)
        # The trace starts at local submission, before mempool policy
        # gets a say — even a rejected transaction leaves a hop-0 event.
        from repro.bitcoin.transaction import Transaction

        tx = Transaction(
            vin=[TxIn(OutPoint(b"\xcd" * 32, 0))],
            vout=[TxOut(50_000, p2pkh_script(b"\x11" * 20))],
        )
        node.submit_transaction(tx)
        trace = sim.trace_ids[tx.txid]
        assert trace.startswith("tx")
        hops = [
            e for e in obs.events().snapshot() if e["kind"] == "relay.hop"
        ]
        assert [e["data"]["trace"] for e in hops] == [trace]
        assert hops[0]["data"]["hop"] == 0
        assert hops[0]["data"]["from"] == hops[0]["data"]["to"] == "w"
