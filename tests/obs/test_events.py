"""The structured event log: schema, ring buffer, sinks, integration."""

import io
import json

import pytest

from repro import obs
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    SUPPORTED_EVENT_SCHEMA_VERSIONS,
    EventLog,
    EventSchemaError,
    validate_event,
)

pytestmark = pytest.mark.obs


class TestEmit:
    def test_emit_returns_validated_event(self):
        log = EventLog(clock=lambda: 1.5)
        event = log.emit("tx.accepted", txid=b"\xab\xcd", fee=100, size=250)
        assert event.seq == 0
        assert event.ts == 1.5
        assert event.kind == "tx.accepted"
        assert event.data == {"txid": "abcd", "fee": 100, "size": 250}

    def test_sequence_numbers_increase(self):
        log = EventLog()
        first = log.emit("proof.checked", outcome="ok")
        second = log.emit("proof.checked", outcome="ok")
        assert (first.seq, second.seq) == (0, 1)

    def test_unknown_kind_raises(self):
        log = EventLog()
        with pytest.raises(EventSchemaError, match="unknown event kind"):
            log.emit("tx.acepted", txid=b"", fee=0, size=0)

    def test_missing_required_field_raises(self):
        log = EventLog()
        with pytest.raises(EventSchemaError, match="missing payload"):
            log.emit("tx.rejected", txid=b"\x01")

    def test_extra_fields_allowed(self):
        log = EventLog()
        event = log.emit("proof.checked", outcome="ok", carrier="ff")
        assert event.data["carrier"] == "ff"

    def test_bytes_become_hex_and_objects_become_strings(self):
        log = EventLog()
        event = log.emit(
            "tx.rejected", txid=b"\x00\xff", reason=ValueError("bad fee")
        )
        assert event.data == {"txid": "00ff", "reason": "bad fee"}


class TestRingBuffer:
    def test_overflow_drops_oldest_and_counts(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.emit("proof.checked", outcome=f"run-{index}")
        assert len(log) == 3
        assert log.dropped == 2
        outcomes = [event.data["outcome"] for event in log.events]
        assert outcomes == ["run-2", "run-3", "run-4"]
        # Sequence numbers keep counting across drops.
        assert [event.seq for event in log.events] == [2, 3, 4]

    def test_capacity_one(self):
        log = EventLog(capacity=1)
        log.emit("proof.checked", outcome="a")
        log.emit("proof.checked", outcome="b")
        assert [e.data["outcome"] for e in log.events] == ["b"]
        assert log.dropped == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_clear_resets_everything(self):
        log = EventLog(capacity=2)
        for _ in range(4):
            log.emit("proof.checked", outcome="ok")
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0
        assert log.emit("proof.checked", outcome="ok").seq == 0


class TestSerialization:
    def test_jsonl_round_trip_validates(self):
        log = EventLog(clock=lambda: 2.0)
        log.emit("tx.accepted", txid=b"\x01", fee=10, size=100)
        log.emit("block.connected", hash=b"\x02", height=1, txs=2)
        log.emit("chain.reorg", depth=2, fork_height=5)
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 3
        for line in lines:
            parsed = json.loads(line)
            validate_event(parsed)  # raises on any schema violation
            assert parsed["v"] == EVENT_SCHEMA_VERSION

    def test_every_catalogued_kind_round_trips(self):
        log = EventLog()
        for kind, required in EVENT_KINDS.items():
            log.emit(kind, **{name: "x" for name in required})
        for line in log.to_jsonl().splitlines():
            validate_event(json.loads(line))

    def test_write_jsonl(self, tmp_path):
        log = EventLog()
        log.emit("proof.checked", outcome="ok")
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(str(path)) == 1
        validate_event(json.loads(path.read_text().strip()))

    def test_streaming_sink_sees_dropped_events(self):
        sink = io.StringIO()
        log = EventLog(capacity=1, sink=sink)
        log.emit("proof.checked", outcome="first")
        log.emit("proof.checked", outcome="second")
        lines = sink.getvalue().splitlines()
        # The ring kept only the second event, but the sink streamed both.
        assert len(lines) == 2
        assert json.loads(lines[0])["data"]["outcome"] == "first"

    def test_snapshot_is_jsonable(self):
        log = EventLog()
        log.emit("orphan.parked", hash=b"\x01", parent=b"\x02")
        snap = log.snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestValidateEvent:
    def base(self) -> dict:
        return {
            "v": EVENT_SCHEMA_VERSION,
            "seq": 0,
            "ts": 0.0,
            "kind": "proof.checked",
            "data": {"outcome": "ok"},
        }

    def test_valid(self):
        validate_event(self.base())

    @pytest.mark.parametrize("field", ["v", "seq", "ts", "kind", "data"])
    def test_missing_envelope_field(self, field):
        event = self.base()
        del event[field]
        with pytest.raises(EventSchemaError):
            validate_event(event)

    def test_wrong_version(self):
        event = self.base()
        event["v"] = EVENT_SCHEMA_VERSION + 1
        with pytest.raises(EventSchemaError, match="schema version"):
            validate_event(event)

    def test_unknown_kind(self):
        event = self.base()
        event["kind"] = "nope"
        with pytest.raises(EventSchemaError, match="unknown event kind"):
            validate_event(event)

    def test_missing_payload_field(self):
        event = self.base()
        event["data"] = {}
        with pytest.raises(EventSchemaError, match="missing payload"):
            validate_event(event)

    def test_negative_seq(self):
        event = self.base()
        event["seq"] = -1
        with pytest.raises(EventSchemaError):
            validate_event(event)


class TestSchemaV2:
    """The v2 bump: new swarm-telemetry kinds, v1 events still accepted."""

    def test_current_version_is_four(self):
        assert EVENT_SCHEMA_VERSION == 4
        assert SUPPORTED_EVENT_SCHEMA_VERSIONS == (1, 2, 3, 4)

    def test_v1_event_still_validates(self):
        # An event written by a pre-PR-6 run must keep round-tripping.
        validate_event({
            "v": 1,
            "seq": 3,
            "ts": 1.0,
            "kind": "block.connected",
            "data": {"hash": "ab", "height": 1, "txs": 1},
        })

    @pytest.mark.parametrize(
        "kind, payload",
        [
            (
                "relay.hop",
                {"trace": "blk0-aabbccdd", "from": "node0",
                 "to": "node1", "hop": 1, "sim_time": 2.5},
            ),
            ("monitor.violation", {"monitor": "supply", "detail": "x"}),
            ("node.crash", {"node": "node0", "open_spans": 2}),
            ("fault.inflation", {"node": "node0", "amount": 50}),
        ],
    )
    def test_new_kinds_round_trip(self, kind, payload):
        log = EventLog()
        log.emit(kind, **payload)
        parsed = json.loads(log.to_jsonl().strip())
        validate_event(parsed)
        assert parsed["v"] == EVENT_SCHEMA_VERSION
        assert parsed["data"] == payload

    def test_new_kinds_reject_v1(self):
        # v1 writers never produced these kinds; flagging a mixed file
        # early beats silently accepting an impossible combination.
        event = {
            "v": 1,
            "seq": 0,
            "ts": 0.0,
            "kind": "relay.hop",
            "data": {"trace": "t", "from": "a", "to": "b",
                     "hop": 0, "sim_time": 0.0},
        }
        with pytest.raises(EventSchemaError, match="introduced in"):
            validate_event(event)


class TestSchemaV3:
    """The v3 bump: verification-service kinds, older events accepted."""

    @pytest.mark.parametrize(
        "kind, payload",
        [
            ("service.verdict", {"status": "ok", "degraded": False}),
            ("service.breaker_transition", {"state": "open"}),
            ("service.pool_respawn", {"pending": 3}),
            ("service.poison_rejected", {"txid": "aabbccdd"}),
            ("service.shed", {"inflight": 4, "reason": "overloaded"}),
            ("service.degraded", {"reason": "breaker_open"}),
            ("script.pool_broken", {"groups": 7}),
        ],
    )
    def test_new_kinds_round_trip(self, kind, payload):
        log = EventLog()
        log.emit(kind, **payload)
        parsed = json.loads(log.to_jsonl().strip())
        validate_event(parsed)
        assert parsed["v"] == EVENT_SCHEMA_VERSION
        assert parsed["data"] == payload

    def test_new_kinds_reject_v2(self):
        event = {
            "v": 2,
            "seq": 0,
            "ts": 0.0,
            "kind": "service.verdict",
            "data": {"status": "ok", "degraded": False},
        }
        with pytest.raises(EventSchemaError, match="introduced in schema v3"):
            validate_event(event)

    def test_v2_event_still_validates(self):
        validate_event({
            "v": 2,
            "seq": 1,
            "ts": 0.5,
            "kind": "relay.hop",
            "data": {"trace": "t", "from": "a", "to": "b",
                     "hop": 0, "sim_time": 0.0},
        })


class TestSchemaV4:
    """The v4 bump: compact-relay kinds, older events accepted."""

    @pytest.mark.parametrize(
        "kind, payload",
        [
            (
                "compact.received",
                {"node": "node0", "hash": "ab", "txs": 10, "missing": 2},
            ),
            (
                "compact.getblocktxn",
                {"node": "node0", "peer": "node1", "hash": "ab",
                 "indexes": 2},
            ),
            (
                "compact.fallback",
                {"node": "node0", "hash": "ab", "reason": "timeout"},
            ),
            (
                "compact.withheld",
                {"node": "node0", "peer": "node1", "hash": "ab"},
            ),
        ],
    )
    def test_new_kinds_round_trip(self, kind, payload):
        log = EventLog()
        log.emit(kind, **payload)
        parsed = json.loads(log.to_jsonl().strip())
        validate_event(parsed)
        assert parsed["v"] == EVENT_SCHEMA_VERSION
        assert parsed["data"] == payload

    def test_new_kinds_reject_v3(self):
        event = {
            "v": 3,
            "seq": 0,
            "ts": 0.0,
            "kind": "compact.fallback",
            "data": {"node": "a", "hash": "ab", "reason": "timeout"},
        }
        with pytest.raises(EventSchemaError, match="introduced in schema v4"):
            validate_event(event)

    def test_v3_event_still_validates(self):
        validate_event({
            "v": 3,
            "seq": 1,
            "ts": 0.5,
            "kind": "service.verdict",
            "data": {"status": "ok", "degraded": False},
        })


class TestObsIntegration:
    def test_emit_helper_uses_default_log(self):
        obs.enable()
        obs.emit("proof.checked", outcome="ok")
        assert len(obs.events()) == 1

    def test_emit_uses_obs_clock(self, manual_clock):
        obs.enable()
        manual_clock.advance(42.0)
        obs.emit("proof.checked", outcome="ok")
        assert obs.events().events[-1].ts == 42.0

    def test_snapshot_includes_events(self):
        obs.enable()
        obs.reset()
        obs.emit("tx.accepted", txid=b"\x01", fee=1, size=1)
        snap = obs.snapshot()
        assert snap["events_dropped"] == 0
        assert [e["kind"] for e in snap["events"]] == ["tx.accepted"]
        for event in snap["events"]:
            validate_event(event)

    def test_reset_clears_events(self):
        obs.enable()
        obs.emit("proof.checked", outcome="ok")
        obs.reset()
        assert len(obs.events()) == 0


class TestPipelineEmitsEvents:
    """End-to-end: a regtest run produces a valid, ordered event stream."""

    def test_regtest_transfer_event_stream(self):
        from repro.bitcoin.regtest import RegtestNetwork
        from repro.bitcoin.standard import p2pkh_script
        from repro.bitcoin.transaction import TxOut
        from repro.bitcoin.wallet import Wallet

        obs.enable()
        obs.reset()
        net = RegtestNetwork()
        wallet = Wallet.from_seed(b"events-e2e")
        net.fund_wallet(wallet, blocks=2)
        tx = wallet.create_transaction(
            net.chain, [TxOut(600, p2pkh_script(wallet.key_hash))], fee=10_000
        )
        net.send(tx)
        net.confirm(1)

        snap = obs.snapshot()
        kinds = [event["kind"] for event in snap["events"]]
        assert "tx.accepted" in kinds
        assert "block.connected" in kinds
        for event in snap["events"]:
            validate_event(event)
        # Sequence numbers are strictly increasing (minus any drops).
        seqs = [event["seq"] for event in snap["events"]]
        assert seqs == sorted(seqs)
        accepted = next(
            e for e in snap["events"] if e["kind"] == "tx.accepted"
        )
        assert accepted["data"]["txid"] == tx.txid.hex()

    def test_mempool_rejection_event_carries_reason(self):
        from repro.bitcoin.mempool import MempoolError
        from repro.bitcoin.regtest import RegtestNetwork
        from repro.bitcoin.standard import p2pkh_script
        from repro.bitcoin.transaction import TxOut
        from repro.bitcoin.wallet import Wallet

        obs.enable()
        obs.reset()
        net = RegtestNetwork()
        wallet = Wallet.from_seed(b"events-reject")
        net.fund_wallet(wallet, blocks=2)
        tx = wallet.create_transaction(
            net.chain, [TxOut(600, p2pkh_script(wallet.key_hash))], fee=10_000
        )
        net.send(tx)
        with pytest.raises(MempoolError):
            net.send(tx)  # duplicate submission
        rejected = [
            e for e in obs.snapshot()["events"] if e["kind"] == "tx.rejected"
        ]
        assert rejected
        assert "already in mempool" in rejected[-1]["data"]["reason"]
