"""The HTTP exporter: content types, label escaping, deterministic
snapshot ordering, and clean shutdown with a request in flight."""

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.profile import parse_folded
from repro.obs.serve import PROMETHEUS_CONTENT_TYPE, ObsServer, render_phase_text

pytestmark = pytest.mark.obs


@pytest.fixture
def server():
    obs.enable()
    srv = ObsServer()
    yield srv
    srv.close()


def _get(srv, path):
    return urllib.request.urlopen(srv.url + path, timeout=5)


class TestMetrics:
    def test_content_type_is_prometheus_text(self, server):
        response = _get(server, "/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain; version=0.0.4")

    def test_registry_series_exposed(self, server):
        obs.inc("script.ops_total", 7)
        body = _get(server, "/metrics").read().decode()
        assert "script_ops_total 7" in body

    def test_phase_series_exposed_with_profiler(self, server, manual_clock):
        prof = obs.PhaseProfiler(clock=manual_clock)
        obs.set_profiler(prof)
        prof.enter("script")
        manual_clock.advance(0.5)
        prof.exit()
        body = _get(server, "/metrics").read().decode()
        assert 'repro_phase_self_seconds{phase="script"} 0.5' in body
        assert 'repro_phase_calls_total{phase="script"} 1' in body

    def test_label_escaping_matches_series_name_vectors(self):
        """The PR6 escaping vectors, applied to phase labels: quotes,
        backslashes, and newlines must be escaped in label values."""
        profile = {
            "schema": "repro.profile/1",
            "track_alloc": False,
            "phases": {
                'bad "input"': {"seconds": 1.0, "calls": 1},
                "a\\b": {"seconds": 1.0, "calls": 1},
                "x\ny": {"seconds": 1.0, "calls": 1},
            },
        }
        text = render_phase_text(profile)
        assert 'phase="bad \\"input\\""' in text
        assert 'phase="a\\\\b"' in text
        assert 'phase="x\\ny"' in text
        # No raw newline may survive inside a label value.
        for line in text.splitlines():
            assert line.count('"') % 2 == 0

    def test_alloc_series_only_when_tracked(self):
        profile = {
            "schema": "repro.profile/1",
            "track_alloc": True,
            "phases": {"parse": {"seconds": 0.1, "calls": 2,
                                 "alloc_bytes": 4096}},
        }
        text = render_phase_text(profile)
        assert 'repro_phase_alloc_bytes{phase="parse"} 4096' in text
        no_alloc = {
            "schema": "repro.profile/1",
            "track_alloc": False,
            "phases": {"parse": {"seconds": 0.1, "calls": 2}},
        }
        assert "alloc_bytes" not in render_phase_text(no_alloc)


class TestSnapshot:
    def test_snapshot_json_is_deterministic(self, server, manual_clock):
        prof = obs.PhaseProfiler(clock=manual_clock)
        obs.set_profiler(prof)
        obs.inc("verify.claims_total")
        prof.enter("core_verify")
        manual_clock.advance(0.25)
        prof.exit()
        first = _get(server, "/snapshot.json").read()
        second = _get(server, "/snapshot.json").read()
        assert first == second  # byte-identical across scrapes of same state
        data = json.loads(first)
        assert data["counters"]["verify.claims_total"] == 1
        assert data["profile"]["phases"]["core_verify"]["calls"] == 1
        # sort_keys=True: top-level keys arrive sorted.
        raw_keys = list(data)
        assert raw_keys == sorted(raw_keys)

    def test_snapshot_without_profiler_has_no_profile_section(self, server):
        data = json.loads(_get(server, "/snapshot.json").read())
        assert "profile" not in data

    def test_content_type_json(self, server):
        response = _get(server, "/snapshot.json")
        assert response.headers["Content-Type"].startswith("application/json")


class TestFolded:
    def test_404_without_sampler(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/profile.folded")
        assert excinfo.value.code == 404

    def test_serves_sampler_output(self, server):
        sampler = obs.StackSampler()
        obs.set_sampler(sampler)

        def busy():
            return sum(range(5000))

        with sampler:
            for _ in range(20):
                busy()
        body = _get(server, "/profile.folded").read().decode()
        entries = parse_folded(body)
        assert entries  # valid collapsed-stack, non-empty
        assert any("busy" in ";".join(frames) for frames, _ in entries)


class TestLifecycle:
    def test_unknown_path_404s(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404

    def test_close_is_idempotent_and_prompt(self):
        obs.enable()
        srv = ObsServer()
        srv.close()
        srv.close()  # second close must not raise
        with pytest.raises((ConnectionRefusedError, urllib.error.URLError, OSError)):
            urllib.request.urlopen(srv.url + "/metrics", timeout=1)

    def test_clean_shutdown_mid_request(self):
        """Open a connection, send nothing, and close the server while the
        handler thread is blocked reading the request line: close() must
        return promptly instead of joining the stuck handler."""
        obs.enable()
        srv = ObsServer()
        conn = http.client.HTTPConnection(srv.host, srv.port, timeout=5)
        conn.connect()  # handler thread now blocks waiting for a request
        closer = threading.Thread(target=srv.close)
        closer.start()
        closer.join(timeout=10)
        assert not closer.is_alive(), "close() hung on an in-flight request"
        conn.close()

    def test_concurrent_servers_do_not_share_state(self):
        obs.enable()
        with ObsServer() as a, ObsServer() as b:
            assert a.port != b.port
            assert json.loads(_get(a, "/snapshot.json").read()) == json.loads(
                _get(b, "/snapshot.json").read()
            )


class TestHealthz:
    def test_ready_while_serving(self, server):
        response = _get(server, "/healthz")
        assert response.status == 200
        payload = json.loads(response.read())
        assert payload["ready"] is True
        assert payload["draining"] is False
        # This very request is the one in flight.
        assert payload["inflight"] >= 1

    def test_health_source_fields_merge_and_gate_readiness(self):
        obs.enable()
        state = {"ready": True, "breaker": "closed"}
        with ObsServer(health_source=lambda: dict(state)) as srv:
            payload = json.loads(_get(srv, "/healthz").read())
            assert payload["breaker"] == "closed"
            assert payload["ready"] is True
            state["ready"] = False
            state["breaker"] = "open"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(srv, "/healthz")
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read())
            assert payload["breaker"] == "open"
            assert payload["ready"] is False
            # The exporter itself is fine: only the app gated readiness.
            assert payload["draining"] is False

    def test_draining_exporter_reports_not_ready(self):
        obs.enable()
        srv = ObsServer()
        try:
            with srv._inflight_cv:
                srv._draining = True
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(srv, "/healthz")
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["draining"] is True
        finally:
            srv.close(drain=False)

    def test_drain_waits_for_inflight_request(self):
        """A scrape racing close() completes instead of dying on a reset
        socket: close() blocks until the gated handler writes its reply."""
        obs.enable()
        entered = threading.Event()
        release = threading.Event()

        def gated_source():
            entered.set()
            assert release.wait(timeout=10)
            return {"ready": True}

        srv = ObsServer(health_source=gated_source)
        result = {}

        def scrape():
            try:
                result["payload"] = json.loads(_get(srv, "/healthz").read())
            except urllib.error.HTTPError as exc:  # 503 is still a reply
                result["payload"] = json.loads(exc.read())

        scraper = threading.Thread(target=scrape)
        scraper.start()
        assert entered.wait(timeout=10)  # handler is now mid-request
        closer = threading.Thread(target=srv.close)
        closer.start()
        closer.join(timeout=0.3)
        assert closer.is_alive(), "close() must drain, not abandon"
        release.set()
        closer.join(timeout=10)
        scraper.join(timeout=10)
        assert not closer.is_alive()
        assert "payload" in result and "inflight" in result["payload"]
