"""End-to-end instrumentation: the pipeline populates the catalogue.

One Typecoin transaction travels build → mempool → block → ledger apply →
claim verification with observability on, and every layer's series fills.
"""

import pytest

from repro import obs
from repro.bitcoin.chain import Blockchain, ChainParams
from repro.bitcoin.miner import Miner
from repro.bitcoin.network import (
    STOP_DRAINED,
    STOP_TIME_LIMIT,
    PoissonMiner,
    Simulation,
    build_network,
)
from repro.bitcoin.pow import block_work, target_to_bits
from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.transaction import OutPoint
from repro.bitcoin.wallet import Wallet
from repro.core.builder import simple_transfer
from repro.core.transaction import TypecoinOutput
from repro.core.validate import Ledger
from repro.core.verifier import verify_claim
from repro.core.wallet import TypecoinClient
from repro.logic.propositions import One
from repro.obs.report import render_report, render_trace

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def enabled():
    obs.enable()


def run_typecoin_flow():
    net = RegtestNetwork()
    client = TypecoinClient(net, b"obs-integration", Ledger())
    net.fund_wallet(client.wallet, blocks=2)
    txn = simple_transfer([], [TypecoinOutput(One(), 600, client.pubkey)])
    carrier = client.submit(txn)
    net.confirm(1)
    client.sync()
    bundle = client.claim_bundle(OutPoint(carrier.txid, 0), One())
    verify_claim(net.chain, bundle)
    return net


class TestFullPipeline:
    def test_series_populate_end_to_end(self):
        run_typecoin_flow()
        snap = obs.snapshot()
        counters = snap["counters"]
        assert counters["script.ops_total"] > 0
        assert counters["script.pushes_total"] > 0
        assert counters["script.executions_total"] > 0
        assert counters["mempool.accepted_total"] >= 1
        assert counters["chain.blocks_connected_total"] > 0
        assert counters["lf.typecheck_total"] > 0
        # A bare One() proof checks structurally without consulting the
        # basis, so the lookup counter is merely present, not nonzero.
        assert "lf.basis_lookups_total" in counters
        assert counters["proof.nodes_total"] > 0
        assert counters["verify.claims_total"] == 1
        assert counters["chain.reorg_total"] == 0
        hists = snap["histograms"]
        assert hists["validation.rule_seconds"]["count"] > 0
        assert hists['validation.rule_seconds{rule="scripts"}']["count"] > 0
        assert hists["proof.check_seconds"]["count"] >= 1
        assert hists["ledger.apply_seconds"]["count"] >= 1
        assert hists["chain.connect_seconds"]["count"] > 0
        assert snap["gauges"]["utxo.set_size"] > 0
        assert snap["gauges"]["script.stack_depth_hwm"] >= 2

    def test_spans_nest_proof_check_under_verify_claim(self):
        run_typecoin_flow()
        spans = {span.name: span for span in obs.spans()}
        assert "chain.connect_block" in spans
        verify_span = spans["verify.claim"]
        proof_spans = [s for s in obs.spans() if s.name == "proof.check"]
        assert proof_spans
        # At least one proof check ran inside the claim verification.
        nested = [s for s in proof_spans if s.parent == verify_span.span_id]
        assert nested
        assert all(s.depth == verify_span.depth + 1 for s in nested)

    def test_report_renders(self):
        run_typecoin_flow()
        report = render_report()
        assert "script.ops_total" in report
        assert "validation.rule_seconds" in report
        trace = render_trace()
        assert "verify.claim" in trace

    def test_render_text_exposes_pipeline_series(self):
        run_typecoin_flow()
        text = obs.render_text()
        assert "script_ops_total" in text
        assert "validation_rule_seconds_bucket" in text


class TestReorgMetrics:
    def test_reorg_counted_with_depth(self):
        params = ChainParams(
            max_target=2**252, retarget_window=2**31, require_pow=False
        )
        main = Blockchain(params)
        rival = Blockchain(params)  # same deterministic genesis
        key = Wallet.from_seed(b"obs-reorg").key_hash
        Miner(main, key).mine_block(extra_nonce=1)
        rival_blocks = [
            Miner(rival, key).mine_block(extra_nonce=nonce)
            for nonce in (2, 3)
        ]
        before = obs.registry().counter("chain.reorg_total").value
        for block in rival_blocks:
            main.add_block(block)
        assert main.height == 2
        assert obs.registry().counter("chain.reorg_total").value == before + 1
        depth = obs.registry().histogram("chain.reorg_depth", obs.COUNT_BUCKETS)
        assert depth.count >= 1
        assert obs.registry().counter("chain.blocks_disconnected_total").value >= 1


class TestNetworkMetrics:
    def test_propagation_latency_and_events(self):
        sim = Simulation(seed=7)
        nodes = build_network(sim, 4)
        rate = block_work(target_to_bits(2**252)) / 600.0
        miner = PoissonMiner(nodes[0], rate, miner_id=1)
        miner.start()
        reason = sim.run_until(7200)
        assert reason in (STOP_DRAINED, STOP_TIME_LIMIT)
        snap = obs.snapshot()
        assert snap["counters"]["net.events_total"] > 0
        assert snap["counters"]["net.events_total"] == sim.events_processed
        assert snap["counters"]["net.blocks_relayed_total"] > 0
        propagation = snap["histograms"]["net.block_propagation_seconds"]
        assert propagation["count"] > 0
        # Remote nodes see blocks strictly later than they were mined.
        assert propagation["sum"] > 0
        assert all(node.chain.height > 0 for node in nodes)
