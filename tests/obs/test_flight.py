"""Flight recorder: arming, bundle layout, dump caps, and triggers."""

import json

import pytest

from repro import obs
from repro.obs import flight
from repro.obs.flight import FLIGHT_SCHEMA, FlightRecorder

pytestmark = pytest.mark.obs


@pytest.fixture
def enabled(manual_clock):
    obs.enable()
    obs.reset()
    return manual_clock


@pytest.fixture
def armed_recorder(tmp_path):
    """The process-wide recorder armed at tmp_path, disarmed afterwards."""
    recorder = flight.configure(tmp_path, max_dumps=4)
    yield recorder
    flight.disarm()


def _fake_node(name):
    class FakeNode:
        pass

    node = FakeNode()
    node.telemetry = obs.NodeTelemetry(name)
    return node


class TestArming:
    def test_disarmed_trigger_is_noop(self, enabled):
        recorder = FlightRecorder()  # no directory
        assert not recorder.armed
        assert recorder.trigger("anything") is None
        assert recorder.dumps == 0

    def test_configure_arms_and_disarm_resets(self, enabled, tmp_path):
        recorder = flight.configure(tmp_path, max_dumps=2)
        assert recorder.armed
        flight.disarm()
        assert not recorder.armed
        assert flight.trigger("after-disarm") is None

    def test_max_dumps_caps_a_failure_storm(self, enabled, tmp_path):
        recorder = FlightRecorder(tmp_path, max_dumps=2)
        paths = [recorder.trigger(f"storm-{i}") for i in range(5)]
        assert sum(p is not None for p in paths) == 2
        assert recorder.dumps == 2
        assert not recorder.armed


class TestBundleLayout:
    def test_bundle_contains_correlated_artifacts(
        self, enabled, armed_recorder
    ):
        nodes = [_fake_node("n0"), _fake_node("n1")]
        armed_recorder.attach(nodes)
        with obs.node_scope(nodes[0].telemetry):
            obs.inc("chain.blocks_connected_total")
            obs.emit("fault.crash", node="n0")

        bundle = flight.trigger("block.rejected", sim_time=12.5)
        assert bundle is not None and bundle.is_dir()
        assert bundle.name == "flight-000-block.rejected"

        manifest = json.loads((bundle / "MANIFEST.json").read_text())
        assert manifest["schema"] == FLIGHT_SCHEMA
        assert manifest["reason"] == "block.rejected"
        assert manifest["sim_time"] == 12.5
        assert manifest["nodes"] == ["n0", "n1"]
        assert set(manifest["open_spans"]) == {"repro", "n0", "n1"}

        assert (bundle / "events.jsonl").exists()
        assert (bundle / "node-n0.events.jsonl").exists()
        assert (bundle / "node-n1.events.jsonl").exists()
        node_events = [
            json.loads(line)
            for line in (bundle / "node-n0.events.jsonl").read_text().splitlines()
        ]
        assert [e["kind"] for e in node_events] == ["fault.crash"]

        snapshot = json.loads((bundle / "snapshot.json").read_text())
        assert set(snapshot) == {"global", "swarm"}
        counters = snapshot["swarm"]["merged"]["counters"]
        assert counters["chain.blocks_connected_total"] == 1

    def test_trace_json_is_perfetto_loadable_shape(
        self, enabled, armed_recorder
    ):
        armed_recorder.attach([_fake_node("n0")])
        bundle = flight.trigger("monitor.supply")
        trace = json.loads((bundle / "trace.json").read_text())
        assert isinstance(trace["traceEvents"], list)
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert "M" in phases  # process/thread naming metadata
        for event in trace["traceEvents"]:
            assert {"ph", "pid", "tid"} <= set(event)

    def test_reason_slug_sanitized(self, enabled, armed_recorder):
        bundle = flight.trigger("weird reason/with: stuff!")
        assert bundle.name == "flight-000-weird-reason-with-stuff"

    def test_dump_counter_increments(self, enabled, armed_recorder):
        flight.trigger("one")
        flight.trigger("two")
        assert obs.registry().counter("flight.dumps_total").value == 2


class TestTriggers:
    def test_monitor_violation_triggers_dump(self, enabled, armed_recorder):
        from repro.obs.monitor import MonitorRegistry

        registry = MonitorRegistry(enabled=True, strict=False)
        registry.violate("supply", "conjured value")
        bundles = sorted(armed_recorder.directory.glob("flight-*"))
        assert len(bundles) == 1
        assert bundles[0].name.endswith("monitor.supply")

    def test_node_crash_triggers_dump_with_sim_time(
        self, enabled, armed_recorder
    ):
        from repro.bitcoin.chain import ChainParams
        from repro.bitcoin.network import Node, Simulation

        sim = Simulation(seed=9)
        params = ChainParams(
            max_target=2**252, retarget_window=2**31, require_pow=False
        )
        node = Node("doomed", sim, params)
        armed_recorder.attach([node], sim=sim)
        node.crash()
        bundles = sorted(armed_recorder.directory.glob("flight-*"))
        assert len(bundles) == 1
        manifest = json.loads((bundles[0] / "MANIFEST.json").read_text())
        assert manifest["reason"] == "node.crash"
        assert manifest["sim_time"] == sim.now

    def test_inflation_fault_produces_loadable_bundle(
        self, enabled, armed_recorder
    ):
        """The ISSUE acceptance path: injected inflation -> strict monitor
        -> flight bundle whose trace.json Perfetto can open."""
        from repro.bitcoin.chain import ChainParams
        from repro.bitcoin.faults import inject_supply_inflation
        from repro.bitcoin.network import Node, Simulation
        from repro.obs.monitor import InvariantViolation, MonitorRegistry

        sim = Simulation(seed=13)
        params = ChainParams(
            max_target=2**252, retarget_window=2**31, require_pow=False
        )
        node = Node("inflated", sim, params)
        armed_recorder.attach([node], sim=sim)

        inject_supply_inflation(node)
        registry = MonitorRegistry(enabled=True, strict=True)
        with pytest.raises(InvariantViolation):
            registry.check_node(node, force=True)

        bundles = sorted(armed_recorder.directory.glob("flight-*"))
        assert len(bundles) == 1
        trace = json.loads((bundles[0] / "trace.json").read_text())
        assert isinstance(trace["traceEvents"], list)
        assert trace["traceEvents"], "trace must not be empty"
        # The inflation event itself is on the record.
        events = (bundles[0] / "events.jsonl").read_text().splitlines()
        kinds = [json.loads(line)["kind"] for line in events]
        assert "fault.inflation" in kinds
