"""Runtime invariant monitors: sampling, strictness, and the checks."""

import pytest

from repro import obs
from repro.obs.monitor import (
    InvariantViolation,
    MonitorRegistry,
    cumulative_subsidy,
    monitors,
    set_monitors,
)

pytestmark = pytest.mark.obs


class StubUTXOs:
    def __init__(self, total=0, present=()):
        self._total = total
        self._present = set(present)

    def total_value(self):
        return self._total

    def get(self, outpoint):
        return object() if outpoint in self._present else None


class StubTip:
    def __init__(self, chain_work):
        self.chain_work = chain_work


class StubChain:
    def __init__(self, total=0, height=0, work=1, present=()):
        self.utxos = StubUTXOs(total, present)
        self.height = height
        self.tip = StubTip(work)
        self.store = None


class StubMempool:
    def __init__(self, spends=()):
        self._spends = list(spends)

    def spent_outpoints(self):
        return list(self._spends)


class StubNode:
    def __init__(self, chain, spends=()):
        self.name = "stub"
        self.chain = chain
        self.mempool = StubMempool(spends)


class TestCumulativeSubsidy:
    def test_genesis_counts(self):
        from repro.bitcoin.chain import INITIAL_SUBSIDY

        assert cumulative_subsidy(0) == INITIAL_SUBSIDY

    def test_first_era_is_linear(self):
        from repro.bitcoin.chain import HALVING_INTERVAL, INITIAL_SUBSIDY

        assert (
            cumulative_subsidy(HALVING_INTERVAL - 1)
            == HALVING_INTERVAL * INITIAL_SUBSIDY
        )

    def test_halving_boundary(self):
        from repro.bitcoin.chain import HALVING_INTERVAL, INITIAL_SUBSIDY

        assert cumulative_subsidy(HALVING_INTERVAL) == (
            HALVING_INTERVAL * INITIAL_SUBSIDY + INITIAL_SUBSIDY // 2
        )

    def test_matches_per_block_sum(self):
        from repro.bitcoin.chain import block_subsidy

        height = 25
        expected = sum(block_subsidy(h) for h in range(height + 1))
        assert cumulative_subsidy(height) == expected


class TestSamplingAndStrictness:
    def test_disabled_registry_never_checks(self):
        registry = MonitorRegistry(enabled=False)
        chain = StubChain(total=10**18)  # wildly inflated
        assert registry.check_supply(chain, force=True)
        assert registry.checks_run == 0
        assert registry.violations == []

    def test_sample_interval_skips_calls(self):
        registry = MonitorRegistry(enabled=True, sample_interval=4)
        chain = StubChain(total=0)
        for _ in range(8):
            registry.check_supply(chain)
        assert registry.checks_run == 2  # calls 0 and 4

    def test_force_bypasses_sampler(self):
        registry = MonitorRegistry(enabled=True, sample_interval=1000)
        chain = StubChain(total=0)
        registry.check_supply(chain)  # call 0 always runs
        for _ in range(5):
            registry.check_supply(chain, force=True)
        assert registry.checks_run == 6

    def test_normal_mode_counts_and_continues(self):
        registry = MonitorRegistry(enabled=True, strict=False)
        chain = StubChain(total=10**18, height=0)
        assert not registry.check_supply(chain, force=True)
        assert len(registry.violations) == 1
        assert registry.violations[0][0] == "supply"
        assert obs.registry().counter("monitor.violations_total").value == 1

    def test_strict_mode_raises(self):
        registry = MonitorRegistry(enabled=True, strict=True)
        chain = StubChain(total=10**18, height=0)
        with pytest.raises(InvariantViolation, match="supply"):
            registry.check_supply(chain, force=True)

    def test_violation_emits_event(self):
        registry = MonitorRegistry(enabled=True)
        registry.violate("supply", "made-up detail")
        events = obs.events().snapshot()
        assert events[-1]["kind"] == "monitor.violation"
        assert events[-1]["data"]["monitor"] == "supply"

    def test_reset_clears_state(self):
        registry = MonitorRegistry(enabled=True)
        registry.check_supply(StubChain(), force=True)
        registry.violate("supply", "x")
        registry.reset()
        assert registry.checks_run == 0
        assert registry.violations == []

    def test_set_monitors_returns_previous(self):
        fresh = MonitorRegistry(enabled=True)
        previous = set_monitors(fresh)
        try:
            assert monitors() is fresh
        finally:
            set_monitors(previous)


class TestChecks:
    def test_tip_work_monotone_ok(self):
        registry = MonitorRegistry(enabled=True)
        chain = StubChain(work=10)
        assert registry.check_tip_work(chain)
        chain.tip = StubTip(15)
        assert registry.check_tip_work(chain)

    def test_tip_work_regression_detected(self):
        registry = MonitorRegistry(enabled=True)
        chain = StubChain(work=10)
        registry.check_tip_work(chain)
        chain.tip = StubTip(5)
        assert not registry.check_tip_work(chain)
        assert registry.violations[0][0] == "tip_work"

    def test_tip_work_never_sampled_away(self):
        registry = MonitorRegistry(enabled=True, sample_interval=1000)
        chain = StubChain(work=10)
        for _ in range(5):
            registry.check_tip_work(chain)
        assert registry.checks_run == 5

    def test_mempool_disjoint_ok(self):
        outpoint = ("tx", 0)
        chain = StubChain(present=[outpoint])
        node = StubNode(chain, spends=[outpoint])
        registry = MonitorRegistry(enabled=True)
        assert registry.check_mempool_disjoint(node, force=True)

    def test_mempool_conflict_detected(self):
        node = StubNode(StubChain(), spends=[("gone", 1)])
        registry = MonitorRegistry(enabled=True)
        assert not registry.check_mempool_disjoint(node, force=True)
        assert registry.violations[0][0] == "mempool_disjoint"

    def test_store_offsets_uses_chain_store(self):
        class BadStore:
            def snapshot_offsets_consistent(self):
                return False

        chain = StubChain()
        chain.store = BadStore()
        node = StubNode(chain)
        registry = MonitorRegistry(enabled=True)
        assert not registry.check_store_offsets(node, force=True)
        assert registry.violations[0][0] == "store_offsets"

    def test_store_offsets_skip_without_store(self):
        registry = MonitorRegistry(enabled=True)
        assert registry.check_store_offsets(StubNode(StubChain()), force=True)
        assert registry.checks_run == 0


class TestLiveChain:
    """The checks against the real chain, not stubs."""

    def _node(self):
        from repro.bitcoin.chain import ChainParams
        from repro.bitcoin.network import Node, Simulation

        sim = Simulation(seed=5)
        params = ChainParams(
            max_target=2**252, retarget_window=2**31, require_pow=False
        )
        return Node("live", sim, params)

    def test_clean_node_passes_all(self):
        node = self._node()
        registry = MonitorRegistry(enabled=True, strict=True)
        assert registry.check_node(node, force=True)
        assert registry.checks_run >= 2
        assert registry.violations == []

    def test_inflation_fault_caught(self):
        from repro.bitcoin.faults import inject_supply_inflation

        node = self._node()
        inject_supply_inflation(node)
        registry = MonitorRegistry(enabled=True, strict=False)
        assert not registry.check_node(node, force=True)
        assert registry.violations[0][0] == "supply"

    def test_inflation_fault_raises_in_strict(self):
        from repro.bitcoin.faults import inject_supply_inflation

        node = self._node()
        inject_supply_inflation(node)
        registry = MonitorRegistry(enabled=True, strict=True)
        with pytest.raises(InvariantViolation, match="supply"):
            registry.check_node(node, force=True)

    def test_chaos_profile_passes_strict_monitors(self):
        """One chaos profile under strict monitors: zero violations.

        (scripts/monitor_smoke.py covers all four profiles; this keeps
        one representative in the tier-1 suite.)
        """
        from repro.bitcoin.faults import PROFILES, run_chaos

        obs.enable()
        registry = MonitorRegistry(
            enabled=True, strict=True, sample_interval=8
        )
        previous = set_monitors(registry)
        try:
            result = run_chaos(PROFILES["lossy"], seed=7)
        finally:
            set_monitors(previous)
        assert result.converged
        assert result.monitor_checks > 0
        assert result.monitor_violations == 0

    def test_mined_chain_stays_clean(self):
        from repro.bitcoin.network import PoissonMiner
        from repro.bitcoin.pow import block_work, target_to_bits

        node = self._node()
        rate = block_work(target_to_bits(2**252)) / 600.0
        registry = MonitorRegistry(
            enabled=True, strict=True, sample_interval=1
        )
        previous = set_monitors(registry)
        try:
            miner = PoissonMiner(node, rate, miner_id=1)
            miner.start()
            node.sim.run_until(4 * 3600.0)
        finally:
            set_monitors(previous)
        assert node.chain.height > 0
        if obs.ENABLED:  # chain hooks only fire on an instrumented run
            assert registry.checks_run > 0
        assert registry.violations == []
