"""Shared fixtures for observability tests.

Every test in this package runs against a private registry/tracer and has
the global enable flag and clock restored afterwards, so these tests never
leak state into the rest of the suite — which may itself be running with
``REPRO_OBS=1`` (see ``scripts/check.sh``).
"""

import pytest

from repro import obs


class ManualClock:
    """A clock tests advance by hand for deterministic timings."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture(autouse=True)
def obs_sandbox():
    """Isolate each test's observability state and restore the world after."""
    was_enabled = obs.ENABLED
    saved_registry = obs.set_registry(obs.Registry())
    saved_tracer = obs.set_tracer(obs.Tracer())
    # obs.clock (not the default perf_counter) so manual_clock governs
    # event timestamps too.
    saved_events = obs.set_event_log(obs.EventLog(clock=obs.clock))
    saved_profiler = obs.set_profiler(None)
    saved_sampler = obs.set_sampler(None)
    yield
    obs.set_registry(saved_registry)
    obs.set_tracer(saved_tracer)
    obs.set_event_log(saved_events)
    obs.set_profiler(saved_profiler)
    obs.set_sampler(saved_sampler)
    obs.reset_clock()
    obs.ENABLED = was_enabled


@pytest.fixture
def manual_clock():
    clock = ManualClock()
    obs.set_clock(clock)
    return clock
