"""Registry unit tests: counters, gauges, histogram bucket edges,
snapshot determinism, and the Prometheus text exposition."""

import json

import pytest

from repro import obs
from repro.obs.metrics import Histogram, Registry, series_name

pytestmark = pytest.mark.obs


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        reg = Registry()
        reg.inc("a.total")
        reg.inc("a.total", 4)
        assert reg.counter("a.total").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Registry().inc("a.total", -1)

    def test_gauge_set_and_max(self):
        reg = Registry()
        reg.gauge_set("g", 10)
        reg.gauge_set("g", 3)
        assert reg.gauge("g").value == 3
        reg.gauge_max("g", 2)
        assert reg.gauge("g").value == 3
        reg.gauge_max("g", 7)
        assert reg.gauge("g").value == 7

    def test_labeled_counter_keeps_aggregate(self):
        reg = Registry()
        reg.inc("v.total", 2, rule="scripts")
        reg.inc("v.total", 3, rule="structure")
        assert reg.counter("v.total").value == 5
        assert reg.counter('v.total{rule="scripts"}').value == 2

    def test_series_name_sorts_labels(self):
        assert series_name("m", {"b": 1, "a": 2}) == 'm{a="2",b="1"}'

    def test_series_name_escapes_label_values(self):
        # Prometheus text-format escaping: backslash, quote, newline.
        assert (
            series_name("m", {"reason": 'bad "input"'})
            == 'm{reason="bad \\"input\\""}'
        )
        assert series_name("m", {"p": "a\\b"}) == 'm{p="a\\\\b"}'
        assert series_name("m", {"r": "x\ny"}) == 'm{r="x\\ny"}'

    def test_escaped_labels_render_one_line_per_series(self):
        # A newline smuggled through a label value must not split the
        # exposition line (it would corrupt the text format).
        reg = Registry()
        reg.inc("v.total", 1, reason="multi\nline")
        exposition = reg.render_text()
        # render_text sanitizes the metric name (dots -> underscores) but
        # must keep the escaped label value on a single line.
        lines = [l for l in exposition.splitlines() if "v_total{" in l]
        assert lines == ['v_total{reason="multi\\nline"} 1']


class TestHistogramBuckets:
    def test_exact_edge_lands_in_its_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0, 5.0))
        hist.observe(1.0)
        assert hist.counts == [1, 0, 0, 0]
        assert hist.cumulative() == [(1.0, 1), (2.0, 1), (5.0, 1), ("+Inf", 1)]

    def test_between_edges(self):
        hist = Histogram(buckets=(1.0, 2.0, 5.0))
        hist.observe(1.5)
        assert hist.counts == [0, 1, 0, 0]

    def test_overflow_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0, 5.0))
        hist.observe(100.0)
        assert hist.counts == [0, 0, 0, 1]
        assert hist.cumulative()[-1] == ("+Inf", 1)

    def test_sum_count_mean(self):
        hist = Histogram(buckets=(1.0,))
        for value in (0.5, 1.5, 4.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.mean == 2.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))


class TestSnapshot:
    def _populate(self, reg):
        reg.inc("script.ops_total", 7)
        reg.gauge_set("utxo.set_size", 42)
        reg.observe("proof.check_seconds", 0.003, (0.001, 0.01, 0.1))
        reg.observe("proof.check_seconds", 0.2, (0.001, 0.01, 0.1))

    def test_snapshot_deterministic(self):
        first, second = Registry(), Registry()
        self._populate(first)
        self._populate(second)
        assert first.snapshot() == second.snapshot()

    def test_snapshot_json_serializable(self):
        reg = Registry()
        self._populate(reg)
        assert json.loads(json.dumps(reg.snapshot())) == reg.snapshot()

    def test_snapshot_under_fake_clock(self, manual_clock):
        """The full obs.snapshot() (metrics + spans) is identical across
        two identical runs under a fake clock."""
        obs.enable()

        def run():
            obs.reset()
            manual_clock.now = 0.0
            with obs.trace_span("outer", metric="outer.seconds"):
                manual_clock.advance(1.0)
                obs.inc("script.ops_total", 3)
            return obs.snapshot()

        assert run() == run()

    def test_keys_sorted(self):
        reg = Registry()
        reg.inc("z.total")
        reg.inc("a.total")
        assert list(reg.snapshot()["counters"]) == ["a.total", "z.total"]


class TestTextExposition:
    def test_counter_and_gauge_lines(self):
        reg = Registry()
        reg.inc("script.ops_total", 3)
        reg.gauge_set("utxo.set_size", 7)
        text = reg.render_text()
        assert "# TYPE script_ops_total counter" in text
        assert "script_ops_total 3" in text.splitlines()
        assert "# TYPE utxo_set_size gauge" in text
        assert "utxo_set_size 7" in text.splitlines()
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        reg = Registry()
        reg.observe("proof.check_seconds", 0.5, (0.1, 1.0))
        text = reg.render_text()
        lines = text.splitlines()
        assert "# TYPE proof_check_seconds histogram" in lines
        assert 'proof_check_seconds_bucket{le="0.1"} 0' in lines
        assert 'proof_check_seconds_bucket{le="1.0"} 1' in lines
        assert 'proof_check_seconds_bucket{le="+Inf"} 1' in lines
        assert "proof_check_seconds_sum 0.5" in lines
        assert "proof_check_seconds_count 1" in lines

    def test_labeled_series_keep_labels(self):
        reg = Registry()
        reg.inc("validation.tx_total", 2, result="ok")
        text = reg.render_text()
        assert 'validation_tx_total{result="ok"} 2' in text.splitlines()


class TestCatalogue:
    def test_enable_preregisters_required_series(self):
        obs.enable()
        snap = obs.snapshot()
        for name in (
            "script.ops_total",
            "chain.reorg_total",
        ):
            assert name in snap["counters"]
        for name in (
            "validation.rule_seconds",
            "proof.check_seconds",
            "net.block_propagation_seconds",
        ):
            assert name in snap["histograms"]
        assert "utxo.set_size" in snap["gauges"]
