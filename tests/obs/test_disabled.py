"""The zero-cost-when-disabled contract.

The whole validation pipeline runs with observability off and the default
registry replaced by a stub that raises on *any* traffic — proving the
instrumented call sites allocate and record nothing unless enabled.
"""

import pytest

from repro import obs
from repro.bitcoin.network import PoissonMiner, Simulation, build_network
from repro.bitcoin.pow import (
    BLOCK_INTERVAL_TARGET,
    RETARGET_WINDOW,
    block_work,
    next_target,
    target_to_bits,
)
from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import OutPoint, TxOut
from repro.bitcoin.wallet import Wallet
from repro.core.builder import simple_transfer
from repro.core.transaction import TypecoinOutput
from repro.core.validate import Ledger
from repro.core.verifier import verify_claim
from repro.core.wallet import TypecoinClient
from repro.logic.propositions import One

pytestmark = pytest.mark.obs


class PoisonedRegistry(obs.Registry):
    """Raises on any series access or record."""

    def _poisoned(self, *args, **kwargs):
        raise AssertionError(
            "registry touched while observability is disabled"
        )

    counter = gauge = histogram = _poisoned
    inc = observe = gauge_set = gauge_max = _poisoned


class PoisonedTracer(obs.Tracer):
    def record(self, span):
        raise AssertionError("tracer touched while observability is disabled")


class PoisonedEventLog(obs.EventLog):
    def emit(self, kind, **fields):
        raise AssertionError(
            "event log touched while observability is disabled"
        )


class PoisonedProfiler(obs.PhaseProfiler):
    """Raises on any profile hook — enter/exit or span integration."""

    def _poisoned(self, *args, **kwargs):
        raise AssertionError(
            "profiler touched while observability is disabled"
        )

    enter = exit = span_enter = span_exit = checkpoint = _poisoned


@pytest.fixture
def poisoned():
    obs.disable()
    obs.set_registry(PoisonedRegistry())
    obs.set_tracer(PoisonedTracer())
    obs.set_event_log(PoisonedEventLog())
    obs.set_profiler(PoisonedProfiler())


def test_bitcoin_pipeline_disabled_records_nothing(poisoned):
    """Script execution, validation, chain connect, mempool, miner."""
    net = RegtestNetwork()
    wallet = Wallet.from_seed(b"obs-disabled")
    net.fund_wallet(wallet, blocks=2)
    tx = wallet.create_transaction(
        net.chain, [TxOut(600, p2pkh_script(wallet.key_hash))], fee=10_000
    )
    net.send(tx)
    net.confirm(1)
    assert net.chain.confirmations(tx.txid) == 1


def test_typecoin_pipeline_disabled_records_nothing(poisoned):
    """Proof check, LF typecheck, basis lookups, ledger apply, verifier."""
    net = RegtestNetwork()
    client = TypecoinClient(net, b"obs-disabled-tc", Ledger())
    net.fund_wallet(client.wallet, blocks=2)
    txn = simple_transfer([], [TypecoinOutput(One(), 600, client.pubkey)])
    carrier = client.submit(txn)
    net.confirm(1)
    client.sync()
    bundle = client.claim_bundle(OutPoint(carrier.txid, 0), One())
    verify_claim(net.chain, bundle)


def test_network_simulation_disabled_records_nothing(poisoned):
    """Event loop, relay, propagation, orphan handling."""
    sim = Simulation(seed=3)
    nodes = build_network(sim, 3)
    rate = block_work(target_to_bits(2**252)) / 600.0
    miner = PoissonMiner(nodes[0], rate, miner_id=1)
    miner.start()
    assert sim.run_until(3600) in ("drained", "time_limit")
    assert nodes[0].chain.height > 0


def test_retarget_and_budget_exhaustion_disabled_record_nothing(poisoned):
    """The retarget and budget-exhaustion call sites stay silent too."""
    from repro.bitcoin.script import Script, execute_script

    next_target(2**240, 0, (RETARGET_WINDOW - 1) * BLOCK_INTERVAL_TARGET // 2)
    # 1001 pushes blow the stack cap -> ScriptResourceError path.
    assert execute_script(Script([b"\x01"] * 1001), Script()) is False


def test_disabled_default_registry_stays_empty():
    obs.disable()
    net = RegtestNetwork()
    wallet = Wallet.from_seed(b"obs-empty")
    net.fund_wallet(wallet, blocks=1)
    snap = obs.snapshot()
    assert snap["counters"] == {}
    assert snap["gauges"] == {}
    assert snap["histograms"] == {}
    assert snap["spans"] == []


def test_enable_disable_roundtrip():
    obs.disable()
    assert not obs.ENABLED
    obs.enable()
    assert obs.ENABLED
    assert "script.ops_total" in obs.snapshot()["counters"]
    obs.disable()
    assert not obs.ENABLED


def test_regtest_observe_flag_enables():
    obs.disable()
    RegtestNetwork(observe=True)
    assert obs.ENABLED


def test_a1_rows_bit_identical_with_profiler_installed_but_disabled(poisoned):
    """The disabled path is pinned to the newest recorded baseline: with
    obs off — even with a (poisoned) profiler installed — the A1
    experiment reproduces the exact rows last recorded (the anchor moves
    only when a deliberate protocol change re-records the trajectory,
    e.g. PR 10's relay echo-to-origin fix)."""
    import importlib.util
    import json
    from pathlib import Path

    from tests.bitcoin.test_chaos import newest_a1_baseline_rows

    root = Path(__file__).resolve().parents[2]
    rows = newest_a1_baseline_rows(root)
    if rows is None:
        pytest.skip("no recorded baseline in this checkout")

    spec = importlib.util.spec_from_file_location(
        "bench_a1_fork_rate", root / "benchmarks" / "bench_a1_fork_rate.py"
    )
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)

    for row in rows:
        fresh = bench.run_with_latency(row["latency"])
        assert fresh["found"] == row["found"]
        assert fresh["height"] == row["height"]
        assert fresh["orphan_rate"] == pytest.approx(row["orphan_rate"])
