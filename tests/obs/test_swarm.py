"""Per-node telemetry scopes, swarm snapshot merging, and determinism."""

import json

import pytest

from repro import obs
from repro.obs.export import swarm_chrome_trace
from repro.obs.swarm import SWARM_SCHEMA, swarm_snapshot, telemetry_of


@pytest.fixture
def enabled(manual_clock):
    obs.enable()
    obs.reset()
    return manual_clock


class TestNodeScope:
    def test_dual_write_counters(self, enabled):
        node = obs.NodeTelemetry("n0")
        obs.inc("chain.blocks_connected_total")
        with obs.node_scope(node):
            obs.inc("chain.blocks_connected_total", 2)
        # Global registry sees everything; the node only its own share.
        assert (
            obs.registry().counter("chain.blocks_connected_total").value == 3
        )
        assert node.registry.counter("chain.blocks_connected_total").value == 2

    def test_none_scope_is_noop(self, enabled):
        with obs.node_scope(None) as telemetry:
            assert telemetry is None
            obs.inc("chain.blocks_connected_total")
            assert obs.current_node() is None

    def test_scopes_nest_innermost_wins(self, enabled):
        outer, inner = obs.NodeTelemetry("a"), obs.NodeTelemetry("b")
        with obs.node_scope(outer):
            with obs.node_scope(inner):
                assert obs.current_node() is inner
                obs.inc("net.events_total")
            assert obs.current_node() is outer
        assert inner.registry.counter("net.events_total").value == 1
        assert outer.registry.counter("net.events_total").value == 0

    def test_event_stamped_with_node_name(self, enabled):
        node = obs.NodeTelemetry("n3")
        with obs.node_scope(node):
            obs.emit("fault.crash", node="explicit")  # caller's name wins
            obs.emit("store.snapshot", height=1, tip=b"\x01", bytes=10)
        events = node.events.snapshot()
        assert events[0]["data"]["node"] == "explicit"
        assert events[1]["data"]["node"] == "n3"
        # Mirrored into the global stream too.
        assert len(obs.events().snapshot()) == 2

    def test_span_lands_on_node_tracer_and_both_registries(self, enabled):
        node = obs.NodeTelemetry("n4")
        with obs.node_scope(node):
            with obs.trace_span("chain.connect_block",
                                metric="chain.connect_seconds"):
                pass
        assert [s.name for s in node.tracer.spans] == ["chain.connect_block"]
        assert obs.tracer().spans == []
        assert node.registry.histogram("chain.connect_seconds").count == 1
        assert obs.registry().histogram("chain.connect_seconds").count == 1


class TestSwarmSnapshot:
    def _two_nodes(self):
        a, b = obs.NodeTelemetry("a"), obs.NodeTelemetry("b")
        with obs.node_scope(a):
            obs.inc("chain.blocks_connected_total", 2)
            obs.gauge_set("mempool.size", 5)
            obs.observe("chain.connect_seconds", 0.25)
        with obs.node_scope(b):
            obs.inc("chain.blocks_connected_total", 3)
            obs.observe("chain.connect_seconds", 0.75)
        return a, b

    def test_merged_counters_sum_and_label(self, enabled):
        a, b = self._two_nodes()
        snap = swarm_snapshot([a, b])
        assert snap["schema"] == SWARM_SCHEMA
        merged = snap["merged"]["counters"]
        assert merged["chain.blocks_connected_total"] == 5
        assert merged['chain.blocks_connected_total{node="a"}'] == 2
        assert merged['chain.blocks_connected_total{node="b"}'] == 3

    def test_merged_histograms_sum(self, enabled):
        a, b = self._two_nodes()
        snap = swarm_snapshot([a, b])
        merged = snap["merged"]["histograms"]["chain.connect_seconds"]
        assert merged["count"] == 2
        assert merged["sum"] == pytest.approx(1.0)

    def test_gauges_are_per_node_only(self, enabled):
        a, b = self._two_nodes()
        snap = swarm_snapshot([a, b])
        gauges = snap["merged"]["gauges"]
        assert 'mempool.size{node="a"}' in gauges
        assert "mempool.size" not in gauges  # summing gauges is meaningless

    def test_events_interleaved_by_time(self, enabled):
        a, b = obs.NodeTelemetry("a"), obs.NodeTelemetry("b")
        clock = enabled
        with obs.node_scope(b):
            obs.emit("fault.crash", node="b")
        clock.advance(1.0)
        with obs.node_scope(a):
            obs.emit("fault.restart", node="a", persisted=True)
        snap = swarm_snapshot([a, b])
        kinds = [e["kind"] for e in snap["events"]]
        assert kinds == ["fault.crash", "fault.restart"]

    def test_nodes_without_telemetry_are_skipped(self, enabled):
        a, _ = self._two_nodes()

        class Bare:
            telemetry = None

        snap = swarm_snapshot([a, Bare()])
        assert list(snap["nodes"]) == ["a"]

    def test_telemetry_of_accepts_node_or_telemetry(self, enabled):
        telemetry = obs.NodeTelemetry("x")

        class FakeNode:
            pass

        node = FakeNode()
        node.telemetry = telemetry
        assert telemetry_of(node) is telemetry
        assert telemetry_of(telemetry) is telemetry
        assert telemetry_of(object()) is None


def _seeded_swarm_run(seed=3):
    """One small instrumented network run under the fake clock."""
    from repro.bitcoin.network import PoissonMiner, Simulation, build_network
    from repro.bitcoin.pow import block_work, target_to_bits

    sim = Simulation(seed=seed)
    nodes = build_network(sim, 4)
    rate = block_work(target_to_bits(2**252)) / 600.0
    miner = PoissonMiner(nodes[0], rate, miner_id=1)
    miner.start()
    sim.run_until(4 * 3600.0)
    return nodes


class TestSwarmDeterminism:
    def test_two_identical_runs_byte_identical(self, enabled):
        nodes = _seeded_swarm_run()
        first = json.dumps(swarm_snapshot(nodes), sort_keys=True)
        first_trace = json.dumps(
            swarm_chrome_trace(
                swarm_snapshot(nodes), obs.snapshot(), exported_unix=0.0
            ),
            sort_keys=True,
        )

        obs.reset()
        nodes = _seeded_swarm_run()
        second = json.dumps(swarm_snapshot(nodes), sort_keys=True)
        second_trace = json.dumps(
            swarm_chrome_trace(
                swarm_snapshot(nodes), obs.snapshot(), exported_unix=0.0
            ),
            sort_keys=True,
        )

        assert first == second
        assert first_trace == second_trace

    def test_exported_unix_is_only_free_field(self, enabled):
        nodes = _seeded_swarm_run()
        snap = swarm_snapshot(nodes)
        trace_a = swarm_chrome_trace(snap, exported_unix=1.0)
        trace_b = swarm_chrome_trace(snap, exported_unix=2.0)
        assert trace_a["metadata"]["exported_unix"] == 1.0
        trace_a["metadata"].pop("exported_unix")
        trace_b["metadata"].pop("exported_unix")
        assert trace_a == trace_b


class TestCrashTelemetry:
    def _node(self):
        from repro.bitcoin.chain import ChainParams
        from repro.bitcoin.network import Node, Simulation

        sim = Simulation(seed=21)
        params = ChainParams(
            max_target=2**252, retarget_window=2**31, require_pow=False
        )
        return Node("mortal", sim, params)

    def test_crash_abandons_open_spans_and_reports_count(self, enabled):
        node = self._node()
        with obs.node_scope(node.telemetry):
            # Deliberately leave two spans open, like in-flight work the
            # dying process never finishes.
            obs.trace_span("net.deliver").__enter__()
            obs.trace_span("chain.connect_block").__enter__()
        assert len(node.telemetry.tracer._open) == 2

        node.crash()

        assert node.telemetry.tracer._open == []
        crashes = [
            e for e in node.telemetry.events.snapshot()
            if e["kind"] == "node.crash"
        ]
        assert len(crashes) == 1
        assert crashes[0]["data"]["open_spans"] == 2

    def test_restart_leaves_tracer_clean(self, enabled):
        node = self._node()
        with obs.node_scope(node.telemetry):
            obs.trace_span("net.deliver").__enter__()
        node.crash()
        node.restart()
        assert node.telemetry.tracer._open == []
        # The reborn process records fresh spans normally.
        with obs.node_scope(node.telemetry):
            with obs.trace_span("net.deliver"):
                pass
        assert node.telemetry.tracer.spans[-1].name == "net.deliver"

    def test_crash_without_open_spans_reports_zero(self, enabled):
        node = self._node()
        node.crash()
        crashes = [
            e for e in node.telemetry.events.snapshot()
            if e["kind"] == "node.crash"
        ]
        assert crashes[0]["data"]["open_spans"] == 0


class TestSwarmChromeTrace:
    def test_per_node_pids_and_subsystem_tids(self, enabled):
        nodes = _seeded_swarm_run()
        trace = swarm_chrome_trace(
            swarm_snapshot(nodes), obs.snapshot(), exported_unix=0.0
        )
        events = trace["traceEvents"]
        names = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        # Global track is pid 1; nodes follow in sorted-name order.
        assert names["repro"] == 1
        assert names["node0"] == 2
        assert len(names) == 5  # the global track plus all four nodes
        # Spans keep within their node's pid and a subsystem tid >= 1.
        for event in events:
            if event["ph"] == "X":
                assert event["pid"] in names.values()
                assert event["tid"] >= 1
