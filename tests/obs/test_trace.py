"""Tracer tests: nested span timing, parenting, attributes, bounds."""

import pytest

from repro import obs

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def enabled():
    obs.enable()


class TestNesting:
    def test_nested_span_timing_and_parenting(self, manual_clock):
        with obs.trace_span("outer", height=5):
            manual_clock.advance(1.0)
            with obs.trace_span("inner"):
                manual_clock.advance(0.25)
            manual_clock.advance(0.5)

        inner, outer = obs.spans()  # children finish (and record) first
        assert inner.name == "inner"
        assert outer.name == "outer"
        assert inner.duration == 0.25
        assert outer.duration == 1.75
        assert inner.parent == outer.span_id
        assert outer.parent is None
        assert inner.depth == 1
        assert outer.depth == 0
        assert outer.attrs == {"height": 5}

    def test_siblings_share_parent(self, manual_clock):
        with obs.trace_span("root"):
            with obs.trace_span("a"):
                manual_clock.advance(0.1)
            with obs.trace_span("b"):
                manual_clock.advance(0.2)
        a, b, root = obs.spans()
        assert a.parent == root.span_id
        assert b.parent == root.span_id
        assert a.span_id != b.span_id

    def test_metric_feeds_histogram(self, manual_clock):
        with obs.trace_span("proof.check", metric="proof.check_seconds"):
            manual_clock.advance(0.125)
        hist = obs.registry().histogram("proof.check_seconds")
        assert hist.count == 1
        assert hist.total == 0.125

    def test_exception_marks_span(self, manual_clock):
        with pytest.raises(ValueError):
            with obs.trace_span("failing"):
                raise ValueError("boom")
        (span,) = obs.spans()
        assert span.attrs["error"] == "ValueError"

    def test_set_attr_mid_span(self, manual_clock):
        with obs.trace_span("s") as span:
            span.set_attr("found", 3)
        assert obs.spans()[0].attrs == {"found": 3}


class TestBounds:
    def test_ring_is_bounded(self, manual_clock):
        tracer = obs.tracer()
        tracer.max_spans = 3
        for _ in range(5):
            with obs.trace_span("s"):
                manual_clock.advance(0.01)
        assert len(tracer.spans) == 3
        assert tracer.dropped == 2
        assert obs.snapshot()["spans_dropped"] == 2

    def test_clear_resets_ids(self, manual_clock):
        with obs.trace_span("s"):
            pass
        obs.tracer().clear()
        with obs.trace_span("t"):
            pass
        (span,) = obs.spans()
        assert span.span_id == 0
