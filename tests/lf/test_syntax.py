"""Tests for LF syntax: substitution, α-equivalence, this-resolution."""

import pytest

from repro.lf.basis import NAT_T
from repro.lf.syntax import (
    BUILTIN,
    THIS,
    App,
    Const,
    ConstRef,
    KIND_TYPE,
    KPi,
    Lam,
    NatLit,
    PrincipalLit,
    TApp,
    TConst,
    TPi,
    Var,
    alpha_equal,
    apply_term,
    arrow,
    free_vars,
    iter_constants,
    substitute,
    substitute_this,
)


class TestFreeVars:
    def test_var(self):
        assert free_vars(Var("x")) == {"x"}

    def test_lambda_binds(self):
        assert free_vars(Lam("x", NAT_T, Var("x"))) == set()
        assert free_vars(Lam("x", NAT_T, Var("y"))) == {"y"}

    def test_pi_binds(self):
        assert free_vars(TPi("x", NAT_T, TApp(NAT_T, Var("x")))) == set()
        assert "y" in free_vars(KPi("x", TApp(NAT_T, Var("y")), KIND_TYPE))

    def test_literals_closed(self):
        assert free_vars(NatLit(3)) == set()
        assert free_vars(PrincipalLit(b"\x01" * 20)) == set()


class TestSubstitution:
    def test_basic(self):
        assert substitute(Var("x"), "x", NatLit(1)) == NatLit(1)
        assert substitute(Var("y"), "x", NatLit(1)) == Var("y")

    def test_shadowing(self):
        # λx.x with [1/x] is unchanged.
        lam = Lam("x", NAT_T, Var("x"))
        assert substitute(lam, "x", NatLit(1)) == lam

    def test_capture_avoidance(self):
        # [x/y] in λx.y must NOT produce λx.x.
        lam = Lam("x", NAT_T, Var("y"))
        result = substitute(lam, "y", Var("x"))
        assert isinstance(result, Lam)
        assert result.var != "x"
        assert result.body == Var("x")

    def test_app_descends(self):
        term = App(Var("f"), Var("x"))
        assert substitute(term, "x", NatLit(2)) == App(Var("f"), NatLit(2))


class TestAlphaEquality:
    def test_renamed_binders_equal(self):
        a = Lam("x", NAT_T, Var("x"))
        b = Lam("y", NAT_T, Var("y"))
        assert alpha_equal(a, b)

    def test_free_vars_differ(self):
        assert not alpha_equal(Var("x"), Var("y"))

    def test_bound_vs_free(self):
        a = Lam("x", NAT_T, Var("x"))
        b = Lam("y", NAT_T, Var("x"))
        assert not alpha_equal(a, b)

    def test_literals(self):
        assert alpha_equal(NatLit(5), NatLit(5))
        assert not alpha_equal(NatLit(5), NatLit(6))

    def test_nested_binders(self):
        a = Lam("x", NAT_T, Lam("y", NAT_T, App(Var("x"), Var("y"))))
        b = Lam("y", NAT_T, Lam("x", NAT_T, App(Var("y"), Var("x"))))
        assert alpha_equal(a, b)

    def test_swapped_not_equal(self):
        a = Lam("x", NAT_T, Lam("y", NAT_T, App(Var("x"), Var("y"))))
        b = Lam("x", NAT_T, Lam("y", NAT_T, App(Var("y"), Var("x"))))
        assert not alpha_equal(a, b)


class TestThisResolution:
    def test_const_resolved(self):
        txid = b"\xab" * 32
        local = Const(ConstRef(THIS, "coin"))
        resolved = substitute_this(local, txid)
        assert resolved == Const(ConstRef(txid, "coin"))

    def test_builtin_untouched(self):
        txid = b"\xab" * 32
        builtin = Const(ConstRef(BUILTIN, "add"))
        assert substitute_this(builtin, txid) == builtin

    def test_other_txid_untouched(self):
        txid = b"\xab" * 32
        other = Const(ConstRef(b"\xcd" * 32, "coin"))
        assert substitute_this(other, txid) == other

    def test_descends_into_binders(self):
        txid = b"\xab" * 32
        fam = TPi("x", TConst(ConstRef(THIS, "t")), TApp(NAT_T, Var("x")))
        resolved = substitute_this(fam, txid)
        assert resolved.domain == TConst(ConstRef(txid, "t"))


class TestMisc:
    def test_iter_constants(self):
        term = apply_term(
            Const(ConstRef(THIS, "a")), Const(ConstRef(BUILTIN, "b")), NatLit(1)
        )
        refs = set(iter_constants(term))
        assert ConstRef(THIS, "a") in refs
        assert ConstRef(BUILTIN, "b") in refs

    def test_negative_nat_rejected(self):
        with pytest.raises(ValueError):
            NatLit(-1)

    def test_principal_length_enforced(self):
        with pytest.raises(ValueError):
            PrincipalLit(b"\x01" * 19)

    def test_arrow_is_nondependent(self):
        arr = arrow(NAT_T, NAT_T)
        assert arr.var not in free_vars(arr.body)

    def test_str_forms(self):
        assert str(NatLit(3)) == "3"
        assert "this.coin" in str(Const(ConstRef(THIS, "coin")))
        assert str(KIND_TYPE) == "type"
