"""Tests for LF type checking and normalization."""

import pytest

from repro.lf.basis import (
    ADD,
    NAT,
    NAT_T,
    PLUS,
    PLUS_REFL,
    PRINCIPAL,
    PRINCIPAL_T,
    Basis,
    BasisError,
    KindDecl,
    TypeDecl,
    builtin_basis,
)
from repro.lf.normalize import (
    families_equal,
    normalize,
    normalize_family,
    terms_equal,
)
from repro.lf.syntax import (
    BUILTIN,
    THIS,
    App,
    Const,
    ConstRef,
    KIND_PROP,
    KIND_TYPE,
    KPi,
    Lam,
    NatLit,
    PrincipalLit,
    TApp,
    TConst,
    TPi,
    Var,
    apply_family,
    apply_term,
    arrow,
)
from repro.lf.typecheck import (
    EMPTY_CONTEXT,
    LFContext,
    LFTypeError,
    check_kind,
    check_type,
    infer_kind,
    infer_type,
)


@pytest.fixture
def basis():
    return builtin_basis()


class TestNormalization:
    def test_beta(self):
        term = App(Lam("x", NAT_T, Var("x")), NatLit(3))
        assert normalize(term) == NatLit(3)

    def test_nested_beta(self):
        const_fn = Lam("x", NAT_T, Lam("y", NAT_T, Var("x")))
        term = apply_term(const_fn, NatLit(1), NatLit(2))
        assert normalize(term) == NatLit(1)

    def test_delta_add(self):
        term = apply_term(Const(ADD), NatLit(2), NatLit(3))
        assert normalize(term) == NatLit(5)

    def test_delta_needs_both_literals(self):
        term = apply_term(Const(ADD), Var("n"), NatLit(3))
        assert isinstance(normalize(term), App)

    def test_normalize_under_lambda(self):
        term = Lam("z", NAT_T, App(Lam("x", NAT_T, Var("x")), Var("z")))
        assert normalize(term) == Lam("z", NAT_T, Var("z"))

    def test_family_args_normalized(self):
        fam = TApp(TConst(PLUS), apply_term(Const(ADD), NatLit(1), NatLit(1)))
        assert normalize_family(fam) == TApp(TConst(PLUS), NatLit(2))

    def test_terms_equal_mod_beta(self):
        assert terms_equal(App(Lam("x", NAT_T, Var("x")), NatLit(9)), NatLit(9))

    def test_families_equal_mod_delta(self):
        a = apply_family(TConst(PLUS), NatLit(1), NatLit(2), NatLit(3))
        b = apply_family(
            TConst(PLUS),
            NatLit(1),
            NatLit(2),
            apply_term(Const(ADD), NatLit(1), NatLit(2)),
        )
        assert families_equal(a, b)


class TestTermTyping:
    def test_literals(self, basis):
        assert infer_type(basis, EMPTY_CONTEXT, NatLit(4)) == NAT_T
        lit = PrincipalLit(b"\x02" * 20)
        assert infer_type(basis, EMPTY_CONTEXT, lit) == PRINCIPAL_T

    def test_variable_lookup(self, basis):
        ctx = EMPTY_CONTEXT.extend("x", PRINCIPAL_T)
        assert infer_type(basis, ctx, Var("x")) == PRINCIPAL_T

    def test_unbound_variable(self, basis):
        with pytest.raises(LFTypeError, match="unbound"):
            infer_type(basis, EMPTY_CONTEXT, Var("ghost"))

    def test_lambda_and_app(self, basis):
        identity = Lam("x", NAT_T, Var("x"))
        ty = infer_type(basis, EMPTY_CONTEXT, identity)
        assert isinstance(ty, TPi)
        check_type(basis, EMPTY_CONTEXT, App(identity, NatLit(1)), NAT_T)

    def test_wrong_argument_type(self, basis):
        identity = Lam("x", NAT_T, Var("x"))
        bad = App(identity, PrincipalLit(b"\x03" * 20))
        with pytest.raises(LFTypeError):
            infer_type(basis, EMPTY_CONTEXT, bad)

    def test_apply_non_function(self, basis):
        with pytest.raises(LFTypeError, match="non-function"):
            infer_type(basis, EMPTY_CONTEXT, App(NatLit(1), NatLit(2)))

    def test_plus_refl_computes_sums(self, basis):
        proof = apply_term(Const(PLUS_REFL), NatLit(7), NatLit(35))
        expected = apply_family(TConst(PLUS), NatLit(7), NatLit(35), NatLit(42))
        check_type(basis, EMPTY_CONTEXT, proof, expected)

    def test_plus_refl_rejects_wrong_sum(self, basis):
        proof = apply_term(Const(PLUS_REFL), NatLit(7), NatLit(35))
        wrong = apply_family(TConst(PLUS), NatLit(7), NatLit(35), NatLit(41))
        with pytest.raises(LFTypeError):
            check_type(basis, EMPTY_CONTEXT, proof, wrong)

    def test_dependent_application_substitutes(self, basis):
        # plus_refl n : Πm:nat. plus n m (add n m) — with n := 4.
        partial = App(Const(PLUS_REFL), NatLit(4))
        ty = normalize_family(infer_type(basis, EMPTY_CONTEXT, partial))
        assert isinstance(ty, TPi)
        assert "4" in str(ty)

    def test_unknown_constant(self, basis):
        with pytest.raises(LFTypeError, match="unknown"):
            infer_type(basis, EMPTY_CONTEXT, Const(ConstRef(BUILTIN, "nope")))

    def test_kind_used_as_term_rejected(self, basis):
        with pytest.raises(LFTypeError, match="not an index-term"):
            infer_type(basis, EMPTY_CONTEXT, Const(NAT))


class TestFamilyKinding:
    def test_base_types(self, basis):
        assert infer_kind(basis, EMPTY_CONTEXT, NAT_T) == KIND_TYPE

    def test_plus_fully_applied(self, basis):
        fam = apply_family(TConst(PLUS), NatLit(1), NatLit(2), NatLit(3))
        assert infer_kind(basis, EMPTY_CONTEXT, fam) == KIND_TYPE

    def test_plus_partially_applied(self, basis):
        fam = TApp(TConst(PLUS), NatLit(1))
        kind = infer_kind(basis, EMPTY_CONTEXT, fam)
        assert isinstance(kind, KPi)

    def test_overapplication_rejected(self, basis):
        fam = TApp(NAT_T, NatLit(1))
        with pytest.raises(LFTypeError):
            infer_kind(basis, EMPTY_CONTEXT, fam)

    def test_wrong_index_type_rejected(self, basis):
        fam = TApp(TConst(PLUS), PrincipalLit(b"\x04" * 20))
        with pytest.raises(LFTypeError):
            infer_kind(basis, EMPTY_CONTEXT, fam)

    def test_pi_formation(self, basis):
        fam = arrow(NAT_T, PRINCIPAL_T)
        assert infer_kind(basis, EMPTY_CONTEXT, fam) == KIND_TYPE

    def test_prop_kind_families(self, basis):
        # Declare coin : nat → prop (the §6 idiom) and kind-check coin 5.
        coin = ConstRef(THIS, "coin")
        basis.declare(coin, KindDecl(KPi("n", NAT_T, KIND_PROP)))
        fam = TApp(TConst(coin), NatLit(5))
        assert infer_kind(basis, EMPTY_CONTEXT, fam) == KIND_PROP

    def test_check_kind_rejects_bad_domain(self, basis):
        bad = KPi("x", TApp(NAT_T, NatLit(1)), KIND_TYPE)
        with pytest.raises(LFTypeError):
            check_kind(basis, EMPTY_CONTEXT, bad)


class TestBasis:
    def test_duplicate_declaration_rejected(self, basis):
        with pytest.raises(BasisError, match="already declared"):
            basis.declare(NAT, KindDecl(KIND_TYPE))

    def test_local_declarations(self):
        basis = Basis()
        ref = basis.declare_local("x", TypeDecl(NAT_T))
        assert ref.is_local
        assert basis.all_local()

    def test_extended_merges_in_order(self, basis):
        local = Basis()
        local.declare_local("c", TypeDecl(NAT_T))
        merged = basis.extended(local)
        assert len(merged) == len(basis) + 1
        assert ConstRef(THIS, "c") in merged

    def test_resolved_rewrites_names_and_bodies(self):
        txid = b"\x11" * 32
        basis = Basis()
        basis.declare_local("t", KindDecl(KIND_TYPE))
        basis.declare_local(
            "x", TypeDecl(TConst(ConstRef(THIS, "t")))
        )
        resolved = basis.resolved(txid)
        assert ConstRef(txid, "x") in resolved
        decl = resolved.lookup(ConstRef(txid, "x"))
        assert decl.family == TConst(ConstRef(txid, "t"))

    def test_lookup_unknown(self, basis):
        with pytest.raises(BasisError, match="unknown"):
            basis.lookup(ConstRef(THIS, "missing"))
