"""Tests for wire-format decoding: decode ∘ encode ≡ α-identity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lf.basis import NAT_T, PLUS_REFL
from repro.lf.syntax import (
    App,
    Const,
    ConstRef,
    KIND_PROP,
    KPi,
    Lam,
    NatLit,
    PrincipalLit,
    THIS,
    Var,
    alpha_equal,
    apply_term,
)
from repro.logic.conditions import Before, CAnd, CNot, CTrue, Spent
from repro.logic.decoding import (
    Cursor,
    DecodingError,
    decode_cond,
    decode_kind,
    decode_proof,
    decode_prop,
    decode_term,
)
from repro.logic.encoding import (
    encode_cond,
    encode_kind,
    encode_proof,
    encode_prop,
    encode_term,
)
from repro.logic.proofterms import (
    Affirmation,
    AssertPersistent,
    BangElim,
    BangIntro,
    ExistsElim,
    ExistsIntro,
    ForallElim,
    ForallIntro,
    IfBind,
    IfReturn,
    IfSay,
    IfWeaken,
    LolliElim,
    LolliIntro,
    OneElim,
    OneIntro,
    PConst,
    PlusCase,
    PlusInl,
    PlusInr,
    PVar,
    SayBind,
    SayReturn,
    TensorElim,
    TensorIntro,
    WithFst,
    WithIntro,
    WithSnd,
    ZeroElim,
)
from repro.logic.propositions import (
    Atom,
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Plus,
    Receipt,
    Says,
    Tensor,
    With,
    Zero,
    alpha_equal_prop,
)

from tests.logic.conftest import coin

ALICE = PrincipalLit(b"\xaa" * 20)


def roundtrip_term(term):
    decoded = decode_term(Cursor(encode_term(term)))
    assert alpha_equal(decoded, term)
    assert encode_term(decoded) == encode_term(term)


def roundtrip_prop(prop):
    decoded = decode_prop(Cursor(encode_prop(prop)))
    assert alpha_equal_prop(decoded, prop)
    assert encode_prop(decoded) == encode_prop(prop)


def roundtrip_proof(proof):
    decoded = decode_proof(Cursor(encode_proof(proof)))
    assert encode_proof(decoded) == encode_proof(proof)
    return decoded


class TestTerms:
    def test_literals(self):
        roundtrip_term(NatLit(42))
        roundtrip_term(ALICE)

    def test_constants(self):
        roundtrip_term(Const(PLUS_REFL))
        roundtrip_term(Const(ConstRef(THIS, "x")))
        roundtrip_term(Const(ConstRef(b"\x11" * 32, "mint")))

    def test_binders(self):
        roundtrip_term(Lam("x", NAT_T, Var("x")))
        roundtrip_term(Lam("x", NAT_T, Lam("y", NAT_T, App(Var("x"), Var("y")))))

    def test_application(self):
        roundtrip_term(apply_term(Const(PLUS_REFL), NatLit(1), NatLit(2)))

    def test_free_variable_index_rejected(self):
        # tag 0x10 with index 0 at depth 0.
        with pytest.raises(DecodingError, match="index"):
            decode_term(Cursor(b"\x10\x00"))

    def test_truncation_rejected(self):
        data = encode_term(Lam("x", NAT_T, Var("x")))
        with pytest.raises(DecodingError):
            decode_term(Cursor(data[:-1]))

    def test_unknown_tag_rejected(self):
        with pytest.raises(DecodingError, match="tag"):
            decode_term(Cursor(b"\xff"))


class TestKindsAndConditions:
    def test_kinds(self):
        for kind in (KIND_PROP, KPi("n", NAT_T, KIND_PROP)):
            decoded = decode_kind(Cursor(encode_kind(kind)))
            assert alpha_equal(decoded, kind)

    def test_conditions(self):
        for cond in (
            CTrue(),
            Before(NatLit(9)),
            Spent(b"\x01" * 32, 3),
            CAnd(CNot(CTrue()), Before(NatLit(1))),
        ):
            decoded = decode_cond(Cursor(encode_cond(cond)))
            assert encode_cond(decoded) == encode_cond(cond)


class TestPropositions:
    def test_every_figure1_form(self):
        samples = [
            coin(5),
            Lolli(coin(1), coin(2)),
            With(coin(1), coin(2)),
            Tensor(coin(1), coin(2)),
            Plus(coin(1), coin(2)),
            Zero(),
            One(),
            Bang(coin(1)),
            Forall("n", NAT_T, coin(Var("n"))),
            Exists("n", NAT_T, coin(Var("n"))),
            Says(ALICE, coin(1)),
            Receipt(coin(1), 600, ALICE),
            IfProp(CNot(Spent(b"\x02" * 32, 0)), coin(1)),
        ]
        for prop in samples:
            roundtrip_prop(prop)

    # Reuse the random proposition strategy from the parser tests.
    from tests.surface.test_parser import props as _props_strategy

    @given(_props_strategy)
    @settings(max_examples=150, deadline=None)
    def test_random_roundtrip(self, prop):
        roundtrip_prop(prop)


class TestProofs:
    def test_structural_forms(self):
        samples = [
            OneIntro(),
            LolliIntro("x", coin(1), PVar("x")),
            LolliElim(LolliIntro("x", coin(1), PVar("x")), OneIntro()),
            TensorIntro(OneIntro(), OneIntro()),
            LolliIntro(
                "p", Tensor(coin(1), coin(2)),
                TensorElim("a", "b", PVar("p"), TensorIntro(PVar("b"), PVar("a"))),
            ),
            WithIntro(OneIntro(), OneIntro()),
            WithFst(WithIntro(OneIntro(), OneIntro())),
            WithSnd(WithIntro(OneIntro(), OneIntro())),
            PlusInl(coin(1), OneIntro()),
            PlusInr(coin(1), OneIntro()),
            LolliIntro(
                "s", Plus(coin(1), coin(1)),
                PlusCase(PVar("s"), "l", PVar("l"), "r", PVar("r")),
            ),
            OneElim(OneIntro(), OneIntro()),
            LolliIntro("z", Zero(), ZeroElim(PVar("z"), coin(9))),
            BangIntro(OneIntro()),
            LolliIntro("b", Bang(coin(1)), BangElim("x", PVar("b"), PVar("x"))),
            ForallIntro("n", NAT_T, LolliIntro("x", coin(Var("n")), PVar("x"))),
            ForallElim(
                ForallIntro("n", NAT_T, LolliIntro("x", coin(Var("n")), PVar("x"))),
                NatLit(3),
            ),
            ExistsIntro(Exists("n", NAT_T, One()), NatLit(4), OneIntro()),
            LolliIntro(
                "e", Exists("n", NAT_T, coin(Var("n"))),
                ExistsElim("n", "c", PVar("e"), OneIntro()),
            ),
            SayReturn(ALICE, OneIntro()),
            LolliIntro(
                "s", Says(ALICE, coin(1)),
                SayBind("x", PVar("s"), SayReturn(ALICE, PVar("x"))),
            ),
            IfReturn(Before(NatLit(5)), OneIntro()),
            IfWeaken(
                CAnd(Before(NatLit(3)), CTrue()),
                IfReturn(Before(NatLit(5)), OneIntro()),
            ),
            IfSay(SayReturn(ALICE, IfReturn(CTrue(), OneIntro()))),
            PConst(ConstRef(b"\x01" * 32, "rule")),
            AssertPersistent(
                ALICE, coin(1), Affirmation(b"\x02" * 33, b"\x03" * 64)
            ),
        ]
        for proof in samples:
            roundtrip_proof(proof)

    def test_decoded_proof_still_checks(self, basis):
        """A decoded proof term passes the checker with the same result."""
        from repro.logic.checker import CheckerContext, check_proof
        from repro.logic.propositions import props_equal

        proof = LolliIntro(
            "p", Tensor(coin(1), coin(2)),
            TensorElim("a", "b", PVar("p"), TensorIntro(PVar("b"), PVar("a"))),
        )
        decoded = roundtrip_proof(proof)
        ctx = CheckerContext(basis=basis)
        assert props_equal(check_proof(ctx, proof), check_proof(ctx, decoded))

    def test_ifbind_roundtrip(self):
        proof = LolliIntro(
            "i", IfProp(CTrue(), coin(1)),
            IfBind("x", PVar("i"), IfReturn(CTrue(), PVar("x"))),
        )
        roundtrip_proof(proof)
