"""Tests for the proof checker: T;Σ;Ψ;Γ;Δ ⊢ M : A."""

import pytest

from repro.crypto.keys import PrivateKey
from repro.lf.basis import NAT_T, PLUS, PLUS_REFL, PropDecl
from repro.lf.syntax import (
    Const,
    NatLit,
    PrincipalLit,
    TConst,
    Var,
    apply_family,
    apply_term,
)
from repro.logic.checker import (
    CheckerContext,
    ProofError,
    affine_assert_payload,
    check_proof,
    check_prop_formation,
    infer,
    persistent_assert_payload,
)
from repro.logic.conditions import Before, CAnd, CNot, CTrue, Spent
from repro.logic.propositions import (
    Atom,
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Plus,
    Says,
    Tensor,
    With,
    Zero,
    props_equal,
)
from repro.logic.proofterms import (
    Affirmation,
    Assert,
    AssertPersistent,
    BangElim,
    BangIntro,
    ExistsElim,
    ExistsIntro,
    ForallElim,
    ForallIntro,
    IfBind,
    IfReturn,
    IfSay,
    IfWeaken,
    LolliElim,
    LolliIntro,
    OneElim,
    OneIntro,
    PConst,
    PlusCase,
    PlusInl,
    PlusInr,
    PVar,
    SayBind,
    SayReturn,
    TensorElim,
    TensorIntro,
    WithFst,
    WithIntro,
    WithSnd,
    ZeroElim,
    let_,
)

from tests.logic.conftest import coin

ALICE_KEY = PrivateKey.from_seed(b"checker-alice")
ALICE = PrincipalLit(ALICE_KEY.public.key_hash)


@pytest.fixture
def ctx(basis):
    return CheckerContext(basis=basis)


def proves(ctx, term, prop):
    return props_equal(check_proof(ctx, term), prop)


class TestStructuralRules:
    def test_affine_var(self, ctx):
        inner = ctx.with_affine("x", coin(1))
        prop, used = infer(inner, PVar("x"))
        assert props_equal(prop, coin(1))
        assert used == {"x"}

    def test_persistent_var_not_consumed(self, ctx):
        inner = ctx.with_persistent("x", coin(1))
        prop, used = infer(inner, PVar("x"))
        assert used == frozenset()

    def test_persistent_reuse_allowed(self, ctx):
        inner = ctx.with_persistent("x", coin(1))
        prop, _ = infer(inner, TensorIntro(PVar("x"), PVar("x")))
        assert props_equal(prop, Tensor(coin(1), coin(1)))

    def test_affine_reuse_rejected(self, ctx):
        inner = ctx.with_affine("x", coin(1))
        with pytest.raises(ProofError, match="more than once"):
            infer(inner, TensorIntro(PVar("x"), PVar("x")))

    def test_weakening_allowed(self, ctx):
        """Affine: resources may go unused (§4 "we have elected to embrace
        affinity")."""
        term = LolliIntro("x", coin(1), OneIntro())
        assert proves(ctx, term, Lolli(coin(1), One()))

    def test_unbound_variable(self, ctx):
        with pytest.raises(ProofError, match="unbound"):
            check_proof(ctx, PVar("ghost"))

    def test_shadowing_rejected(self, ctx):
        inner = ctx.with_affine("x", coin(1))
        with pytest.raises(ProofError, match="shadows"):
            inner.with_affine("x", coin(2))


class TestMultiplicatives:
    def test_lolli_intro_elim(self, ctx):
        identity = LolliIntro("x", coin(5), PVar("x"))
        applied = ctx.with_affine("c", coin(5))
        prop, used = infer(applied, LolliElim(identity, PVar("c")))
        assert props_equal(prop, coin(5))
        assert used == {"c"}

    def test_application_type_mismatch(self, ctx):
        identity = LolliIntro("x", coin(5), PVar("x"))
        wrong = ctx.with_affine("c", coin(6))
        with pytest.raises(ProofError, match="expects"):
            infer(wrong, LolliElim(identity, PVar("c")))

    def test_apply_non_function(self, ctx):
        with pytest.raises(ProofError, match="non-implication"):
            check_proof(ctx, LolliElim(OneIntro(), OneIntro()))

    def test_tensor_intro_requires_disjoint(self, ctx):
        inner = ctx.with_affine("x", coin(1)).with_affine("y", coin(2))
        prop, used = infer(inner, TensorIntro(PVar("x"), PVar("y")))
        assert props_equal(prop, Tensor(coin(1), coin(2)))
        assert used == {"x", "y"}

    def test_tensor_elim(self, ctx):
        term = LolliIntro(
            "p",
            Tensor(coin(1), coin(2)),
            TensorElim("x", "y", PVar("p"), TensorIntro(PVar("y"), PVar("x"))),
        )
        assert proves(
            ctx, term, Lolli(Tensor(coin(1), coin(2)), Tensor(coin(2), coin(1)))
        )

    def test_tensor_elim_on_non_tensor(self, ctx):
        term = TensorElim("x", "y", OneIntro(), OneIntro())
        with pytest.raises(ProofError, match="not a tensor"):
            check_proof(ctx, term)

    def test_one_elim(self, ctx):
        term = LolliIntro("u", One(), OneElim(PVar("u"), OneIntro()))
        assert proves(ctx, term, Lolli(One(), One()))


class TestAdditives:
    def test_with_shares_resources(self, ctx):
        """&-intro: both alternatives may consume the same resource."""
        term = LolliIntro("x", coin(1), WithIntro(PVar("x"), PVar("x")))
        assert proves(ctx, term, Lolli(coin(1), With(coin(1), coin(1))))

    def test_projections(self, ctx):
        pair = ctx.with_affine("p", With(coin(1), coin(2)))
        prop, _ = infer(pair, WithFst(PVar("p")))
        assert props_equal(prop, coin(1))
        prop, _ = infer(pair, WithSnd(PVar("p")))
        assert props_equal(prop, coin(2))

    def test_projection_from_non_with(self, ctx):
        with pytest.raises(ProofError, match="non-&"):
            check_proof(ctx, WithFst(OneIntro()))

    def test_plus_injections(self, ctx):
        left = PlusInl(coin(2), OneIntro())
        prop = check_proof(ctx, left)
        assert props_equal(prop, Plus(One(), coin(2)))
        right = PlusInr(coin(2), OneIntro())
        assert props_equal(check_proof(ctx, right), Plus(coin(2), One()))

    def test_case_branches_share(self, ctx):
        # With s : coin1 ⊕ coin1 and k : coin 9, both branches may use k.
        inner = ctx.with_affine("s", Plus(coin(1), coin(1))).with_affine(
            "k", coin(9)
        )
        term = PlusCase(
            PVar("s"),
            "l", TensorIntro(PVar("l"), PVar("k")),
            "r", TensorIntro(PVar("r"), PVar("k")),
        )
        prop, used = infer(inner, term)
        assert props_equal(prop, Tensor(coin(1), coin(9)))
        assert used == {"s", "k"}

    def test_case_branch_mismatch(self, ctx):
        inner = ctx.with_affine("s", Plus(coin(1), coin(1)))
        term = PlusCase(PVar("s"), "l", PVar("l"), "r", OneIntro())
        with pytest.raises(ProofError, match="different propositions"):
            infer(inner, term)

    def test_case_scrutinee_disjoint_from_branches(self, ctx):
        # The scrutinee consumes k; branches cannot also use k.
        inner = ctx.with_affine("k", Plus(coin(1), coin(1)))
        term = PlusCase(
            PVar("k"), "l", PVar("k"), "r", PVar("k")
        )
        with pytest.raises(ProofError, match="more than once"):
            infer(inner, term)

    def test_zero_elim(self, ctx):
        term = LolliIntro("z", Zero(), ZeroElim(PVar("z"), coin(42)))
        assert proves(ctx, term, Lolli(Zero(), coin(42)))

    def test_zero_elim_wrong_scrutinee(self, ctx):
        with pytest.raises(ProofError, match="not 0"):
            check_proof(ctx, ZeroElim(OneIntro(), coin(1)))


class TestExponential:
    def test_promotion_of_closed_proof(self, ctx):
        term = BangIntro(OneIntro())
        assert proves(ctx, term, Bang(One()))

    def test_promotion_rejects_affine_use(self, ctx):
        inner = ctx.with_affine("x", coin(1))
        with pytest.raises(ProofError, match="promotion"):
            infer(inner, BangIntro(PVar("x")))

    def test_promotion_allows_persistent_use(self, ctx):
        inner = ctx.with_persistent("x", coin(1))
        prop, _ = infer(inner, BangIntro(PVar("x")))
        assert props_equal(prop, Bang(coin(1)))

    def test_dereliction_via_bang_elim(self, ctx):
        # !coin1 ⊸ coin1 ⊗ coin1: unboxing gives unlimited copies.
        term = LolliIntro(
            "b",
            Bang(coin(1)),
            BangElim("x", PVar("b"), TensorIntro(PVar("x"), PVar("x"))),
        )
        assert proves(ctx, term, Lolli(Bang(coin(1)), Tensor(coin(1), coin(1))))


class TestQuantifiers:
    def test_forall_intro_elim(self, ctx):
        univ = ForallIntro("n", NAT_T, LolliIntro("x", coin(Var("n")), PVar("x")))
        prop = check_proof(ctx, univ)
        assert isinstance(prop, Forall)
        inst = ForallElim(univ, NatLit(3))
        assert proves(ctx, inst, Lolli(coin(3), coin(3)))

    def test_forall_elim_checks_index_type(self, ctx):
        univ = ForallIntro("n", NAT_T, LolliIntro("x", coin(Var("n")), PVar("x")))
        with pytest.raises(ProofError, match="instantiation"):
            check_proof(ctx, ForallElim(univ, PrincipalLit(b"\x01" * 20)))

    def test_eigenvariable_condition(self, ctx):
        # ∀-intro over a variable free in a hypothesis is unsound.
        inner = ctx.with_affine("x", coin(Var("n")))
        term = ForallIntro("n", NAT_T, PVar("x"))
        with pytest.raises(ProofError, match="eigenvariable"):
            infer(inner, term)

    def test_exists_intro(self, ctx):
        ann = Exists(
            "x",
            apply_family(TConst(PLUS), NatLit(2), NatLit(3), NatLit(5)),
            One(),
        )
        witness = apply_term(Const(PLUS_REFL), NatLit(2), NatLit(3))
        term = ExistsIntro(ann, witness, OneIntro())
        assert proves(ctx, term, ann)

    def test_exists_intro_wrong_witness(self, ctx):
        ann = Exists(
            "x",
            apply_family(TConst(PLUS), NatLit(2), NatLit(3), NatLit(6)),
            One(),
        )
        witness = apply_term(Const(PLUS_REFL), NatLit(2), NatLit(3))
        with pytest.raises(ProofError, match="witness"):
            check_proof(ctx, ExistsIntro(ann, witness, OneIntro()))

    def test_exists_elim(self, ctx):
        ann = Exists("n", NAT_T, coin(Var("n")))
        # Given ∃n. coin n, produce 1 (we can't name the witness outside).
        inner = ctx.with_affine("e", ann)
        term = ExistsElim("n", "c", PVar("e"), OneIntro())
        prop, used = infer(inner, term)
        assert props_equal(prop, One())
        assert used == {"e"}

    def test_exists_witness_escape_rejected(self, ctx):
        ann = Exists("n", NAT_T, coin(Var("n")))
        inner = ctx.with_affine("e", ann)
        term = ExistsElim("n", "c", PVar("e"), PVar("c"))
        with pytest.raises(ProofError, match="escapes"):
            infer(inner, term)


class TestAffirmation:
    def test_sayreturn(self, ctx):
        """The unit: every principal affirms everything provable."""
        term = SayReturn(ALICE, OneIntro())
        assert proves(ctx, term, Says(ALICE, One()))

    def test_saybind_same_principal(self, ctx):
        inner = ctx.with_affine("s", Says(ALICE, coin(1)))
        term = SayBind("x", PVar("s"), SayReturn(ALICE, PVar("x")))
        prop, _ = infer(inner, term)
        assert props_equal(prop, Says(ALICE, coin(1)))

    def test_saybind_wrong_principal_rejected(self, ctx):
        bob = PrincipalLit(b"\xbb" * 20)
        inner = ctx.with_affine("s", Says(ALICE, coin(1)))
        term = SayBind("x", PVar("s"), SayReturn(bob, PVar("x")))
        with pytest.raises(ProofError, match="same principal"):
            infer(inner, term)

    def test_assert_persistent_valid(self, ctx):
        prop = coin(7)
        payload = persistent_assert_payload(prop)
        sig = ALICE_KEY.sign(payload)
        term = AssertPersistent(
            ALICE, prop, Affirmation(ALICE_KEY.public.encoded, sig.encode())
        )
        assert proves(ctx, term, Says(ALICE, prop))

    def test_assert_persistent_wrong_signer(self, ctx):
        prop = coin(7)
        mallory = PrivateKey.from_seed(b"mallory")
        sig = mallory.sign(persistent_assert_payload(prop))
        term = AssertPersistent(
            ALICE, prop, Affirmation(mallory.public.encoded, sig.encode())
        )
        with pytest.raises(ProofError, match="invalid affirmation"):
            check_proof(ctx, term)

    def test_assert_persistent_wrong_prop(self, ctx):
        sig = ALICE_KEY.sign(persistent_assert_payload(coin(7)))
        term = AssertPersistent(
            ALICE, coin(8), Affirmation(ALICE_KEY.public.encoded, sig.encode())
        )
        with pytest.raises(ProofError, match="invalid affirmation"):
            check_proof(ctx, term)

    def test_affine_assert_bound_to_transaction(self, basis):
        """assert signs the transaction; the same signature fails elsewhere."""
        prop = coin(7)
        payload_a = affine_assert_payload(b"txn-A", prop)
        sig = ALICE_KEY.sign(payload_a)
        term = Assert(
            ALICE, prop, Affirmation(ALICE_KEY.public.encoded, sig.encode())
        )
        ctx_a = CheckerContext(basis=basis, txn_payload=b"txn-A")
        assert props_equal(check_proof(ctx_a, term), Says(ALICE, prop))
        # Replay into transaction B: rejected.
        ctx_b = CheckerContext(basis=basis, txn_payload=b"txn-B")
        with pytest.raises(ProofError, match="invalid affirmation"):
            check_proof(ctx_b, term)

    def test_affine_assert_requires_transaction(self, ctx):
        sig = ALICE_KEY.sign(b"whatever")
        term = Assert(
            ALICE, coin(1), Affirmation(ALICE_KEY.public.encoded, sig.encode())
        )
        with pytest.raises(ProofError, match="outside a transaction"):
            check_proof(ctx, term)


class TestConditionalMonad:
    def test_ifreturn(self, ctx):
        cond = Before(NatLit(100))
        term = IfReturn(cond, OneIntro())
        assert proves(ctx, term, IfProp(cond, One()))

    def test_ifbind_same_condition(self, ctx):
        cond = Before(NatLit(100))
        inner = ctx.with_affine("i", IfProp(cond, coin(1)))
        term = IfBind("x", PVar("i"), IfReturn(cond, TensorIntro(PVar("x"), OneIntro())))
        prop, _ = infer(inner, term)
        assert props_equal(prop, IfProp(cond, Tensor(coin(1), One())))

    def test_ifbind_condition_mismatch(self, ctx):
        inner = ctx.with_affine("i", IfProp(Before(NatLit(100)), coin(1)))
        term = IfBind(
            "x", PVar("i"), IfReturn(Before(NatLit(50)), PVar("x"))
        )
        with pytest.raises(ProofError, match="same φ"):
            infer(inner, term)

    def test_ifweaken_strengthens_condition(self, ctx):
        weak = IfReturn(Before(NatLit(100)), OneIntro())
        stronger = CAnd(Before(NatLit(50)), CNot(Spent(b"\x01" * 32, 0)))
        term = IfWeaken(stronger, weak)
        assert proves(ctx, term, IfProp(stronger, One()))

    def test_ifweaken_rejects_non_entailment(self, ctx):
        weak = IfReturn(Before(NatLit(50)), OneIntro())
        term = IfWeaken(Before(NatLit(100)), weak)
        with pytest.raises(ProofError, match="entail"):
            check_proof(ctx, term)

    def test_if_say_commutation(self, ctx):
        cond = Before(NatLit(10))
        term = IfSay(SayReturn(ALICE, IfReturn(cond, OneIntro())))
        assert proves(ctx, term, IfProp(cond, Says(ALICE, One())))

    def test_if_say_requires_nested_shape(self, ctx):
        with pytest.raises(ProofError, match="if/say"):
            check_proof(ctx, IfSay(OneIntro()))

    def test_no_discharge_operation_exists(self):
        """§5: "we have no explicit discharge operation at all" — the AST
        simply has no such constructor."""
        import repro.logic.proofterms as pt

        assert not hasattr(pt, "Discharge")


class TestBasisProofConstants:
    def test_pconst_lookup(self, ctx, basis):
        ref = basis.declare_local("rule", PropDecl(Lolli(coin(1), coin(2))))
        prop, used = infer(CheckerContext(basis=basis), PConst(ref))
        assert props_equal(prop, Lolli(coin(1), coin(2)))
        assert used == frozenset()

    def test_pconst_is_persistent(self, basis):
        ref = basis.declare_local("rule", PropDecl(Lolli(coin(1), coin(2))))
        ctx = CheckerContext(basis=basis)
        term = TensorIntro(PConst(ref), PConst(ref))
        check_proof(ctx, term)  # no double-use complaint

    def test_pconst_wrong_sort(self, ctx):
        from repro.lf.basis import NAT

        with pytest.raises(ProofError, match="not a proof constant"):
            check_proof(ctx, PConst(NAT))


class TestLetDerivedForm:
    def test_let_checks_like_figure_3(self, ctx):
        """let x : A ← M in N is λ-application (paper §6.1)."""
        inner = ctx.with_affine("c", coin(1))
        term = let_("x", coin(1), PVar("c"), TensorIntro(PVar("x"), OneIntro()))
        prop, used = infer(inner, term)
        assert props_equal(prop, Tensor(coin(1), One()))
        assert used == {"c"}


class TestPropFormation:
    def test_atom_must_be_prop_kind(self, ctx, basis):
        check_prop_formation(basis, ctx.lf_ctx, coin(1))
        # plus has kind type, not prop.
        bad = Atom(apply_family(TConst(PLUS), NatLit(1), NatLit(1), NatLit(2)))
        with pytest.raises(ProofError, match="expected prop"):
            check_prop_formation(basis, ctx.lf_ctx, bad)

    def test_says_principal_typed(self, ctx, basis):
        with pytest.raises(ProofError):
            check_prop_formation(basis, ctx.lf_ctx, Says(NatLit(1), One()))

    def test_before_index_typed(self, ctx, basis):
        bad = IfProp(Before(PrincipalLit(b"\x01" * 20)), One())
        with pytest.raises(ProofError, match="not a nat"):
            check_prop_formation(basis, ctx.lf_ctx, bad)

    def test_underapplied_atom_rejected(self, ctx, basis):
        from tests.logic.conftest import COIN_REF

        with pytest.raises(ProofError):
            check_prop_formation(basis, ctx.lf_ctx, Atom(TConst(COIN_REF)))
