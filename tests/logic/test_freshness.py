"""Tests for the freshness check (§4, Appendix A)."""

import pytest

from repro.lf.basis import Basis, KindDecl, NAT_T, PropDecl, TypeDecl, PLUS
from repro.lf.syntax import (
    BUILTIN,
    KIND_PROP,
    KIND_TYPE,
    ConstRef,
    KPi,
    NatLit,
    PrincipalLit,
    TApp,
    TConst,
    THIS,
    Var,
    apply_family,
    arrow,
)
from repro.logic.conditions import Before, CTrue
from repro.logic.freshness import (
    FreshnessError,
    check_basis_fresh,
    check_prop_fresh,
    family_fresh,
    prop_fresh,
)
from repro.logic.propositions import (
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Plus,
    Receipt,
    Says,
    Tensor,
    With,
    Zero,
)

from tests.logic.conftest import COIN_REF, coin

ALICE = PrincipalLit(b"\xaa" * 20)
NONLOCAL = ConstRef(b"\x99" * 32, "coin")


def nonlocal_coin(n):
    from repro.logic.propositions import Atom

    return Atom(TApp(TConst(NONLOCAL), NatLit(n)))


class TestFamilyFreshness:
    def test_local_head_fresh(self):
        assert family_fresh(TConst(COIN_REF))
        assert family_fresh(TApp(TConst(COIN_REF), NatLit(1)))

    def test_nonlocal_head_not_fresh(self):
        assert not family_fresh(TConst(NONLOCAL))
        assert not family_fresh(TConst(PLUS))

    def test_pi_checks_codomain_only(self):
        # Π over a non-local domain with local codomain: fresh.
        fresh = arrow(TConst(PLUS), TConst(COIN_REF))
        assert family_fresh(fresh)
        # The reverse is not.
        stale = arrow(TConst(COIN_REF), TConst(PLUS))
        assert not family_fresh(stale)


class TestPropFreshness:
    def test_local_atom_fresh(self):
        assert prop_fresh(coin(1))

    def test_nonlocal_atom_restricted(self):
        assert not prop_fresh(nonlocal_coin(1))

    def test_restricted_left_of_lolli_ok(self):
        """Restricted forms "can be consumed but not produced"."""
        assert prop_fresh(Lolli(nonlocal_coin(1), coin(1)))
        assert prop_fresh(Lolli(Says(ALICE, One()), coin(1)))
        assert prop_fresh(Lolli(Receipt(One(), 5, ALICE), coin(1)))
        assert prop_fresh(Lolli(Zero(), coin(1)))

    def test_restricted_right_of_lolli_rejected(self):
        assert not prop_fresh(Lolli(coin(1), nonlocal_coin(1)))
        assert not prop_fresh(Lolli(coin(1), Says(ALICE, One())))
        assert not prop_fresh(Lolli(coin(1), Receipt(One(), 5, ALICE)))
        assert not prop_fresh(Lolli(coin(1), Zero()))

    def test_zero_restricted(self):
        assert not prop_fresh(Zero())

    def test_one_unrestricted(self):
        """§4: "This is legal, since 1 is not a restricted form." """
        assert prop_fresh(One())
        assert prop_fresh(Lolli(coin(1), One()))

    def test_affirmations_restricted(self):
        assert not prop_fresh(Says(ALICE, coin(1)))

    def test_receipts_restricted(self):
        assert not prop_fresh(Receipt(coin(1), 0, ALICE))

    def test_multiplicatives_check_both_sides(self):
        assert prop_fresh(Tensor(coin(1), coin(2)))
        assert not prop_fresh(Tensor(coin(1), nonlocal_coin(2)))
        assert not prop_fresh(With(nonlocal_coin(1), coin(2)))
        assert not prop_fresh(Plus(coin(1), nonlocal_coin(2)))

    def test_quantifiers(self):
        assert prop_fresh(Forall("n", NAT_T, coin(Var("n"))))
        assert not prop_fresh(Forall("n", NAT_T, nonlocal_coin(1)))
        # ∃ additionally requires the domain to be fresh.
        local_family = TConst(COIN_REF)
        assert not prop_fresh(
            Exists("x", apply_family(TConst(PLUS), NatLit(1), NatLit(1), NatLit(2)), One())
        )

    def test_bang_and_if_descend(self):
        assert prop_fresh(Bang(coin(1)))
        assert not prop_fresh(Bang(nonlocal_coin(1)))
        assert prop_fresh(IfProp(Before(NatLit(10)), coin(1)))
        assert not prop_fresh(IfProp(CTrue(), nonlocal_coin(1)))

    def test_newcoin_bank_grants_are_fresh(self):
        """The §6 idioms: both printing-press grants pass the check."""
        press = Forall("n", NAT_T, coin(Var("n")))
        assert prop_fresh(press)
        fixed_supply = coin(1_000_000_000)
        assert prop_fresh(fixed_supply)
        whimsical = Bang(coin(1))
        assert prop_fresh(whimsical)

    def test_check_prop_fresh_raises(self):
        with pytest.raises(FreshnessError):
            check_prop_fresh(Says(ALICE, One()))


class TestBasisFreshness:
    def test_kind_declarations_always_fresh(self):
        basis = Basis()
        basis.declare_local("coin", KindDecl(KPi("n", NAT_T, KIND_PROP)))
        check_basis_fresh(basis)

    def test_fresh_prop_declaration(self):
        basis = Basis()
        basis.declare_local("coin", KindDecl(KPi("n", NAT_T, KIND_PROP)))
        basis.declare_local(
            "mint", PropDecl(Lolli(nonlocal_coin(1), coin(1)))
        )
        check_basis_fresh(basis)

    def test_unfresh_prop_declaration_rejected(self):
        basis = Basis()
        basis.declare_local("forge", PropDecl(Lolli(One(), nonlocal_coin(1))))
        with pytest.raises(FreshnessError, match="freshness"):
            check_basis_fresh(basis)

    def test_nonlocal_name_rejected(self):
        basis = Basis()
        basis.declare(ConstRef(b"\x88" * 32, "x"), TypeDecl(NAT_T))
        with pytest.raises(FreshnessError, match="this"):
            check_basis_fresh(basis)

    def test_term_declaration_needs_fresh_family(self):
        basis = Basis()
        # Declaring a new inhabitant of the *builtin* plus family would let a
        # transaction forge arithmetic facts.
        basis.declare_local(
            "fake",
            TypeDecl(apply_family(TConst(PLUS), NatLit(1), NatLit(1), NatLit(3))),
        )
        with pytest.raises(FreshnessError):
            check_basis_fresh(basis)
