"""Cross-cutting property tests: metatheoretic invariants in miniature.

These are not full metatheory proofs, but executable spot checks of the
properties the paper's design leans on: normalization idempotence,
this-resolution stability, weakening admissibility, and the §4 "Affinity"
observations about resource destruction.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lf.basis import KindDecl, NAT_T, PropDecl, builtin_basis
from repro.lf.syntax import ConstRef, KIND_PROP, KPi, THIS, NatLit, TApp, TConst
from repro.logic.checker import CheckerContext, ProofError, check_proof, infer
from repro.logic.freshness import prop_fresh
from repro.logic.proofterms import (
    LolliIntro,
    OneElim,
    OneIntro,
    PVar,
    TensorIntro,
)
from repro.logic.propositions import (
    Lolli,
    One,
    Tensor,
    alpha_equal_prop,
    normalize_prop,
    props_equal,
    substitute_this_prop,
)

from tests.logic.conftest import coin
from tests.surface.test_parser import props as props_strategy


class TestNormalization:
    @given(props_strategy)
    @settings(max_examples=100, deadline=None)
    def test_normalize_idempotent(self, prop):
        once = normalize_prop(prop)
        assert alpha_equal_prop(normalize_prop(once), once)

    @given(props_strategy)
    @settings(max_examples=100, deadline=None)
    def test_props_equal_reflexive(self, prop):
        assert props_equal(prop, prop)


class TestThisResolution:
    @given(props_strategy)
    @settings(max_examples=100, deadline=None)
    def test_resolution_idempotent(self, prop):
        txid = b"\x11" * 32
        once = substitute_this_prop(prop, txid)
        assert alpha_equal_prop(substitute_this_prop(once, txid), once)

    @given(props_strategy)
    @settings(max_examples=100, deadline=None)
    def test_resolution_removes_this(self, prop):
        from repro.logic.propositions import iter_constants_prop

        txid = b"\x11" * 32
        resolved = substitute_this_prop(prop, txid)
        assert not any(ref.is_local for ref in iter_constants_prop(resolved))

    @given(props_strategy)
    @settings(max_examples=60, deadline=None)
    def test_resolution_commutes_with_normalization(self, prop):
        txid = b"\x11" * 32
        a = normalize_prop(substitute_this_prop(prop, txid))
        b = substitute_this_prop(normalize_prop(prop), txid)
        assert alpha_equal_prop(a, b)


class TestWeakening:
    def test_extra_affine_hypotheses_are_harmless(self, basis):
        """Admissibility of weakening: a proof stays valid (with the same
        conclusion and consumption) under extra affine hypotheses."""
        ctx = CheckerContext(basis=basis).with_affine("x", coin(1))
        term = PVar("x")
        prop1, used1 = infer(ctx, term)
        widened = ctx.with_affine("junk", coin(99)).with_affine("more", One())
        prop2, used2 = infer(widened, term)
        assert props_equal(prop1, prop2)
        assert used1 == used2


class TestAffinity:
    """§4 "Affinity": why the paper embraces weakening."""

    def test_destructor_rule_is_fresh(self, basis):
        """"The easiest [way to destroy a resource] is to declare constants
        with type A ⊸ 1 in the local basis.  This is legal, since 1 is not
        a restricted form." """
        destructor = Lolli(coin(1), One())
        assert prop_fresh(destructor)

    def test_destruction_via_declared_rule(self, basis):
        ref = basis.declare_local("destroy", PropDecl(Lolli(coin(1), One())))
        from repro.logic.proofterms import LolliElim, PConst

        ctx = CheckerContext(basis=basis).with_affine("c", coin(1))
        prop, used = infer(ctx, LolliElim(PConst(ref), PVar("c")))
        assert props_equal(prop, One())
        assert used == {"c"}

    def test_implicit_weakening_destroys_too(self, basis):
        """Even without a rule, simply not using a resource discards it."""
        ctx = CheckerContext(basis=basis).with_affine("c", coin(1))
        prop, used = infer(ctx, OneIntro())
        assert props_equal(prop, One())
        assert used == frozenset()

    def test_contraction_still_forbidden(self, basis):
        """Affine ≠ unrestricted: duplication remains impossible."""
        ctx = CheckerContext(basis=basis).with_affine("c", coin(1))
        with pytest.raises(ProofError):
            infer(ctx, TensorIntro(PVar("c"), PVar("c")))


class TestConditionPlacement:
    """§5: "it is important that the condition appear beneath the lolli,
    not above it" — and with no discharge operation, even the incorrect
    placement cannot be laundered into an unconditional resource."""

    def test_no_way_out_of_the_monad(self, basis):
        """From if(φ, A) there is no proof of bare A: every elimination
        (ifbind) re-enters if(φ, ·)."""
        from repro.logic.conditions import Before
        from repro.lf.syntax import NatLit
        from repro.logic.proofterms import IfBind, IfReturn
        from repro.logic.propositions import IfProp

        phi = Before(NatLit(100))
        ctx = CheckerContext(basis=basis).with_affine("i", IfProp(phi, coin(1)))
        # The only thing ifbind can produce is another conditional.
        prop, _ = infer(
            ctx, IfBind("x", PVar("i"), IfReturn(phi, PVar("x")))
        )
        assert isinstance(normalize_prop(prop), IfProp)
        # Using the body variable directly escapes the monad → rejected.
        with pytest.raises(ProofError, match="if"):
            infer(ctx, IfBind("x", PVar("i"), PVar("x")))

    def test_correct_placement_expires_with_the_offer(self, basis):
        """receipt ⊸ if(φ, A): exercising yields a conditional that the
        top-level discharge re-checks — captured by the type."""
        from repro.logic.conditions import Before
        from repro.lf.syntax import NatLit, PrincipalLit
        from repro.logic.propositions import IfProp, Receipt
        from repro.logic.proofterms import LolliElim

        alice = PrincipalLit(b"\xaa" * 20)
        phi = Before(NatLit(100))
        offer = Lolli(Receipt(One(), 5, alice), IfProp(phi, coin(1)))
        ctx = (
            CheckerContext(basis=basis)
            .with_persistent("offer", offer)
            .with_affine("r", Receipt(One(), 5, alice))
        )
        prop, _ = infer(ctx, LolliElim(PVar("offer"), PVar("r")))
        assert isinstance(normalize_prop(prop), IfProp)
