"""Tests for conditions: entailment (Appendix A) and evaluation (§5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lf.syntax import NatLit, Var
from repro.logic.conditions import (
    Before,
    CAnd,
    CNot,
    CTrue,
    ConditionUndecidable,
    Spent,
    WorldView,
    conditions_equal,
    conjoin,
    entails,
    evaluate,
    implies,
)

TX = b"\x77" * 32
SPENT_0 = Spent(TX, 0)
SPENT_1 = Spent(TX, 1)


# Hypothesis strategy over conditions (shallow, closed).
atoms = st.sampled_from(
    [CTrue(), Before(NatLit(10)), Before(NatLit(20)), SPENT_0, SPENT_1]
)
conditions = st.recursive(
    atoms,
    lambda sub: st.one_of(
        st.builds(CAnd, sub, sub),
        st.builds(CNot, sub),
    ),
    max_leaves=6,
)


class TestEntailment:
    def test_identity(self):
        assert entails([SPENT_0], [SPENT_0])

    def test_different_atoms_fail(self):
        assert not entails([SPENT_0], [SPENT_1])

    def test_true_right(self):
        assert entails([], [CTrue()])
        assert entails([SPENT_0], [CTrue()])

    def test_true_left_discarded(self):
        assert entails([CTrue(), SPENT_0], [SPENT_0])

    def test_empty_sequent_fails(self):
        assert not entails([], [])

    def test_and_left(self):
        assert entails([CAnd(SPENT_0, SPENT_1)], [SPENT_0])
        assert entails([CAnd(SPENT_0, SPENT_1)], [SPENT_1])

    def test_and_right(self):
        assert entails([SPENT_0, SPENT_1], [CAnd(SPENT_0, SPENT_1)])
        assert not entails([SPENT_0], [CAnd(SPENT_0, SPENT_1)])

    def test_negation_swaps_sides(self):
        assert entails([CNot(SPENT_0), SPENT_0], [])  # contradiction proves all
        assert entails([], [CNot(SPENT_0), SPENT_0])  # excluded middle (classical)

    def test_double_negation(self):
        assert entails([CNot(CNot(SPENT_0))], [SPENT_0])
        assert entails([SPENT_0], [CNot(CNot(SPENT_0))])

    def test_before_axiom(self):
        """before(t) ⊃ before(t′) when t ≤ t′."""
        assert entails([Before(NatLit(10))], [Before(NatLit(20))])
        assert entails([Before(NatLit(10))], [Before(NatLit(10))])
        assert not entails([Before(NatLit(20))], [Before(NatLit(10))])

    def test_symbolic_before_by_identity(self):
        assert entails([Before(Var("t"))], [Before(Var("t"))])
        assert not entails([Before(Var("t"))], [Before(Var("u"))])

    def test_conjunction_weakening_idiom(self):
        """The ifweaken idiom of Figure 3: a conjunction entails each part."""
        combined = CAnd(CNot(SPENT_0), Before(NatLit(100)))
        assert implies(combined, CNot(SPENT_0))
        assert implies(combined, Before(NatLit(100)))
        assert implies(combined, Before(NatLit(150)))
        assert not implies(CNot(SPENT_0), combined)

    @given(conditions)
    @settings(max_examples=60, deadline=None)
    def test_reflexivity(self, cond):
        assert entails([cond], [cond])

    @given(conditions, conditions)
    @settings(max_examples=60, deadline=None)
    def test_and_projection(self, a, b):
        assert entails([CAnd(a, b)], [a])
        assert entails([CAnd(a, b)], [b])

    @given(conditions, conditions)
    @settings(max_examples=40, deadline=None)
    def test_entailment_sound_for_evaluation(self, a, b):
        """If a ⊃ b then every world satisfying a satisfies b."""
        if not entails([a], [b]):
            return
        for time in (0, 15, 100):
            for spent in (set(), {0}, {0, 1}):
                world = WorldView(
                    time, lambda _t, n, s=spent: n in s
                )
                if evaluate(a, world):
                    assert evaluate(b, world)


class TestEvaluation:
    def test_true(self):
        assert evaluate(CTrue(), WorldView.at_time(0))

    def test_before(self):
        assert evaluate(Before(NatLit(100)), WorldView.at_time(99))
        assert not evaluate(Before(NatLit(100)), WorldView.at_time(100))

    def test_spent_oracle(self):
        world = WorldView(0, lambda txid, n: txid == TX and n == 0)
        assert evaluate(SPENT_0, world)
        assert not evaluate(SPENT_1, world)

    def test_revocation_condition(self):
        """§5: ¬spent(I) — true until Alice spends I, then false."""
        offer = CNot(SPENT_0)
        before = WorldView(0, lambda _t, _n: False)
        after = WorldView(0, lambda _t, _n: True)
        assert evaluate(offer, before)
        assert not evaluate(offer, after)

    def test_and(self):
        cond = CAnd(Before(NatLit(10)), CNot(SPENT_0))
        assert evaluate(cond, WorldView.at_time(5))
        assert not evaluate(cond, WorldView.at_time(15))

    def test_open_condition_undecidable(self):
        with pytest.raises(ConditionUndecidable):
            evaluate(Before(Var("t")), WorldView.at_time(0))

    def test_evaluation_normalizes_times(self):
        from repro.lf.basis import ADD
        from repro.lf.syntax import Const, apply_term

        cond = Before(apply_term(Const(ADD), NatLit(40), NatLit(2)))
        assert evaluate(cond, WorldView.at_time(41))
        assert not evaluate(cond, WorldView.at_time(42))


class TestStructure:
    def test_conjoin_empty(self):
        assert conjoin([]) == CTrue()

    def test_conjoin_drops_true(self):
        assert conjoin([CTrue(), SPENT_0, CTrue()]) == SPENT_0

    def test_conjoin_pairs(self):
        assert conjoin([SPENT_0, SPENT_1]) == CAnd(SPENT_0, SPENT_1)

    def test_spent_validation(self):
        with pytest.raises(ValueError):
            Spent(b"\x00" * 31, 0)
        with pytest.raises(ValueError):
            Spent(TX, -1)

    def test_conditions_equal_mod_normalization(self):
        from repro.lf.basis import ADD
        from repro.lf.syntax import Const, apply_term

        a = Before(apply_term(Const(ADD), NatLit(1), NatLit(2)))
        assert conditions_equal(a, Before(NatLit(3)))
