"""Tests for proposition structure, substitution, and equality."""

import pytest

from repro.lf.basis import NAT_T, PRINCIPAL_T
from repro.lf.syntax import NatLit, PrincipalLit, Var
from repro.logic.propositions import (
    Atom,
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Plus,
    Receipt,
    Says,
    Tensor,
    With,
    Zero,
    alpha_equal_prop,
    free_vars_prop,
    normalize_prop,
    props_equal,
    substitute_prop,
    substitute_this_prop,
    tensor_all,
)
from repro.logic.conditions import Before, CTrue

from tests.logic.conftest import coin

ALICE = PrincipalLit(b"\xaa" * 20)


class TestTensorAll:
    def test_empty_is_one(self):
        assert tensor_all([]) == One()

    def test_singleton(self):
        assert tensor_all([coin(1)]) == coin(1)

    def test_right_nested(self):
        result = tensor_all([coin(1), coin(2), coin(3)])
        assert result == Tensor(coin(1), Tensor(coin(2), coin(3)))


class TestFreeVars:
    def test_atom(self):
        assert free_vars_prop(coin(Var("n"))) == {"n"}

    def test_forall_binds(self):
        prop = Forall("n", NAT_T, coin(Var("n")))
        assert free_vars_prop(prop) == set()

    def test_exists_binds(self):
        prop = Exists("n", NAT_T, Tensor(coin(Var("n")), coin(Var("m"))))
        assert free_vars_prop(prop) == {"m"}

    def test_says_principal_counted(self):
        prop = Says(Var("k"), One())
        assert free_vars_prop(prop) == {"k"}

    def test_receipt_recipient_counted(self):
        prop = Receipt(One(), 5, Var("k"))
        assert free_vars_prop(prop) == {"k"}

    def test_condition_vars_counted(self):
        prop = IfProp(Before(Var("t")), One())
        assert free_vars_prop(prop) == {"t"}


class TestSubstitution:
    def test_atom_substitution(self):
        prop = coin(Var("n"))
        assert substitute_prop(prop, "n", NatLit(5)) == coin(5)

    def test_shadowed_not_substituted(self):
        prop = Forall("n", NAT_T, coin(Var("n")))
        assert substitute_prop(prop, "n", NatLit(5)) == prop

    def test_capture_avoided(self):
        # [n/m] into ∀n. coin m must not capture.
        prop = Forall("n", NAT_T, coin(Var("m")))
        result = substitute_prop(prop, "m", Var("n"))
        assert isinstance(result, Forall)
        assert result.var != "n"
        assert free_vars_prop(result) == {"n"}

    def test_says_substitution(self):
        prop = Says(Var("k"), coin(Var("n")))
        result = substitute_prop(prop, "k", ALICE)
        assert result == Says(ALICE, coin(Var("n")))

    def test_condition_substitution(self):
        prop = IfProp(Before(Var("t")), One())
        result = substitute_prop(prop, "t", NatLit(99))
        assert result == IfProp(Before(NatLit(99)), One())


class TestEquality:
    def test_alpha_quantifiers(self):
        a = Forall("n", NAT_T, coin(Var("n")))
        b = Forall("m", NAT_T, coin(Var("m")))
        assert alpha_equal_prop(a, b)

    def test_different_connectives_unequal(self):
        assert not alpha_equal_prop(Tensor(One(), One()), With(One(), One()))
        assert not alpha_equal_prop(Zero(), One())

    def test_normalization_in_equality(self):
        from repro.lf.basis import ADD
        from repro.lf.syntax import Const, apply_term

        computed = coin(apply_term(Const(ADD), NatLit(2), NatLit(3)))
        assert props_equal(computed, coin(5))
        assert not props_equal(computed, coin(6))

    def test_receipt_amount_matters(self):
        assert not alpha_equal_prop(
            Receipt(One(), 1, ALICE), Receipt(One(), 2, ALICE)
        )

    def test_bang_plus(self):
        assert alpha_equal_prop(Bang(Plus(One(), Zero())), Bang(Plus(One(), Zero())))


class TestThisResolution:
    def test_atom_head_resolved(self):
        txid = b"\x11" * 32
        resolved = substitute_this_prop(coin(1), txid)
        assert "this" not in str(resolved)
        assert props_equal(substitute_this_prop(coin(1), txid), resolved)

    def test_nested_resolution(self):
        txid = b"\x11" * 32
        prop = Lolli(coin(1), IfProp(CTrue(), Says(ALICE, coin(2))))
        resolved = substitute_this_prop(prop, txid)
        assert "this" not in str(resolved)

    def test_receipt_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            Receipt(One(), -1, ALICE)
