"""Tests for the canonical (hashable/signable) encoding."""

import pytest

from repro.lf.basis import NAT_T, PLUS
from repro.lf.syntax import (
    App,
    Const,
    ConstRef,
    Lam,
    NatLit,
    PrincipalLit,
    TConst,
    THIS,
    Var,
)
from repro.logic.conditions import Before, CAnd, CNot, CTrue, Spent
from repro.logic.encoding import (
    EncodingError,
    encode_cond,
    encode_prop,
    encode_term,
)
from repro.logic.propositions import (
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Receipt,
    Says,
    Tensor,
    With,
    Zero,
)

from tests.logic.conftest import coin

ALICE = PrincipalLit(b"\xaa" * 20)


def test_alpha_invariance_of_terms():
    a = Lam("x", NAT_T, Var("x"))
    b = Lam("y", NAT_T, Var("y"))
    assert encode_term(a) == encode_term(b)


def test_alpha_invariance_of_props():
    a = Forall("n", NAT_T, coin(Var("n")))
    b = Forall("m", NAT_T, coin(Var("m")))
    assert encode_prop(a) == encode_prop(b)


def test_distinct_props_distinct_encodings():
    props = [
        One(),
        Zero(),
        coin(1),
        coin(2),
        Tensor(One(), One()),
        With(One(), One()),
        Lolli(One(), One()),
        Bang(One()),
        Says(ALICE, One()),
        Receipt(One(), 5, ALICE),
        Receipt(One(), 6, ALICE),
        IfProp(CTrue(), One()),
        Forall("n", NAT_T, One()),
        Exists("n", NAT_T, One()),
    ]
    encodings = [encode_prop(p) for p in props]
    assert len(set(encodings)) == len(encodings)


def test_free_variables_rejected():
    with pytest.raises(EncodingError, match="free variable"):
        encode_term(Var("loose"))
    with pytest.raises(EncodingError):
        encode_prop(coin(Var("n")))


def test_bound_variables_fine():
    encode_prop(Forall("n", NAT_T, coin(Var("n"))))


def test_nested_binder_indices():
    # λx.λy.x vs λx.λy.y must differ.
    a = Lam("x", NAT_T, Lam("y", NAT_T, Var("x")))
    b = Lam("x", NAT_T, Lam("y", NAT_T, Var("y")))
    assert encode_term(a) != encode_term(b)


def test_namespace_separation():
    this_const = Const(ConstRef(THIS, "c"))
    txid_const = Const(ConstRef(b"\x00" * 32, "c"))
    assert encode_term(this_const) != encode_term(txid_const)


def test_condition_encodings_distinct():
    conds = [
        CTrue(),
        Before(NatLit(1)),
        Before(NatLit(2)),
        Spent(b"\x01" * 32, 0),
        Spent(b"\x01" * 32, 1),
        CNot(CTrue()),
        CAnd(CTrue(), CTrue()),
    ]
    encodings = [encode_cond(c) for c in conds]
    assert len(set(encodings)) == len(encodings)


def test_length_prefixing_prevents_ambiguity():
    # receipt(1/1 ↠ K) vs receipt(1/17 ↠ K) with trailing structure.
    a = encode_prop(Tensor(Receipt(One(), 1, ALICE), One()))
    b = encode_prop(Tensor(Receipt(One(), 17, ALICE), One()))
    assert a != b


def test_application_encoding_is_order_sensitive():
    f = Const(ConstRef(THIS, "f"))
    a = App(App(f, NatLit(1)), NatLit(2))
    b = App(App(f, NatLit(2)), NatLit(1))
    assert encode_term(a) != encode_term(b)
