"""Shared fixtures for logic tests: a basis with the coin family."""

import pytest

from repro.lf.basis import KindDecl, NAT_T, builtin_basis
from repro.lf.syntax import (
    KIND_PROP,
    KPi,
    ConstRef,
    NatLit,
    TConst,
    THIS,
    apply_family,
)
from repro.logic.propositions import Atom

COIN_REF = ConstRef(THIS, "coin")


@pytest.fixture
def basis():
    """The builtin basis plus a local ``coin : nat → prop``."""
    b = builtin_basis()
    b.declare(COIN_REF, KindDecl(KPi("n", NAT_T, KIND_PROP)))
    return b


def coin(n) -> Atom:
    """The atomic proposition ``coin n``."""
    index = NatLit(n) if isinstance(n, int) else n
    return Atom(apply_family(TConst(COIN_REF), index))
