"""Tests for the transaction-formation judgement (Appendix A)."""

import dataclasses

import pytest

from repro.core.builder import basis_publication, build_with_payload, simple_transfer
from repro.core.proofs import obligation_lambda, tensor_intro_all
from repro.core.transaction import TypecoinInput, TypecoinOutput, TypecoinTransaction
from repro.core.validate import (
    Ledger,
    ValidationFailure,
    check_typecoin_transaction,
    world_at,
)
from repro.lf.basis import Basis, KindDecl, PropDecl, TypeDecl, NAT_T
from repro.lf.syntax import (
    KIND_PROP,
    KPi,
    ConstRef,
    NatLit,
    TApp,
    TConst,
    THIS,
    Var,
)
from repro.logic.conditions import Before, CNot, CTrue, Spent, WorldView
from repro.logic.proofterms import IfReturn, OneIntro, PVar, TensorIntro
from repro.logic.propositions import Atom, IfProp, Lolli, One, Says, props_equal
from repro.lf.syntax import PrincipalLit

ALICE = PrincipalLit(b"\xaa" * 20)
PUBKEY = b"\x02" + b"\x11" * 32


def coin_basis():
    basis = Basis()
    ref = basis.declare_local("coin", KindDecl(KPi("n", NAT_T, KIND_PROP)))
    return basis, ref


def coin_prop(ref, n):
    return Atom(TApp(TConst(ref), NatLit(n)))


@pytest.fixture
def world():
    return WorldView.at_time(1_000_000_000)


class TestBasisChecks:
    def test_valid_publication(self, world):
        basis, ref = coin_basis()
        txn = basis_publication(basis, PUBKEY)
        check_typecoin_transaction(Ledger(), txn, world)

    def test_nonlocal_declaration_rejected(self, world):
        basis = Basis()
        basis.declare(ConstRef(b"\x99" * 32, "x"), TypeDecl(NAT_T))
        txn = basis_publication(basis, PUBKEY)
        with pytest.raises(ValidationFailure, match="this"):
            check_typecoin_transaction(Ledger(), txn, world)

    def test_ill_formed_declaration_rejected(self, world):
        basis = Basis()
        # Refers to a constant that does not exist.
        basis.declare_local(
            "bad", TypeDecl(TConst(ConstRef(THIS, "ghost")))
        )
        txn = basis_publication(basis, PUBKEY)
        with pytest.raises(ValidationFailure, match="ill-formed declaration"):
            check_typecoin_transaction(Ledger(), txn, world)

    def test_unfresh_rule_rejected(self, world):
        """A basis may not produce someone else's vocabulary."""
        other = ConstRef(b"\x88" * 32, "coin")
        basis = Basis()
        basis.declare_local(
            "forge",
            PropDecl(Lolli(One(), Atom(TApp(TConst(other), NatLit(1))))),
        )
        # Provide the foreign family in the ledger's global basis first.
        ledger = Ledger()
        ledger.global_basis.declare(other, KindDecl(KPi("n", NAT_T, KIND_PROP)))
        txn = basis_publication(basis, PUBKEY)
        with pytest.raises(ValidationFailure, match="freshness"):
            check_typecoin_transaction(ledger, txn, world)

    def test_unfresh_grant_rejected(self, world):
        txn = basis_publication(
            Basis(), PUBKEY, grant=Says(ALICE, One())
        )
        with pytest.raises(ValidationFailure, match="freshness"):
            check_typecoin_transaction(Ledger(), txn, world)


class TestInputChecks:
    def register_coin(self, world):
        basis, ref = coin_basis()
        grant_prop = coin_prop(ref, 5)
        txn = basis_publication(basis, PUBKEY, grant=grant_prop)
        ledger = Ledger()
        check_typecoin_transaction(ledger, txn, world)
        txid = b"\x01" * 32
        ledger.register(txid, txn)
        return ledger, txid, ref.resolved(txid)

    def test_spend_known_output(self, world):
        ledger, txid, ref = self.register_coin(world)
        inp = TypecoinInput(txid, 0, coin_prop(ref, 5), 600)
        out = TypecoinOutput(coin_prop(ref, 5), 600, PUBKEY)
        txn = simple_transfer([inp], [out])
        check_typecoin_transaction(ledger, txn, world)

    def test_unknown_input_rejected(self, world):
        ledger, txid, ref = self.register_coin(world)
        inp = TypecoinInput(b"\x77" * 32, 0, coin_prop(ref, 5), 600)
        out = TypecoinOutput(coin_prop(ref, 5), 600, PUBKEY)
        txn = simple_transfer([inp], [out])
        with pytest.raises(ValidationFailure, match="not a known"):
            check_typecoin_transaction(ledger, txn, world)

    def test_wrong_input_type_rejected(self, world):
        ledger, txid, ref = self.register_coin(world)
        inp = TypecoinInput(txid, 0, coin_prop(ref, 6), 600)
        out = TypecoinOutput(coin_prop(ref, 6), 600, PUBKEY)
        txn = simple_transfer([inp], [out])
        with pytest.raises(ValidationFailure, match="does not match"):
            check_typecoin_transaction(ledger, txn, world)

    def test_wrong_amount_rejected(self, world):
        ledger, txid, ref = self.register_coin(world)
        inp = TypecoinInput(txid, 0, coin_prop(ref, 5), 700)
        out = TypecoinOutput(coin_prop(ref, 5), 700, PUBKEY)
        txn = simple_transfer([inp], [out])
        with pytest.raises(ValidationFailure, match="amount"):
            check_typecoin_transaction(ledger, txn, world)

    def test_duplicate_inputs_rejected(self, world):
        ledger, txid, ref = self.register_coin(world)
        inp = TypecoinInput(txid, 0, coin_prop(ref, 5), 600)
        out = TypecoinOutput(coin_prop(ref, 5), 600, PUBKEY)
        proof = obligation_lambda(
            One(), [inp.prop, inp.prop], [out.receipt()],
            lambda _c, ins, _r: ins[0],
        )
        txn = TypecoinTransaction(Basis(), One(), [inp, inp], [out], proof)
        with pytest.raises(ValidationFailure, match="duplicate"):
            check_typecoin_transaction(ledger, txn, world)


class TestProofChecks:
    def test_proof_must_consume_obligation(self, world):
        basis, ref = coin_basis()
        out = TypecoinOutput(One(), 600, PUBKEY)
        # Proof of the wrong implication shape.
        proof = OneIntro()
        txn = TypecoinTransaction(basis, One(), [], [out], proof)
        with pytest.raises(ValidationFailure, match="not an implication"):
            check_typecoin_transaction(Ledger(), txn, world)

    def test_proof_output_mismatch(self, world):
        basis, ref = coin_basis()
        out = TypecoinOutput(coin_prop(ref, 5), 600, PUBKEY)
        proof = obligation_lambda(
            One(), [], [out.receipt()],
            lambda _c, _i, _r: OneIntro(),  # proves 1, not coin 5
        )
        txn = TypecoinTransaction(basis, One(), [], [out], proof)
        with pytest.raises(ValidationFailure, match="produces"):
            check_typecoin_transaction(Ledger(), txn, world)

    def test_minting_without_grant_rejected(self, world):
        """The key theorem in miniature: you cannot conjure a coin."""
        basis, ref = coin_basis()
        out = TypecoinOutput(coin_prop(ref, 5), 600, PUBKEY)
        proof = obligation_lambda(
            One(), [], [out.receipt()],
            lambda _c, _i, _r: PVar("nothing"),
        )
        txn = TypecoinTransaction(basis, One(), [], [out], proof)
        with pytest.raises(ValidationFailure, match="proof does not check"):
            check_typecoin_transaction(Ledger(), txn, world)


class TestConditionalDischarge:
    def conditional_txn(self, condition):
        out = TypecoinOutput(One(), 600, PUBKEY)
        proof = obligation_lambda(
            One(), [], [out.receipt()],
            lambda _c, _i, _r: IfReturn(condition, OneIntro()),
        )
        return TypecoinTransaction(Basis(), One(), [], [out], proof)

    def test_true_condition_discharges(self):
        txn = self.conditional_txn(Before(NatLit(2_000_000_000)))
        check_typecoin_transaction(
            Ledger(), txn, WorldView.at_time(1_000_000_000)
        )

    def test_false_condition_blocks(self):
        """§5: "the transaction is valid only if φ holds"."""
        txn = self.conditional_txn(Before(NatLit(500)))
        with pytest.raises(ValidationFailure, match="does not hold"):
            check_typecoin_transaction(
                Ledger(), txn, WorldView.at_time(1_000_000_000)
            )

    def test_revocation_condition_consults_oracle(self):
        revocation = Spent(b"\x42" * 32, 0)
        txn = self.conditional_txn(CNot(revocation))
        unspent_world = WorldView(1_000, lambda _t, _n: False)
        check_typecoin_transaction(Ledger(), txn, unspent_world)
        spent_world = WorldView(1_000, lambda _t, _n: True)
        with pytest.raises(ValidationFailure, match="does not hold"):
            check_typecoin_transaction(Ledger(), txn, spent_world)


class TestLedger:
    def test_register_resolves_this(self, world):
        basis, ref = coin_basis()
        txn = basis_publication(basis, PUBKEY, grant=coin_prop(ref, 5))
        ledger = Ledger()
        check_typecoin_transaction(ledger, txn, world)
        txid = b"\x0a" * 32
        ledger.register(txid, txn)
        entry = ledger.output(txid, 0)
        assert props_equal(entry.prop, coin_prop(ref.resolved(txid), 5))
        assert ConstRef(txid, "coin") in ledger.global_basis

    def test_register_marks_spent(self, world):
        basis, ref = coin_basis()
        txn = basis_publication(basis, PUBKEY, grant=coin_prop(ref, 5))
        ledger = Ledger()
        check_typecoin_transaction(ledger, txn, world)
        txid = b"\x0a" * 32
        ledger.register(txid, txn)
        resolved = ref.resolved(txid)
        spend = simple_transfer(
            [TypecoinInput(txid, 0, coin_prop(resolved, 5), 600)],
            [TypecoinOutput(coin_prop(resolved, 5), 600, PUBKEY)],
        )
        check_typecoin_transaction(ledger, spend, world)
        ledger.register(b"\x0b" * 32, spend)
        assert ledger.spent_oracle(txid, 0)
        assert not ledger.spent_oracle(b"\x0b" * 32, 0)

    def test_double_registration_rejected(self, world):
        txn = basis_publication(Basis(), PUBKEY)
        ledger = Ledger()
        ledger.register(b"\x0c" * 32, txn)
        with pytest.raises(ValidationFailure, match="already registered"):
            ledger.register(b"\x0c" * 32, txn)


class TestWorldAt:
    def test_world_reads_block_timestamp(self, net, alice):
        world = world_at(net.chain)
        assert world.time == net.chain.tip.block.header.timestamp

    def test_spent_oracle_height_cutoff(self, net, alice, bob):
        from repro.bitcoin.standard import p2pkh_script
        from repro.bitcoin.transaction import COIN, TxOut

        tx = alice.wallet.create_transaction(
            net.chain, [TxOut(COIN, p2pkh_script(bob.wallet.key_hash))], fee=1000
        )
        net.send(tx)
        net.confirm(1)
        spend_height = net.chain.height
        spent_op = tx.vin[0].prevout
        # At the spend height the outpoint is spent; just before, it wasn't.
        assert world_at(net.chain, spend_height).spent_oracle(
            spent_op.txid, spent_op.index
        )
        assert not world_at(net.chain, spend_height - 1).spent_oracle(
            spent_op.txid, spent_op.index
        )
