"""Tests for the whole-chain auditor (the 𝔗 : Σ judgement)."""

import dataclasses

import pytest

from repro.bitcoin.transaction import OutPoint
from repro.core.auditor import audit_chain
from repro.core.builder import simple_transfer
from repro.core.transaction import TypecoinOutput
from repro.core.validate import ValidationFailure
from repro.logic.propositions import One, props_equal

from tests.core.conftest import publish_newcoin
from tests.core.test_batch import issue_to


def full_history(net, bank, alice):
    """Publish basis, issue, transfer — returns the off-chain store."""
    vocab, basis_txid, basis_txn = publish_newcoin(net, bank)
    issue_carrier, issue_txn = issue_to(net, bank, vocab, 10, bank.pubkey)
    transfer = simple_transfer(
        [bank.input_for(OutPoint(issue_carrier.txid, 0))],
        [TypecoinOutput(vocab.coin_prop(10), 600, alice.pubkey)],
    )
    transfer_carrier = bank.submit(transfer)
    net.confirm(1)
    bank.sync()
    store = {
        basis_txid: basis_txn,
        issue_carrier.txid: issue_txn,
        transfer_carrier.txid: transfer,
    }
    return vocab, store, transfer_carrier.txid


def test_clean_history_audits_ok(net, bank, alice):
    vocab, store, tip_txid = full_history(net, bank, alice)
    report = audit_chain(net.chain, store)
    assert report.ok
    assert len(report.accepted) == 3
    # The rebuilt ledger knows the final owner and type.
    entry = report.ledger.output(tip_txid, 0)
    assert props_equal(entry.prop, vocab.coin_prop(10))
    assert entry.principal == alice.principal


def test_accepts_in_block_order(net, bank, alice):
    """The store can be handed over in any order; audit follows the chain."""
    vocab, store, tip_txid = full_history(net, bank, alice)
    shuffled = dict(reversed(list(store.items())))
    report = audit_chain(net.chain, shuffled)
    assert report.ok


def test_tampered_transaction_flagged(net, bank, alice):
    vocab, store, tip_txid = full_history(net, bank, alice)
    # Doctor the issuing transaction: the carrier hash no longer matches.
    issue_txid = next(
        txid for txid, txn in store.items()
        if txn.inputs == () and len(txn.basis) == 0
    )
    store[issue_txid] = dataclasses.replace(
        store[issue_txid],
        outputs=(TypecoinOutput(vocab.coin_prop(999), 600, bank.pubkey),),
    )
    report = audit_chain(net.chain, store)
    assert not report.ok
    reasons = " ".join(str(issue) for issue in report.issues)
    assert "does not embed" in reasons or "carrier" in reasons
    # The downstream transfer is tainted too.
    assert len(report.issues) == 2
    assert len(report.accepted) == 1  # only the basis publication survives


def test_strict_mode_raises(net, bank, alice):
    vocab, store, tip_txid = full_history(net, bank, alice)
    issue_txid = next(
        txid for txid, txn in store.items()
        if txn.inputs == () and len(txn.basis) == 0
    )
    store[issue_txid] = dataclasses.replace(
        store[issue_txid],
        outputs=(TypecoinOutput(vocab.coin_prop(999), 600, bank.pubkey),),
    )
    with pytest.raises(Exception):
        audit_chain(net.chain, store, strict=True)


def test_unmatched_store_entries_reported(net, bank, alice):
    vocab, store, _ = full_history(net, bank, alice)
    phantom = simple_transfer(
        [], [TypecoinOutput(One(), 600, alice.pubkey)]
    )
    store[b"\x99" * 32] = phantom  # never confirmed on-chain
    report = audit_chain(net.chain, store)
    assert not report.ok
    assert report.unmatched == [b"\x99" * 32]


def test_empty_store_is_trivially_ok(net, bank):
    report = audit_chain(net.chain, {})
    assert report.ok
    assert report.accepted == []
