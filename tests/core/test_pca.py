"""Tests for proof-carrying authorization: the homework protocol (§1–2)."""

import pytest

from repro.bitcoin.transaction import OutPoint
from repro.core.builder import basis_publication, build_with_payload, simple_transfer
from repro.core.pca import (
    AuthVocabulary,
    FileServer,
    FileServerError,
    authorization_basis,
)
from repro.core.proofs import obligation_lambda, tensor_intro_all
from repro.core.transaction import TypecoinOutput
from repro.core.verifier import ClaimBundle
from repro.lf.basis import Basis
from repro.lf.syntax import Const, NatLit
from repro.logic.proofterms import ForallElim, LolliElim, PConst
from repro.logic.propositions import One, Says, props_equal, substitute_this_prop


@pytest.fixture
def published(net, alice):
    """Alice (the resource owner) publishes the authorization basis."""
    basis, vocab = authorization_basis(
        alice.principal_term, ["homework", "notes"]
    )
    txn = basis_publication(basis, alice.pubkey)
    carrier = alice.submit(txn)
    net.confirm(1)
    alice.sync()
    return vocab.resolved(carrier.txid), carrier.txid, txn


def grant_credential(net, alice, bob, vocab, filename="homework"):
    """Alice issues ⟨Alice⟩may_write(Bob, filename) as an affine resource."""
    cred = Says(
        alice.principal_term, vocab.may_write_prop(bob.principal_term, filename)
    )
    out = TypecoinOutput(cred, 600, bob.pubkey)
    txn = build_with_payload(
        Basis(), One(), [], [out],
        lambda payload: obligation_lambda(
            One(), [], [out.receipt()],
            lambda _c, _i, _r: tensor_intro_all([
                alice.affirm_affine(
                    vocab.may_write_prop(bob.principal_term, filename), payload
                )
            ]),
        ),
    )
    carrier = alice.submit(txn)
    net.confirm(1)
    alice.sync()
    bob.known[carrier.txid] = txn
    return OutPoint(carrier.txid, 0), cred


def infuse_nonce(net, bob, vocab, cred_outpoint, nonce, filename="homework"):
    """Bob converts his credential to may_write_this(Bob, file, nonce)."""
    inp = bob.input_for(cred_outpoint)
    target = vocab.may_write_this_prop(bob.principal_term, filename, nonce)
    out = TypecoinOutput(target, 600, bob.pubkey)
    txn = simple_transfer(
        [inp], [out],
        body=lambda ins: LolliElim(
            ForallElim(
                ForallElim(
                    ForallElim(PConst(vocab.use_write), bob.principal_term),
                    vocab.file_term(filename),
                ),
                NatLit(nonce),
            ),
            ins[0],
        ),
    )
    carrier = bob.submit(txn)
    net.confirm(1)
    bob.sync()
    return OutPoint(carrier.txid, 0), target


class TestHomeworkProtocol:
    def test_full_write_flow(self, net, alice, bob, published):
        vocab, basis_txid, basis_txn = published
        server = FileServer(chain=net.chain, vocab=vocab)
        cred_outpoint, cred = grant_credential(net, alice, bob, vocab)

        nonce = server.request_write(bob.principal, "homework")
        out_outpoint, target = infuse_nonce(net, bob, vocab, cred_outpoint, nonce)

        bundle = bob.claim_bundle(out_outpoint, target)
        server.complete_write(nonce, bundle, b"my homework text")
        assert server.contents["homework"] == b"my homework text"

    def test_nonce_single_use(self, net, alice, bob, published):
        vocab, _, _ = published
        server = FileServer(chain=net.chain, vocab=vocab)
        cred_outpoint, _ = grant_credential(net, alice, bob, vocab)
        nonce = server.request_write(bob.principal, "homework")
        out_outpoint, target = infuse_nonce(net, bob, vocab, cred_outpoint, nonce)
        bundle = bob.claim_bundle(out_outpoint, target)
        server.complete_write(nonce, bundle, b"v1")
        with pytest.raises(FileServerError, match="nonce"):
            server.complete_write(nonce, bundle, b"v2")

    def test_credential_single_use(self, net, alice, bob, published):
        """The affine point: one credential backs exactly one write."""
        vocab, _, _ = published
        server = FileServer(chain=net.chain, vocab=vocab)
        cred_outpoint, _ = grant_credential(net, alice, bob, vocab)
        nonce1 = server.request_write(bob.principal, "homework")
        infuse_nonce(net, bob, vocab, cred_outpoint, nonce1)
        # The credential txout is now spent; a second conversion must fail.
        nonce2 = server.request_write(bob.principal, "homework")
        with pytest.raises(Exception):
            infuse_nonce(net, bob, vocab, cred_outpoint, nonce2)

    def test_wrong_principal_claim_refused(self, net, alice, bob, published):
        vocab, _, _ = published
        server = FileServer(chain=net.chain, vocab=vocab)
        cred_outpoint, _ = grant_credential(net, alice, bob, vocab)
        nonce = server.request_write(alice.principal, "homework")  # Alice's ticket
        out_outpoint, target = infuse_nonce(net, bob, vocab, cred_outpoint, nonce)
        bundle = bob.claim_bundle(out_outpoint, target)
        with pytest.raises(FileServerError, match="does not match"):
            server.complete_write(nonce, bundle, b"oops")

    def test_unknown_nonce_refused(self, net, alice, bob, published):
        vocab, _, _ = published
        server = FileServer(chain=net.chain, vocab=vocab)
        bundle = ClaimBundle(OutPoint(b"\x01" * 32, 0), vocab.may_write_prop(bob.principal_term, "homework"))
        with pytest.raises(FileServerError, match="unknown"):
            server.complete_write(123, bundle, b"data")

    def test_unknown_file_refused(self, net, alice, bob, published):
        vocab, _, _ = published
        server = FileServer(chain=net.chain, vocab=vocab)
        with pytest.raises(FileServerError, match="no such file"):
            server.request_write(bob.principal, "passwords")

    def test_credential_worthless_to_others(self, net, alice, bob, published):
        """may_write(Bob, x) is worthless to anyone but Bob (§2): Charlie
        cannot build may_write_this(Charlie, …) from it."""
        vocab, _, _ = published
        charlie_principal = alice.principal_term  # stand-in third party
        cred_outpoint, _ = grant_credential(net, alice, bob, vocab)
        inp = bob.input_for(cred_outpoint)
        target = vocab.may_write_this_prop(charlie_principal, "homework", 7)
        out = TypecoinOutput(target, 600, bob.pubkey)
        txn = simple_transfer(
            [inp], [out],
            body=lambda ins: LolliElim(
                ForallElim(
                    ForallElim(
                        ForallElim(PConst(vocab.use_write), charlie_principal),
                        vocab.file_term("homework"),
                    ),
                    NatLit(7),
                ),
                ins[0],
            ),
        )
        from repro.core.wallet import ClientError

        with pytest.raises(ClientError):
            bob.submit(txn)
