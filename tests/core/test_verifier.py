"""Tests for the §3 upstream-set verification protocol."""

import dataclasses

import pytest

from repro.bitcoin.transaction import OutPoint
from repro.core.builder import basis_publication, simple_transfer
from repro.core.transaction import TypecoinInput, TypecoinOutput
from repro.core.verifier import ClaimBundle, VerificationError, verify_claim
from repro.lf.basis import Basis, KindDecl
from repro.lf.syntax import KIND_PROP, KPi, NatLit, TApp, TConst
from repro.lf.basis import NAT_T
from repro.logic.propositions import Atom, One, props_equal

from tests.core.conftest import publish_newcoin
from tests.core.test_batch import issue_to


class TestVerifyClaim:
    def test_valid_chain_of_two(self, net, bank, alice):
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, alice.pubkey)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(10))
        ledger = verify_claim(net.chain, bundle)
        assert props_equal(
            ledger.output(outpoint.txid, outpoint.index).prop,
            vocab.coin_prop(10),
        )

    def test_wrong_claimed_type_rejected(self, net, bank, alice):
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, alice.pubkey)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(999))
        with pytest.raises(VerificationError, match="claimed type"):
            verify_claim(net.chain, bundle)

    def test_missing_upstream_rejected(self, net, bank, alice):
        vocab, basis_txid, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, alice.pubkey)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(10))
        # Drop the basis-publication transaction from the bundle.
        pruned = dict(bundle.transactions)
        del pruned[basis_txid]
        broken = ClaimBundle(bundle.outpoint, bundle.prop, pruned)
        with pytest.raises(VerificationError):
            verify_claim(net.chain, broken)

    def test_unconfirmed_carrier_rejected(self, net, bank, alice):
        vocab, _, _ = publish_newcoin(net, bank)
        # Submit but do not confirm.
        out = TypecoinOutput(One(), 600, alice.pubkey)
        txn = simple_transfer([], [out])
        carrier = alice.submit(txn)
        bundle = ClaimBundle(
            OutPoint(carrier.txid, 0), One(), {carrier.txid: txn}
        )
        with pytest.raises(VerificationError, match="not in the active chain"):
            verify_claim(net.chain, bundle)

    def test_confirmation_policy(self, net, bank, alice):
        out = TypecoinOutput(One(), 600, alice.pubkey)
        txn = simple_transfer([], [out])
        carrier = alice.submit(txn)
        net.confirm(2)
        alice.sync()
        bundle = alice.claim_bundle(OutPoint(carrier.txid, 0), One())
        verify_claim(net.chain, bundle, min_confirmations=2)
        with pytest.raises(VerificationError, match="confirmations"):
            verify_claim(net.chain, bundle, min_confirmations=6)

    def test_hash_mismatch_rejected(self, net, bank, alice):
        """Check 1: a Typecoin transaction not matching the embedded hash."""
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, txn = issue_to(net, bank, vocab, 10, alice.pubkey)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(10))
        # Swap the issuing transaction for a doctored one (different hash).
        doctored = dataclasses.replace(
            bundle.transactions[outpoint.txid],
            outputs=(
                TypecoinOutput(vocab.coin_prop(10), 600, bank.pubkey),
            ),
        )
        tampered = dict(bundle.transactions)
        tampered[outpoint.txid] = doctored
        broken = ClaimBundle(bundle.outpoint, bundle.prop, tampered)
        with pytest.raises(VerificationError, match="hash embedding|carrier"):
            verify_claim(net.chain, broken)

    def test_spent_claim_rejected_when_required(self, net, bank, alice):
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, bank.pubkey)
        # The bank spends the output onward.
        inp = bank.input_for(outpoint)
        out = TypecoinOutput(vocab.coin_prop(10), 600, alice.pubkey)
        spend = simple_transfer([inp], [out])
        bank.submit(spend)
        net.confirm(1)
        bank.sync()
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(10))
        with pytest.raises(VerificationError, match="already been spent"):
            verify_claim(net.chain, bundle)
        # With require_unspent off it verifies (for historical audits).
        verify_claim(net.chain, bundle, require_unspent=False)

    def test_base_ledger_shortcut(self, net, bank, alice):
        """A verifier may trust prior history and verify only the delta."""
        vocab, basis_txid, _ = publish_newcoin(net, bank)
        outpoint, issue_txn = issue_to(net, bank, vocab, 10, alice.pubkey)
        bundle = ClaimBundle(
            outpoint, vocab.coin_prop(10), {outpoint.txid: issue_txn}
        )
        # Without the base ledger the basis publication is missing.
        with pytest.raises(VerificationError):
            verify_claim(net.chain, bundle)
        # Seeding with the bank's ledger (which has it) succeeds.
        verify_claim(net.chain, bundle, base_ledger=bank.ledger)

    def test_cycle_detection(self):
        from repro.core.transaction import TypecoinTransaction
        from repro.core.proofs import obligation_lambda, tensor_intro_all

        a_txid = b"\x01" * 32
        b_txid = b"\x02" * 32

        def tx_spending(txid):
            inp = TypecoinInput(txid, 0, One(), 600)
            out = TypecoinOutput(One(), 600, b"\x02" + b"\x11" * 32)
            proof = obligation_lambda(
                One(), [One()], [out.receipt()],
                lambda _c, ins, _r: tensor_intro_all(list(ins)),
            )
            return TypecoinTransaction(Basis(), One(), [inp], [out], proof)

        bundle = ClaimBundle(
            OutPoint(a_txid, 0),
            One(),
            {a_txid: tx_spending(b_txid), b_txid: tx_spending(a_txid)},
        )
        from repro.bitcoin.chain import Blockchain, ChainParams

        with pytest.raises(VerificationError, match="cycle"):
            verify_claim(Blockchain(ChainParams.regtest()), bundle)
