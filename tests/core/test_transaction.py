"""Tests for Typecoin transaction structure, hashing, and payloads."""

import dataclasses

import pytest

from repro.core.builder import basis_publication, simple_transfer
from repro.core.transaction import (
    TxnError,
    TypecoinInput,
    TypecoinOutput,
    TypecoinTransaction,
    referenced_txids,
    trivial_output,
)
from repro.lf.basis import Basis, KindDecl
from repro.lf.syntax import KIND_PROP, ConstRef, THIS, TConst
from repro.logic.propositions import Atom, One, Receipt, props_equal
from repro.logic.proofterms import OneIntro

PUBKEY = b"\x02" + b"\x33" * 32


class TestStructure:
    def test_input_validation(self):
        with pytest.raises(TxnError, match="32 bytes"):
            TypecoinInput(b"\x01" * 31, 0, One(), 0)
        with pytest.raises(TxnError, match="non-negative"):
            TypecoinInput(b"\x01" * 32, -1, One(), 0)
        with pytest.raises(TxnError, match="non-negative"):
            TypecoinInput(b"\x01" * 32, 0, One(), -5)

    def test_output_validation(self):
        with pytest.raises(TxnError, match="33-byte"):
            TypecoinOutput(One(), 600, b"\x02" * 10)
        with pytest.raises(TxnError, match="non-negative"):
            TypecoinOutput(One(), -1, PUBKEY)

    def test_at_least_one_output(self):
        with pytest.raises(TxnError, match="at least one output"):
            TypecoinTransaction(Basis(), One(), [], [], OneIntro())

    def test_output_principal_is_key_hash(self):
        from repro.crypto.hashing import hash160

        out = TypecoinOutput(One(), 600, PUBKEY)
        assert out.principal == hash160(PUBKEY)
        assert out.principal_term.key_hash == out.principal

    def test_receipt_matches_output(self):
        out = TypecoinOutput(One(), 450, PUBKEY)
        receipt = out.receipt()
        assert isinstance(receipt, Receipt)
        assert receipt.amount == 450
        assert receipt.recipient == out.principal_term

    def test_trivial_output(self):
        out = trivial_output(PUBKEY, 1234)
        assert props_equal(out.prop, One())


class TestHashing:
    def test_hash_covers_proof(self):
        """The *full* transaction, proof included, is hashed (§3)."""
        base = simple_transfer([], [TypecoinOutput(One(), 600, PUBKEY)])
        other = dataclasses.replace(base, proof=OneIntro())
        assert base.hash != other.hash

    def test_payload_excludes_proof(self):
        """Affine asserts sign everything *except* the proof (fn. 7)."""
        base = simple_transfer([], [TypecoinOutput(One(), 600, PUBKEY)])
        other = dataclasses.replace(base, proof=OneIntro())
        assert base.signing_payload() == other.signing_payload()

    def test_payload_covers_outputs(self):
        a = simple_transfer([], [TypecoinOutput(One(), 600, PUBKEY)])
        b = simple_transfer([], [TypecoinOutput(One(), 601, PUBKEY)])
        assert a.signing_payload() != b.signing_payload()

    def test_payload_covers_basis(self):
        basis = Basis()
        basis.declare_local("p", KindDecl(KIND_PROP))
        a = basis_publication(Basis(), PUBKEY)
        b = basis_publication(basis, PUBKEY)
        assert a.signing_payload() != b.signing_payload()

    def test_hash_deterministic(self):
        a = simple_transfer([], [TypecoinOutput(One(), 600, PUBKEY)])
        b = simple_transfer([], [TypecoinOutput(One(), 600, PUBKEY)])
        assert a.hash == b.hash


class TestResolution:
    def test_output_prop_resolved(self):
        basis = Basis()
        ref = basis.declare_local("flag", KindDecl(KIND_PROP))
        txn = simple_transfer(
            [], [TypecoinOutput(Atom(TConst(ref)), 600, PUBKEY)], basis=basis
        )
        txid = b"\x0f" * 32
        resolved = txn.output_prop_resolved(0, txid)
        assert props_equal(resolved, Atom(TConst(ConstRef(txid, "flag"))))

    def test_bad_output_index(self):
        txn = simple_transfer([], [TypecoinOutput(One(), 600, PUBKEY)])
        with pytest.raises(TxnError):
            txn.output_prop_resolved(5, b"\x00" * 32)


class TestReferences:
    def test_input_txids_referenced(self):
        txid = b"\x0d" * 32
        txn = simple_transfer(
            [TypecoinInput(txid, 0, One(), 600)],
            [TypecoinOutput(One(), 600, PUBKEY)],
        )
        assert txid in referenced_txids(txn)

    def test_constant_namespaces_referenced(self):
        basis_txid = b"\x0e" * 32
        prop = Atom(TConst(ConstRef(basis_txid, "flag")))
        txn = simple_transfer([], [TypecoinOutput(prop, 600, PUBKEY)])
        assert basis_txid in referenced_txids(txn)

    def test_local_and_builtin_not_referenced(self):
        basis = Basis()
        basis.declare_local("p", KindDecl(KIND_PROP))
        txn = basis_publication(basis, PUBKEY)
        assert referenced_txids(txn) == frozenset()
