"""Tests for §7: open transactions and type-checking escrow.

The puzzle contest: Alice escrows a prize with three agents, publishes an
open transaction paying the prize for a solution, and Bob — who can prove
∃n. plus n 25 42 — claims it with signatures from two of the three agents.
"""

import pytest

from repro.bitcoin.transaction import OutPoint
from repro.core.builder import basis_publication, simple_transfer
from repro.core.escrow import (
    EscrowAgent,
    EscrowError,
    OpenOutput,
    OpenTransaction,
    assemble_multisig_input,
    escrow_lock,
    multisig_partial_signature,
    sign_template,
    template_signature_valid,
)
from repro.core.overlay import build_carrier
from repro.core.proofs import obligation_lambda
from repro.core.transaction import TypecoinInput, TypecoinOutput, TypecoinTransaction
from repro.core.validate import Ledger
from repro.core.wallet import TypecoinClient
from repro.crypto.keys import PrivateKey
from repro.lf.basis import (
    Basis,
    KindDecl,
    NAT_T,
    PLUS,
    PLUS_REFL,
    PropDecl,
)
from repro.lf.syntax import (
    Const,
    KIND_PROP,
    KPi,
    NatLit,
    TConst,
    Var,
    apply_family,
    apply_term,
)
from repro.logic.proofterms import (
    ExistsIntro,
    ForallElim,
    LolliElim,
    LolliIntro,
    OneIntro,
    PConst,
    PVar,
    TensorElim,
    TensorIntro,
)
from repro.logic.propositions import Atom, Exists, Forall, Lolli, One, Tensor, props_equal

TARGET = 42
KNOWN = 25  # the puzzle: find n with n + 25 = 42


@pytest.fixture
def agents(net, ledger):
    keys = [PrivateKey.from_seed(b"agent" + bytes([i])) for i in range(3)]
    return [
        EscrowAgent(key=key, chain=net.chain, ledger=ledger) for key in keys
    ]


def puzzle_basis():
    """solution : nat → prop with the solve rule; prize : prop."""
    basis = Basis()
    solution = basis.declare_local("solution", KindDecl(KPi("n", NAT_T, KIND_PROP)))
    prize = basis.declare_local("prize", KindDecl(KIND_PROP))

    def sol(v):
        return Atom(apply_family(TConst(solution), v))

    solve = basis.declare_local(
        "solve",
        PropDecl(
            Forall(
                "N", NAT_T,
                Lolli(
                    Exists(
                        "x",
                        apply_family(
                            TConst(PLUS), Var("N"), NatLit(KNOWN), NatLit(TARGET)
                        ),
                        One(),
                    ),
                    sol(Var("N")),
                ),
            )
        ),
    )
    return basis, solution, prize, solve


def setup_contest(net, ledger, alice, agents):
    """Alice publishes the puzzle and escrows the prize; returns context."""
    basis, solution, prize, solve = puzzle_basis()
    prize_prop_local = Atom(TConst(prize))

    lock = escrow_lock([agent.pubkey for agent in agents])
    publication = basis_publication(basis, agents[0].pubkey, grant=prize_prop_local)
    carrier = alice.submit(publication)
    # Override output 0's script to the 2-of-3 escrow lock.
    # (basis_publication locks to agents[0]; rebuild with the override.)
    return basis, solution, prize, solve, publication, carrier, lock


class TestTemplates:
    def test_fill_checks_hole_type(self, net, ledger, alice):
        basis, solution, prize, solve = puzzle_basis()
        sol_prop = Exists("n", NAT_T, Atom(apply_family(TConst(solution), Var("n"))))
        template = OpenTransaction(
            basis=Basis(),
            grant=One(),
            fixed_inputs=[],
            hole_prop=sol_prop,
            hole_amount=600,
            hole_position=0,
            outputs=[OpenOutput(sol_prop, 600, alice.pubkey)],
            proof=LolliIntro("p", sol_prop, PVar("p")),
        )
        wrong = TypecoinInput(b"\x01" * 32, 0, One(), 600)
        with pytest.raises(EscrowError, match="does not match"):
            template.fill(wrong, alice.pubkey)
        wrong_amount = TypecoinInput(b"\x01" * 32, 0, sol_prop, 700)
        with pytest.raises(EscrowError, match="amount"):
            template.fill(wrong_amount, alice.pubkey)

    def test_template_signature(self, net, ledger, alice):
        basis, solution, prize, solve = puzzle_basis()
        sol_prop = Exists("n", NAT_T, Atom(apply_family(TConst(solution), Var("n"))))
        template = OpenTransaction(
            basis=Basis(), grant=One(), fixed_inputs=[],
            hole_prop=sol_prop, hole_amount=600, hole_position=0,
            outputs=[OpenOutput(sol_prop, 600, alice.pubkey)],
            proof=LolliIntro("p", sol_prop, PVar("p")),
        )
        signature = sign_template(alice.key, template)
        assert template_signature_valid(alice.pubkey, template, signature)
        assert not template_signature_valid(
            alice.pubkey, template, b"\x01" * 64
        )

    def test_multisig_assembly_requires_threshold(self, net, agents):
        lock = escrow_lock([agent.pubkey for agent in agents])
        from repro.bitcoin.transaction import Transaction, TxIn, TxOut
        from repro.bitcoin.script import Script

        tx = Transaction(
            [TxIn(OutPoint(b"\x01" * 32, 0))], [TxOut(1000, Script())]
        )
        sig0 = multisig_partial_signature(agents[0].key, tx, 0, lock)
        with pytest.raises(EscrowError, match="requires"):
            assemble_multisig_input(tx, 0, lock, {agents[0].pubkey: sig0})
        sig1 = multisig_partial_signature(agents[1].key, tx, 0, lock)
        assembled = assemble_multisig_input(
            tx, 0, lock, {agents[0].pubkey: sig0, agents[1].pubkey: sig1}
        )
        assert len(assembled.vin[0].script_sig.elements) == 3  # OP_0 + 2 sigs


class TestPuzzleContest:
    def run_contest(self, net, ledger, alice, bob, agents, sabotage=0):
        """The full §7 flow; ``sabotage`` compromises that many agents."""
        for agent in agents[:sabotage]:
            agent.honest = False

        # --- Alice publishes the puzzle basis and escrows the prize -------
        basis, solution_ref, prize_ref, solve_ref = puzzle_basis()
        lock = escrow_lock([agent.pubkey for agent in agents])
        prize_local = Atom(TConst(prize_ref))
        publication = basis_publication(basis, agents[0].pubkey, grant=prize_local)
        pub_carrier = build_carrier(
            net.chain, alice.wallet, publication, fee=10_000,
            script_overrides={0: lock},
        )
        net.send(pub_carrier)
        net.confirm(1)
        basis_txid = pub_carrier.txid
        # Everyone sharing the ledger learns the publication.
        from repro.core.validate import check_typecoin_transaction, world_at

        check_typecoin_transaction(ledger, publication, world_at(net.chain))
        ledger.register(basis_txid, publication)
        alice.known[basis_txid] = publication
        bob.known[basis_txid] = publication

        prize_prop = ledger.output(basis_txid, 0).prop
        solution_res = solution_ref.resolved(basis_txid)
        solve_res = solve_ref.resolved(basis_txid)
        sol_prop = Exists(
            "n", NAT_T, Atom(apply_family(TConst(solution_res), Var("n")))
        )

        # --- Alice signs the open transaction ------------------------------
        template = OpenTransaction(
            basis=Basis(),
            grant=One(),
            fixed_inputs=[
                TypecoinInput(basis_txid, 0, prize_prop, 600)
            ],
            hole_prop=sol_prop,
            hole_amount=600,
            hole_position=1,
            outputs=[
                OpenOutput(sol_prop, 600, alice.pubkey),  # solution → Alice
                OpenOutput(prize_prop, 600, None),  # prize → whoever
            ],
            proof=LolliIntro(
                "p", Tensor(prize_prop, sol_prop),
                TensorElim(
                    "x", "y", PVar("p"), TensorIntro(PVar("y"), PVar("x"))
                ),
            ),
        )
        issuer_signature = sign_template(alice.key, template)

        # --- Bob proves the solution and publishes it ---------------------
        packed = ExistsIntro(
            Exists(
                "n", NAT_T, Atom(apply_family(TConst(solution_res), Var("n")))
            ),
            NatLit(17),
            LolliElim(
                ForallElim(PConst(solve_res), NatLit(17)),
                ExistsIntro(
                    Exists(
                        "x",
                        apply_family(
                            TConst(PLUS), NatLit(17), NatLit(KNOWN), NatLit(TARGET)
                        ),
                        One(),
                    ),
                    apply_term(Const(PLUS_REFL), NatLit(17), NatLit(KNOWN)),
                    OneIntro(),
                ),
            ),
        )
        sol_out = TypecoinOutput(sol_prop, 600, bob.pubkey)
        sol_txn = TypecoinTransaction(
            Basis(), One(), [], [sol_out],
            obligation_lambda(
                One(), [], [sol_out.receipt()], lambda _c, _i, _r: packed
            ),
        )
        sol_carrier = bob.submit(sol_txn)
        net.confirm(1)
        bob.sync()
        sol_txid = sol_carrier.txid

        # --- Bob fills the template and builds the carrier ----------------
        solution_input = TypecoinInput(sol_txid, 0, sol_prop, 600)
        instance = template.fill(solution_input, bob.pubkey)
        prize_outpoint = OutPoint(basis_txid, 0)
        carrier = build_carrier(
            net.chain, bob.wallet, instance, fee=10_000,
            skip_sign={prize_outpoint},
            exclude={OutPoint(txid, idx) for (txid, idx) in ledger.outputs},
        )

        # --- Agents consider; Bob needs two signatures ----------------------
        signatures = {}
        refusals = 0
        for agent in agents:
            try:
                signatures[agent.pubkey] = agent.consider(
                    template,
                    alice.pubkey,
                    issuer_signature,
                    solution_input,
                    bob.pubkey,
                    carrier,
                    escrow_input_index=0,
                    escrow_script=lock,
                    bundle=bob.claim_bundle(OutPoint(sol_txid, 0), sol_prop),
                )
            except EscrowError:
                refusals += 1
            if len(signatures) == 2:
                break
        if len(signatures) < 2:
            return None, refusals

        carrier = assemble_multisig_input(carrier, 0, lock, signatures)
        net.send(carrier)
        net.confirm(1)
        check_typecoin_transaction(ledger, instance, world_at(net.chain))
        ledger.register(carrier.txid, instance)
        return carrier, refusals

    def test_bob_claims_prize(self, net, ledger, alice, bob, agents):
        carrier, refusals = self.run_contest(net, ledger, alice, bob, agents)
        assert carrier is not None
        assert refusals == 0
        prize_entry = ledger.output(carrier.txid, 1)
        assert prize_entry.principal == bob.principal

    def test_one_compromised_agent_tolerated(self, net, ledger, alice, bob, agents):
        """2-of-3: "participants can tolerate one of the three agents
        becoming compromised." """
        carrier, refusals = self.run_contest(
            net, ledger, alice, bob, agents, sabotage=1
        )
        assert carrier is not None
        assert refusals == 1

    def test_two_compromised_agents_halt(self, net, ledger, alice, bob, agents):
        carrier, refusals = self.run_contest(
            net, ledger, alice, bob, agents, sabotage=2
        )
        assert carrier is None
        assert refusals == 2

    def test_agent_rejects_bad_solution(self, net, ledger, alice, bob, agents):
        """An instance whose 'solution' txout has the wrong type is refused
        — "the transaction is only valid if his txout really does have the
        solution." """
        # Run a full setup but offer a One()-typed txout as the solution.
        basis, solution_ref, prize_ref, solve_ref = puzzle_basis()
        lock = escrow_lock([agent.pubkey for agent in agents])
        prize_local = Atom(TConst(prize_ref))
        publication = basis_publication(basis, agents[0].pubkey, grant=prize_local)
        pub_carrier = build_carrier(
            net.chain, alice.wallet, publication, fee=10_000,
            script_overrides={0: lock},
        )
        net.send(pub_carrier)
        net.confirm(1)
        from repro.core.validate import check_typecoin_transaction, world_at

        check_typecoin_transaction(ledger, publication, world_at(net.chain))
        ledger.register(pub_carrier.txid, publication)
        bob.known[pub_carrier.txid] = publication
        basis_txid = pub_carrier.txid

        prize_prop = ledger.output(basis_txid, 0).prop
        solution_res = solution_ref.resolved(basis_txid)
        sol_prop = Exists(
            "n", NAT_T, Atom(apply_family(TConst(solution_res), Var("n")))
        )
        template = OpenTransaction(
            basis=Basis(), grant=One(),
            fixed_inputs=[TypecoinInput(basis_txid, 0, prize_prop, 600)],
            hole_prop=sol_prop, hole_amount=600, hole_position=1,
            outputs=[
                OpenOutput(sol_prop, 600, alice.pubkey),
                OpenOutput(prize_prop, 600, None),
            ],
            proof=LolliIntro(
                "p", Tensor(prize_prop, sol_prop),
                TensorElim(
                    "x", "y", PVar("p"), TensorIntro(PVar("y"), PVar("x"))
                ),
            ),
        )
        issuer_signature = sign_template(alice.key, template)

        # Bob publishes a trivial txout and lies about its type.
        junk_out = TypecoinOutput(One(), 600, bob.pubkey)
        junk_txn = simple_transfer([], [junk_out])
        junk_carrier = bob.submit(junk_txn)
        net.confirm(1)
        bob.sync()

        lying_input = TypecoinInput(junk_carrier.txid, 0, sol_prop, 600)
        instance = template.fill(lying_input, bob.pubkey)
        carrier = build_carrier(
            net.chain, bob.wallet, instance, fee=10_000,
            skip_sign={OutPoint(basis_txid, 0)},
            exclude={OutPoint(txid, idx) for (txid, idx) in ledger.outputs},
        )
        with pytest.raises(EscrowError, match="typecheck|claim"):
            agents[0].consider(
                template, alice.pubkey, issuer_signature, lying_input,
                bob.pubkey, carrier, 0, lock,
                bundle=bob.claim_bundle(
                    OutPoint(junk_carrier.txid, 0), sol_prop
                ),
            )
