"""Tests for the §3.2 batch-mode credential server."""

import pytest

from repro.bitcoin.transaction import OutPoint
from repro.core.batch import (
    BatchError,
    BatchServer,
    VirtualOutput,
    VirtualTransaction,
    WriteThroughRequired,
    authorize,
)
from repro.core.builder import build_with_payload, simple_transfer
from repro.core.currency import issue_proof, merge_proof, split_proof
from repro.core.proofs import obligation_lambda, tensor_intro_all
from repro.core.transaction import TypecoinOutput
from repro.core.verifier import verify_claim
from repro.lf.basis import Basis
from repro.lf.syntax import fresh_name
from repro.logic.conditions import Before, CTrue
from repro.logic.proofterms import (
    IfReturn,
    LolliIntro,
    OneIntro,
    PVar,
    TensorIntro,
)
from repro.lf.syntax import NatLit
from repro.logic.propositions import Lolli, One, Tensor, props_equal

from tests.core.conftest import publish_newcoin


@pytest.fixture
def server(net, ledger):
    server = BatchServer(net, b"batch-server", ledger)
    net.fund_wallet(server.client.wallet)
    return server


def issue_to(net, bank, vocab, amount, recipient_pubkey, sats=600):
    """Issue coins straight to a recipient's key; returns the outpoint."""
    out = TypecoinOutput(vocab.coin_prop(amount), sats, recipient_pubkey)
    txn = build_with_payload(
        Basis(), One(), [], [out],
        lambda payload: obligation_lambda(
            One(), [], [out.receipt()],
            lambda _c, _i, _r: tensor_intro_all([
                issue_proof(
                    vocab, amount,
                    bank.affirm_affine(vocab.print_prop(amount), payload),
                )
            ]),
        ),
    )
    carrier = bank.submit(txn)
    net.confirm(1)
    bank.sync()
    return OutPoint(carrier.txid, 0), txn


class TestDeposit:
    def test_deposit_accepted(self, net, bank, server):
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, server.pubkey)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(10))
        rid = server.deposit(bundle, owner=bank.principal)
        holding = server.query(rid)
        assert holding is not None
        assert props_equal(holding.prop, vocab.coin_prop(10))
        assert holding.owner == bank.principal

    def test_deposit_to_wrong_key_rejected(self, net, bank, alice, server):
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, alice.pubkey)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(10))
        with pytest.raises(BatchError, match="not locked to the server"):
            server.deposit(bundle, owner=alice.principal)

    def test_bogus_claim_rejected(self, net, bank, server):
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, server.pubkey)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(11))  # wrong type
        with pytest.raises(BatchError, match="deposit rejected"):
            server.deposit(bundle, owner=bank.principal)


class TestVirtualTransactions:
    def deposited_coin(self, net, bank, server, vocab, amount, owner, sats=600):
        outpoint, _ = issue_to(net, bank, vocab, amount, server.pubkey, sats=sats)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(amount))
        return server.deposit(bundle, owner=owner)

    def test_split_virtually(self, net, bank, server):
        """A batch-mode split costs no fee and confirms instantly."""
        vocab, _, _ = publish_newcoin(net, bank)
        rid = self.deposited_coin(net, bank, server, vocab, 10, bank.principal, sats=1200)
        height_before = net.chain.height
        vtx = VirtualTransaction(
            inputs=[rid],
            outputs=[
                VirtualOutput(vocab.coin_prop(4), 600, bank.principal),
                VirtualOutput(vocab.coin_prop(6), 600, bank.principal),
            ],
            proof=LolliIntro(
                "x", vocab.coin_prop(10), split_proof(vocab, 4, 6, PVar("x"))
            ),
        )
        server.transact(vtx, {bank.principal: authorize(bank.key, vtx)})
        holdings = server.holdings_of(bank.principal)
        assert len(holdings) == 2
        # No blocks were mined: batch mode avoided the chain entirely.
        assert net.chain.height == height_before

    def test_unauthorized_spend_rejected(self, net, bank, alice, server):
        vocab, _, _ = publish_newcoin(net, bank)
        rid = self.deposited_coin(net, bank, server, vocab, 10, bank.principal)
        vtx = VirtualTransaction(
            inputs=[rid],
            outputs=[VirtualOutput(vocab.coin_prop(10), 600, alice.principal)],
            proof=LolliIntro("x", vocab.coin_prop(10), PVar("x")),
        )
        # Alice signs, but she does not own the resource.
        with pytest.raises(BatchError, match="authorization"):
            server.transact(vtx, {bank.principal: authorize(alice.key, vtx)})
        with pytest.raises(BatchError, match="authorization"):
            server.transact(vtx, {})

    def test_bad_proof_rejected(self, net, bank, server):
        vocab, _, _ = publish_newcoin(net, bank)
        rid = self.deposited_coin(net, bank, server, vocab, 10, bank.principal)
        vtx = VirtualTransaction(
            inputs=[rid],
            outputs=[VirtualOutput(vocab.coin_prop(11), 600, bank.principal)],
            proof=LolliIntro("x", vocab.coin_prop(10), PVar("x")),
        )
        with pytest.raises(BatchError, match="wrong resources"):
            server.transact(vtx, {bank.principal: authorize(bank.key, vtx)})

    def test_conditional_requires_write_through(self, net, bank, server):
        """§5: "batch-mode servers must write transactions discharging
        anything other than true through to the blockchain." """
        vocab, _, _ = publish_newcoin(net, bank)
        rid = self.deposited_coin(net, bank, server, vocab, 10, bank.principal)
        from repro.logic.propositions import IfProp

        vtx = VirtualTransaction(
            inputs=[rid],
            outputs=[VirtualOutput(vocab.coin_prop(10), 600, bank.principal)],
            proof=LolliIntro(
                "x", vocab.coin_prop(10),
                IfReturn(Before(NatLit(2_000_000_000)), PVar("x")),
            ),
        )
        with pytest.raises(WriteThroughRequired):
            server.transact(vtx, {bank.principal: authorize(bank.key, vtx)})

    def test_double_spend_of_held_resource_rejected(self, net, bank, server):
        vocab, _, _ = publish_newcoin(net, bank)
        rid = self.deposited_coin(net, bank, server, vocab, 10, bank.principal)
        vtx = VirtualTransaction(
            inputs=[rid],
            outputs=[VirtualOutput(vocab.coin_prop(10), 600, bank.principal)],
            proof=LolliIntro("x", vocab.coin_prop(10), PVar("x")),
        )
        server.transact(vtx, {bank.principal: authorize(bank.key, vtx)})
        # A *different* transaction spending the same held resource is a
        # double spend.  (Re-notifying the identical one is idempotent;
        # see test_duplicate_notify_is_idempotent.)
        rival = VirtualTransaction(
            inputs=[rid],
            outputs=[
                VirtualOutput(vocab.coin_prop(4), 300, bank.principal),
                VirtualOutput(vocab.coin_prop(6), 300, bank.principal),
            ],
            proof=LolliIntro(
                "x", vocab.coin_prop(10), split_proof(vocab, 4, 6, PVar("x"))
            ),
        )
        with pytest.raises(BatchError, match="no longer held"):
            server.transact(rival, {bank.principal: authorize(bank.key, rival)})

    def test_duplicate_notify_is_idempotent(self, net, bank, server):
        """At-least-once delivery: re-notifying the identical transaction
        returns the original id instead of a double-spend failure."""
        vocab, _, _ = publish_newcoin(net, bank)
        rid = self.deposited_coin(net, bank, server, vocab, 10, bank.principal)
        vtx = VirtualTransaction(
            inputs=[rid],
            outputs=[VirtualOutput(vocab.coin_prop(10), 600, bank.principal)],
            proof=LolliIntro("x", vocab.coin_prop(10), PVar("x")),
        )
        auth = {bank.principal: authorize(bank.key, vtx)}
        first = server.transact(vtx, auth)
        assert server.transact(vtx, auth) == first
        # Exactly one spend happened: the input is consumed once, the
        # output set was created once.
        assert len(server.holdings_of(bank.principal)) == 1


class TestWithdraw:
    def test_withdraw_direct_holding(self, net, bank, server):
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, server.pubkey)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(10))
        rid = server.deposit(bundle, owner=bank.principal)
        carrier = server.withdraw(rid, bank.pubkey)
        net.confirm(1)
        server.sync()
        entry = server.client.ledger.output(carrier.txid, 0)
        assert props_equal(entry.prop, vocab.coin_prop(10))
        assert entry.principal == bank.principal
        assert server.query(rid) is None

    def test_withdraw_after_virtual_history(self, net, bank, alice, server):
        """Deposit, split virtually, pay Alice virtually, Alice withdraws.

        The single on-chain transaction the server writes batches the whole
        virtual history, routes Alice's coin to her key and the rest back
        to the server (§3.2).
        """
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, server.pubkey, sats=1200)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(10))
        rid = server.deposit(bundle, owner=bank.principal)

        split_vtx = VirtualTransaction(
            inputs=[rid],
            outputs=[
                VirtualOutput(vocab.coin_prop(4), 600, alice.principal),
                VirtualOutput(vocab.coin_prop(6), 600, bank.principal),
            ],
            proof=LolliIntro(
                "x", vocab.coin_prop(10), split_proof(vocab, 4, 6, PVar("x"))
            ),
        )
        server.transact(
            split_vtx, {bank.principal: authorize(bank.key, split_vtx)}
        )
        alice_rid = next(iter(server.holdings_of(alice.principal)))

        carrier = server.withdraw(alice_rid, alice.pubkey)
        net.confirm(1)
        server.sync()

        # Output 0: Alice's coin 4.  Output 1: the bank's coin 6, back
        # under the server's key.
        entry0 = server.client.ledger.output(carrier.txid, 0)
        assert props_equal(entry0.prop, vocab.coin_prop(4))
        assert entry0.principal == alice.principal
        entry1 = server.client.ledger.output(carrier.txid, 1)
        assert props_equal(entry1.prop, vocab.coin_prop(6))
        assert entry1.principal == server.principal
        # The bank's remaining coin is still held (rebound to the new txout).
        bank_holdings = server.holdings_of(bank.principal)
        assert len(bank_holdings) == 1
        assert props_equal(
            next(iter(bank_holdings.values())).prop, vocab.coin_prop(6)
        )

    def test_withdrawn_output_verifiable_by_third_party(self, net, bank, alice, server):
        """The withdrawn txout passes the full §3 claim protocol."""
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, server.pubkey)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(10))
        rid = server.deposit(bundle, owner=bank.principal)
        carrier = server.withdraw(rid, bank.pubkey)
        net.confirm(1)
        server.sync()
        claim = server.client.claim_bundle(
            OutPoint(carrier.txid, 0), vocab.coin_prop(10)
        )
        verify_claim(net.chain, claim)

    def test_withdraw_wrong_owner_key_rejected(self, net, bank, alice, server):
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, server.pubkey)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(10))
        rid = server.deposit(bundle, owner=bank.principal)
        with pytest.raises(BatchError, match="does not match the owner"):
            server.withdraw(rid, alice.pubkey)


class TestJournal:
    """Durable journal: crash-restart recovery without double-discharge."""

    def _journaled_world(self, net, bank, journal):
        from repro.core.validate import Ledger

        server = BatchServer(
            net, b"batch-server", Ledger(), journal_path=str(journal)
        )
        net.fund_wallet(server.client.wallet)
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, server.pubkey, sats=1200)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(10))
        rid = server.deposit(bundle, owner=bank.principal)
        vtx = VirtualTransaction(
            inputs=[rid],
            outputs=[
                VirtualOutput(vocab.coin_prop(4), 600, bank.principal),
                VirtualOutput(vocab.coin_prop(6), 600, bank.principal),
            ],
            proof=LolliIntro(
                "x", vocab.coin_prop(10), split_proof(vocab, 4, 6, PVar("x"))
            ),
        )
        server.transact(vtx, {bank.principal: authorize(bank.key, vtx)})
        return server, vocab

    def test_expired_deadline_refuses_withdrawal_without_state_change(
        self, net, bank, tmp_path
    ):
        from repro import cancel

        server, _ = self._journaled_world(net, bank, tmp_path / "j.jsonl")
        target = sorted(server.holdings_of(bank.principal))[0]
        journal_len = (tmp_path / "j.jsonl").read_text().count("\n")
        with pytest.raises(cancel.DeadlineExceeded):
            server.withdraw(
                target, bank.pubkey, deadline=cancel.Deadline.after(-1.0)
            )
        # Nothing mutated, nothing journaled: the resource is still held
        # and a later (undeadlined) withdrawal succeeds.
        assert server.query(target) is not None
        assert (tmp_path / "j.jsonl").read_text().count("\n") == journal_len
        assert server.withdraw(target, bank.pubkey) is not None

    def test_restart_replays_without_double_discharge(
        self, net, bank, tmp_path
    ):
        from repro.core.validate import Ledger

        journal = tmp_path / "j.jsonl"
        server, vocab = self._journaled_world(net, bank, journal)
        target = sorted(server.holdings_of(bank.principal))[0]
        server.withdraw(target, bank.pubkey)

        # Crash BEFORE the carrier confirms: the restarted server knows
        # the resource was withdrawn and must not re-submit the carrier.
        restarted = BatchServer(
            net, b"batch-server", Ledger(), journal_path=str(journal)
        )
        assert restarted.query(target) is None
        net.confirm(1)
        restarted.sync()  # adopts the carrier, rebinds the survivor
        holdings = restarted.holdings_of(bank.principal)
        assert len(holdings) == 1
        assert props_equal(
            next(iter(holdings.values())).prop, vocab.coin_prop(6)
        )
        with pytest.raises(BatchError):
            restarted.withdraw(target, bank.pubkey)  # no double-discharge
        resource_count = len(restarted._resources)
        restarted.sync()  # idempotent: no duplicate rebind
        assert len(restarted._resources) == resource_count

        # Crash AFTER the sync: the rebind record replays to the same state.
        again = BatchServer(
            net, b"batch-server", Ledger(), journal_path=str(journal)
        )
        assert sorted(again.holdings_of(bank.principal)) == sorted(holdings)
        assert not again._recovered_pending
        assert again._pending_rebind is None
        assert again._next_id == restarted._next_id
        again.sync()
        assert sorted(again.holdings_of(bank.principal)) == sorted(holdings)

    def test_torn_journal_tail_is_tolerated(self, net, bank, tmp_path):
        from repro.core.validate import Ledger

        journal = tmp_path / "j.jsonl"
        server, _ = self._journaled_world(net, bank, journal)
        expected = sorted(server.holdings_of(bank.principal))
        with open(journal, "a") as fh:
            fh.write('{"op": "tran')  # crash mid-append
        restarted = BatchServer(
            net, b"batch-server", Ledger(), journal_path=str(journal)
        )
        assert sorted(restarted.holdings_of(bank.principal)) == expected
