"""Tests for the transaction/bundle wire format (§3 transport)."""

import pytest

from repro.bitcoin.transaction import OutPoint
from repro.core.builder import basis_publication, simple_transfer
from repro.core.transaction import TypecoinInput, TypecoinOutput
from repro.core.verifier import verify_claim
from repro.core.wire import (
    decode_bundle,
    decode_transaction,
    encode_bundle,
    encode_transaction,
)
from repro.logic.decoding import DecodingError
from repro.logic.propositions import One, props_equal

from tests.core.conftest import publish_newcoin
from tests.core.test_batch import issue_to

PUBKEY = b"\x02" + b"\x44" * 32


class TestTransactionRoundtrip:
    def test_trivial_transaction(self):
        txn = simple_transfer([], [TypecoinOutput(One(), 600, PUBKEY)])
        decoded = decode_transaction(encode_transaction(txn))
        assert decoded.hash == txn.hash
        assert props_equal(decoded.outputs[0].prop, txn.outputs[0].prop)

    def test_transaction_with_basis_and_inputs(self, net, bank):
        vocab, basis_txid, basis_txn = publish_newcoin(net, bank)
        decoded = decode_transaction(encode_transaction(basis_txn))
        assert decoded.hash == basis_txn.hash
        assert len(decoded.basis) == len(basis_txn.basis)

    def test_issue_transaction_with_assert(self, net, bank):
        """Affirmation signatures survive the wire: the decoded transaction
        re-validates from scratch."""
        from repro.core.validate import Ledger, check_typecoin_transaction, world_at

        vocab, basis_txid, basis_txn = publish_newcoin(net, bank)
        carrier, txn = issue_to(net, bank, vocab, 7, bank.pubkey)
        decoded = decode_transaction(encode_transaction(txn))
        assert decoded.hash == txn.hash

        ledger = Ledger()
        check_typecoin_transaction(ledger, basis_txn, world_at(net.chain))
        ledger.register(basis_txid, basis_txn)
        check_typecoin_transaction(ledger, decoded, world_at(net.chain))

    def test_garbage_rejected(self):
        with pytest.raises(DecodingError):
            decode_transaction(b"not a transaction")

    def test_trailing_bytes_rejected(self):
        txn = simple_transfer([], [TypecoinOutput(One(), 600, PUBKEY)])
        with pytest.raises(DecodingError, match="trailing"):
            decode_transaction(encode_transaction(txn) + b"\x00")


class TestBundleRoundtrip:
    def test_bundle_survives_the_wire_and_verifies(self, net, bank, alice):
        """The full §3 flow with serialization in the middle: the prover
        encodes the bundle, the verifier decodes and checks it."""
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, alice.pubkey)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(10))

        wire_bytes = encode_bundle(bundle)
        received = decode_bundle(wire_bytes)

        assert received.outpoint == bundle.outpoint
        assert props_equal(received.prop, bundle.prop)
        assert set(received.transactions) == set(bundle.transactions)
        verify_claim(net.chain, received)

    def test_tampered_bundle_detected(self, net, bank, alice):
        vocab, _, _ = publish_newcoin(net, bank)
        outpoint, _ = issue_to(net, bank, vocab, 10, alice.pubkey)
        bundle = bank.claim_bundle(outpoint, vocab.coin_prop(10))
        wire_bytes = bytearray(encode_bundle(bundle))
        # Flip a byte deep in the payload.
        wire_bytes[len(wire_bytes) // 2] ^= 0xFF
        from repro.core.verifier import VerificationError

        with pytest.raises((DecodingError, VerificationError, Exception)):
            received = decode_bundle(bytes(wire_bytes))
            verify_claim(net.chain, received)

    def test_bundle_magic_checked(self):
        with pytest.raises(DecodingError, match="magic"):
            decode_bundle(b"wrong-magic" + b"\x00" * 20)
