"""Tests for fallback transaction lists (§5)."""

import pytest

from repro.core.builder import simple_transfer
from repro.core.fallback import FallbackError, FallbackList
from repro.core.proofs import obligation_lambda
from repro.core.transaction import TypecoinInput, TypecoinOutput, TypecoinTransaction
from repro.core.validate import Ledger, check_typecoin_transaction
from repro.lf.basis import Basis, KindDecl
from repro.lf.syntax import KIND_PROP, NatLit
from repro.logic.conditions import Before, WorldView
from repro.logic.proofterms import IfReturn, OneIntro
from repro.logic.propositions import One

PUBKEY_A = b"\x02" + b"\x11" * 32
PUBKEY_B = b"\x02" + b"\x22" * 32


def conditional_txn(deadline, recipient=PUBKEY_A):
    out = TypecoinOutput(One(), 600, recipient)
    proof = obligation_lambda(
        One(), [], [out.receipt()],
        lambda _c, _i, _r: IfReturn(Before(NatLit(deadline)), OneIntro()),
    )
    return TypecoinTransaction(Basis(), One(), [], [out], proof)


def plain_txn(recipient=PUBKEY_A, amount=600):
    return simple_transfer([], [TypecoinOutput(One(), amount, recipient)])


class TestCarrierImageAgreement:
    def test_same_image_accepted(self):
        FallbackList(conditional_txn(100), [plain_txn()])

    def test_output_principal_mismatch_rejected(self):
        """"they must agree on ... the output principals"."""
        with pytest.raises(FallbackError, match="principals or amounts"):
            FallbackList(conditional_txn(100), [plain_txn(recipient=PUBKEY_B)])

    def test_output_amount_mismatch_rejected(self):
        with pytest.raises(FallbackError, match="principals or amounts"):
            FallbackList(conditional_txn(100), [plain_txn(amount=700)])

    def test_input_mismatch_rejected(self):
        primary = plain_txn()
        divergent = simple_transfer(
            [TypecoinInput(b"\x03" * 32, 0, One(), 600)],
            [TypecoinOutput(One(), 600, PUBKEY_A)],
        )
        with pytest.raises(FallbackError, match="input"):
            FallbackList(primary, [divergent])


class TestSelection:
    def test_primary_selected_while_valid(self):
        fallback_list = FallbackList(conditional_txn(1_000), [plain_txn()])
        index, txn = fallback_list.select_valid(Ledger(), WorldView.at_time(500))
        assert index == 0

    def test_fallback_selected_after_expiry(self):
        """"If the primary transaction turns out to be invalid, the first
        valid fallback transaction is used instead." """
        fallback_list = FallbackList(conditional_txn(1_000), [plain_txn()])
        index, txn = fallback_list.select_valid(
            Ledger(), WorldView.at_time(2_000)
        )
        assert index == 1

    def test_ordered_fallbacks(self):
        fallback_list = FallbackList(
            conditional_txn(1_000),
            [conditional_txn(5_000), plain_txn()],
        )
        assert fallback_list.select_valid(Ledger(), WorldView.at_time(500))[0] == 0
        assert fallback_list.select_valid(Ledger(), WorldView.at_time(3_000))[0] == 1
        assert fallback_list.select_valid(Ledger(), WorldView.at_time(9_000))[0] == 2

    def test_all_invalid_spoils_inputs(self):
        fallback_list = FallbackList(
            conditional_txn(1_000), [conditional_txn(2_000)]
        )
        assert fallback_list.select_valid(
            Ledger(), WorldView.at_time(10_000)
        ) is None
