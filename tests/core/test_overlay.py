"""Tests for the Bitcoin overlay (§3, §3.3): embedding and correspondence."""

import pytest

from repro.bitcoin.standard import ScriptType, classify, is_standard
from repro.bitcoin.transaction import OutPoint
from repro.core.builder import basis_publication, simple_transfer
from repro.core.overlay import (
    EmbeddingStrategy,
    OverlayError,
    build_carrier,
    carrier_embeds_hash,
    check_carrier_correspondence,
    metadata_pubkey,
    output_script,
)
from repro.core.transaction import TypecoinOutput, TypecoinTransaction
from repro.lf.basis import Basis
from repro.logic.propositions import One


def trivial_txn(pubkey, amount=600):
    return simple_transfer([], [TypecoinOutput(One(), amount, pubkey)])


class TestMetadataKey:
    def test_shape(self):
        key = metadata_pubkey(b"\x42" * 32)
        assert len(key) == 33
        assert key[0] == 0x02

    def test_length_check(self):
        with pytest.raises(OverlayError):
            metadata_pubkey(b"\x42" * 31)

    def test_1of2_script_is_standard(self):
        """The whole point of §3.3: the embedding must pass relay policy."""
        pubkey = b"\x02" + b"\x11" * 32
        script = output_script(pubkey, b"\x42" * 32)
        assert is_standard(script)
        assert classify(script).type is ScriptType.MULTISIG


class TestBuildCarrier:
    def test_multisig_strategy(self, net, alice):
        txn = trivial_txn(alice.pubkey)
        carrier = build_carrier(net.chain, alice.wallet, txn, fee=10_000)
        assert carrier_embeds_hash(carrier, txn.hash)
        assert carrier_embeds_hash(
            carrier, txn.hash, EmbeddingStrategy.MULTISIG_1OF2
        )
        assert carrier.vout[0].value == 600
        # Relay accepts it.
        net.send(carrier)

    def test_bogus_output_strategy(self, net, alice):
        txn = trivial_txn(alice.pubkey)
        carrier = build_carrier(
            net.chain, alice.wallet, txn, fee=10_000,
            strategy=EmbeddingStrategy.BOGUS_OUTPUT,
        )
        assert carrier_embeds_hash(
            carrier, txn.hash, EmbeddingStrategy.BOGUS_OUTPUT
        )
        # The bogus output is a P2PK to a key nobody has.
        bogus = carrier.vout[1]
        assert classify(bogus.script_pubkey).type is ScriptType.P2PK

    def test_op_return_strategy(self, net, alice):
        txn = trivial_txn(alice.pubkey)
        carrier = build_carrier(
            net.chain, alice.wallet, txn, fee=10_000,
            strategy=EmbeddingStrategy.OP_RETURN,
        )
        assert carrier_embeds_hash(
            carrier, txn.hash, EmbeddingStrategy.OP_RETURN
        )

    def test_wrong_hash_not_detected(self, net, alice):
        txn = trivial_txn(alice.pubkey)
        carrier = build_carrier(net.chain, alice.wallet, txn, fee=10_000)
        assert not carrier_embeds_hash(carrier, b"\x00" * 32)

    def test_missing_input_rejected(self, net, alice):
        from repro.core.transaction import TypecoinInput

        txn = simple_transfer(
            [TypecoinInput(b"\x01" * 32, 0, One(), 600)],
            [TypecoinOutput(One(), 600, alice.pubkey)],
        )
        with pytest.raises(OverlayError, match="missing or spent"):
            build_carrier(net.chain, alice.wallet, txn, fee=10_000)


class TestCorrespondence:
    def test_valid_correspondence(self, net, alice):
        txn = trivial_txn(alice.pubkey)
        carrier = build_carrier(net.chain, alice.wallet, txn, fee=10_000)
        check_carrier_correspondence(carrier, txn)

    def test_tampered_typecoin_txn_detected(self, net, alice, bob):
        """Check 1 of §3: the embedded hash pins the Typecoin transaction."""
        txn = trivial_txn(alice.pubkey)
        carrier = build_carrier(net.chain, alice.wallet, txn, fee=10_000)
        # A different Typecoin transaction claiming the same carrier.
        other = trivial_txn(bob.pubkey)
        with pytest.raises(OverlayError, match="does not embed"):
            check_carrier_correspondence(carrier, other)

    def test_value_mismatch_detected(self, net, alice):
        txn = trivial_txn(alice.pubkey, amount=600)
        carrier = build_carrier(net.chain, alice.wallet, txn, fee=10_000)
        # Forge a Typecoin view declaring a different amount but reusing the
        # carrier: the hash no longer matches, and even if it did the value
        # check would fire.  Test the value check directly by rebuilding the
        # carrier with a wrong output value.
        from dataclasses import replace

        from repro.bitcoin.transaction import Transaction, TxOut

        doctored = Transaction(
            carrier.vin,
            [TxOut(700, carrier.vout[0].script_pubkey)] + list(carrier.vout[1:]),
        )
        with pytest.raises(OverlayError):
            check_carrier_correspondence(doctored, txn)

    def test_fewer_outputs_detected(self, net, alice):
        txn = simple_transfer(
            [],
            [
                TypecoinOutput(One(), 600, alice.pubkey),
                TypecoinOutput(One(), 600, alice.pubkey),
            ],
        )
        carrier = build_carrier(net.chain, alice.wallet, txn, fee=10_000)
        from repro.bitcoin.transaction import Transaction

        truncated = Transaction(carrier.vin, carrier.vout[:1])
        with pytest.raises(OverlayError):
            check_carrier_correspondence(truncated, txn)
