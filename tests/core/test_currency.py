"""Tests for the §6 newcoin currency, up to the Figure 3 purchase."""

import pytest

from repro.bitcoin.transaction import OutPoint
from repro.core.builder import build_with_payload, simple_transfer
from repro.core.currency import (
    banker_offer_prop,
    confirm_banker_proof,
    figure3_proof,
    fixed_supply_grant,
    issue_proof,
    merge_proof,
    newcoin_basis,
    plus_evidence_proof,
    printing_press_grant,
    split_proof,
    whimsical_press_grant,
)
from repro.core.proofs import obligation_lambda, tensor_intro_all
from repro.core.transaction import TypecoinOutput, TypecoinTransaction, trivial_output
from repro.core.validate import ValidationFailure, check_typecoin_transaction, world_at
from repro.core.wallet import ClientError
from repro.lf.basis import Basis
from repro.lf.syntax import NatLit, Var
from repro.logic.checker import CheckerContext, check_proof
from repro.logic.conditions import CAnd, CNot, Before, Spent
from repro.logic.freshness import prop_fresh
from repro.logic.proofterms import (
    ForallElim,
    IfBind,
    IfReturn,
    LolliElim,
    OneIntro,
    PConst,
    PVar,
    TensorIntro,
    let_,
)
from repro.logic.propositions import IfProp, One, Says, Tensor, props_equal

from tests.core.conftest import publish_newcoin


class TestBasisPublication:
    def test_publish_and_resolve(self, net, bank):
        vocab, txid, _ = publish_newcoin(net, bank)
        assert vocab.coin.space == txid
        entry = bank.ledger.output(txid, 0)
        assert entry is not None
        assert props_equal(entry.prop, One())

    def test_grants_are_fresh(self, net, bank):
        basis, vocab = newcoin_basis(bank.principal_term, bank.principal_term)
        assert prop_fresh(printing_press_grant(vocab))
        assert prop_fresh(whimsical_press_grant(vocab))
        assert prop_fresh(fixed_supply_grant(vocab, 10**9))

    def test_printing_press_grant_banked(self, net, bank):
        vocab, txid, _ = publish_newcoin(net, bank, grant=printing_press_grant)
        entry = bank.ledger.output(txid, 0)
        assert "∀" in str(entry.prop) or "forall" in str(entry.prop).lower()


class TestIssueSplitMerge:
    def issue_coins(self, net, bank, vocab, amount):
        """Issue ``amount`` newcoins by affine print affirmation (§6)."""
        out = TypecoinOutput(vocab.coin_prop(amount), 600, bank.pubkey)
        txn = build_with_payload(
            Basis(), One(), [], [out],
            lambda payload: obligation_lambda(
                One(), [], [out.receipt()],
                lambda _c, _i, _r: tensor_intro_all([
                    issue_proof(
                        vocab, amount,
                        bank.affirm_affine(vocab.print_prop(amount), payload),
                    )
                ]),
            ),
        )
        carrier = bank.submit(txn)
        net.confirm(1)
        bank.sync()
        return carrier.txid

    def test_issue_via_affirmation(self, net, bank):
        vocab, _, _ = publish_newcoin(net, bank)
        txid = self.issue_coins(net, bank, vocab, 100)
        entry = bank.ledger.output(txid, 0)
        assert props_equal(entry.prop, vocab.coin_prop(100))

    def test_forged_print_rejected(self, net, bank, alice):
        """Only the bank's affirmation can trigger issue."""
        vocab, _, _ = publish_newcoin(net, bank)
        out = TypecoinOutput(vocab.coin_prop(100), 600, alice.pubkey)
        txn = build_with_payload(
            Basis(), One(), [], [out],
            lambda payload: obligation_lambda(
                One(), [], [out.receipt()],
                lambda _c, _i, _r: tensor_intro_all([
                    issue_proof(
                        vocab, 100,
                        # Alice affirms print, but the rule wants the bank.
                        alice.affirm_affine(vocab.print_prop(100), payload),
                    )
                ]),
            ),
        )
        with pytest.raises(ClientError, match="refusing"):
            alice.submit(txn)

    def test_split_coins(self, net, bank):
        vocab, _, _ = publish_newcoin(net, bank)
        whole_txid = self.issue_coins(net, bank, vocab, 100)
        inp = bank.input_for(OutPoint(whole_txid, 0))
        outs = [
            TypecoinOutput(vocab.coin_prop(30), 600, bank.pubkey),
            TypecoinOutput(vocab.coin_prop(70), 600, bank.pubkey),
        ]
        txn = simple_transfer(
            [inp], outs,
            body=lambda ins: split_proof(vocab, 30, 70, ins[0]),
        )
        carrier = bank.submit(txn)
        net.confirm(1)
        bank.sync()
        assert props_equal(
            bank.ledger.output(carrier.txid, 0).prop, vocab.coin_prop(30)
        )
        assert props_equal(
            bank.ledger.output(carrier.txid, 1).prop, vocab.coin_prop(70)
        )

    def test_merge_coins(self, net, bank):
        vocab, _, _ = publish_newcoin(net, bank)
        a = self.issue_coins(net, bank, vocab, 40)
        b = self.issue_coins(net, bank, vocab, 2)
        inputs = [
            bank.input_for(OutPoint(a, 0)),
            bank.input_for(OutPoint(b, 0)),
        ]
        out = TypecoinOutput(vocab.coin_prop(42), 1200, bank.pubkey)
        txn = simple_transfer(
            inputs, [out],
            body=lambda ins: merge_proof(vocab, 40, 2, ins[0], ins[1]),
        )
        carrier = bank.submit(txn)
        net.confirm(1)
        bank.sync()
        assert props_equal(
            bank.ledger.output(carrier.txid, 0).prop, vocab.coin_prop(42)
        )

    def test_wrong_sum_rejected(self, net, bank):
        """split 100 into 30+71 fails: plus 30 71 100 is uninhabited."""
        vocab, _, _ = publish_newcoin(net, bank)
        whole_txid = self.issue_coins(net, bank, vocab, 100)
        inp = bank.input_for(OutPoint(whole_txid, 0))
        outs = [
            TypecoinOutput(vocab.coin_prop(30), 600, bank.pubkey),
            TypecoinOutput(vocab.coin_prop(71), 600, bank.pubkey),
        ]

        def bad_body(ins):
            rule = ForallElim(
                ForallElim(
                    ForallElim(PConst(vocab.split), NatLit(30)), NatLit(71)
                ),
                NatLit(100),
            )
            return LolliElim(LolliElim(rule, plus_evidence_proof(30, 71)), ins[0])

        txn = simple_transfer([inp], outs, body=bad_body)
        with pytest.raises(ClientError):
            bank.submit(txn)

    def test_fixed_supply_cannot_be_exceeded(self, net, bank):
        """With a fixed-supply grant there is no way to mint extra coins
        without a bank print affirmation."""
        vocab, txid, _ = publish_newcoin(
            net, bank, grant=lambda v: fixed_supply_grant(v, 1000)
        )
        # Transfer the whole supply out of the grant output.
        inp = bank.input_for(OutPoint(txid, 0))
        out = TypecoinOutput(vocab.coin_prop(1000), 600, bank.pubkey)
        txn = simple_transfer([inp], [out])
        carrier = bank.submit(txn)
        net.confirm(1)
        bank.sync()
        assert props_equal(
            bank.ledger.output(carrier.txid, 0).prop, vocab.coin_prop(1000)
        )


class TestFigure3:
    def setup_offer(self, net, bank, alice):
        """Publish the basis, appoint the bank as banker, publish the offer."""
        vocab, basis_txid, _ = publish_newcoin(net, bank)
        term_end = 2_000_000_000
        n_btc = 50_000
        n_newcoins = 25

        # The banker keeps a revocation txout R under its control.
        from repro.bitcoin.standard import p2pkh_script
        from repro.bitcoin.transaction import TxOut

        revocation_tx = bank.wallet.create_transaction(
            net.chain, [TxOut(1000, p2pkh_script(bank.wallet.key_hash))], fee=1000
        )
        net.send(revocation_tx)
        net.confirm(1)
        revocation = Spent(revocation_tx.txid, 0)

        offer = banker_offer_prop(
            vocab, bank.principal_term, n_btc, n_newcoins, revocation
        )
        # The banker "publish[es] a signature of this proposition".
        order = bank.affirm_persistent(offer)
        # The president (the bank here) appoints the banker persistently.
        appointment = bank.affirm_persistent(
            vocab.appoint_prop(bank.principal_term, term_end)
        )
        return vocab, term_end, n_btc, n_newcoins, revocation, order, appointment, revocation_tx

    def purchase_txn(self, vocab, bank, alice, term_end, n_btc, n_newcoins,
                     revocation, order, appointment):
        coin_out = TypecoinOutput(vocab.coin_prop(n_newcoins), 600, alice.pubkey)
        payment_out = trivial_output(bank.pubkey, n_btc)
        condition = CAnd(CNot(revocation), Before(NatLit(term_end)))

        banker_cred = confirm_banker_proof(
            vocab, bank.principal_term, term_end, appointment
        )

        def body(_c, _ins, receipts):
            fig3 = figure3_proof(
                vocab,
                bank.principal_term,
                term_end,
                n_newcoins,
                revocation,
                receipt_var="rcpt",
                order_var="ordr",
                banker_cred_var="bnkr",
            )
            core = let_(
                "ordr", Says(bank.principal_term, order.prop), order,
                let_(
                    "bnkr",
                    vocab.is_banker_prop(bank.principal_term, term_end),
                    banker_cred,
                    let_(
                        "rcpt",
                        payment_out.receipt(),
                        receipts[1],
                        fig3,
                    ),
                ),
            )
            # B = coin ⊗ 1; re-wrap the conditional around the full tensor.
            return IfBind(
                "w", core,
                IfReturn(condition, TensorIntro(PVar("w"), OneIntro())),
            )

        proof = obligation_lambda(
            One(), [], [coin_out.receipt(), payment_out.receipt()], body
        )
        return TypecoinTransaction(
            Basis(), One(), [], [coin_out, payment_out], proof
        )

    def test_purchase_succeeds(self, net, bank, alice):
        (vocab, term_end, n_btc, n_newcoins, revocation, order, appointment,
         _rtx) = self.setup_offer(net, bank, alice)
        txn = self.purchase_txn(
            vocab, bank, alice, term_end, n_btc, n_newcoins, revocation,
            order, appointment,
        )
        carrier = alice.submit(txn)
        net.confirm(1)
        alice.sync()
        entry = alice.ledger.output(carrier.txid, 0)
        assert props_equal(entry.prop, vocab.coin_prop(n_newcoins))
        # The payment really went to the bank at the Bitcoin level.
        assert carrier.vout[1].value == n_btc

    def test_purchase_fails_after_revocation(self, net, bank, alice):
        """§5: "Alice can revoke the offer at any time ... simply by
        spending I." """
        (vocab, term_end, n_btc, n_newcoins, revocation, order, appointment,
         revocation_tx) = self.setup_offer(net, bank, alice)

        # The banker revokes: spends R.
        from repro.bitcoin.standard import p2pkh_script
        from repro.bitcoin.transaction import TxOut
        from repro.bitcoin.wallet import Spendable

        entry = net.chain.utxos.get(OutPoint(revocation_tx.txid, 0))
        spend = bank.wallet.create_transaction(
            net.chain,
            [TxOut(600, p2pkh_script(bank.wallet.key_hash))],
            fee=400,
            extra_inputs=[
                Spendable(
                    OutPoint(revocation_tx.txid, 0), entry.output,
                    entry.height, entry.is_coinbase,
                )
            ],
        )
        net.send(spend)
        net.confirm(1)

        txn = self.purchase_txn(
            vocab, bank, alice, term_end, n_btc, n_newcoins, revocation,
            order, appointment,
        )
        with pytest.raises(ClientError, match="does not hold"):
            alice.submit(txn)

    def test_purchase_fails_after_term_expires(self, net, bank, alice):
        (vocab, term_end, n_btc, n_newcoins, revocation, order, appointment,
         _rtx) = self.setup_offer(net, bank, alice)
        # An expired term: rebuild the offer against a past deadline.
        past = 1  # genesis timestamp is ~10^9
        expired_appointment = bank.affirm_persistent(
            vocab.appoint_prop(bank.principal_term, past)
        )
        txn = self.purchase_txn(
            vocab, bank, alice, past, n_btc, n_newcoins, revocation,
            order, expired_appointment,
        )
        with pytest.raises(ClientError, match="does not hold"):
            alice.submit(txn)

    def test_figure3_proof_type(self, net, bank, alice):
        """The Figure 3 term, checked in isolation, has exactly the type
        if(¬spent(R) ∧ before(T), coin N)."""
        (vocab, term_end, n_btc, n_newcoins, revocation, order, appointment,
         _rtx) = self.setup_offer(net, bank, alice)
        payment = trivial_output(bank.pubkey, n_btc)
        ctx = CheckerContext(basis=bank.ledger.global_basis)
        ctx = ctx.with_persistent("ordr", Says(bank.principal_term, order.prop))
        ctx = ctx.with_affine(
            "bnkr", vocab.is_banker_prop(bank.principal_term, term_end)
        )
        ctx = ctx.with_affine("rcpt", payment.receipt())
        fig3 = figure3_proof(
            vocab, bank.principal_term, term_end, n_newcoins, revocation,
            receipt_var="rcpt", order_var="ordr", banker_cred_var="bnkr",
        )
        # Bind the persistent order as an actual proof first.
        from repro.logic.checker import infer

        proved, used = infer(
            ctx,
            let_("ordr2", Says(bank.principal_term, order.prop), order, fig3)
            if False
            else fig3,
        )
        expected = IfProp(
            CAnd(CNot(revocation), Before(NatLit(term_end))),
            vocab.coin_prop(n_newcoins),
        )
        assert props_equal(proved, expected)
        assert used == {"bnkr", "rcpt"}
