"""Shared fixtures for core integration tests: a funded regtest world."""

import pytest

from repro.bitcoin.regtest import RegtestNetwork
from repro.core.builder import basis_publication
from repro.core.currency import newcoin_basis, printing_press_grant
from repro.core.validate import Ledger
from repro.core.wallet import TypecoinClient


@pytest.fixture
def net():
    return RegtestNetwork()


@pytest.fixture
def ledger():
    return Ledger()


@pytest.fixture
def alice(net, ledger):
    client = TypecoinClient(net, b"core-alice", ledger)
    net.fund_wallet(client.wallet)
    return client


@pytest.fixture
def bob(net, ledger):
    client = TypecoinClient(net, b"core-bob", ledger)
    net.fund_wallet(client.wallet)
    return client


@pytest.fixture
def bank(net, ledger):
    client = TypecoinClient(net, b"core-bank", ledger)
    net.fund_wallet(client.wallet)
    return client


def publish_newcoin(net, bank, president_term=None, grant=None):
    """Publish the §6 newcoin basis from the bank; returns (vocab, txid).

    ``president_term`` defaults to the bank itself acting as president.
    """
    president = president_term or bank.principal_term
    basis, vocab = newcoin_basis(bank.principal_term, president)
    txn = basis_publication(
        basis,
        bank.pubkey,
        grant=grant(vocab) if grant is not None else None,
    )
    carrier = bank.submit(txn)
    net.confirm(1)
    bank.sync()
    return vocab.resolved(carrier.txid), carrier.txid, txn
