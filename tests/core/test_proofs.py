"""Tests for the proof-building combinators in repro.core.proofs."""

import pytest

from repro.core.proofs import (
    decompose_tensor,
    obligation_lambda,
    tensor_intro_all,
)
from repro.lf.basis import builtin_basis, KindDecl
from repro.lf.syntax import ConstRef, KIND_PROP, KPi, NatLit, TApp, TConst, THIS
from repro.lf.basis import NAT_T
from repro.logic.checker import CheckerContext, ProofError, check_proof, infer
from repro.logic.proofterms import (
    LolliIntro,
    OneIntro,
    PVar,
    TensorIntro,
)
from repro.logic.propositions import (
    Atom,
    Lolli,
    One,
    Receipt,
    Tensor,
    props_equal,
    tensor_all,
)
from repro.lf.syntax import PrincipalLit

ALICE = PrincipalLit(b"\xaa" * 20)


@pytest.fixture
def basis():
    b = builtin_basis()
    b.declare(ConstRef(THIS, "coin"), KindDecl(KPi("n", NAT_T, KIND_PROP)))
    return b


def coin(n):
    return Atom(TApp(TConst(ConstRef(THIS, "coin")), NatLit(n)))


class TestTensorIntroAll:
    def test_empty_is_unit(self, basis):
        prop = check_proof(CheckerContext(basis=basis), tensor_intro_all([]))
        assert props_equal(prop, One())

    def test_matches_tensor_all_shape(self, basis):
        """tensor_intro_all(ps) proves exactly tensor_all(props)."""
        ctx = CheckerContext(basis=basis)
        for count in (1, 2, 3, 5):
            props = [coin(i) for i in range(count)]
            inner = ctx
            for i, prop in enumerate(props):
                inner = inner.with_affine(f"v{i}", prop)
            term = tensor_intro_all([PVar(f"v{i}") for i in range(count)])
            proved, used = infer(inner, term)
            assert props_equal(proved, tensor_all(props))
            assert used == {f"v{i}" for i in range(count)}


class TestDecomposeTensor:
    def check_decompose(self, basis, count):
        """Bind a count-fold tensor and rebuild it in reverse."""
        props = [coin(i) for i in range(count)]
        ctx = CheckerContext(basis=basis).with_affine("t", tensor_all(props))
        term = decompose_tensor(
            PVar("t"), count,
            lambda vars_: tensor_intro_all(list(reversed(vars_))),
        )
        proved, used = infer(ctx, term)
        assert props_equal(proved, tensor_all(list(reversed(props))))
        assert used == {"t"}

    def test_depths(self, basis):
        for count in (1, 2, 3, 4, 6):
            self.check_decompose(basis, count)

    def test_zero_drops_unit(self, basis):
        """count=0: the scrutinee proves 1 and is weakened away."""
        ctx = CheckerContext(basis=basis).with_affine("t", One())
        term = decompose_tensor(PVar("t"), 0, lambda vars_: OneIntro())
        proved, used = infer(ctx, term)
        assert props_equal(proved, One())
        assert used == frozenset()  # affine weakening: t unused

    def test_components_are_single_use(self, basis):
        ctx = CheckerContext(basis=basis).with_affine(
            "t", tensor_all([coin(0), coin(1)])
        )
        term = decompose_tensor(
            PVar("t"), 2,
            lambda vars_: TensorIntro(vars_[0], vars_[0]),  # reuse!
        )
        with pytest.raises(ProofError, match="more than once"):
            infer(ctx, term)


class TestObligationLambda:
    def test_obligation_shape(self, basis):
        """The λ's annotation is exactly C ⊗ A ⊗ R."""
        grant = coin(9)
        inputs = [coin(1), coin(2)]
        receipts = [Receipt(coin(1), 5, ALICE)]
        term = obligation_lambda(
            grant, inputs, receipts,
            lambda c, ins, rs: tensor_intro_all([c, *ins]),
        )
        proved = check_proof(CheckerContext(basis=basis), term)
        expected = Lolli(
            Tensor(grant, Tensor(tensor_all(inputs), tensor_all(receipts))),
            tensor_all([grant, *inputs]),
        )
        assert props_equal(proved, expected)

    def test_receipts_usable_in_body(self, basis):
        receipt = Receipt(coin(1), 5, ALICE)
        term = obligation_lambda(
            One(), [], [receipt],
            lambda c, ins, rs: rs[0],
        )
        proved = check_proof(CheckerContext(basis=basis), term)
        assert props_equal(
            proved,
            Lolli(Tensor(One(), Tensor(One(), receipt)), receipt),
        )

    def test_everything_droppable(self, basis):
        """Affinity: the body may ignore grant, inputs, and receipts."""
        term = obligation_lambda(
            coin(1), [coin(2), coin(3)], [Receipt(coin(2), 1, ALICE)],
            lambda c, ins, rs: OneIntro(),
        )
        proved = check_proof(CheckerContext(basis=basis), term)
        assert isinstance(proved, Lolli)
        assert props_equal(proved.consequent, One())
