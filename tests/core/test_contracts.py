"""Integration tests for the paper's contract idioms.

Covers the ACM coupon-for-access offer with receipts (§4 "Receipts"), the
external-choice credential (§2), and transferable ∀K credentials (§2) —
the idioms the paper uses to motivate each connective.
"""

import pytest

from repro.bitcoin.transaction import OutPoint
from repro.core.builder import (
    basis_publication,
    build_with_payload,
    simple_transfer,
)
from repro.core.proofs import obligation_lambda, tensor_intro_all
from repro.core.transaction import TypecoinOutput, TypecoinTransaction
from repro.core.wallet import ClientError, TypecoinClient
from repro.lf.basis import Basis, KindDecl, NAT_T, PRINCIPAL_T, TypeDecl
from repro.lf.syntax import (
    Const,
    ConstRef,
    KIND_PROP,
    KIND_TYPE,
    KPi,
    TConst,
    Var,
    apply_family,
)
from repro.logic.proofterms import (
    ForallElim,
    ForallIntro,
    LolliElim,
    OneIntro,
    PVar,
    SayBind,
    SayReturn,
    TensorIntro,
    WithFst,
    WithIntro,
    WithSnd,
)
from repro.logic.propositions import (
    Atom,
    Forall,
    Lolli,
    One,
    Receipt,
    Says,
    With,
    props_equal,
)


@pytest.fixture
def acm(net, ledger):
    client = TypecoinClient(net, b"contracts-acm", ledger)
    net.fund_wallet(client.wallet)
    return client


def publish_journal_basis(net, acm):
    """journal type with TOPLAS/TOCL, coupon : prop, may_read, and the
    §4 offer: !⟨ACM⟩(receipt(coupon ↠ ACM) ⊸ ∀K. may_read(K, TOPLAS))."""
    basis = Basis()
    journal = basis.declare_local("journal", KindDecl(KIND_TYPE))
    toplas = basis.declare_local("TOPLAS", TypeDecl(TConst(journal)))
    tocl = basis.declare_local("TOCL", TypeDecl(TConst(journal)))
    coupon = basis.declare_local("coupon", KindDecl(KIND_PROP))
    may_read = basis.declare_local(
        "may_read",
        KindDecl(KPi("k", PRINCIPAL_T, KPi("j", TConst(journal), KIND_PROP))),
    )
    publication = basis_publication(basis, acm.pubkey)
    carrier = acm.submit(publication)
    net.confirm(1)
    acm.sync()
    txid = carrier.txid
    refs = {
        name: ConstRef(txid, name)
        for name in ("journal", "TOPLAS", "TOCL", "coupon", "may_read")
    }
    return refs, txid, publication


def may_read(refs, who, journal_name):
    return Atom(
        apply_family(TConst(refs["may_read"]), who, Const(refs[journal_name]))
    )


class TestReceiptOffer:
    """§4: "By demanding a receipt, a principal requires that the
    corresponding payment is made." """

    def test_coupon_for_access(self, net, ledger, acm, alice):
        refs, basis_txid, publication = publish_journal_basis(net, acm)
        coupon_prop = Says(acm.principal_term, Atom(TConst(refs["coupon"])))

        # ACM issues the coupon to Alice (as ⟨ACM⟩coupon).
        out = TypecoinOutput(coupon_prop, 600, alice.pubkey)
        issue = build_with_payload(
            Basis(), One(), [], [out],
            lambda payload: obligation_lambda(
                One(), [], [out.receipt()],
                lambda _c, _i, _r: tensor_intro_all([
                    acm.affirm_affine(Atom(TConst(refs["coupon"])), payload)
                ]),
            ),
        )
        issue_carrier = acm.submit(issue)
        net.confirm(1)
        acm.sync()
        alice.known[issue_carrier.txid] = issue
        alice.known[basis_txid] = publication

        # The §4 offer, published persistently by ACM: the receipt demands
        # the coupon be *sent back to ACM*, not destroyed.
        access = Forall(
            "K", PRINCIPAL_T, may_read(refs, Var("K"), "TOPLAS")
        )
        offer = Lolli(Receipt(coupon_prop, 600, acm.principal_term), access)
        signed_offer = acm.affirm_persistent(offer)

        # Alice redeems: one transaction sends the coupon to ACM (output 1,
        # generating the receipt) and mints her access (output 0).
        access_out = TypecoinOutput(
            may_read(refs, alice.principal_term, "TOPLAS"), 600, alice.pubkey
        )
        coupon_back = TypecoinOutput(coupon_prop, 600, acm.pubkey)
        inp = alice.input_for(OutPoint(issue_carrier.txid, 0))

        def body(_c, ins, receipts):
            # saybind unwraps ⟨ACM⟩offer, applies it to the receipt, and
            # instantiates ∀K with Alice — all under ACM's affirmation…
            use_offer = SayBind(
                "f",
                signed_offer,
                SayReturn(
                    acm.principal_term,
                    ForallElim(
                        LolliElim(PVar("f"), receipts[1]),
                        alice.principal_term,
                    ),
                ),
            )
            # …but may_read is only useful bare; ACM's rule should really
            # conclude a bare proposition.  Keep the affirmation: the file
            # server demands ⟨ACM⟩may_read anyway.
            return TensorIntro(use_offer, ins[0])

        access_out = TypecoinOutput(
            Says(
                acm.principal_term,
                may_read(refs, alice.principal_term, "TOPLAS"),
            ),
            600,
            alice.pubkey,
        )
        txn = TypecoinTransaction(
            Basis(), One(), [inp], [access_out, coupon_back],
            obligation_lambda(
                One(), [inp.prop],
                [access_out.receipt(), coupon_back.receipt()],
                body,
            ),
        )
        carrier = alice.submit(txn)
        net.confirm(1)
        alice.sync()
        # Alice has access; ACM has its coupon back, intact.
        assert props_equal(
            ledger.output(carrier.txid, 0).prop,
            Says(acm.principal_term,
                 may_read(refs, alice.principal_term, "TOPLAS")),
        )
        assert props_equal(ledger.output(carrier.txid, 1).prop, coupon_prop)
        assert ledger.output(carrier.txid, 1).principal == acm.principal

    def test_redeeming_without_paying_fails(self, net, ledger, acm, alice):
        """Dropping the coupon-return output invalidates the receipt."""
        refs, basis_txid, publication = publish_journal_basis(net, acm)
        coupon_prop = Says(acm.principal_term, Atom(TConst(refs["coupon"])))
        access = Forall("K", PRINCIPAL_T, may_read(refs, Var("K"), "TOPLAS"))
        offer = Lolli(Receipt(coupon_prop, 600, acm.principal_term), access)
        signed_offer = acm.affirm_persistent(offer)

        access_out = TypecoinOutput(
            Says(
                acm.principal_term,
                may_read(refs, alice.principal_term, "TOPLAS"),
            ),
            600,
            alice.pubkey,
        )

        def body(_c, _ins, receipts):
            # Only the access receipt exists; the offer's receipt demand
            # cannot be met.
            return SayBind(
                "f", signed_offer,
                SayReturn(
                    acm.principal_term,
                    ForallElim(
                        LolliElim(PVar("f"), receipts[0]),
                        alice.principal_term,
                    ),
                ),
            )

        txn = TypecoinTransaction(
            Basis(), One(), [], [access_out],
            obligation_lambda(One(), [], [access_out.receipt()], body),
        )
        with pytest.raises(ClientError):
            alice.submit(txn)


class TestExternalChoice:
    """§2: ⟨ACM⟩∀K.(may_read(K,TOPLAS) & may_read(K,TOCL)) — "external
    choice allows the resource's holder to choose"."""

    def issue_choice(self, net, acm, refs, recipient):
        choice = Says(
            acm.principal_term,
            Forall(
                "K", PRINCIPAL_T,
                With(
                    may_read(refs, Var("K"), "TOPLAS"),
                    may_read(refs, Var("K"), "TOCL"),
                ),
            ),
        )
        out = TypecoinOutput(choice, 600, recipient.pubkey)
        inner = Forall(
            "K", PRINCIPAL_T,
            With(
                may_read(refs, Var("K"), "TOPLAS"),
                may_read(refs, Var("K"), "TOCL"),
            ),
        )
        txn = build_with_payload(
            Basis(), One(), [], [out],
            lambda payload: obligation_lambda(
                One(), [], [out.receipt()],
                lambda _c, _i, _r: tensor_intro_all([
                    acm.affirm_affine(inner, payload)
                ]),
            ),
        )
        return txn, choice

    def test_holder_picks_one_side(self, net, ledger, acm, alice):
        refs, basis_txid, publication = publish_journal_basis(net, acm)
        alice.known[basis_txid] = publication
        txn, choice = self.issue_choice(net, acm, refs, alice)
        carrier = acm.submit(txn)
        net.confirm(1)
        acm.sync()
        alice.known[carrier.txid] = txn

        # Alice chooses TOCL, instantiating K with herself.
        chosen = Says(
            acm.principal_term, may_read(refs, alice.principal_term, "TOCL")
        )
        out = TypecoinOutput(chosen, 600, alice.pubkey)
        spend = simple_transfer(
            [alice.input_for(OutPoint(carrier.txid, 0))],
            [out],
            body=lambda ins: SayBind(
                "w", ins[0],
                SayReturn(
                    acm.principal_term,
                    WithSnd(ForallElim(PVar("w"), alice.principal_term)),
                ),
            ),
        )
        spend_carrier = alice.submit(spend)
        net.confirm(1)
        alice.sync()
        assert props_equal(ledger.output(spend_carrier.txid, 0).prop, chosen)

    def test_holder_cannot_take_both(self, net, ledger, acm, alice):
        """& is not ⊗: projecting both sides double-uses the resource."""
        refs, basis_txid, publication = publish_journal_basis(net, acm)
        alice.known[basis_txid] = publication
        txn, choice = self.issue_choice(net, acm, refs, alice)
        carrier = acm.submit(txn)
        net.confirm(1)
        acm.sync()
        alice.known[carrier.txid] = txn

        both = TypecoinOutput(
            Says(
                acm.principal_term,
                may_read(refs, alice.principal_term, "TOPLAS"),
            ),
            600, alice.pubkey,
        )
        both2 = TypecoinOutput(
            Says(
                acm.principal_term,
                may_read(refs, alice.principal_term, "TOCL"),
            ),
            600, alice.pubkey,
        )
        greedy = simple_transfer(
            [alice.input_for(OutPoint(carrier.txid, 0))],
            [both, both2],
            body=lambda ins: TensorIntro(
                SayBind(
                    "w", ins[0],
                    SayReturn(
                        acm.principal_term,
                        WithFst(ForallElim(PVar("w"), alice.principal_term)),
                    ),
                ),
                SayBind(
                    "w2", ins[0],
                    SayReturn(
                        acm.principal_term,
                        WithSnd(ForallElim(PVar("w2"), alice.principal_term)),
                    ),
                ),
            ),
        )
        with pytest.raises(ClientError, match="more than once"):
            alice.submit(greedy)


class TestTransferableCredential:
    """§2: "The holder of such a credential could exercise it by
    instantiating K with himself, or he could transfer it to someone
    else." """

    def test_transfer_then_instantiate(self, net, ledger, acm, alice, bob):
        refs, basis_txid, publication = publish_journal_basis(net, acm)
        for client in (alice, bob):
            client.known[basis_txid] = publication
        anyone = Says(
            acm.principal_term,
            Forall("K", PRINCIPAL_T, may_read(refs, Var("K"), "TOPLAS")),
        )
        inner = Forall("K", PRINCIPAL_T, may_read(refs, Var("K"), "TOPLAS"))
        out = TypecoinOutput(anyone, 600, alice.pubkey)
        issue = build_with_payload(
            Basis(), One(), [], [out],
            lambda payload: obligation_lambda(
                One(), [], [out.receipt()],
                lambda _c, _i, _r: tensor_intro_all([
                    acm.affirm_affine(inner, payload)
                ]),
            ),
        )
        issue_carrier = acm.submit(issue)
        net.confirm(1)
        acm.sync()
        alice.known[issue_carrier.txid] = issue

        # Alice transfers the still-universal credential to Bob.
        transfer = simple_transfer(
            [alice.input_for(OutPoint(issue_carrier.txid, 0))],
            [TypecoinOutput(anyone, 600, bob.pubkey)],
        )
        transfer_carrier = alice.submit(transfer)
        net.confirm(1)
        alice.sync()
        bob.known[transfer_carrier.txid] = transfer
        bob.known[issue_carrier.txid] = issue

        # Bob instantiates K := Bob.
        mine = Says(
            acm.principal_term, may_read(refs, bob.principal_term, "TOPLAS")
        )
        claim = simple_transfer(
            [bob.input_for(OutPoint(transfer_carrier.txid, 0))],
            [TypecoinOutput(mine, 600, bob.pubkey)],
            body=lambda ins: SayBind(
                "w", ins[0],
                SayReturn(
                    acm.principal_term,
                    ForallElim(PVar("w"), bob.principal_term),
                ),
            ),
        )
        claim_carrier = bob.submit(claim)
        net.confirm(1)
        bob.sync()
        assert props_equal(ledger.output(claim_carrier.txid, 0).prop, mine)
