"""Tests for the blockchain: acceptance, reorgs, UTXO/undo, queries."""

import pytest

from repro.bitcoin.block import Block
from repro.bitcoin.chain import Blockchain, ChainParams, block_subsidy
from repro.bitcoin.miner import Miner
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import COIN, OutPoint, TxOut
from repro.bitcoin.validation import ValidationError
from repro.bitcoin.wallet import Wallet
from repro.bitcoin.regtest import RegtestNetwork


@pytest.fixture
def chain():
    return Blockchain(ChainParams.regtest())


@pytest.fixture
def miner_key():
    return Wallet.from_seed(b"chain-miner").key_hash


def mine(chain, key_hash, n=1, extra_nonce_base=0):
    miner = Miner(chain, key_hash)
    return [
        miner.mine_block(extra_nonce=extra_nonce_base + i) for i in range(n)
    ]


class TestBasics:
    def test_genesis_is_deterministic(self):
        a = Blockchain(ChainParams.regtest())
        b = Blockchain(ChainParams.regtest())
        assert a.genesis.hash == b.genesis.hash
        assert a.height == 0

    def test_mining_extends_chain(self, chain, miner_key):
        blocks = mine(chain, miner_key, 3)
        assert chain.height == 3
        assert chain.tip.block.hash == blocks[-1].hash

    def test_duplicate_block_is_noop(self, chain, miner_key):
        [block] = mine(chain, miner_key, 1)
        assert chain.add_block(block)
        assert chain.height == 1

    def test_orphan_rejected(self, chain, miner_key):
        other = Blockchain(ChainParams.regtest())
        mine(other, miner_key, 2)
        orphan = other.tip.block
        with pytest.raises(ValidationError, match="orphan"):
            chain.add_block(orphan)

    def test_subsidy_halving(self):
        assert block_subsidy(0) == 50 * COIN
        assert block_subsidy(209_999) == 50 * COIN
        assert block_subsidy(210_000) == 25 * COIN
        assert block_subsidy(420_000) == 12.5 * COIN
        assert block_subsidy(64 * 210_000) == 0

    def test_bad_pow_rejected(self, chain, miner_key):
        miner = Miner(chain, miner_key)
        template = miner.assemble()
        # Find a nonce that does NOT meet the target.
        nonce = 0
        while template.header.with_nonce(nonce).meets_target():
            nonce += 1
        bad = Block(template.header.with_nonce(nonce), template.txs)
        with pytest.raises(ValidationError, match="proof of work"):
            chain.add_block(bad)

    def test_greedy_coinbase_rejected(self, chain, miner_key):
        miner = Miner(chain, miner_key)
        template = miner.assemble()
        greedy_coinbase = miner.make_coinbase(1, fees=COIN)  # claims phantom fees
        from repro.bitcoin.block import build_block

        block = build_block(
            template.header.prev_hash,
            [greedy_coinbase],
            template.header.timestamp,
            template.header.bits,
        )
        block = miner.grind(block)
        with pytest.raises(ValidationError, match="coinbase pays more"):
            chain.add_block(block)

    def test_stale_timestamp_rejected(self, chain, miner_key):
        miner = Miner(chain, miner_key)
        template = miner.assemble(timestamp=chain.median_time_past())
        block = miner.grind(template)
        with pytest.raises(ValidationError, match="median time"):
            chain.add_block(block)


class TestQueries:
    def test_transaction_lookup_and_confirmations(self, chain, miner_key):
        [block] = mine(chain, miner_key, 1)
        coinbase = block.txs[0]
        found = chain.get_transaction(coinbase.txid)
        assert found is not None
        tx, height = found
        assert tx.txid == coinbase.txid
        assert height == 1
        assert chain.confirmations(coinbase.txid) == 1
        mine(chain, miner_key, 5, extra_nonce_base=100)
        assert chain.confirmations(coinbase.txid) == 6

    def test_unknown_tx_has_zero_confirmations(self, chain):
        assert chain.confirmations(b"\x00" * 32) == 0

    def test_spent_tracking(self):
        net = RegtestNetwork()
        alice = Wallet.from_seed(b"spent-alice")
        bob = Wallet.from_seed(b"spent-bob")
        net.fund_wallet(alice)
        coin_op = None
        for spendable in alice.spendables(net.chain):
            coin_op = spendable.outpoint
            break
        assert not net.chain.is_spent(coin_op)
        tx = alice.create_transaction(
            net.chain, [TxOut(COIN, p2pkh_script(bob.key_hash))], fee=1000
        )
        net.send(tx)
        net.confirm()
        assert net.chain.is_spent(coin_op)
        assert net.chain.spender_of(coin_op) == tx.txid

    def test_median_time_past_is_monotone(self, chain, miner_key):
        mtps = [chain.median_time_past()]
        for i in range(12):
            mine(chain, miner_key, 1, extra_nonce_base=i * 10)
            mtps.append(chain.median_time_past())
        assert mtps == sorted(mtps)


class TestReorg:
    def test_longer_branch_wins(self, miner_key):
        shared = Blockchain(ChainParams.regtest())
        mine(shared, miner_key, 2)

        # Build a competing branch on a copy (same genesis).
        rival_chain = Blockchain(ChainParams.regtest())
        rival_key = Wallet.from_seed(b"rival").key_hash
        rival_blocks = mine(rival_chain, rival_key, 3, extra_nonce_base=1000)

        old_tip = shared.tip.block.hash
        for block in rival_blocks:
            shared.add_block(block)
        assert shared.height == 3
        assert shared.tip.block.hash == rival_blocks[-1].hash
        assert not shared.in_active_chain(old_tip)

    def test_reorg_restores_utxos(self, miner_key):
        """A reorg must roll the UTXO set back and forward correctly."""
        net = RegtestNetwork()
        alice = Wallet.from_seed(b"reorg-alice")
        bob = Wallet.from_seed(b"reorg-bob")
        net.fund_wallet(alice)
        height_before = net.chain.height

        tx = alice.create_transaction(
            net.chain, [TxOut(2 * COIN, p2pkh_script(bob.key_hash))], fee=1000
        )
        net.send(tx)
        net.confirm(1)
        assert bob.balance(net.chain) == 2 * COIN

        # Build a heavier empty branch from before the payment.
        rival = Blockchain(ChainParams.regtest())
        rival_key = Wallet.from_seed(b"reorg-rival").key_hash
        rival_miner = Miner(rival, rival_key)
        # Reproduce the shared history by replaying blocks.
        for h in range(1, height_before + 1):
            rival.add_block(net.chain.block_at(h))
        blocks = [
            rival_miner.mine_block(extra_nonce=5000 + i) for i in range(2)
        ]
        for block in blocks:
            net.chain.add_block(block)

        # Bob's payment is gone; Alice's coin is unspent again.
        assert bob.balance(net.chain) == 0
        assert net.chain.get_transaction(tx.txid) is None
        assert not net.chain.is_spent(tx.vin[0].prevout)

    def test_shorter_branch_is_stored_but_inactive(self, miner_key):
        shared = Blockchain(ChainParams.regtest())
        mine(shared, miner_key, 3)
        rival = Blockchain(ChainParams.regtest())
        rival_blocks = mine(
            rival, Wallet.from_seed(b"loser").key_hash, 2, extra_nonce_base=99
        )
        for block in rival_blocks:
            shared.add_block(block)
        assert shared.height == 3
        assert shared.has_block(rival_blocks[-1].hash)
        assert not shared.in_active_chain(rival_blocks[-1].hash)
