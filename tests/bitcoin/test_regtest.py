"""Tests for the regtest harness and miner."""

from repro.bitcoin.chain import block_subsidy
from repro.bitcoin.miner import Miner
from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import COIN, TxOut
from repro.bitcoin.wallet import Wallet


def test_generate_advances_height():
    net = RegtestNetwork()
    key = Wallet.from_seed(b"rt").key_hash
    blocks = net.generate(3, key)
    assert net.chain.height == 3
    assert len(blocks) == 3
    assert all(b.txs[0].is_coinbase for b in blocks)


def test_fund_wallet_produces_mature_balance():
    net = RegtestNetwork()
    wallet = Wallet.from_seed(b"rt-funded")
    net.fund_wallet(wallet, blocks=3)
    assert wallet.balance(net.chain) == 3 * 50 * COIN


def test_miner_collects_fees():
    net = RegtestNetwork()
    alice = Wallet.from_seed(b"rt-alice")
    net.fund_wallet(alice)
    fee = 250_000
    tx = alice.create_transaction(
        net.chain, [TxOut(COIN, p2pkh_script(b"\x01" * 20))], fee=fee
    )
    net.send(tx)
    miner_key = Wallet.from_seed(b"rt-miner")
    [block] = net.generate(1, miner_key.key_hash)
    assert tx.txid in {t.txid for t in block.txs}
    coinbase_value = block.txs[0].total_output_value()
    assert coinbase_value == block_subsidy(net.chain.height) + fee


def test_confirmations_accumulate():
    net = RegtestNetwork()
    alice = Wallet.from_seed(b"rt-confs")
    net.fund_wallet(alice)
    tx = alice.create_transaction(
        net.chain, [TxOut(COIN, p2pkh_script(b"\x02" * 20))], fee=1000
    )
    txid = net.send(tx)
    assert net.confirmations(txid) == 0
    net.confirm(6)
    assert net.confirmations(txid) == 6


def test_mining_templates_are_unique():
    net = RegtestNetwork()
    key = Wallet.from_seed(b"rt-unique").key_hash
    blocks = net.generate(5, key)
    assert len({b.hash for b in blocks}) == 5
