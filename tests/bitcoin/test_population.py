"""The synthetic population generator (repro.bitcoin.population).

The load-bearing property is determinism: a population is pure schedule,
derived entirely from its config — the swarm smoke's compact-on/off
differential only means something if both runs drive byte-identical
transaction streams.  The shape properties (power-law skew, bursty
arrivals) are asserted statistically on seeded draws.
"""

import pytest

from repro.bitcoin.chain import Blockchain
from repro.bitcoin.population import (
    PopulationConfig,
    SyntheticPopulation,
    fund_wallets,
    sim_chain_params,
)
from repro.bitcoin.wallet import Wallet


class TestConfig:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            PopulationConfig(wallets=0)
        with pytest.raises(ValueError):
            PopulationConfig(alpha=-1.0)
        with pytest.raises(ValueError):
            PopulationConfig(burst_mean=0.5)
        with pytest.raises(ValueError):
            PopulationConfig(burst_rate=0.0)


class TestDeterminism:
    def test_same_config_same_window_same_digest(self):
        cfg = PopulationConfig(wallets=50_000, seed=9)
        first = SyntheticPopulation(cfg).trace_digest(0.0, 7200.0)
        second = SyntheticPopulation(cfg).trace_digest(0.0, 7200.0)
        assert first == second

    def test_seed_and_window_decorrelate(self):
        base = SyntheticPopulation(PopulationConfig(wallets=50_000, seed=9))
        other = SyntheticPopulation(PopulationConfig(wallets=50_000, seed=10))
        assert base.trace_digest(0.0, 7200.0) != other.trace_digest(0.0, 7200.0)
        assert base.trace_digest(0.0, 7200.0) != base.trace_digest(
            7200.0, 7200.0
        )

    def test_wallet_streams_reproducible_and_distinct(self):
        pop = SyntheticPopulation(PopulationConfig(wallets=100, seed=1))
        assert pop.wallet_rng(7).random() == pop.wallet_rng(7).random()
        assert pop.wallet_rng(7).random() != pop.wallet_rng(8).random()


class TestShape:
    def test_events_are_time_ordered_and_in_window(self):
        pop = SyntheticPopulation(PopulationConfig(wallets=10_000, seed=2))
        trace = pop.trace(1000.0, 6 * 3600.0)
        assert len(trace) > 50
        times = [at for at, _ in trace]
        assert times == sorted(times)
        assert all(1000.0 <= at < 1000.0 + 6 * 3600.0 for at in times)
        assert all(0 <= w < 10_000 for _, w in trace)

    def test_power_law_concentrates_activity(self):
        pop = SyntheticPopulation(PopulationConfig(wallets=100_000, seed=3))
        # Analytically: the top 1% of wallets own most of the weight...
        assert pop.activity_share(1_000) > 0.5
        assert pop.activity_share(100_000) == pytest.approx(1.0)
        # ...and empirically, seeded draws follow the weights.
        trace = pop.trace(0.0, 24 * 3600.0)
        assert len(trace) > 300
        heavy = sum(1 for _, w in trace if w < 1_000)
        assert heavy / len(trace) > 0.4

    def test_million_wallet_population_is_cheap(self):
        pop = SyntheticPopulation(PopulationConfig(wallets=1_000_000, seed=4))
        rng = pop.wallet_rng(0)
        picks = [pop.pick_wallet(rng) for _ in range(1_000)]
        assert all(0 <= p < 1_000_000 for p in picks)
        assert len(set(picks)) > 100  # the tail does get sampled

    def test_flat_alpha_is_uniform(self):
        pop = SyntheticPopulation(
            PopulationConfig(wallets=10_000, seed=5, alpha=0.0)
        )
        assert pop.activity_share(100) == pytest.approx(0.01)


class TestFunding:
    def test_funded_outputs_spendable_on_a_sim_params_chain(self):
        wallets = [Wallet.from_seed(b"pop-fund-%d" % i) for i in range(8)]
        # Two planned spends each: two independent outputs each.
        blocks = fund_wallets([w.key_hash for w in wallets for _ in range(2)])
        chain = Blockchain(sim_chain_params())
        for block in blocks:
            assert chain.add_block(block)
        for wallet in wallets:
            assert len(wallet.spendables(chain)) == 2

    def test_funding_is_deterministic(self):
        keys = [Wallet.from_seed(b"pop-det-%d" % i).key_hash for i in range(5)]
        first = [b.hash for b in fund_wallets(keys)]
        second = [b.hash for b in fund_wallets(keys)]
        assert first == second
