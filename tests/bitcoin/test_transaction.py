"""Tests for transaction structure, serialization, and txids."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitcoin.script import Op, Script
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import (
    OutPoint,
    Transaction,
    TxIn,
    TxOut,
    read_varint,
    varint,
)


def make_tx(n_in=1, n_out=1):
    vin = [
        TxIn(OutPoint(bytes([i]) * 32, i), Script([b"\x01"])) for i in range(n_in)
    ]
    vout = [TxOut(1000 * (i + 1), p2pkh_script(bytes([i]) * 20)) for i in range(n_out)]
    return Transaction(vin, vout)


class TestVarint:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip(self, n):
        value, offset = read_varint(varint(n), 0)
        assert value == n
        assert offset == len(varint(n))

    def test_boundaries(self):
        assert len(varint(0xFC)) == 1
        assert len(varint(0xFD)) == 3
        assert len(varint(0xFFFF)) == 3
        assert len(varint(0x10000)) == 5
        assert len(varint(0x100000000)) == 9


class TestOutPoint:
    def test_null_detection(self):
        assert OutPoint.null().is_null
        assert not OutPoint(b"\x01" * 32, 0).is_null

    def test_ordering_and_hashability(self):
        a = OutPoint(b"\x00" * 32, 0)
        b = OutPoint(b"\x00" * 32, 1)
        assert a < b
        assert len({a, b, a}) == 2

    def test_str_is_display_order(self):
        op = OutPoint(bytes(range(32)), 5)
        assert op.__str__().endswith(":5")


class TestTransaction:
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_serialization_roundtrip(self, n_in, n_out):
        tx = make_tx(n_in, n_out)
        assert Transaction.parse(tx.serialize()) == tx

    def test_txid_changes_with_content(self):
        assert make_tx(1, 1).txid != make_tx(1, 2).txid

    def test_txid_is_display_reversed(self):
        tx = make_tx()
        assert tx.txid_hex == tx.txid[::-1].hex()

    def test_coinbase_detection(self):
        coinbase = Transaction(
            vin=[TxIn(OutPoint.null(), Script([b"\x00"]))],
            vout=[TxOut(50, p2pkh_script(b"\x01" * 20))],
        )
        assert coinbase.is_coinbase
        assert not make_tx().is_coinbase

    def test_total_output_value(self):
        assert make_tx(1, 3).total_output_value() == 1000 + 2000 + 3000

    def test_outpoint_accessor(self):
        tx = make_tx(1, 2)
        assert tx.outpoint(1) == OutPoint(tx.txid, 1)
        with pytest.raises(IndexError):
            tx.outpoint(2)

    def test_with_input_script_replaces_one(self):
        tx = make_tx(2, 1)
        new_script = Script([b"\xff"])
        updated = tx.with_input_script(1, new_script)
        assert updated.vin[1].script_sig == new_script
        assert updated.vin[0].script_sig == tx.vin[0].script_sig
        # Original is unchanged (immutability).
        assert tx.vin[1].script_sig != new_script

    def test_negative_locktime_version_roundtrip(self):
        tx = Transaction(
            vin=[TxIn(OutPoint(b"\x01" * 32, 0))],
            vout=[TxOut(1, Script())],
            version=2,
            locktime=500_000,
        )
        parsed = Transaction.parse(tx.serialize())
        assert parsed.version == 2
        assert parsed.locktime == 500_000
