"""Tests for mempool relay policy."""

import pytest

from repro.bitcoin.mempool import MempoolError
from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.script import Op, Script
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import COIN, Transaction, TxIn, TxOut
from repro.bitcoin.wallet import Wallet


@pytest.fixture
def funded():
    net = RegtestNetwork()
    alice = Wallet.from_seed(b"mp-alice")
    bob = Wallet.from_seed(b"mp-bob")
    net.fund_wallet(alice)
    return net, alice, bob


def test_accept_and_mine(funded):
    net, alice, bob = funded
    tx = alice.create_transaction(
        net.chain, [TxOut(COIN, p2pkh_script(bob.key_hash))], fee=1000
    )
    net.send(tx)
    assert tx.txid in net.mempool
    net.confirm()
    assert tx.txid not in net.mempool
    assert net.confirmations(tx.txid) == 1


def test_duplicate_rejected(funded):
    net, alice, bob = funded
    tx = alice.create_transaction(
        net.chain, [TxOut(COIN, p2pkh_script(bob.key_hash))], fee=1000
    )
    net.send(tx)
    with pytest.raises(MempoolError, match="already in mempool"):
        net.send(tx)


def test_confirmed_rejected(funded):
    net, alice, bob = funded
    tx = alice.create_transaction(
        net.chain, [TxOut(COIN, p2pkh_script(bob.key_hash))], fee=1000
    )
    net.send(tx)
    net.confirm()
    with pytest.raises(MempoolError, match="already confirmed"):
        net.send(tx)


def test_double_spend_rejected(funded):
    net, alice, bob = funded
    tx1 = alice.create_transaction(
        net.chain, [TxOut(COIN, p2pkh_script(bob.key_hash))], fee=1000
    )
    # Same inputs, different output: conflicts with tx1.
    tx2 = Transaction(
        tx1.vin, [TxOut(COIN, p2pkh_script(b"\x09" * 20))]
    )
    net.send(tx1)
    with pytest.raises(MempoolError, match="double-spend"):
        net.mempool.accept(tx2)


def test_nonstandard_output_refused_by_relay(funded):
    """§3.3: non-standard scripts are legal in blocks but not relayed."""
    net, alice, _ = funded
    weird = Script([Op.OP_1, Op.OP_ADD, Op.OP_2, Op.OP_NUMEQUAL])
    spendable = alice.spendables(net.chain)[0]
    tx = Transaction(
        vin=[TxIn(spendable.outpoint)],
        vout=[TxOut(spendable.output.value - 100_000, weird)],
    )
    tx = alice.sign_all(tx, [spendable.output.script_pubkey])
    with pytest.raises(MempoolError, match="non-standard"):
        net.send(tx)
    # But a miner can still include it.
    net.send_raw(tx)
    net.confirm()
    assert net.confirmations(tx.txid) == 1


def test_dust_refused(funded):
    net, alice, bob = funded
    tx = alice.create_transaction(
        net.chain, [TxOut(100, p2pkh_script(bob.key_hash))], fee=100_000
    )
    with pytest.raises(MempoolError, match="dust"):
        net.send(tx)


def test_low_fee_refused(funded):
    net, alice, bob = funded
    tx = alice.create_transaction(
        net.chain, [TxOut(COIN, p2pkh_script(bob.key_hash))], fee=10
    )
    with pytest.raises(MempoolError, match="fee"):
        net.send(tx)


def test_coinbase_refused(funded):
    net, _, _ = funded
    coinbase = net.chain.tip.block.txs[0]
    with pytest.raises(MempoolError, match="coinbase"):
        net.mempool.accept(coinbase)


def test_fee_rate_ordering(funded):
    net, alice, bob = funded
    # Extra coins so three independent transactions can coexist in the pool.
    net.fund_wallet(alice, blocks=2)
    spent: set = set()
    fees = [50_000, 150_000, 100_000]
    for fee in fees:
        tx = alice.create_transaction(
            net.chain,
            [TxOut(COIN, p2pkh_script(bob.key_hash))],
            fee=fee,
            exclude=spent,
        )
        spent.update(txin.prevout for txin in tx.vin)
        net.send(tx)
    ordered = net.mempool.transactions()
    ordered_fees = [e.fee for e in ordered]
    assert ordered_fees == sorted(fees, reverse=True)


def test_revalidate_evicts_conflicts(funded):
    net, alice, bob = funded
    tx = alice.create_transaction(
        net.chain, [TxOut(COIN, p2pkh_script(bob.key_hash))], fee=1000
    )
    net.send(tx)
    # Simulate the inputs disappearing (e.g. after a reorg made them spent):
    # manually remove them from the UTXO set.
    for txin in tx.vin:
        net.chain.utxos.remove(txin.prevout)
    evicted = net.mempool.revalidate()
    assert tx.txid not in net.mempool
    assert [t.txid for t in evicted] == [tx.txid]


class TestReorgReinjection:
    """Reorgs must not lose the losing branch's transactions."""

    def _build_rival(self, net, fork_height, seed, count, with_tx=None):
        """A heavier branch forked at ``fork_height``; optionally mines
        ``with_tx`` into its first block."""
        from repro.bitcoin.chain import Blockchain, ChainParams
        from repro.bitcoin.mempool import Mempool
        from repro.bitcoin.miner import Miner

        rival = Blockchain(ChainParams.regtest())
        for h in range(1, fork_height + 1):
            rival.add_block(net.chain.block_at(h))
        pool = Mempool(rival)
        if with_tx is not None:
            pool.accept(with_tx)
        miner = Miner(rival, Wallet.from_seed(seed).key_hash)
        blocks = []
        for i in range(count):
            blocks.append(
                miner.mine_block(pool if i == 0 else None,
                                 extra_nonce=7000 + i)
            )
        return blocks

    def test_losing_branch_tx_returns_to_mempool(self, funded):
        net, alice, bob = funded
        fork_height = net.chain.height
        tx = alice.create_transaction(
            net.chain, [TxOut(COIN, p2pkh_script(bob.key_hash))], fee=1000
        )
        net.send(tx)
        net.confirm(1)
        assert tx.txid not in net.mempool

        for block in self._build_rival(net, fork_height, b"mp-rival", 2):
            net.chain.add_block(block)
        assert net.chain.get_transaction(tx.txid) is None  # unconfirmed again
        assert tx.txid in net.mempool  # ...but not lost
        net.confirm(1)
        assert net.confirmations(tx.txid) == 1

    def test_tx_confirmed_on_winning_branch_not_reinjected(self, funded):
        net, alice, bob = funded
        fork_height = net.chain.height
        tx = alice.create_transaction(
            net.chain, [TxOut(COIN, p2pkh_script(bob.key_hash))], fee=1000
        )
        net.send(tx)
        net.confirm(1)

        blocks = self._build_rival(
            net, fork_height, b"mp-rival2", 2, with_tx=tx
        )
        for block in blocks:
            net.chain.add_block(block)
        # The winning branch re-confirmed it: stays out of the pool.
        assert net.chain.get_transaction(tx.txid) is not None
        assert tx.txid not in net.mempool

    def test_conflicted_tx_stays_out(self, funded):
        net, alice, bob = funded
        fork_height = net.chain.height
        tx = alice.create_transaction(
            net.chain, [TxOut(COIN, p2pkh_script(bob.key_hash))], fee=1000
        )
        net.send(tx)
        net.confirm(1)

        # The rival branch double-spends the same coin to someone else:
        # building the spend against a fork-point copy of the chain makes
        # the wallet pick the identical (still-unspent there) input.
        from repro.bitcoin.chain import Blockchain, ChainParams
        from repro.bitcoin.mempool import Mempool
        from repro.bitcoin.miner import Miner

        rival = Blockchain(ChainParams.regtest())
        for h in range(1, fork_height + 1):
            rival.add_block(net.chain.block_at(h))
        double = alice.create_transaction(
            rival, [TxOut(COIN, p2pkh_script(b"\x55" * 20))], fee=1000
        )
        assert double.vin[0].prevout == tx.vin[0].prevout  # same coin
        pool = Mempool(rival)
        pool.accept(double)
        miner = Miner(rival, Wallet.from_seed(b"mp-rival4").key_hash)
        for i in range(2):
            net.chain.add_block(
                miner.mine_block(pool if i == 0 else None,
                                 extra_nonce=8000 + i)
            )
        # tx's input is now spent by `double` on the active chain: the
        # re-injection attempt must fail validation and stay out.
        assert tx.txid not in net.mempool
        assert net.chain.get_transaction(double.txid) is not None
