"""Tests for the wallet: funding, signing, multisig."""

import pytest

from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.sighash import SigHashType
from repro.bitcoin.standard import multisig_script, p2pk_script, p2pkh_script
from repro.bitcoin.transaction import COIN, Transaction, TxIn, TxOut
from repro.bitcoin.validation import check_tx_inputs
from repro.bitcoin.wallet import Spendable, Wallet, WalletError
from repro.crypto.keys import PrivateKey


@pytest.fixture
def funded():
    net = RegtestNetwork()
    alice = Wallet.from_seed(b"w-alice")
    net.fund_wallet(alice, blocks=2)
    return net, alice


def test_balance_after_funding(funded):
    net, alice = funded
    assert alice.balance(net.chain) == 100 * COIN


def test_immature_coinbase_not_spendable():
    net = RegtestNetwork()
    alice = Wallet.from_seed(b"w-immature")
    net.generate(1, alice.key_hash)  # mined but immature
    assert alice.balance(net.chain) == 0


def test_create_transaction_with_change(funded):
    net, alice = funded
    bob = Wallet.from_seed(b"w-bob")
    tx = alice.create_transaction(
        net.chain, [TxOut(10 * COIN, p2pkh_script(bob.key_hash))], fee=5000
    )
    net.send(tx)
    net.confirm()
    assert bob.balance(net.chain) == 10 * COIN
    # Alice got change: balance = 100 - 10 - fee.
    assert alice.balance(net.chain) == 90 * COIN - 5000


def test_insufficient_funds(funded):
    net, alice = funded
    with pytest.raises(WalletError, match="insufficient"):
        alice.create_transaction(
            net.chain, [TxOut(1000 * COIN, p2pkh_script(b"\x01" * 20))], fee=0
        )


def test_empty_wallet_has_no_default_key():
    with pytest.raises(WalletError):
        Wallet().default_key


def test_sign_p2pk(funded):
    net, alice = funded
    script = p2pk_script(alice.default_key.public.encoded)
    tx = alice.create_transaction(net.chain, [TxOut(COIN, script)], fee=5000)
    net.send(tx)
    net.confirm()
    # Spend the P2PK output back.
    outpoint = tx.outpoint(0)
    entry = net.chain.utxos.get(outpoint)
    spendable = Spendable(outpoint, entry.output, entry.height, entry.is_coinbase)
    spend = Transaction(
        vin=[TxIn(outpoint)],
        vout=[TxOut(COIN - 5000, p2pkh_script(alice.key_hash))],
    )
    spend = alice.sign_all(spend, [entry.output.script_pubkey])
    assert check_tx_inputs(spend, net.chain.utxos, net.chain.height + 1).fee == 5000


def test_sign_multisig_2_of_3(funded):
    net, alice = funded
    k1, k2, k3 = (PrivateKey.from_seed(bytes([i])) for i in range(3))
    script = multisig_script(2, [k.public.encoded for k in (k1, k2, k3)])
    tx = alice.create_transaction(net.chain, [TxOut(COIN, script)], fee=5000)
    net.send(tx)
    net.confirm()

    holders = Wallet([k1, k3])  # any two of the three
    outpoint = tx.outpoint(0)
    entry = net.chain.utxos.get(outpoint)
    spend = Transaction(
        vin=[TxIn(outpoint)],
        vout=[TxOut(COIN - 5000, p2pkh_script(alice.key_hash))],
    )
    spend = holders.sign_all(spend, [entry.output.script_pubkey])
    assert check_tx_inputs(spend, net.chain.utxos, net.chain.height + 1).fee == 5000


def test_multisig_insufficient_keys(funded):
    net, alice = funded
    k1, k2, k3 = (PrivateKey.from_seed(bytes([i])) for i in range(3))
    script = multisig_script(2, [k.public.encoded for k in (k1, k2, k3)])
    tx = alice.create_transaction(net.chain, [TxOut(COIN, script)], fee=5000)
    net.send(tx)
    net.confirm()
    lone = Wallet([k2])
    outpoint = tx.outpoint(0)
    entry = net.chain.utxos.get(outpoint)
    spend = Transaction(
        vin=[TxIn(outpoint)],
        vout=[TxOut(COIN - 5000, p2pkh_script(alice.key_hash))],
    )
    with pytest.raises(WalletError, match="not enough keys"):
        lone.sign_all(spend, [entry.output.script_pubkey])


def test_sign_wrong_script_type():
    wallet = Wallet.from_seed(b"w-unknown")
    from repro.bitcoin.script import Op, Script

    tx = Transaction(
        vin=[TxIn(OutPoint := __import__("repro.bitcoin.transaction", fromlist=["OutPoint"]).OutPoint(b"\x01" * 32, 0))],
        vout=[TxOut(1000, p2pkh_script(wallet.key_hash))],
    )
    with pytest.raises(WalletError, match="cannot sign"):
        wallet.sign_input(tx, 0, Script([Op.OP_1]))


def test_anyonecanpay_signature_survives_added_inputs(funded):
    """The wallet supports the SIGHASH modes open transactions need (§7)."""
    net, alice = funded
    bob = Wallet.from_seed(b"w-bob2")
    spendable = alice.spendables(net.chain)[0]
    tx = Transaction(
        vin=[TxIn(spendable.outpoint)],
        vout=[TxOut(spendable.output.value - 5000, p2pkh_script(bob.key_hash))],
    )
    hash_type = SigHashType.ALL | SigHashType.ANYONECANPAY
    signed = alice.sign_input(
        tx, 0, spendable.output.script_pubkey, hash_type
    )
    # Bob adds his own input afterwards; Alice's signature stays valid.
    extended = Transaction(
        list(signed.vin) + [TxIn(alice.spendables(net.chain)[1].outpoint)],
        signed.vout,
    )
    # Input 0's signature still verifies (input 1 unsigned, skip scripts there).
    from repro.bitcoin.script import execute_script
    from repro.bitcoin.validation import make_sig_checker

    checker = make_sig_checker(extended, 0, spendable.output.script_pubkey)
    assert execute_script(
        extended.vin[0].script_sig, spendable.output.script_pubkey, checker
    )


def test_deterministic_wallet_keys():
    a = Wallet.from_seed(b"same", count=3)
    b = Wallet.from_seed(b"same", count=3)
    assert [k.secret for k in a.keys] == [k.secret for k in b.keys]
    assert len({k.secret for k in a.keys}) == 3


def test_coinbase_maturity_boundary_matches_consensus():
    """Wallet selection and consensus validation agree at depths 99/100/101.

    The wallet used ``depth + 1 < COINBASE_MATURITY`` and so offered a
    coinbase one block before a spend of it at the current height would
    validate; both now apply the same ``depth < COINBASE_MATURITY`` rule.
    """
    from repro.bitcoin.utxo import COINBASE_MATURITY
    from repro.bitcoin.validation import ValidationError

    net = RegtestNetwork()
    alice = Wallet.from_seed(b"w-boundary")
    [block] = net.generate(1, alice.key_hash)  # coinbase at height 1
    coinbase = block.txs[0]
    outpoint = coinbase.outpoint(0)
    burn = Wallet.from_seed(b"w-boundary-burn")

    def wallet_offers() -> bool:
        return any(
            s.outpoint == outpoint for s in alice.spendables(net.chain)
        )

    def consensus_accepts_now() -> bool:
        """Would a spend mined at the *current* height validate?"""
        tx = Transaction(
            vin=[TxIn(outpoint)],
            vout=[TxOut(coinbase.vout[0].value - 1000, p2pkh_script(b"\x07" * 20))],
        )
        tx = alice.sign_all(tx, [coinbase.vout[0].script_pubkey])
        try:
            check_tx_inputs(tx, net.chain.utxos, net.chain.height)
        except ValidationError:
            return False
        return True

    net.generate(COINBASE_MATURITY - 2, burn.key_hash)  # depth 98
    for depth in (99, 100, 101):
        net.generate(1, burn.key_hash)
        assert net.chain.height - 1 == depth
        offered = wallet_offers()
        assert offered == consensus_accepts_now(), f"divergence at depth {depth}"
        assert offered == (depth >= COINBASE_MATURITY)


def test_boundary_coinbase_spend_confirms():
    """A spend the wallet builds at depth exactly 100 mines cleanly."""
    from repro.bitcoin.utxo import COINBASE_MATURITY

    net = RegtestNetwork()
    alice = Wallet.from_seed(b"w-boundary2")
    net.generate(1, alice.key_hash)
    net.generate(COINBASE_MATURITY, Wallet.from_seed(b"w-bb").key_hash)
    assert alice.balance(net.chain) == 50 * COIN
    bob = Wallet.from_seed(b"w-boundary2-bob")
    tx = alice.create_transaction(
        net.chain, [TxOut(COIN, p2pkh_script(bob.key_hash))], fee=1000
    )
    net.send(tx)
    net.confirm()
    assert net.confirmations(tx.txid) == 1
