"""Tests for proof-of-work targets and difficulty retargeting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitcoin.pow import (
    MAX_TARGET,
    bits_to_target,
    block_work,
    check_proof_of_work,
    difficulty,
    next_target,
    target_to_bits,
)


@given(st.integers(min_value=1, max_value=2**255))
@settings(max_examples=100)
def test_bits_roundtrip_preserves_magnitude(target):
    bits = target_to_bits(target)
    recovered = bits_to_target(bits)
    # Compact form keeps 3 bytes of mantissa: round trip is lossy but
    # the recovered value re-encodes exactly.
    assert target_to_bits(recovered) == bits
    assert recovered <= target
    assert recovered > target // 2**25  # mantissa precision bound


def test_known_mainnet_genesis_bits():
    # Bitcoin's genesis bits 0x1d00ffff decodes to the difficulty-1 target.
    assert bits_to_target(0x1D00FFFF) == MAX_TARGET
    assert target_to_bits(MAX_TARGET) == 0x1D00FFFF


def test_negative_target_rejected():
    with pytest.raises(ValueError):
        target_to_bits(0)
    with pytest.raises(ValueError):
        bits_to_target(0x1D800000)  # sign bit set


def test_check_proof_of_work():
    bits = target_to_bits(2**255)
    assert check_proof_of_work(b"\x00" * 32, bits)
    assert not check_proof_of_work(b"\xff" * 32, bits)


def test_block_work_inversely_proportional_to_target():
    easy = target_to_bits(2**250)
    hard = target_to_bits(2**240)
    assert block_work(hard) > block_work(easy)
    ratio = block_work(hard) / block_work(easy)
    # 2^250 has only one mantissa bit set, so integer division skews the
    # ratio a little; 2% tolerance covers the compact-encoding rounding.
    assert ratio == pytest.approx(2**10, rel=0.02)


class TestRetarget:
    def test_on_schedule_keeps_target(self):
        target = 2**220
        window, interval = 2016, 600
        elapsed = (window - 1) * interval
        assert next_target(target, 0, elapsed, window=window) == pytest.approx(
            target, rel=0.001
        )

    def test_fast_blocks_tighten_target(self):
        target = 2**220
        window, interval = 2016, 600
        elapsed = (window - 1) * interval // 2  # blocks twice as fast
        result = next_target(target, 0, elapsed, window=window)
        assert result == pytest.approx(target // 2, rel=0.001)

    def test_slow_blocks_loosen_target(self):
        target = 2**220
        window, interval = 2016, 600
        elapsed = (window - 1) * interval * 2
        result = next_target(target, 0, elapsed, window=window)
        assert result == pytest.approx(target * 2, rel=0.001)

    def test_adjustment_clamped_to_4x(self):
        target = 2**220
        window = 2016
        result = next_target(target, 0, 1, window=window)  # absurdly fast
        assert result == pytest.approx(target // 4, rel=0.001)
        result = next_target(target, 0, 10**12, window=window)  # absurdly slow
        assert result == pytest.approx(target * 4, rel=0.001)

    def test_never_easier_than_max_target(self):
        result = next_target(MAX_TARGET, 0, 10**12)
        assert result == MAX_TARGET


def test_difficulty_of_max_target_is_one():
    assert difficulty(MAX_TARGET) == 1.0
    assert difficulty(MAX_TARGET // 4) == pytest.approx(4.0)
