"""Tests for the script interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitcoin.script import (
    MAX_PUSH_SIZE,
    Op,
    Script,
    ScriptError,
    cast_to_bool,
    decode_num,
    encode_num,
    execute_script,
)


def run(elements, script_sig=()):
    return execute_script(Script(script_sig), Script(elements))


class TestSerialization:
    def test_roundtrip_simple(self):
        script = Script([Op.OP_DUP, b"\x01\x02", Op.OP_EQUAL])
        assert Script.parse(script.serialize()) == script

    def test_roundtrip_pushdata1(self):
        script = Script([b"\xaa" * 100])
        data = script.serialize()
        assert data[0] == Op.OP_PUSHDATA1
        assert Script.parse(data) == script

    def test_roundtrip_pushdata2(self):
        script = Script([b"\xbb" * 300])
        data = script.serialize()
        assert data[0] == Op.OP_PUSHDATA2
        assert Script.parse(data) == script

    def test_oversized_push_rejected(self):
        with pytest.raises(ScriptError):
            Script([b"\x00" * (MAX_PUSH_SIZE + 1)])

    def test_truncated_push_rejected(self):
        with pytest.raises(ScriptError):
            Script.parse(bytes([5, 1, 2]))

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ScriptError):
            Script.parse(bytes([0xFF]))

    @given(
        st.lists(
            st.one_of(
                st.sampled_from([Op.OP_DUP, Op.OP_ADD, Op.OP_EQUAL, Op.OP_1]),
                st.binary(min_size=1, max_size=80),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, elements):
        script = Script(elements)
        assert Script.parse(script.serialize()) == script


class TestNumbers:
    @given(st.integers(min_value=-(2**31) + 1, max_value=2**31 - 1))
    def test_num_roundtrip(self, n):
        assert decode_num(encode_num(n)) == n

    def test_zero_is_empty(self):
        assert encode_num(0) == b""
        assert decode_num(b"") == 0

    def test_negative_encoding(self):
        assert encode_num(-1) == b"\x81"
        assert decode_num(b"\x81") == -1

    def test_sign_byte_extension(self):
        # 0x80 magnitude needs an extra byte to avoid the sign bit.
        assert encode_num(128) == b"\x80\x00"
        assert encode_num(-128) == b"\x80\x80"

    def test_overflow_rejected(self):
        with pytest.raises(ScriptError):
            decode_num(b"\x01\x02\x03\x04\x05")

    def test_cast_to_bool(self):
        assert not cast_to_bool(b"")
        assert not cast_to_bool(b"\x00")
        assert not cast_to_bool(b"\x00\x80")  # negative zero
        assert cast_to_bool(b"\x01")
        assert cast_to_bool(b"\x00\x01")


class TestExecution:
    def test_trivial_true(self):
        assert run([Op.OP_1])

    def test_trivial_false(self):
        assert not run([Op.OP_0])

    def test_empty_script_fails(self):
        assert not run([])

    def test_arithmetic(self):
        assert run([Op.OP_2, Op.OP_3, Op.OP_ADD, Op.OP_5, Op.OP_NUMEQUAL])

    def test_sub_order(self):
        assert run([Op.OP_5, Op.OP_3, Op.OP_SUB, Op.OP_2, Op.OP_NUMEQUAL])

    def test_dup_equal(self):
        assert run([b"\x42", Op.OP_DUP, Op.OP_EQUAL])

    def test_equalverify_failure(self):
        assert not run([Op.OP_1, Op.OP_2, Op.OP_EQUALVERIFY, Op.OP_1])

    def test_if_else(self):
        assert run([Op.OP_1, Op.OP_IF, Op.OP_1, Op.OP_ELSE, Op.OP_0, Op.OP_ENDIF])
        assert not run([Op.OP_0, Op.OP_IF, Op.OP_1, Op.OP_ELSE, Op.OP_0, Op.OP_ENDIF])

    def test_notif(self):
        assert run([Op.OP_0, Op.OP_NOTIF, Op.OP_1, Op.OP_ENDIF])

    def test_nested_if(self):
        script = [
            Op.OP_1, Op.OP_IF,
            Op.OP_0, Op.OP_IF, Op.OP_0, Op.OP_ELSE, Op.OP_1, Op.OP_ENDIF,
            Op.OP_ENDIF,
        ]
        assert run(script)

    def test_unterminated_if_fails(self):
        assert not run([Op.OP_1, Op.OP_IF, Op.OP_1])

    def test_else_without_if_fails(self):
        assert not run([Op.OP_ELSE, Op.OP_1])

    def test_op_return_fails(self):
        assert not run([Op.OP_RETURN, Op.OP_1])

    def test_verify(self):
        assert run([Op.OP_1, Op.OP_VERIFY, Op.OP_1])
        assert not run([Op.OP_0, Op.OP_VERIFY, Op.OP_1])

    def test_stack_ops(self):
        assert run([Op.OP_1, Op.OP_2, Op.OP_SWAP, Op.OP_1, Op.OP_NUMEQUAL])
        assert run([Op.OP_1, Op.OP_2, Op.OP_DROP, Op.OP_1, Op.OP_NUMEQUAL])
        assert run([Op.OP_1, Op.OP_2, Op.OP_OVER, Op.OP_1, Op.OP_NUMEQUAL])
        assert run([Op.OP_7, Op.OP_DEPTH, Op.OP_1, Op.OP_NUMEQUAL])

    def test_pick_and_roll(self):
        # stack: 1 2 3; PICK(2) copies the 1.
        assert run([Op.OP_1, Op.OP_2, Op.OP_3, Op.OP_2, Op.OP_PICK,
                    Op.OP_1, Op.OP_NUMEQUAL])
        # ROLL moves it instead.
        assert run([Op.OP_1, Op.OP_2, Op.OP_3, Op.OP_2, Op.OP_ROLL,
                    Op.OP_1, Op.OP_NUMEQUAL])

    def test_pick_out_of_range(self):
        assert not run([Op.OP_1, Op.OP_5, Op.OP_PICK])

    def test_alt_stack(self):
        assert run([Op.OP_5, Op.OP_TOALTSTACK, Op.OP_1, Op.OP_DROP,
                    Op.OP_FROMALTSTACK, Op.OP_5, Op.OP_NUMEQUAL])

    def test_min_max_within(self):
        assert run([Op.OP_3, Op.OP_5, Op.OP_MIN, Op.OP_3, Op.OP_NUMEQUAL])
        assert run([Op.OP_3, Op.OP_5, Op.OP_MAX, Op.OP_5, Op.OP_NUMEQUAL])
        assert run([Op.OP_4, Op.OP_3, Op.OP_6, Op.OP_WITHIN])
        assert not run([Op.OP_6, Op.OP_3, Op.OP_6, Op.OP_WITHIN])

    def test_comparisons(self):
        assert run([Op.OP_2, Op.OP_3, Op.OP_LESSTHAN])
        assert run([Op.OP_3, Op.OP_2, Op.OP_GREATERTHAN])
        assert run([Op.OP_3, Op.OP_3, Op.OP_LESSTHANOREQUAL])
        assert run([Op.OP_3, Op.OP_3, Op.OP_GREATERTHANOREQUAL])

    def test_boolean_ops(self):
        assert run([Op.OP_1, Op.OP_1, Op.OP_BOOLAND])
        assert not run([Op.OP_1, Op.OP_0, Op.OP_BOOLAND])
        assert run([Op.OP_0, Op.OP_1, Op.OP_BOOLOR])
        assert run([Op.OP_0, Op.OP_NOT])

    def test_hash_opcodes(self):
        from repro.crypto.hashing import hash160, sha256, sha256d, ripemd160

        data = b"typecoin"
        assert run([data, Op.OP_SHA256, sha256(data), Op.OP_EQUAL])
        assert run([data, Op.OP_HASH160, hash160(data), Op.OP_EQUAL])
        assert run([data, Op.OP_HASH256, sha256d(data), Op.OP_EQUAL])
        assert run([data, Op.OP_RIPEMD160, ripemd160(data), Op.OP_EQUAL])

    def test_size(self):
        assert run([b"\x01\x02\x03", Op.OP_SIZE, Op.OP_3, Op.OP_NUMEQUAL,
                    Op.OP_VERIFY, Op.OP_DROP, Op.OP_1])

    def test_scriptsig_must_be_push_only(self):
        with pytest.raises(ScriptError):
            execute_script(Script([Op.OP_DUP]), Script([Op.OP_1]))

    def test_scriptsig_pushes_feed_pubkey_script(self):
        assert execute_script(Script([b"\x2a"]), Script([b"\x2a", Op.OP_EQUAL]))

    def test_pop_from_empty_stack_fails(self):
        assert not run([Op.OP_DUP])

    def test_checksig_without_checker_fails(self):
        assert not run([b"\x00" * 65, b"\x02" + b"\x11" * 32, Op.OP_CHECKSIG])

    def test_checksig_with_custom_checker(self):
        calls = []

        def checker(sig, pubkey):
            calls.append((sig, pubkey))
            return True

        ok = execute_script(
            Script([]),
            Script([b"sig-bytes", b"key-bytes", Op.OP_CHECKSIG]),
            checker,
        )
        assert ok
        assert calls == [(b"sig-bytes", b"key-bytes")]

    def test_checkmultisig_order_sensitivity(self):
        # Signatures must appear in key order: sig-for-k1 then sig-for-k2.
        def checker(sig, pubkey):
            return (sig, pubkey) in {(b"s1", b"k1"), (b"s2", b"k2")}

        good = Script([Op.OP_0, b"s1", b"s2"])
        bad = Script([Op.OP_0, b"s2", b"s1"])
        pubkey_script = Script([Op.OP_2, b"k1", b"k2", Op.OP_2, Op.OP_CHECKMULTISIG])
        assert execute_script(good, pubkey_script, checker)
        assert not execute_script(bad, pubkey_script, checker)

    def test_checkmultisig_1_of_2_with_bogus_key(self):
        # Typecoin's metadata embedding: one real key, one garbage key.
        def checker(sig, pubkey):
            return (sig, pubkey) == (b"real-sig", b"real-key")

        script_sig = Script([Op.OP_0, b"real-sig"])
        pubkey_script = Script(
            [Op.OP_1, b"real-key", b"metadata!", Op.OP_2, Op.OP_CHECKMULTISIG]
        )
        assert execute_script(script_sig, pubkey_script, checker)

    def test_script_repr_and_len(self):
        script = Script([Op.OP_DUP, b"\xab"])
        assert "OP_DUP" in repr(script)
        assert len(script) == 3


from repro.bitcoin.script import (
    MAX_OPS_PER_SCRIPT,
    MAX_STACK_SIZE,
    ExecutionBudget,
    ScriptResourceError,
    _Machine,
    _no_signatures,
    _run,
)


class TestExecutionBudget:
    """Resource limits raise the typed ScriptResourceError (satellite 3)."""

    def test_per_script_op_limit(self):
        ok_script = Script([Op.OP_NOP] * MAX_OPS_PER_SCRIPT)
        _run(ok_script, _Machine(), _no_signatures)  # exactly at the limit

        over = Script([Op.OP_NOP] * (MAX_OPS_PER_SCRIPT + 1))
        with pytest.raises(ScriptResourceError, match="op count limit"):
            _run(over, _Machine(), _no_signatures)

    def test_op_limit_is_per_script_not_cumulative(self):
        # 150 ops per script is fine twice over: the 201-op ceiling resets
        # between the two scripts even though the machine is shared.
        machine = _Machine()
        _run(Script([Op.OP_NOP] * 150), machine, _no_signatures)
        _run(Script([Op.OP_NOP] * 150), machine, _no_signatures)
        assert machine.budget.ops == 300

    def test_stack_size_limit(self):
        machine = _Machine(
            budget=ExecutionBudget(max_ops=10_000, max_pushes=10_000)
        )
        script = Script([Op.OP_1] + [Op.OP_DUP] * MAX_STACK_SIZE)
        with pytest.raises(ScriptResourceError, match="stack size limit"):
            _run(script, machine, _no_signatures)
        assert len(machine.stack) + len(machine.alt) == MAX_STACK_SIZE + 1

    def test_push_budget(self):
        machine = _Machine(budget=ExecutionBudget(max_pushes=5))
        with pytest.raises(ScriptResourceError, match="push budget"):
            _run(Script([Op.OP_1] * 6), machine, _no_signatures)
        assert machine.budget.pushes == 6

    def test_execute_script_fails_closed_on_exhaustion(self):
        # The public entry point treats resource exhaustion like any other
        # script failure: the spend is invalid, no exception escapes.
        sig = Script([Op.OP_1])
        pubkey = Script([Op.OP_NOP] * 300)
        assert execute_script(sig, pubkey) is False

    def test_resource_error_is_script_error(self):
        assert issubclass(ScriptResourceError, ScriptError)

    def test_budget_totals_accumulate_across_scripts(self):
        machine = _Machine()
        _run(Script([Op.OP_1, Op.OP_NOP]), machine, _no_signatures)
        _run(Script([Op.OP_2, Op.OP_NOP, Op.OP_NOP]), machine, _no_signatures)
        assert machine.budget.ops == 3
        assert machine.budget.pushes == 2
        assert machine.budget.script_ops == 2
