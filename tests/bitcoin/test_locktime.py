"""Tests for nLockTime finality (the native deadline mechanism of §8)."""

import dataclasses

import pytest

from repro.bitcoin.mempool import MempoolError
from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import (
    COIN,
    SEQUENCE_FINAL,
    Transaction,
    TxIn,
    TxOut,
)
from repro.bitcoin.validation import LOCKTIME_THRESHOLD, is_final
from repro.bitcoin.wallet import Wallet


@pytest.fixture
def funded():
    net = RegtestNetwork()
    alice = Wallet.from_seed(b"lt-alice")
    net.fund_wallet(alice)
    return net, alice


def locked_tx(net, alice, locktime, sequence=0):
    """A signed payment with the given locktime and input sequence."""
    spendable = alice.spendables(net.chain)[0]
    tx = Transaction(
        vin=[TxIn(spendable.outpoint, sequence=sequence)],
        vout=[TxOut(spendable.output.value - 100_000,
                    p2pkh_script(alice.key_hash))],
        locktime=locktime,
    )
    return alice.sign_all(tx, [spendable.output.script_pubkey])


class TestFinality:
    def test_zero_locktime_always_final(self):
        from repro.bitcoin.transaction import OutPoint

        tx = Transaction(
            [TxIn(OutPoint(b"\x01" * 32, 0), sequence=0)],
            [TxOut(1, p2pkh_script(b"\x00" * 20))],
            locktime=0,
        )
        assert is_final(tx, height=1, block_time=0)

    def test_height_locktime(self, funded):
        net, alice = funded
        tx = locked_tx(net, alice, locktime=200)
        assert not is_final(tx, height=150, block_time=0)
        assert not is_final(tx, height=200, block_time=0)
        assert is_final(tx, height=201, block_time=0)

    def test_time_locktime(self, funded):
        net, alice = funded
        deadline = LOCKTIME_THRESHOLD + 1_000
        tx = locked_tx(net, alice, locktime=deadline)
        assert not is_final(tx, height=10**6, block_time=deadline - 1)
        assert is_final(tx, height=0, block_time=deadline + 1)

    def test_final_sequences_disable_locktime(self, funded):
        net, alice = funded
        tx = locked_tx(net, alice, locktime=10**6, sequence=SEQUENCE_FINAL)
        assert is_final(tx, height=1, block_time=0)


class TestEnforcement:
    def test_mempool_rejects_immature(self, funded):
        net, alice = funded
        tx = locked_tx(net, alice, locktime=net.chain.height + 100)
        with pytest.raises(MempoolError, match="not final"):
            net.send(tx)

    def test_mempool_accepts_after_deadline(self, funded):
        net, alice = funded
        target = net.chain.height + 5
        tx = locked_tx(net, alice, locktime=target)
        net.confirm(6)  # advance past the height lock
        net.send(tx)
        net.confirm(1)
        assert net.confirmations(tx.txid) == 1

    def test_block_with_nonfinal_tx_rejected(self, funded):
        """Even a miner cannot include a non-final transaction."""
        from repro.bitcoin.block import build_block
        from repro.bitcoin.miner import Miner
        from repro.bitcoin.validation import ValidationError

        net, alice = funded
        tx = locked_tx(net, alice, locktime=net.chain.height + 100)
        miner = Miner(net.chain, alice.key_hash)
        coinbase = miner.make_coinbase(net.chain.height + 1, fees=100_000)
        template = build_block(
            net.chain.tip.block.hash,
            [coinbase, tx],
            timestamp=net.chain.median_time_past() + 1,
            bits=net.chain.required_bits(net.chain.tip.block.hash),
        )
        block = miner.grind(template)
        with pytest.raises(ValidationError, match="non-final"):
            net.chain.add_block(block)

    def test_refund_contract_pattern(self, funded):
        """The §8 pattern: a pre-signed refund that only becomes valid
        after a deadline — 'Bitcoin can do it natively'."""
        net, alice = funded
        refund_height = net.chain.height + 3
        refund = locked_tx(net, alice, locktime=refund_height)
        # Too early: the network refuses the refund.
        with pytest.raises(MempoolError):
            net.send(refund)
        # After the deadline it goes through unchanged.
        net.confirm(4)
        net.send(refund)
        net.confirm(1)
        assert net.confirmations(refund.txid) == 1
