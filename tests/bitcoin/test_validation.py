"""Tests for the four transaction-validity rules of paper §2."""

import pytest

from repro.bitcoin.script import Script
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import COIN, MAX_MONEY, OutPoint, Transaction, TxIn, TxOut
from repro.bitcoin.utxo import UTXOEntry, UTXOSet
from repro.bitcoin.validation import (
    ValidationError,
    check_transaction,
    check_tx_inputs,
)
from repro.crypto.keys import PrivateKey
from repro.bitcoin.wallet import Wallet

ALICE = PrivateKey.from_seed(b"alice-validation")
BOB = PrivateKey.from_seed(b"bob-validation")


def utxo_with(value, key=ALICE, height=0):
    utxos = UTXOSet()
    outpoint = OutPoint(b"\x55" * 32, 0)
    utxos.add(
        outpoint,
        UTXOEntry(TxOut(value, p2pkh_script(key.public.key_hash)), height, False),
    )
    return utxos, outpoint


def spend(outpoint, value, key=ALICE, sign=True):
    tx = Transaction(
        vin=[TxIn(outpoint)],
        vout=[TxOut(value, p2pkh_script(BOB.public.key_hash))],
    )
    if sign:
        wallet = Wallet([key])
        tx = wallet.sign_input(tx, 0, p2pkh_script(key.public.key_hash))
    return tx


class TestStructural:
    def test_no_inputs_rejected(self):
        tx = Transaction([], [TxOut(1, Script())])
        with pytest.raises(ValidationError, match="no inputs"):
            check_transaction(tx)

    def test_no_outputs_rejected(self):
        tx = Transaction([TxIn(OutPoint(b"\x01" * 32, 0))], [])
        with pytest.raises(ValidationError, match="no outputs"):
            check_transaction(tx)

    def test_negative_value_rejected(self):
        tx = Transaction(
            [TxIn(OutPoint(b"\x01" * 32, 0))], [TxOut(-1, Script())]
        )
        with pytest.raises(ValidationError, match="negative"):
            check_transaction(tx)

    def test_excessive_value_rejected(self):
        tx = Transaction(
            [TxIn(OutPoint(b"\x01" * 32, 0))], [TxOut(MAX_MONEY + 1, Script())]
        )
        with pytest.raises(ValidationError, match="max money"):
            check_transaction(tx)

    def test_duplicate_inputs_rejected(self):
        """Rule 3 (within a transaction): inputs must be distinct."""
        outpoint = OutPoint(b"\x01" * 32, 0)
        tx = Transaction([TxIn(outpoint), TxIn(outpoint)], [TxOut(1, Script())])
        with pytest.raises(ValidationError, match="duplicate"):
            check_transaction(tx)

    def test_null_prevout_only_in_coinbase(self):
        tx = Transaction(
            [TxIn(OutPoint.null()), TxIn(OutPoint(b"\x01" * 32, 0))],
            [TxOut(1, Script())],
        )
        with pytest.raises(ValidationError, match="null prevout"):
            check_transaction(tx)


class TestInputs:
    def test_valid_spend(self):
        utxos, outpoint = utxo_with(10 * COIN)
        result = check_tx_inputs(spend(outpoint, 9 * COIN), utxos, height=1)
        assert result.fee == COIN

    def test_missing_input_rejected(self):
        """Rule 3: inputs must identify unspent outputs."""
        utxos = UTXOSet()
        tx = spend(OutPoint(b"\x55" * 32, 0), 1)
        with pytest.raises(ValidationError, match="missing or spent"):
            check_tx_inputs(tx, utxos, height=1)

    def test_outputs_exceeding_inputs_rejected(self):
        """Rule 1: value out must not exceed value in."""
        utxos, outpoint = utxo_with(5 * COIN)
        with pytest.raises(ValidationError, match="exceed"):
            check_tx_inputs(spend(outpoint, 6 * COIN), utxos, height=1)

    def test_wrong_key_rejected(self):
        """Rule 4: the signature must match the spent output's key."""
        utxos, outpoint = utxo_with(COIN)
        tx = spend(outpoint, COIN // 2, key=ALICE, sign=False)
        # Bob signs, but the output demands Alice's key.
        bob_wallet = Wallet([BOB])
        tx = bob_wallet.sign_input(tx, 0, p2pkh_script(BOB.public.key_hash))
        with pytest.raises(ValidationError, match="script validation"):
            check_tx_inputs(tx, utxos, height=1)

    def test_tampered_transaction_rejected(self):
        """Rule 4: the signature covers the full transaction."""
        utxos, outpoint = utxo_with(COIN)
        tx = spend(outpoint, COIN // 2)
        # Redirect the output after signing.
        tampered = Transaction(
            tx.vin, [TxOut(COIN // 2, p2pkh_script(b"\x66" * 20))]
        )
        with pytest.raises(ValidationError, match="script validation"):
            check_tx_inputs(tampered, utxos, height=1)

    def test_immature_coinbase_rejected(self):
        utxos = UTXOSet()
        outpoint = OutPoint(b"\x55" * 32, 0)
        utxos.add(
            outpoint,
            UTXOEntry(
                TxOut(COIN, p2pkh_script(ALICE.public.key_hash)), 10, True
            ),
        )
        with pytest.raises(ValidationError, match="premature"):
            check_tx_inputs(spend(outpoint, COIN // 2), utxos, height=50)
        # Mature at height >= 110.
        assert check_tx_inputs(spend(outpoint, COIN // 2), utxos, height=110)

    def test_coinbase_cannot_be_checked_as_spend(self):
        coinbase = Transaction(
            [TxIn(OutPoint.null(), Script([b"\x00"]))],
            [TxOut(1, Script())],
        )
        with pytest.raises(ValidationError):
            check_tx_inputs(coinbase, UTXOSet(), height=1)

    def test_skip_script_verification_flag(self):
        utxos, outpoint = utxo_with(COIN)
        tx = spend(outpoint, COIN // 2, sign=False)
        result = check_tx_inputs(tx, utxos, height=1, verify_scripts=False)
        assert result.fee == COIN - COIN // 2
