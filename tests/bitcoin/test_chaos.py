"""Chaos-layer tests: faulty links, partitions, crash/recovery, sync,
misbehavior scoring, and the seeded scenario runner.

The perfect-network simulator (test_network.py) shows convergence when
nothing goes wrong; these tests show it *despite* loss, duplication,
partitions, crashes and an active adversary — and, just as important,
that with no faults configured the chaos machinery changes nothing:
the final class pins the A1 ablation results to the rows of the newest
committed BENCH_pr*.json recording, byte for byte.
"""

import importlib.util
import json
import random
from pathlib import Path

import pytest

from repro import obs
from repro.bitcoin.block import build_block
from repro.bitcoin.chain import Blockchain, ChainParams, block_subsidy
from repro.bitcoin.faults import (
    BYZANTINE_BEHAVIORS,
    ByzantinePeer,
    ChaosProfile,
    LinkPolicy,
    PROFILES,
    Partition,
    converged,
    install_link_policy,
    run_chaos,
    utxo_sets_match,
)
from repro.bitcoin.network import (
    DEFAULT_BAN_THRESHOLD,
    POINTS_INVALID_BLOCK,
    POINTS_STALE_TX,
    Node,
    PoissonMiner,
    Simulation,
    build_network,
)
from repro.bitcoin.pow import block_work, target_to_bits
from repro.bitcoin.script import Script
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.sync import SyncConfig, start_sync
from repro.bitcoin.transaction import OutPoint, Transaction, TxIn, TxOut

PARAMS = ChainParams(max_target=2**252, retarget_window=2**31, require_pow=False)
TOTAL_RATE = block_work(target_to_bits(2**252)) / 600.0


def make_nodes(count, seed=1, latency=2.0, connect=True):
    sim = Simulation(seed=seed)
    if connect:
        return sim, build_network(sim, count, latency=latency)
    return sim, [Node(f"node{i}", sim, PARAMS, latency) for i in range(count)]


def mine_to(node, height, miner_id=1, rate=TOTAL_RATE):
    """Grow ``node``'s chain to ``height`` then stop the miner."""
    miner = PoissonMiner(node, rate, miner_id=miner_id)
    miner.start()
    node.sim.run_while(lambda: node.chain.height < height, limit=1e12)
    miner.enabled = False
    return miner


def coinbase_for(height, key_hash=b"\x33" * 20, nonce=0):
    tag = Script([height.to_bytes(4, "little"), nonce.to_bytes(4, "little")])
    return Transaction(
        vin=[TxIn(OutPoint.null(), tag)],
        vout=[TxOut(block_subsidy(height), p2pkh_script(key_hash))],
    )


def invalid_block_on(chain, nonce=0):
    """A block extending the tip with consensus-invalid difficulty bits."""
    tip = chain.tip
    return build_block(
        prev_hash=tip.block.hash,
        txs=[coinbase_for(tip.height + 1, nonce=nonce)],
        timestamp=chain.median_time_past() + 1,
        bits=chain.required_bits(tip.block.hash) + 1,
    )


def orphan_block(nonce=0):
    """A block whose parent no one has."""
    fake_parent = bytes([nonce + 1]) * 32
    return build_block(
        prev_hash=fake_parent,
        txs=[coinbase_for(1, nonce=nonce)],
        timestamp=1_300_000_000,
        bits=target_to_bits(2**252),
    )


@pytest.fixture
def obs_on():
    """Observability enabled against private state, restored afterwards."""
    was_enabled = obs.ENABLED
    saved_registry = obs.set_registry(obs.Registry())
    saved_tracer = obs.set_tracer(obs.Tracer())
    saved_events = obs.set_event_log(obs.EventLog())
    obs.enable()
    yield
    obs.set_registry(saved_registry)
    obs.set_tracer(saved_tracer)
    obs.set_event_log(saved_events)
    obs.ENABLED = was_enabled


def event_kinds():
    return [e["kind"] for e in obs.events().snapshot()]


class TestLinkPolicy:
    def test_plan_is_deterministic(self):
        policy = LinkPolicy(drop=0.2, duplicate=0.2, reorder=0.3, spike=0.2)
        plans_a = [policy.plan(random.Random(5), 2.0) for _ in range(1)]
        plans_b = [policy.plan(random.Random(5), 2.0) for _ in range(1)]
        assert plans_a == plans_b

    def test_certain_drop(self):
        plan = LinkPolicy(drop=1.0).plan(random.Random(0), 2.0)
        assert plan.dropped
        assert plan.delays == ()

    def test_certain_duplicate(self):
        plan = LinkPolicy(duplicate=1.0).plan(random.Random(0), 2.0)
        assert plan.duplicated
        assert len(plan.delays) == 2
        assert plan.delays[0] == 2.0  # original delivery keeps base delay
        assert plan.delays[1] >= plan.delays[0]  # echo trails the original

    def test_zero_probability_faults_draw_no_randomness(self):
        # A policy with every fault at probability zero must not consume
        # RNG draws — this is what keeps fault-free runs bit-identical.
        rng = random.Random(9)
        state = rng.getstate()
        plan = LinkPolicy().plan(rng, 3.5)
        assert rng.getstate() == state
        assert plan.delays == (3.5,)
        assert not plan.dropped and not plan.duplicated

    def test_null_policy_preserves_seeded_stream(self):
        """An installed all-zero policy yields the same chain as no policy."""

        def run(install):
            sim, nodes = make_nodes(4, seed=11)
            if install:
                install_link_policy(nodes, LinkPolicy())
            miner = PoissonMiner(nodes[0], TOTAL_RATE, miner_id=1)
            miner.start()
            sim.run_until(4 * 3600)
            return nodes[0].chain.tip.block.hash

        assert run(False) == run(True)

    def test_install_counts_directed_edges(self):
        _, nodes = make_nodes(6)
        edges = install_link_policy(nodes, LinkPolicy(drop=0.5))
        # Ring + chords on 6 nodes: 9 undirected edges, 18 directed.
        assert edges == 18
        cleared = install_link_policy(nodes, None)
        assert cleared == edges

    def test_dropped_messages_stall_gossip(self):
        sim, nodes = make_nodes(2, seed=3)
        install_link_policy(nodes, LinkPolicy(drop=1.0))
        mine_to(nodes[0], 3)
        sim.run_until(sim.now + 3600)
        assert nodes[0].chain.height >= 3
        assert nodes[1].chain.height == 0  # everything was dropped

    def test_fault_events_recorded(self, obs_on):
        sim, nodes = make_nodes(2, seed=4)
        install_link_policy(nodes, LinkPolicy(drop=0.5, duplicate=0.4))
        mine_to(nodes[0], 5)
        sim.run_until(sim.now + 3600)
        reg = obs.registry()
        dropped = reg.counter("fault.msgs_dropped_total").value
        duplicated = reg.counter("fault.msgs_duplicated_total").value
        assert dropped > 0 and duplicated > 0
        kinds = set(event_kinds())
        assert "fault.drop" in kinds and "fault.duplicate" in kinds


class TestConnectDisconnect:
    def test_connect_is_idempotent(self):
        _, (a, b) = make_nodes(2, connect=False)
        assert a.connect(b) is True
        assert a.connect(b) is False
        assert b.connect(a) is False
        assert a.peers == [b] and b.peers == [a]

    def test_connect_self_refused(self):
        _, (a,) = make_nodes(1, connect=False)
        assert a.connect(a) is False
        assert a.peers == []

    def test_disconnect_inverse(self):
        _, (a, b) = make_nodes(2, connect=False)
        a.connect(b)
        assert a.disconnect(b) is True
        assert a.disconnect(b) is False
        assert a.peers == [] and b.peers == []

    def test_disconnect_aborts_sync(self):
        sim, (a, b) = make_nodes(2, connect=False)
        a.connect(b)
        mine_to(b, 5, miner_id=2)
        session = start_sync(a, b)
        assert session is not None and not session.done
        a.disconnect(b)
        assert session.done and not session.succeeded
        assert a._syncs == {}

    def test_banned_peer_cannot_reconnect(self):
        _, (a, b) = make_nodes(2, connect=False)
        a.connect(b)
        a.penalize(b, DEFAULT_BAN_THRESHOLD, "test")
        assert a.is_banned(b)
        assert b not in a.peers  # ban disconnects
        assert a.connect(b) is False
        assert b.connect(a) is False


class TestBoundedPools:
    def test_seen_tx_set_is_bounded(self):
        _, (node,) = make_nodes(1, connect=False)
        node.seen_limit = 5
        for i in range(12):
            tx = Transaction(
                vin=[TxIn(OutPoint(bytes([i + 1]) * 32, 0))],
                vout=[TxOut(50_000, p2pkh_script(b"\x11" * 20))],
            )
            node.submit_transaction(tx)
        assert len(node._seen_txs) <= 5

    def test_orphan_pool_is_bounded(self):
        _, (node,) = make_nodes(1, connect=False)
        node.orphan_limit = 3
        for i in range(8):
            node.submit_block(orphan_block(nonce=i))
        assert len(node._orphans) <= 3
        # The by-parent index shrinks with the pool.
        indexed = sum(len(v) for v in node._orphans_by_parent.values())
        assert indexed == len(node._orphans)

    def test_eviction_is_observable(self, obs_on):
        _, (node,) = make_nodes(1, connect=False)
        node.orphan_limit = 2
        for i in range(5):
            node.submit_block(orphan_block(nonce=i))
        reg = obs.registry()
        assert reg.counter("mempool.orphans_evicted_total").value == 3
        assert event_kinds().count("orphan.evicted") == 3

    def test_orphan_still_adopted_after_pressure(self):
        """A parked orphan that survives eviction connects when its parent
        arrives."""
        sim, (a, b) = make_nodes(2, connect=False)
        mine_to(a, 2)
        blocks = a.chain.export_active()
        b.submit_block(blocks[1])  # child first: parked as orphan
        assert b.chain.height == 0 and len(b._orphans) == 1
        b.submit_block(blocks[0])  # parent arrives: both connect
        assert b.chain.height == 2
        assert b._orphans == {}


class TestMisbehavior:
    def test_invalid_block_penalizes_and_bans(self):
        _, (victim, evil) = make_nodes(2, connect=False)
        victim.connect(evil)
        victim.submit_block(invalid_block_on(victim.chain, nonce=0), origin=evil)
        assert victim.misbehavior_score(evil) == POINTS_INVALID_BLOCK
        assert not victim.is_banned(evil)
        victim.submit_block(invalid_block_on(victim.chain, nonce=1), origin=evil)
        assert victim.misbehavior_score(evil) == 2 * POINTS_INVALID_BLOCK
        assert victim.is_banned(evil)
        assert evil not in victim.peers

    def test_locally_produced_failures_not_penalized(self):
        _, (node,) = make_nodes(1, connect=False)
        node.submit_block(invalid_block_on(node.chain))  # origin=None
        assert node._misbehavior == {}

    def test_missing_input_tx_costs_token_points(self):
        _, (victim, peer) = make_nodes(2, connect=False)
        victim.connect(peer)
        tx = Transaction(
            vin=[TxIn(OutPoint(b"\xaa" * 32, 0))],
            vout=[TxOut(50_000, p2pkh_script(b"\x11" * 20))],
        )
        assert victim.submit_transaction(tx, origin=peer) is False
        assert victim.misbehavior_score(peer) == POINTS_STALE_TX

    def test_policy_refusal_not_penalized(self):
        _, (victim, peer) = make_nodes(2, connect=False)
        victim.connect(peer)
        nonstandard = Transaction(
            vin=[TxIn(OutPoint(b"\xbb" * 32, 0))],
            vout=[TxOut(50_000, Script([b"arbitrary junk"]))],
        )
        assert victim.submit_transaction(nonstandard, origin=peer) is False
        assert victim.misbehavior_score(peer) == 0

    def test_rejected_block_emits_event(self, obs_on):
        _, (victim, evil) = make_nodes(2, connect=False)
        victim.connect(evil)
        block = invalid_block_on(victim.chain)
        victim.submit_block(block, origin=evil)
        reg = obs.registry()
        assert reg.counter("chain.blocks_rejected_total").value == 1
        rejected = [
            e for e in obs.events().snapshot() if e["kind"] == "block.rejected"
        ]
        assert len(rejected) == 1
        assert rejected[0]["data"]["hash"] == block.hash.hex()
        assert "peer.misbehavior" in event_kinds()


class TestCrashRestart:
    def setup_pair(self, seed=6, height=8):
        sim, (a, b) = make_nodes(2, seed=seed, connect=False)
        a.connect(b)
        miner = mine_to(a, height)
        sim.run_until(sim.now + 600)  # let gossip finish
        assert b.chain.height == a.chain.height
        return sim, a, b, miner

    def test_crash_severs_and_forgets(self):
        sim, a, b, _ = self.setup_pair()
        b.submit_block(orphan_block())
        b.crash()
        assert not b.alive
        assert b.peers == [] and a.peers == []
        assert len(b.mempool) == 0
        assert b._orphans == {} and b._seen_txs == {}
        assert b.crash() is None  # idempotent

    def test_deliveries_to_dead_node_are_lost(self):
        sim, a, b, miner = self.setup_pair()
        b.crash()
        height_at_crash = b.chain.height
        miner.enabled = True
        sim.run_while(lambda: a.chain.height < 12, limit=1e12)
        assert b.chain.height == height_at_crash

    def test_restart_with_persisted_chain_resyncs(self):
        sim, a, b, miner = self.setup_pair()
        b.crash()
        miner.enabled = True
        sim.run_while(lambda: a.chain.height < 12, limit=1e12)
        miner.enabled = False
        b.restart(persist_chain=True)
        assert b.alive
        assert b.chain.height >= 8  # the "disk" survived
        assert a in b.peers  # reconnected to pre-crash peers
        sim.run_until(sim.now + 7200)
        assert b.chain.tip.block.hash == a.chain.tip.block.hash

    def test_restart_without_persistence_redownloads(self):
        sim, a, b, miner = self.setup_pair()
        b.crash()
        b.restart(persist_chain=False)
        assert b.chain.height == 0  # lost its disk
        sim.run_until(sim.now + 7200)
        assert b.chain.tip.block.hash == a.chain.tip.block.hash

    def test_restart_emits_events(self, obs_on):
        sim, a, b, _ = self.setup_pair(seed=8)
        b.crash()
        b.restart()
        reg = obs.registry()
        assert reg.counter("fault.crashes_total").value == 1
        assert reg.counter("fault.restarts_total").value == 1
        kinds = event_kinds()
        assert "fault.crash" in kinds and "fault.restart" in kinds


class TestChainSyncHelpers:
    def test_locator_shape(self):
        sim, (node,) = make_nodes(1, connect=False)
        mine_to(node, 40)
        locator = node.chain.locator()
        assert locator[0] == node.chain.tip.block.hash
        assert locator[-1] == node.chain.genesis.hash
        assert len(locator) < 40  # sparse toward genesis
        assert all(node.chain.has_block(h) for h in locator)

    def test_hashes_after_serves_whats_missing(self):
        sim, (ahead, behind) = make_nodes(2, connect=False)
        mine_to(ahead, 10)
        hashes = ahead.chain.hashes_after(behind.chain.locator(), limit=2000)
        assert len(hashes) == 10
        assert hashes[-1] == ahead.chain.tip.block.hash
        # Equal chains have nothing to serve.
        assert ahead.chain.hashes_after(ahead.chain.locator(), 2000) == []

    def test_hashes_after_respects_limit(self):
        sim, (ahead, behind) = make_nodes(2, connect=False)
        mine_to(ahead, 10)
        hashes = ahead.chain.hashes_after(behind.chain.locator(), limit=4)
        assert len(hashes) == 4

    def test_export_active_replays_to_same_tip(self):
        sim, (node,) = make_nodes(1, connect=False)
        mine_to(node, 6)
        replayed = Blockchain(PARAMS)
        for block in node.chain.export_active():
            replayed.add_block(block)
        assert replayed.tip.block.hash == node.chain.tip.block.hash


class TestSync:
    def test_catch_up_from_scratch(self):
        sim, (behind, ahead) = make_nodes(2, connect=False)
        mine_to(ahead, 15, miner_id=2)  # mined in isolation: no gossip
        behind.connect(ahead)
        session = start_sync(behind, ahead)
        sim.run_until(sim.now + 3600)
        assert session.done and session.succeeded
        assert session.blocks_fetched == 15
        assert behind.chain.tip.block.hash == ahead.chain.tip.block.hash

    def test_one_session_per_pair(self):
        sim, (behind, ahead) = make_nodes(2, connect=False)
        behind.connect(ahead)
        mine_to(ahead, 5, miner_id=2)
        first = start_sync(behind, ahead)
        assert first is not None
        assert start_sync(behind, ahead) is None  # collapsed into `first`

    def test_sync_survives_lossy_link(self, obs_on):
        sim, (behind, ahead) = make_nodes(2, seed=13, connect=False)
        mine_to(ahead, 12, miner_id=2)
        behind.connect(ahead)
        lossy = LinkPolicy(drop=0.3)
        behind.set_link_policy(ahead, lossy)
        ahead.set_link_policy(behind, lossy)
        session = start_sync(behind, ahead)
        sim.run_until(sim.now + 48 * 3600)
        assert session.done and session.succeeded
        assert behind.chain.tip.block.hash == ahead.chain.tip.block.hash
        # 30% loss on both legs: some request had to be retried.
        assert obs.registry().counter("sync.retries_total").value > 0

    def test_sync_against_dead_peer_fails(self, obs_on):
        sim, (behind, ahead) = make_nodes(2, connect=False)
        behind.connect(ahead)
        mine_to(ahead, 5, miner_id=2)
        ahead.alive = False
        config = SyncConfig(timeout=10.0, max_retries=2)
        session = start_sync(behind, ahead, config=config)
        sim.run_until(sim.now + 3600)
        assert session.done and not session.succeeded
        kinds = event_kinds()
        assert "sync.timeout" in kinds and "sync.failed" in kinds
        ahead.alive = True

    def test_sync_events_tell_the_story(self, obs_on):
        sim, (behind, ahead) = make_nodes(2, connect=False)
        mine_to(ahead, 4, miner_id=2)
        behind.connect(ahead)
        start_sync(behind, ahead, reason="test")
        sim.run_until(sim.now + 3600)
        kinds = event_kinds()
        assert kinds.count("sync.started") == 1
        assert kinds.count("sync.completed") == 1
        assert "sync.headers" in kinds and "sync.request" in kinds
        assert obs.registry().counter("sync.blocks_fetched_total").value == 4


class TestPartitionHeal:
    def test_reorg_across_heal_converges_without_utxo_divergence(self):
        """Satellite (d): two isolated miner groups diverge, heal, and every
        node converges on the most-work tip with identical UTXO sets."""
        sim, nodes = make_nodes(6, seed=21)
        group_a, group_b = nodes[:3], nodes[3:]
        # Asymmetric hashrate so one branch clearly out-works the other.
        miner_a = PoissonMiner(group_a[0], TOTAL_RATE * 0.6, miner_id=1)
        miner_b = PoissonMiner(group_b[0], TOTAL_RATE * 0.4, miner_id=2)
        miner_a.start()
        miner_b.start()

        partition = Partition(sim, group_a, group_b)
        severed = partition.begin()
        assert severed > 0
        sim.run_until(8 * 3600)

        tips_before_heal = {n.chain.tip.block.hash for n in nodes}
        assert len(tips_before_heal) == 2  # genuinely divergent histories
        loser_tip = min(
            (n.chain.tip for n in (group_a[0], group_b[0])),
            key=lambda entry: entry.chain_work,
        )

        healed = partition.heal()
        assert healed == severed
        sim.run_while(lambda: not converged(nodes), limit=sim.now + 8 * 3600)

        assert converged(nodes)
        tip = nodes[0].chain.tip
        assert tip.chain_work >= loser_tip.chain_work  # most-work rule won
        assert utxo_sets_match(nodes)
        # The lighter branch was reorged away everywhere.
        assert tip.block.hash != loser_tip.block.hash

    def test_mempools_revalidated_after_heal(self):
        sim, nodes = make_nodes(4, seed=22)
        partition = Partition(sim, nodes[:2], nodes[2:])
        partition.begin()
        miner = PoissonMiner(nodes[0], TOTAL_RATE, miner_id=1)
        miner.start()
        sim.run_until(4 * 3600)
        partition.heal()
        sim.run_while(lambda: not converged(nodes), limit=sim.now + 4 * 3600)
        assert converged(nodes)
        # Nothing pending contradicts the converged chain state.
        for node in nodes:
            assert not node.mempool.revalidate()

    def test_begin_and_heal_are_idempotent(self):
        sim, nodes = make_nodes(4, seed=23)
        partition = Partition(sim, nodes[:2], nodes[2:])
        assert partition.begin() > 0
        assert partition.begin() == 0
        assert partition.heal() > 0
        assert partition.heal() == 0

    def test_schedule_validates_ordering(self):
        sim, nodes = make_nodes(4)
        partition = Partition(sim, nodes[:2], nodes[2:])
        with pytest.raises(ValueError):
            partition.schedule(at=100.0, heal_at=100.0)

    def test_partition_events(self, obs_on):
        sim, nodes = make_nodes(4, seed=24)
        partition = Partition(sim, nodes[:2], nodes[2:])
        partition.begin()
        partition.heal()
        kinds = event_kinds()
        assert "fault.partition" in kinds and "fault.heal" in kinds


class TestByzantinePeer:
    def test_unknown_behavior_rejected(self):
        _, (node,) = make_nodes(1, connect=False)
        with pytest.raises(ValueError):
            ByzantinePeer(node, behaviors=("invalid_block", "griefing"))
        with pytest.raises(ValueError):
            ByzantinePeer(node, behaviors=())

    def test_invalid_block_attacker_gets_banned(self):
        sim, nodes = make_nodes(4, seed=31)
        byz = ByzantinePeer(
            nodes[-1], behaviors=("invalid_block",), interval=600.0
        )
        byz.start()
        miner = PoissonMiner(nodes[0], TOTAL_RATE, miner_id=1)
        miner.start()
        sim.run_until(12 * 3600)
        banned = byz.banned_by(nodes[:-1])
        # Every direct honest peer of the adversary bans it (two invalid
        # blocks cross the threshold); non-neighbors never hear from it.
        direct = [n.name for n in nodes[:-1] if byz.node.name in
                  {p.name for p in n.peers} or n.is_banned(byz.node)]
        assert banned  # someone banned it
        assert all(name in banned for name in direct)
        # Once every neighbor bans it the node has no peers and the
        # attack loop idles — exactly two invalid blocks sufficed.
        assert byz.attacks_sent["invalid_block"] >= 2

    def test_orphan_spam_is_bounded(self):
        sim, nodes = make_nodes(4, seed=32)
        for node in nodes:
            node.orphan_limit = 8
        byz = ByzantinePeer(
            nodes[-1], behaviors=("orphan_spam",), interval=600.0
        )
        byz.start()
        sim.run_until(24 * 3600)
        assert byz.attacks_sent["orphan_spam"] > 10
        for node in nodes[:-1]:
            assert len(node._orphans) <= 8

    def test_stale_fork_does_not_reorg_or_penalize(self):
        sim, nodes = make_nodes(4, seed=33)
        miner = PoissonMiner(nodes[0], TOTAL_RATE, miner_id=1)
        miner.start()
        sim.run_while(lambda: nodes[0].chain.height < 10, limit=1e12)
        byz = ByzantinePeer(
            nodes[-1], behaviors=("stale_fork",), interval=600.0
        )
        byz.start()
        sim.run_until(sim.now + 6 * 3600)
        assert byz.attacks_sent["stale_fork"] > 0
        for node in nodes[:-1]:
            assert node.misbehavior_score(byz.node) == 0
            assert not node.is_banned(byz.node)


class TestChaosScenarios:
    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_profile_converges_with_consistent_state(self, name):
        result = run_chaos(PROFILES[name], seed=7)
        assert result.converged, f"{name} failed to converge: {result}"
        assert result.utxo_consistent
        assert result.height > 0

    def test_acceptance_scenario_is_deterministic(self):
        first = run_chaos(PROFILES["inferno"], seed=7)
        second = run_chaos(PROFILES["inferno"], seed=7)
        assert first.tip == second.tip
        assert first.events_processed == second.events_processed
        assert first.height == second.height

    def test_different_seeds_differ(self):
        assert run_chaos(PROFILES["lossy"], seed=1).tip != run_chaos(
            PROFILES["lossy"], seed=2
        ).tip

    def test_byzantine_profile_bans_the_adversary(self):
        result = run_chaos(PROFILES["byzantine"], seed=7)
        assert result.byzantine_banned_by  # neighbors cut it off

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            run_chaos(ChaosProfile(name="bad", partition_at=100.0))
        with pytest.raises(ValueError):
            run_chaos(ChaosProfile(name="bad", crash_at=100.0))


def newest_a1_baseline_rows(root: Path) -> "list | None":
    """The a1_fork_rate rows of the newest committed BENCH_pr*.json.

    The pin anchors to the *newest* recording rather than a fixed file:
    a deliberate protocol change (e.g. PR 10's relay echo-to-origin
    bugfix) shifts every seeded RNG stream and is re-recorded, while
    accidental drift against the newest baseline still fails loudly.
    """
    best_rows, best_n = None, -1
    for path in root.glob("BENCH_pr*.json"):
        try:
            n = int(path.stem.removeprefix("BENCH_pr"))
        except ValueError:
            continue
        try:
            data = json.loads(path.read_text())
        except ValueError:
            continue
        rows = (
            data.get("experiments", {})
            .get("a1_fork_rate", {})
            .get("benches", {})
            .get("bench_a1_fork_rate_vs_latency", {})
            .get("extra_info", {})
            .get("rows")
        )
        if rows and n > best_n:
            best_rows, best_n = rows, n
    return best_rows


class TestNoBehaviorChange:
    """With no faults configured the chaos machinery must be invisible:
    the A1 ablation reproduces the newest recorded baseline rows."""

    def test_a1_rows_match_recorded_baseline(self):
        root = Path(__file__).resolve().parents[2]
        rows = newest_a1_baseline_rows(root)
        if rows is None:
            pytest.skip("no recorded baseline in this checkout")

        spec = importlib.util.spec_from_file_location(
            "bench_a1_fork_rate", root / "benchmarks" / "bench_a1_fork_rate.py"
        )
        bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench)

        for row in rows:
            fresh = bench.run_with_latency(row["latency"])
            assert fresh["found"] == row["found"]
            assert fresh["height"] == row["height"]
            assert fresh["orphan_rate"] == pytest.approx(row["orphan_rate"])
