"""BIP 152-style compact block relay (repro.bitcoin.compact + network).

Covers the data plane (SipHash vectors, short ids, reconstruction) and
the recovery state machine end to end on seeded simulations: warm-mempool
hits, getblocktxn round-trips for misses, short-id collision fallback to
the full block, the timeout ladder under total message loss, withheld-
data penalization of an adversary, and the opt-out purity differential
(compact on vs off must be bit-identical on tx-free relay).
"""

from types import SimpleNamespace

import pytest

from repro.bitcoin import compact as cmod
from repro.bitcoin.chain import ChainParams
from repro.bitcoin.compact import (
    CompactBlock,
    MalformedCompactError,
    PrefilledTransaction,
    finalize,
    reconstruct,
    short_id_key,
    short_txid,
    siphash24,
)
from repro.bitcoin.faults import ByzantinePeer, LinkPolicy
from repro.bitcoin.miner import Miner
from repro.bitcoin.network import (
    COMPACT_MAX_ATTEMPTS,
    COMPACT_TXN_TIMEOUT,
    POINTS_BAD_COMPACT,
    Node,
    PoissonMiner,
    Simulation,
    build_network,
)
from repro.bitcoin.population import fund_wallets, sim_chain_params
from repro.bitcoin.pow import block_work, target_to_bits
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import OutPoint, Transaction, TxIn, TxOut
from repro.bitcoin.wallet import Wallet

# Official SipHash-2-4 reference vectors (key = bytes(range(16)),
# message = bytes(range(n))) from the Aumasson/Bernstein test suite.
SIPHASH_VECTORS = [
    0x726FDB47DD0E0E31,
    0x74F839C593DC67FD,
    0x0D6C8009D9A94F5A,
    0x85676696D7FB7E2D,
    0xCF2794E0277187B7,
    0x18765564CD99A68D,
    0xCBC9466E58FEE3CE,
    0xAB0200F58B01D137,
    0x93F5F5799A932462,
]


class TestSipHash:
    def test_reference_vectors(self):
        key = bytes(range(16))
        for n, expected in enumerate(SIPHASH_VECTORS):
            assert siphash24(key, bytes(range(n))) == expected, n

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            siphash24(b"short", b"data")


def _wallet_tx(wallet, chain, value=600, fee=10_000):
    return wallet.create_transaction(
        chain, [TxOut(value, p2pkh_script(wallet.key_hash))], fee=fee
    )


@pytest.fixture(scope="module")
def funded():
    """Six funded wallets (four outputs each) and the chain prefix that
    funds them, minted once per module under the simulator's params."""
    wallets = [Wallet.from_seed(b"compact-w%d" % i) for i in range(6)]
    blocks = fund_wallets([w.key_hash for w in wallets for _ in range(4)])
    return wallets, blocks


def _pair(seed=1, compact=True):
    sim = Simulation(seed=seed)
    params = sim_chain_params()
    a = Node("a", sim, params)
    b = Node("b", sim, params)
    a.compact_relay = compact
    b.compact_relay = compact
    a.connect(b)
    return sim, a, b


def _preload(nodes, blocks):
    for node in nodes:
        for block in blocks:
            assert node.chain.add_block(block)


def _mine(node, extra_nonce=1):
    miner = Miner(node.chain, Wallet.from_seed(b"compact-miner").key_hash)
    return miner.assemble(
        node.mempool,
        timestamp=node.chain.median_time_past() + 1,
        extra_nonce=extra_nonce,
    )


class TestShortIds:
    def test_short_id_is_48_bits_and_key_dependent(self, funded):
        wallets, blocks = funded
        txid = b"\xab" * 32
        key_a = short_id_key(blocks[1].header, nonce=1)
        key_b = short_id_key(blocks[1].header, nonce=2)
        sid = short_txid(key_a, txid)
        assert len(sid) == 6
        assert sid == short_txid(key_a, txid)
        assert sid != short_txid(key_b, txid)

    def test_from_block_prefills_coinbase_and_salts_by_sender(self, funded):
        _, blocks = funded
        block = blocks[-1]
        cb_x = CompactBlock.from_block(block, salt=b"x")
        cb_y = CompactBlock.from_block(block, salt=b"y")
        assert cb_x.prefilled == (PrefilledTransaction(0, block.txs[0]),)
        assert cb_x.tx_count == len(block.txs)
        assert cb_x.nonce != cb_y.nonce
        if len(block.txs) > 1:
            assert cb_x.short_ids != cb_y.short_ids
        # Deterministic per (block, salt): no RNG in announcement building.
        assert CompactBlock.from_block(block, salt=b"x") == cb_x

    def test_announcement_is_sublinear_in_block_size(self, funded):
        _, blocks = funded
        block = max(blocks, key=lambda b: len(b.txs))
        assert len(block.txs) > 1  # the fanout block
        cb = CompactBlock.from_block(block)
        assert cb.serialized_size() < block.serialized_size() / 2


class _FakeMempool:
    def __init__(self, *txs):
        self._txs = txs

    def transactions(self):
        return [SimpleNamespace(tx=tx) for tx in self._txs]


class TestReconstruction:
    def test_complete_from_warm_mempool(self, funded):
        wallets, blocks = funded
        block = max(blocks, key=lambda b: len(b.txs))
        cb = CompactBlock.from_block(block)
        result = reconstruct(cb, _FakeMempool(*block.txs[1:]))
        assert result.complete
        assert result.collisions == 0
        assert finalize(cb, result.txs) == block

    def test_cold_mempool_misses_everything(self, funded):
        _, blocks = funded
        block = max(blocks, key=lambda b: len(b.txs))
        cb = CompactBlock.from_block(block)
        result = reconstruct(cb, _FakeMempool())
        assert not result.complete
        assert list(result.missing) == list(range(1, len(block.txs)))
        assert finalize(cb, result.txs) is None

    def test_ambiguous_short_id_counts_as_collision_miss(
        self, funded, monkeypatch
    ):
        wallets, blocks = funded
        block = max(blocks, key=lambda b: len(b.txs))
        monkeypatch.setattr(cmod, "short_txid", lambda key, txid: b"\x00" * 6)
        cb = CompactBlock.from_block(block)
        other = Transaction(
            vin=[TxIn(OutPoint(b"\x77" * 32, 0))],
            vout=[TxOut(1_000, p2pkh_script(b"\x77" * 20))],
        )
        # Two distinct pool transactions share the (degenerate) short id:
        # ambiguous, so every slot is a miss — never a wrong guess.
        result = reconstruct(cb, _FakeMempool(block.txs[1], other))
        assert result.collisions == 1
        assert not result.complete

    def test_malformed_prefilled_rejected(self, funded):
        _, blocks = funded
        block = blocks[1]
        good = CompactBlock.from_block(block)
        out_of_range = CompactBlock(
            header=good.header,
            nonce=good.nonce,
            short_ids=good.short_ids,
            prefilled=(PrefilledTransaction(9, block.txs[0]),),
        )
        with pytest.raises(MalformedCompactError):
            reconstruct(out_of_range, _FakeMempool())
        duplicated = CompactBlock(
            header=good.header,
            nonce=good.nonce,
            short_ids=good.short_ids,
            prefilled=(
                PrefilledTransaction(0, block.txs[0]),
                PrefilledTransaction(0, block.txs[0]),
            ),
        )
        with pytest.raises(MalformedCompactError):
            reconstruct(duplicated, _FakeMempool())


class TestRelayHit:
    def test_warm_mempool_reconstructs_without_roundtrip(self, funded):
        wallets, blocks = funded
        sim, a, b = _pair(seed=2)
        _preload([a, b], blocks)
        txs = [_wallet_tx(w, a.chain) for w in wallets[:3]]
        for tx in txs:
            a.mempool.accept(tx)
            b.mempool.accept(tx)
        block = _mine(a)
        assert len(block.txs) == 4
        a.submit_block(block)
        sim.run_until(600)
        assert b.chain.has_block(block.hash)
        assert b.chain.tip.block.hash == block.hash
        # The announcement went compact, cost less than half the block,
        # and needed no round-trip.
        assert a.bytes_sent["compact"] < block.serialized_size() / 2
        assert "block" not in a.bytes_sent
        assert "getblocktxn" not in b.bytes_sent

    def test_opted_out_peer_still_gets_full_blocks(self, funded):
        wallets, blocks = funded
        sim, a, b = _pair(seed=3)
        b.compact_relay = False
        _preload([a, b], blocks)
        tx = _wallet_tx(wallets[0], a.chain)
        a.mempool.accept(tx)
        b.mempool.accept(tx)
        block = _mine(a)
        a.submit_block(block)
        sim.run_until(600)
        assert b.chain.tip.block.hash == block.hash
        assert "compact" not in a.bytes_sent
        assert a.bytes_sent["block"] == block.serialized_size()


class TestRelayMiss:
    def test_missing_txs_recovered_via_getblocktxn(self, funded):
        wallets, blocks = funded
        sim, a, b = _pair(seed=4)
        _preload([a, b], blocks)
        txs = [_wallet_tx(w, a.chain) for w in wallets[:3]]
        for tx in txs:
            a.mempool.accept(tx)  # b's mempool stays cold
        block = _mine(a)
        a.submit_block(block)
        sim.run_until(600)
        assert b.chain.tip.block.hash == block.hash
        assert b.bytes_sent["getblocktxn"] > 0
        assert a.bytes_sent["blocktxn"] > 0
        assert "getblock" not in b.bytes_sent  # no full-block fallback
        # Reconstruction delivered the mempool transactions to b's chain.
        for tx in txs:
            assert b.chain.get_transaction(tx.txid) is not None

    def test_false_match_falls_back_to_full_block_unpenalized(
        self, funded, monkeypatch
    ):
        wallets, blocks = funded
        sim, a, b = _pair(seed=5)
        _preload([a, b], blocks)
        victim_tx = _wallet_tx(wallets[0], a.chain)
        a.mempool.accept(victim_tx)
        decoy = _wallet_tx(wallets[1], b.chain)
        b.mempool.accept(decoy)
        # Degenerate short ids: b's decoy "matches" the announced tx, so
        # reconstruction completes with the wrong transaction and the
        # merkle check catches it — the innocent-collision fallback.
        monkeypatch.setattr(cmod, "short_txid", lambda key, txid: b"\x11" * 6)
        block = _mine(a)
        a.submit_block(block)
        sim.run_until(600)
        assert b.chain.tip.block.hash == block.hash
        assert b.bytes_sent["getblock"] > 0
        assert a.bytes_sent["block"] == block.serialized_size()
        # Collisions are never misbehavior (BIP 152).
        assert b.misbehavior_score(a) == 0
        assert a.misbehavior_score(b) == 0


class TestRecoveryLadder:
    def test_total_loss_times_out_gives_up_and_unmarks_seen(self, funded):
        wallets, blocks = funded
        sim, a, b = _pair(seed=6)
        _preload([a, b], blocks)
        tx = _wallet_tx(wallets[0], a.chain)
        a.mempool.accept(tx)
        block = _mine(a)
        # Every b -> a message is lost: getblocktxn retries, then the
        # full-block fallback, then give-up.
        b.set_link_policy(a, LinkPolicy(drop=1.0))
        a.submit_block(block)
        ladder = COMPACT_TXN_TIMEOUT * sum(
            range(1, COMPACT_MAX_ATTEMPTS + 1)
        )
        sim.run_until(2 * ladder * 2 + 600)
        assert not b.chain.has_block(block.hash)
        assert not b._compact_pending
        # The hash was un-remembered, so a later full relay delivers.
        b.set_link_policy(a, None)
        b.submit_block(block, origin=a)
        assert b.chain.tip.block.hash == block.hash
        # Loss is not misbehavior in either direction.
        assert b.misbehavior_score(a) == 0
        assert a.misbehavior_score(b) == 0

    def test_crash_clears_pending_reconstructions(self, funded):
        wallets, blocks = funded
        sim, a, b = _pair(seed=7)
        _preload([a, b], blocks)
        tx = _wallet_tx(wallets[0], a.chain)
        a.mempool.accept(tx)
        block = _mine(a)
        cb = CompactBlock.from_block(block, salt=a.name.encode())
        b.submit_compact_block(cb, origin=a)
        assert b._compact_pending
        b.crash()
        assert not b._compact_pending


class TestByzantineGarbage:
    def test_garbage_announcements_penalize_and_ban(self):
        sim = Simulation(seed=8)
        nodes = build_network(sim, 4)
        for node in nodes:
            node.compact_relay = True
        byz = ByzantinePeer(
            nodes[3], behaviors=("garbage_compact",), interval=50.0
        )
        byz.start()
        victims = [n for n in nodes[:3] if nodes[3] in n.peers]
        assert victims
        sim.run_until(3_000)
        assert byz.attacks_sent["garbage_compact"] >= 10
        for victim in victims:
            # Each unbacked announcement scored POINTS_BAD_COMPACT via
            # the withheld-data path, crossing the ban threshold.
            assert victim.misbehavior_score(nodes[3]) >= victim.ban_threshold
            assert victim.is_banned(nodes[3])
            assert nodes[3] not in victim.peers
        assert byz.banned_by(nodes[:3]) == [v.name for v in victims]


class TestOptOutPurity:
    def test_txfree_relay_identical_with_compact_on_and_off(self):
        """On coinbase-only blocks compact announcements reconstruct
        instantly (no round-trip, no extra RNG draws), so the entire
        seeded trajectory must be bit-identical to flood relay."""

        def run(compact: bool):
            sim = Simulation(seed=17)
            nodes = build_network(sim, 20)
            for node in nodes:
                node.compact_relay = compact
            rate = block_work(target_to_bits(2**252)) / 600.0
            miner = PoissonMiner(nodes[0], rate, miner_id=1)
            miner.start()
            sim.run_until(4 * 3600.0)
            return (
                [n.chain.tip.block.hash for n in nodes],
                nodes[0].chain.height,
                sim.events_processed,
            )

        flood_tips, flood_height, flood_events = run(False)
        compact_tips, compact_height, compact_events = run(True)
        assert flood_height > 0
        assert compact_tips == flood_tips
        assert compact_height == flood_height
        assert compact_events == flood_events
