"""Tests for the signature cache and the cached/parallel verification paths.

The load-bearing property: caching and parallelism are *transparent* —
accept/reject verdicts are identical with the sigcache on, off, undersized
(evicting constantly), and with script checks fanned across worker
processes.
"""

import random
from dataclasses import replace

import pytest

from repro.bitcoin import sigcache
from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.sigcache import SignatureCache
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import Script, Transaction, TxOut
from repro.bitcoin.validation import (
    ParallelScriptVerifier,
    ValidationError,
    check_tx_inputs,
    make_sig_checker,
)
from repro.bitcoin.wallet import Wallet
from repro.crypto.ecdsa import Signature, verify as ecdsa_verify
from repro.crypto.keys import PrivateKey


@pytest.fixture(autouse=True)
def fresh_default_cache():
    """Isolate each test from the process-wide shared cache."""
    old = sigcache.set_default_cache(SignatureCache())
    yield
    sigcache.set_default_cache(old)


# ----------------------------------------------------------------------
# LRU mechanics
# ----------------------------------------------------------------------


def test_lru_eviction_order():
    cache = SignatureCache(max_entries=2)
    cache.put(b"d1", b"p", b"s", True)
    cache.put(b"d2", b"p", b"s", True)
    # Touch d1 so d2 becomes least recently used.
    assert cache.get(b"d1", b"p", b"s") is True
    cache.put(b"d3", b"p", b"s", False)
    assert cache.get(b"d2", b"p", b"s") is None  # evicted
    assert cache.get(b"d1", b"p", b"s") is True
    assert cache.get(b"d3", b"p", b"s") is False
    assert len(cache) == 2


def test_put_existing_key_updates_without_eviction():
    cache = SignatureCache(max_entries=2)
    cache.put(b"d1", b"p", b"s", True)
    cache.put(b"d2", b"p", b"s", True)
    cache.put(b"d1", b"p", b"s", True)  # refresh, no overflow
    assert len(cache) == 2
    assert cache.get(b"d2", b"p", b"s") is True


def test_rejects_zero_capacity():
    with pytest.raises(ValueError):
        SignatureCache(max_entries=0)


def test_clear():
    cache = SignatureCache()
    cache.put(b"d", b"p", b"s", True)
    cache.clear()
    assert len(cache) == 0
    assert cache.get(b"d", b"p", b"s") is None


def test_default_cache_swap():
    mine = SignatureCache(max_entries=4)
    old = sigcache.set_default_cache(mine)
    try:
        assert sigcache.default_cache() is mine
        assert sigcache.set_default_cache(None) is mine
        assert sigcache.default_cache() is None
    finally:
        sigcache.set_default_cache(old)


# ----------------------------------------------------------------------
# Eviction never changes verdicts
# ----------------------------------------------------------------------


def test_eviction_never_changes_verdicts():
    """Random triples through a 4-entry cache: the cache's answer always
    equals direct ECDSA verification, no matter what was evicted between
    asks — including cached ``False`` verdicts."""
    rng = random.Random(1234)
    key = PrivateKey.from_seed(b"evict")
    triples = []
    for i in range(12):
        digest = bytes([i]) * 32
        sig = key.sign_digest(digest).encode()
        if i % 3 == 0:  # corrupt every third signature
            sig = bytes([sig[0] ^ 0x01]) + sig[1:]
        triples.append((digest, key.public.encoded, sig))

    expected = {
        t: ecdsa_verify(key.public.point, t[0], Signature.decode(t[2]))
        for t in triples
    }

    cache = SignatureCache(max_entries=4)
    for _ in range(200):
        digest, pub, sig = rng.choice(triples)
        verdict = cache.get(digest, pub, sig)
        if verdict is None:
            verdict = ecdsa_verify(key.public.point, digest, Signature.decode(sig))
            cache.put(digest, pub, sig, verdict)
        assert verdict == expected[(digest, pub, sig)]
        assert len(cache) <= 4


def test_malleated_signature_misses_cache():
    """A different signature encoding is different bytes: it must miss the
    cache and be verified on its own merits, never inheriting a verdict."""
    key = PrivateKey.from_seed(b"malleate")
    digest = b"\x42" * 32
    sig = key.sign_digest(digest).encode()
    cache = SignatureCache()
    cache.put(digest, key.public.encoded, sig, True)
    malleated = sig[:-1] + bytes([sig[-1] ^ 0xFF])
    assert cache.get(digest, key.public.encoded, malleated) is None


# ----------------------------------------------------------------------
# Checker integration
# ----------------------------------------------------------------------


def _funded_net():
    net = RegtestNetwork()
    alice = Wallet.from_seed(b"sc-alice")
    bob = Wallet.from_seed(b"sc-bob")
    net.fund_wallet(alice, blocks=6)
    return net, alice, bob


def test_checker_consults_and_fills_cache():
    net, alice, bob = _funded_net()
    tx = alice.create_transaction(
        net.chain, [TxOut(1000, p2pkh_script(bob.key_hash))], fee=2000
    )
    cache = SignatureCache()
    sigcache.set_default_cache(cache)
    check_tx_inputs(tx, net.chain.utxos, net.chain.height + 1)
    assert len(cache) == len(tx.vin)
    # Re-validation is answered from the cache: swap ecdsa out from under it.
    hits = {"n": 0}
    original_get = cache.get

    def counting_get(digest, pub, sig):
        verdict = original_get(digest, pub, sig)
        if verdict is not None:
            hits["n"] += 1
        return verdict

    cache.get = counting_get
    check_tx_inputs(tx, net.chain.utxos, net.chain.height + 1)
    assert hits["n"] == len(tx.vin)


def test_mempool_acceptance_warms_block_connect():
    net, alice, bob = _funded_net()
    cache = SignatureCache()
    sigcache.set_default_cache(cache)
    tx = alice.create_transaction(
        net.chain, [TxOut(1000, p2pkh_script(bob.key_hash))], fee=2000
    )
    net.send(tx)
    warmed = len(cache)
    assert warmed == len(tx.vin)
    misses = {"n": 0}
    original_get = cache.get

    def counting_get(digest, pub, sig):
        verdict = original_get(digest, pub, sig)
        if verdict is None:
            misses["n"] += 1
        return verdict

    cache.get = counting_get
    net.generate(1, alice.key_hash)  # block connect re-verifies tx's scripts
    assert misses["n"] == 0
    assert net.chain.get_transaction(tx.txid) is not None


def test_checker_surfaces_out_of_range_as_validation_error():
    net, alice, bob = _funded_net()
    tx = alice.create_transaction(
        net.chain, [TxOut(1000, p2pkh_script(bob.key_hash))], fee=2000
    )
    checker = make_sig_checker(tx, len(tx.vin) + 3, Script())
    key = PrivateKey.from_seed(b"any")
    sig = key.sign_digest(b"\x01" * 32).encode() + b"\x01"
    with pytest.raises(ValidationError, match="out of range"):
        checker(sig, key.public.encoded)


# ----------------------------------------------------------------------
# Differential: cache/parallelism on and off give identical verdicts
# ----------------------------------------------------------------------


def _run_scenario(verifier=None, cache=None, before_generate=None):
    """A mixed accept/reject scenario; returns every observable verdict."""
    sigcache.set_default_cache(cache)
    net = RegtestNetwork()
    if verifier is not None:
        net.chain.script_verifier = verifier
    alice = Wallet.from_seed(b"diff-alice")
    bob = Wallet.from_seed(b"diff-bob")
    net.fund_wallet(alice, blocks=6)
    verdicts = []
    for i in range(4):
        tx = alice.create_transaction(
            net.chain,
            [TxOut(1500 + i, p2pkh_script(bob.key_hash))],
            fee=2000,
            exclude=set(net.mempool._spent),
        )
        net.send(tx)
        verdicts.append(("accept", tx.txid.hex()))
    # A corrupted-signature spend must be rejected identically.
    bad_src = alice.create_transaction(
        net.chain,
        [TxOut(3000, p2pkh_script(bob.key_hash))],
        fee=2000,
        exclude=set(net.mempool._spent),
    )
    sig_el = bad_src.vin[0].script_sig.elements[0]
    bad_sig = bytes([sig_el[0] ^ 0x01]) + sig_el[1:]
    bad_tx = Transaction(
        [replace(bad_src.vin[0], script_sig=Script([bad_sig, *bad_src.vin[0].script_sig.elements[1:]]))],
        bad_src.vout,
        version=bad_src.version,
        locktime=bad_src.locktime,
    )
    try:
        net.send(bad_tx)
        verdicts.append(("accept-bad", bad_tx.txid.hex()))
    except Exception as exc:
        verdicts.append(("reject", str(exc)))
    if before_generate is not None:
        before_generate(net)
    blocks = net.generate(1, alice.key_hash)
    verdicts.append(("tip", net.chain.tip.block.hash.hex(), len(blocks[0].txs)))
    if verifier is not None:
        verifier.close()
    return verdicts


def test_differential_verdicts_cache_and_parallelism():
    baseline = _run_scenario(cache=None)  # caches fully disabled
    cached = _run_scenario(cache=SignatureCache())
    evicting = _run_scenario(cache=SignatureCache(max_entries=1))
    parallel = _run_scenario(
        verifier=ParallelScriptVerifier(workers=2), cache=SignatureCache()
    )
    assert baseline == cached == evicting == parallel


def test_worker_death_mid_block_falls_back_serially():
    """Killing a pool worker must not change the block verdict.

    The executor breaks between mempool acceptance and block connect; the
    verifier discards the dead pool, re-verifies every group in-process,
    and the observable verdicts stay byte-identical to the serial run.
    """
    import concurrent.futures.process
    import os

    from repro import obs

    baseline = _run_scenario(cache=SignatureCache())
    verifier = ParallelScriptVerifier(workers=2)

    def kill_pool(net):
        executor = verifier._ensure_executor()
        try:
            executor.submit(os._exit, 1).result()
        except concurrent.futures.process.BrokenProcessPool:
            pass  # expected: the pill took the pool down

    was_enabled = obs.ENABLED
    saved_registry = obs.set_registry(obs.Registry())
    obs.enable()
    try:
        broken = _run_scenario(
            verifier=verifier,
            cache=SignatureCache(),
            before_generate=kill_pool,
        )
        fallbacks = obs.registry().counter("script.pool_broken_total").value
    finally:
        obs.set_registry(saved_registry)
        obs.ENABLED = was_enabled

    assert broken == baseline
    assert fallbacks == 1
    # The verifier is reusable afterwards: the pool respawns on demand.
    assert _run_scenario(
        verifier=ParallelScriptVerifier(workers=2), cache=SignatureCache()
    ) == baseline
