"""Differential tests: batch/cached block connect vs the serial pipeline.

The accelerators (`batch_sig_verify`, `utxo_cache`) must be pure
speed-ups: identical UTXO state, identical tip, identical first error on
an invalid block, and identical durable snapshots — everything here
replays the *same* block sequence through differently-configured chains
and compares.
"""

import pytest

from repro.bitcoin import sigcache
from repro.bitcoin.block import Block, build_block
from repro.bitcoin.chain import Blockchain, ChainParams
from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.script import Script
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import COIN, TxOut
from repro.bitcoin.validation import ValidationError
from repro.bitcoin.wallet import Wallet
from repro.crypto import ecdsa
from repro.store import BlockStore, recover_chain


@pytest.fixture(scope="module")
def block_sequence():
    """A chain of real P2PKH activity: single- and multi-input spends.

    Built once; every test replays it into fresh chains.  Building it
    also warms the parity-hint table (the wallet signs in-process), which
    is exactly the state a validating node is in when a block arrives
    carrying transactions it already saw in its mempool.
    """
    net = RegtestNetwork()
    alice = Wallet.from_seed(b"batch-alice")
    bob = Wallet.from_seed(b"batch-bob")
    net.fund_wallet(alice, blocks=3)
    for i in range(4):
        net.send(
            alice.create_transaction(
                net.chain,
                [TxOut(1 * COIN + i, p2pkh_script(bob.key_hash))],
                fee=1000,
            )
        )
        net.confirm()
    # Multi-input spend: several signatures in one block, enough to clear
    # the batch path's serial cutoff.
    net.send(
        alice.create_transaction(
            net.chain, [TxOut(120 * COIN, p2pkh_script(bob.key_hash))], fee=2000
        )
    )
    net.confirm()
    return net.chain.export_active()


CONFIGS = [
    {},
    {"batch_sig_verify": True},
    {"utxo_cache": True},
    {"batch_sig_verify": True, "utxo_cache": True},
]


def replay(blocks, fresh_sigcache=True, **opts):
    if fresh_sigcache:
        sigcache.set_default_cache(sigcache.SignatureCache())
    chain = Blockchain(ChainParams.regtest(), **opts)
    for block in blocks:
        assert chain.add_block(block)
    return chain


def test_state_identical_across_configs(block_sequence):
    chains = [replay(block_sequence, **opts) for opts in CONFIGS]
    reference = chains[0]
    for chain in chains[1:]:
        assert chain.tip.block.hash == reference.tip.block.hash
        assert chain.utxos.snapshot() == reference.utxos.snapshot()
        assert len(chain.utxos) == len(reference.utxos)
        assert chain.utxos.serialized_size() == reference.utxos.serialized_size()


def test_state_identical_with_cold_hints(block_sequence):
    # No parity hints at all: batch_verify routes every triple through its
    # serial leaf — still the same state.
    ecdsa.clear_parity_hints()
    try:
        serial = replay(block_sequence)
        batched = replay(block_sequence, batch_sig_verify=True, utxo_cache=True)
        assert batched.utxos.snapshot() == serial.utxos.snapshot()
    finally:
        ecdsa.clear_parity_hints()


def test_batch_path_actually_aggregates(block_sequence, monkeypatch):
    # With warm hints and a cold sigcache, the multi-signature block must
    # go through at least one aggregated multi-scalar equation.  A serial
    # replay first re-warms the hint table (successful verifies record
    # R-parity), in case an earlier test cleared it.
    replay(block_sequence)
    calls = []
    real = ecdsa.multi_scalar_mult

    def counting(terms):
        terms = list(terms)
        calls.append(len(terms))
        return real(terms)

    monkeypatch.setattr(ecdsa, "multi_scalar_mult", counting)
    replay(block_sequence, batch_sig_verify=True)
    assert any(n >= 5 for n in calls), calls  # ≥2 sigs → ≥5 terms


def corrupt_last_block(blocks):
    """Re-mine the final block with one signature bit flipped."""
    source = blocks[-1]
    txs = list(source.txs)
    tx = txs[1]
    elements = tx.vin[0].script_sig.elements
    sig = bytearray(elements[0])
    sig[10] ^= 0x01
    txs[1] = tx.with_input_script(0, Script([bytes(sig), *elements[1:]]))
    return txs, source


@pytest.mark.parametrize(
    "opts", CONFIGS[1:], ids=["batch", "cache", "batch+cache"]
)
def test_invalid_block_raises_same_error_as_serial(block_sequence, opts):
    bad_txs, source = corrupt_last_block(block_sequence)

    def attempt(**config):
        chain = replay(block_sequence[:-1], **config)
        candidate = build_block(
            prev_hash=chain.tip.block.hash,
            txs=bad_txs,
            timestamp=source.header.timestamp,
            bits=source.header.bits,
        )
        nonce = 0
        while not candidate.header.meets_target():
            nonce += 1
            candidate = Block(candidate.header.with_nonce(nonce), candidate.txs)
        with pytest.raises(ValidationError) as exc:
            chain.add_block(candidate)
        # Rejection must leave the chain at the pre-block state.
        assert chain.tip.block.hash == block_sequence[-2].hash
        return str(exc.value)

    assert attempt(**opts) == attempt()


def test_durable_snapshot_flushes_cache(tmp_path, block_sequence):
    # Snapshot every few blocks: the write-back cache must flush first so
    # the durable snapshot (read from the base set) is complete, and a
    # recovered chain must match a serially-built one exactly.
    chain = Blockchain(
        ChainParams.regtest(), batch_sig_verify=True, utxo_cache=True
    )
    store = BlockStore(tmp_path, snapshot_interval=4).open()
    chain.attach_store(store)
    for block in block_sequence:
        chain.add_block(block)
    store.close()

    recovered = recover_chain(BlockStore(tmp_path).open(), utxo_cache=True)
    serial = replay(block_sequence)
    assert recovered.height == serial.height
    assert recovered.tip.block.hash == serial.tip.block.hash
    assert recovered.utxos.snapshot() == serial.utxos.snapshot()
    # And the recovered chain keeps accepting blocks through the cache.
    assert recovered.utxos.flush() >= 0
