"""Bounds checking and strict framing for the zero-copy codecs.

The old slicing parsers yielded silent short values on truncated input
(e.g. a 7-byte txid from a 43-byte buffer); the struct rewrites must
raise :class:`ValueError` with offset context instead, reject trailing
bytes by default, and decode identically from bytes and memoryview.
"""

import pytest

from repro.bitcoin.block import HEADER_SIZE, Block, BlockHeader
from repro.bitcoin.script import Script
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import (
    OutPoint,
    Transaction,
    TxIn,
    TxOut,
    read_varint,
    varint,
)


def sample_tx():
    return Transaction(
        vin=[
            TxIn(OutPoint(b"\xaa" * 32, 1), Script([b"\x30" * 70, b"\x02" * 33])),
            TxIn(OutPoint(b"\xbb" * 32, 0)),
        ],
        vout=[
            TxOut(5000, p2pkh_script(b"\x01" * 20)),
            TxOut(0, Script()),
        ],
        locktime=7,
    )


# ---------------------------------------------------------------- varint


def test_read_varint_truncated_prefix():
    with pytest.raises(ValueError, match="truncated varint at offset 3"):
        read_varint(b"\x00\x00\x00", 3)


@pytest.mark.parametrize("prefix", [b"\xfd\x01", b"\xfe\x01\x02", b"\xff" + b"\x01" * 7])
def test_read_varint_truncated_width(prefix):
    with pytest.raises(ValueError, match="truncated varint at offset 0"):
        read_varint(prefix, 0)


def test_read_varint_roundtrip_from_memoryview():
    for n in (0, 0xFC, 0xFD, 0xFFFF, 0x10000, 2**32):
        data = memoryview(varint(n) + b"tail")
        value, offset = read_varint(data, 0)
        assert value == n and offset == len(varint(n))


# ---------------------------------------------------------------- tx


def test_tx_roundtrip_bytes_and_memoryview_identical():
    tx = sample_tx()
    wire = tx.serialize()
    from_bytes = Transaction.parse(wire)
    from_view = Transaction.parse(memoryview(wire))
    assert from_bytes == from_view == tx
    assert from_view.txid == tx.txid
    # Script pushes must come out as real bytes (hashable, comparable),
    # never memoryview slices of the wire buffer.
    for el in from_view.vin[0].script_sig.elements:
        assert type(el) is bytes


def test_every_truncation_point_raises_with_offset():
    wire = sample_tx().serialize()
    for cut in range(len(wire)):
        with pytest.raises(ValueError) as exc:
            Transaction.parse(wire[:cut])
        assert "truncated" in str(exc.value)


def test_tx_trailing_bytes_rejected_by_default():
    wire = sample_tx().serialize()
    with pytest.raises(ValueError, match="trailing bytes after transaction"):
        Transaction.parse(wire + b"\x00")
    assert Transaction.parse(wire + b"\x00", strict=False) == sample_tx()


def test_tx_error_names_offset_and_buffer_size():
    wire = sample_tx().serialize()
    with pytest.raises(ValueError, match=r"at offset \d+ \(buffer has 40 bytes\)"):
        Transaction.parse(wire[:40])


def test_oversized_script_length_is_truncation_not_short_read():
    # A varint claiming a 1 MB script on a tiny buffer must raise, not
    # silently yield whatever bytes remain.
    tx = Transaction(
        vin=[TxIn(OutPoint(b"\xcc" * 32, 0))],
        vout=[TxOut(1, Script())],
    )
    wire = bytearray(tx.serialize())
    # input script length varint sits right after version+count+outpoint
    offset = 4 + 1 + 36
    assert wire[offset] == 0
    wire[offset : offset + 1] = varint(1_000_000)
    with pytest.raises(ValueError, match="truncated transaction: input script"):
        Transaction.parse(bytes(wire))


# ---------------------------------------------------------------- block


def mined_block():
    header = BlockHeader(
        prev_hash=b"\x11" * 32,
        merkle_root=b"\x22" * 32,
        timestamp=1234,
        bits=0x207FFFFF,
        nonce=99,
    )
    return Block(header, [sample_tx()])


def test_header_roundtrip_and_truncation():
    header = mined_block().header
    wire = header.serialize()
    assert BlockHeader.parse(wire) == header
    assert BlockHeader.parse(memoryview(wire)) == header
    with pytest.raises(ValueError, match="truncated block header"):
        BlockHeader.parse(wire[: HEADER_SIZE - 1])


def test_block_roundtrip_and_trailing_bytes():
    block = mined_block()
    wire = block.serialize()
    assert Block.parse(wire).hash == block.hash
    assert Block.parse(memoryview(wire)).hash == block.hash
    with pytest.raises(ValueError, match="trailing bytes after block"):
        Block.parse(wire + b"\xff")
    assert Block.parse(wire + b"\xff", strict=False).hash == block.hash


def test_block_truncated_mid_transaction():
    wire = mined_block().serialize()
    with pytest.raises(ValueError, match="truncated"):
        Block.parse(wire[: HEADER_SIZE + 10])
