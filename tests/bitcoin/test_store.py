"""Tests for the durable block store: framing, codecs, snapshots,
crash-safe recovery, and the node/chaos integration."""

import os
from dataclasses import replace

import pytest

from repro.bitcoin.block import Block
from repro.bitcoin.chain import Blockchain, ChainParams
from repro.bitcoin.faults import inject_torn_write, run_kill_mid_write
from repro.bitcoin.miner import Miner
from repro.bitcoin.network import Node, Simulation
from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import COIN, OutPoint, TxOut
from repro.bitcoin.utxo import BlockUndo, SpentInfo, UTXOEntry, UTXOSet
from repro.bitcoin.validation import ValidationError
from repro.bitcoin.wallet import Wallet
from repro.store import (
    BlockStore,
    FramingError,
    SnapshotError,
    StoreError,
    recover_chain,
)
from repro.store import codec, framing
from repro.store.snapshot import (
    decode_snapshot,
    encode_snapshot,
    read_snapshot_file,
    write_snapshot_file,
)

MINER_KEY = Wallet.from_seed(b"store-miner").key_hash


def mine(chain, n=1, extra_nonce_base=0, key_hash=MINER_KEY):
    miner = Miner(chain, key_hash)
    return [
        miner.mine_block(extra_nonce=extra_nonce_base + i) for i in range(n)
    ]


def stored_chain(tmp_path, blocks=5, snapshot_interval=0):
    """A regtest chain with ``blocks`` mined blocks mirrored to disk."""
    chain = Blockchain(ChainParams.regtest())
    store = BlockStore(
        tmp_path, snapshot_interval=snapshot_interval
    ).open()
    chain.attach_store(store)
    mine(chain, blocks)
    return chain, store


# ----------------------------------------------------------------------
# Record framing
# ----------------------------------------------------------------------


class TestFraming:
    MAGIC = b"TESTLOG1"

    def write_log(self, path, payloads):
        with open(path, "wb") as fh:
            framing.write_file_header(fh, self.MAGIC)
            for payload in payloads:
                fh.write(framing.encode_record(payload))

    def test_round_trip(self, tmp_path):
        path = tmp_path / "log"
        payloads = [b"alpha", b"", b"\x00" * 100]
        self.write_log(path, payloads)
        scan = framing.scan_records(path, self.MAGIC)
        assert [p for _, p in scan.records] == payloads
        assert scan.truncated_bytes == 0
        assert scan.crc_failures == 0
        assert scan.valid_length == os.path.getsize(path)

    def test_missing_file_is_empty(self, tmp_path):
        scan = framing.scan_records(tmp_path / "nope", self.MAGIC)
        assert scan.records == []
        assert scan.valid_length == 0

    def test_wrong_magic_raises(self, tmp_path):
        path = tmp_path / "log"
        self.write_log(path, [b"x"])
        with pytest.raises(FramingError, match="bad log header"):
            framing.scan_records(path, b"OTHERMAG")

    def test_torn_payload_truncated(self, tmp_path):
        path = tmp_path / "log"
        self.write_log(path, [b"first", b"second"])
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)  # cut into the last payload
        scan = framing.scan_records(path, self.MAGIC)
        assert [p for _, p in scan.records] == [b"first"]
        assert scan.truncated_bytes == (size - 3) - scan.valid_length
        assert scan.crc_failures == 0

    def test_torn_record_header_truncated(self, tmp_path):
        path = tmp_path / "log"
        self.write_log(path, [b"first"])
        with open(path, "ab") as fh:
            fh.write(b"\x05\x00")  # 2 bytes of a new record header
        scan = framing.scan_records(path, self.MAGIC)
        assert [p for _, p in scan.records] == [b"first"]
        assert scan.truncated_bytes == 2

    def test_crc_mismatch_stops_scan(self, tmp_path):
        path = tmp_path / "log"
        self.write_log(path, [b"first", b"second"])
        with open(path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            fh.write(b"\xff")
        scan = framing.scan_records(path, self.MAGIC)
        assert [p for _, p in scan.records] == [b"first"]
        assert scan.crc_failures == 1

    def test_corrupt_length_field_stops_scan(self, tmp_path):
        path = tmp_path / "log"
        self.write_log(path, [b"first"])
        with open(path, "ab") as fh:
            fh.write((2**31).to_bytes(4, "little") + b"\x00" * 8)
        scan = framing.scan_records(path, self.MAGIC)
        assert [p for _, p in scan.records] == [b"first"]
        assert scan.crc_failures == 1  # bogus length counts as corruption

    def test_header_torn_file_counts_as_empty(self, tmp_path):
        path = tmp_path / "log"
        path.write_bytes(b"TEST")  # half a file header
        scan = framing.scan_records(path, self.MAGIC)
        assert scan.records == []
        assert scan.valid_length == 0
        assert scan.truncated_bytes == 4

    def test_open_for_append_truncates_tail(self, tmp_path):
        path = tmp_path / "log"
        self.write_log(path, [b"first", b"second"])
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)
        scan = framing.scan_records(path, self.MAGIC)
        fh = framing.open_for_append(path, self.MAGIC, scan.valid_length)
        fh.write(framing.encode_record(b"third"))
        fh.close()
        scan = framing.scan_records(path, self.MAGIC)
        assert [p for _, p in scan.records] == [b"first", b"third"]


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------


class TestCodec:
    def test_block_record_round_trip(self):
        chain = Blockchain(ChainParams.regtest())
        [block] = mine(chain, 1)
        payload = codec.encode_connect(block, 1)
        kind, height, decoded, block_hash = codec.decode_block_record(payload)
        assert kind == codec.RECORD_CONNECT
        assert height == 1
        assert decoded.hash == block.hash
        assert decoded.serialize() == block.serialize()
        assert block_hash == block.hash

    def test_disconnect_record_round_trip(self):
        payload = codec.encode_disconnect(b"\xab" * 32, 7)
        kind, height, block, block_hash = codec.decode_block_record(payload)
        assert kind == codec.RECORD_DISCONNECT
        assert height == 7
        assert block is None
        assert block_hash == b"\xab" * 32

    def test_undo_record_round_trip(self):
        undo = BlockUndo(
            spent=[
                SpentInfo(
                    OutPoint(b"\x01" * 32, 3),
                    UTXOEntry(
                        TxOut(5 * COIN, p2pkh_script(b"\x02" * 20)), 42, True
                    ),
                )
            ],
            created=[OutPoint(b"\x03" * 32, 0), OutPoint(b"\x04" * 32, 1)],
        )
        payload = codec.encode_undo_record(b"\xcd" * 32, 43, undo)
        block_hash, height, decoded = codec.decode_undo_record(payload)
        assert block_hash == b"\xcd" * 32
        assert height == 43
        assert decoded.created == undo.created
        assert len(decoded.spent) == 1
        assert decoded.spent[0].outpoint == undo.spent[0].outpoint
        assert decoded.spent[0].entry == undo.spent[0].entry

    def test_unknown_kind_rejected(self):
        with pytest.raises(codec.CodecError, match="unknown"):
            codec.decode_block_record(bytes([99]) + b"\x00" * 4)

    def test_block_parse_round_trip(self):
        """Block.serialize/parse (added for the log) is a faithful pair."""
        net = RegtestNetwork()
        alice = Wallet.from_seed(b"codec-alice")
        net.fund_wallet(alice)
        tx = alice.create_transaction(
            net.chain, [TxOut(COIN, p2pkh_script(b"\x09" * 20))], fee=1000
        )
        net.send(tx)
        [block] = net.confirm(1)
        parsed = Block.parse(block.serialize())
        assert parsed.hash == block.hash
        assert [t.txid for t in parsed.txs] == [t.txid for t in block.txs]


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------


class TestSnapshot:
    def build_set(self):
        utxos = UTXOSet()
        for i in range(5):
            utxos.add(
                OutPoint(bytes([i]) * 32, i),
                UTXOEntry(
                    TxOut(i * COIN, p2pkh_script(bytes([i]) * 20)), i, i % 2 == 0
                ),
            )
        return utxos

    def test_round_trip(self):
        utxos = self.build_set()
        data = encode_snapshot(utxos, 10, b"\xaa" * 32)
        snap = decode_snapshot(data)
        assert snap.height == 10
        assert snap.tip == b"\xaa" * 32
        assert snap.to_utxo_set().snapshot() == utxos.snapshot()

    def test_deterministic_bytes(self):
        # Same set inserted in different orders → identical files.
        a = self.build_set()
        b = UTXOSet()
        for outpoint, entry in sorted(
            a.items(), key=lambda kv: kv[0], reverse=True
        ):
            b.add(outpoint, entry)
        assert encode_snapshot(a, 1, b"\x00" * 32) == encode_snapshot(
            b, 1, b"\x00" * 32
        )

    def test_checksum_failure_detected(self, tmp_path):
        path = tmp_path / "utxo.snap"
        write_snapshot_file(path, self.build_set(), 10, b"\xaa" * 32)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot_file(path)

    def test_write_is_atomic(self, tmp_path):
        path = tmp_path / "utxo.snap"
        write_snapshot_file(path, self.build_set(), 10, b"\xaa" * 32)
        # No temp file left behind; the published file decodes.
        assert not os.path.exists(str(path) + ".tmp")
        assert read_snapshot_file(path).height == 10


# ----------------------------------------------------------------------
# BlockStore + recovery
# ----------------------------------------------------------------------


class TestBlockStore:
    def assert_same_state(self, a: Blockchain, b: Blockchain):
        assert a.tip.block.hash == b.tip.block.hash
        assert a.height == b.height
        assert a.utxos.snapshot() == b.utxos.snapshot()
        assert a.utxos.serialized_size() == b.utxos.serialized_size()
        assert a.utxos.total_value() == b.utxos.total_value()
        assert a._tx_index == b._tx_index
        assert a._spenders == b._spenders

    def reopen(self, tmp_path) -> Blockchain:
        return recover_chain(BlockStore(tmp_path).open())

    def test_recover_empty_store_is_fresh_chain(self, tmp_path):
        chain = recover_chain(BlockStore(tmp_path).open())
        assert chain.height == 0
        assert chain.store is not None

    def test_full_replay_recovery(self, tmp_path):
        chain, store = stored_chain(tmp_path, blocks=6)
        store.close()
        self.assert_same_state(self.reopen(tmp_path), chain)

    def test_snapshot_recovery(self, tmp_path):
        chain, store = stored_chain(tmp_path, blocks=7, snapshot_interval=3)
        assert any(
            name.startswith("utxo-") for name in os.listdir(tmp_path)
        )
        store.close()
        self.assert_same_state(self.reopen(tmp_path), chain)

    def test_recovered_chain_keeps_appending(self, tmp_path):
        chain, store = stored_chain(tmp_path, blocks=3)
        store.close()
        recovered = self.reopen(tmp_path)
        mine(recovered, 2, extra_nonce_base=100)
        recovered.store.close()
        self.assert_same_state(self.reopen(tmp_path), recovered)
        del chain

    def test_torn_tail_recovers_previous_tip(self, tmp_path):
        chain, store = stored_chain(tmp_path, blocks=5)
        store.close()
        path = os.path.join(tmp_path, "blocks.log")
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 7)
        recovered = self.reopen(tmp_path)
        assert recovered.height == 4
        assert recovered.tip.block.hash == chain.block_at(4).hash
        # Byte-identical to an independent replay of the same prefix.
        oracle = Blockchain(ChainParams.regtest())
        for h in range(1, 5):
            oracle.add_block(chain.block_at(h))
        self.assert_same_state(recovered, oracle)

    def test_corrupt_crc_recovers_previous_tip(self, tmp_path):
        chain, store = stored_chain(tmp_path, blocks=5)
        store.close()
        path = os.path.join(tmp_path, "blocks.log")
        with open(path, "r+b") as fh:
            fh.seek(-10, os.SEEK_END)
            fh.write(b"\xff")
        recovered = self.reopen(tmp_path)
        assert recovered.height == 4
        assert recovered.tip.block.hash == chain.block_at(4).hash

    def test_torn_tail_below_snapshot_falls_back(self, tmp_path):
        """Offsets past the surviving log invalidate the snapshot; the
        store degrades to a full replay instead of failing."""
        chain, store = stored_chain(tmp_path, blocks=6, snapshot_interval=6)
        store.close()
        path = os.path.join(tmp_path, "blocks.log")
        # Chop deep into the log — far below the snapshot's offsets.
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) // 2)
        recovered = self.reopen(tmp_path)
        assert 0 < recovered.height < 6
        assert recovered.tip.block.hash == chain.block_at(recovered.height).hash

    def test_reorg_is_persisted(self, tmp_path):
        chain, store = stored_chain(tmp_path, blocks=2)
        rival = Blockchain(ChainParams.regtest())
        rival_blocks = mine(
            rival, 3, extra_nonce_base=1000,
            key_hash=Wallet.from_seed(b"store-rival").key_hash,
        )
        for block in rival_blocks:
            chain.add_block(block)
        assert chain.tip.block.hash == rival_blocks[-1].hash
        store.close()
        self.assert_same_state(self.reopen(tmp_path), chain)

    def test_wipe_deletes_everything(self, tmp_path):
        _, store = stored_chain(tmp_path, blocks=3, snapshot_interval=2)
        store.wipe()
        assert recover_chain(BlockStore(tmp_path).open()).height == 0

    def test_foreign_chain_store_rejected(self, tmp_path):
        _, store = stored_chain(tmp_path, blocks=1)
        store.close()
        foreign = replace(
            ChainParams.regtest(), genesis_timestamp=2_000_000_000
        )
        other = Blockchain(foreign)
        with pytest.raises(StoreError, match="different chain"):
            other.attach_store(BlockStore(tmp_path).open())

    def test_genesis_mismatch_on_restore_rejected(self, tmp_path):
        _, store = stored_chain(tmp_path, blocks=1)
        store.close()
        reopened = BlockStore(tmp_path).open()
        foreign = replace(
            ChainParams.regtest(), genesis_timestamp=2_000_000_000
        )
        with pytest.raises(ValidationError, match="genesis mismatch"):
            Blockchain.restore(reopened.recover(), params=foreign)

    def test_snapshot_rotation_keeps_latest(self, tmp_path):
        _, store = stored_chain(tmp_path, blocks=9, snapshot_interval=3)
        snaps = [
            n for n in os.listdir(tmp_path) if n.startswith("utxo-")
        ]
        assert snaps == ["utxo-00000009.snap"]
        store.close()


# ----------------------------------------------------------------------
# Node integration (crash / restart semantics)
# ----------------------------------------------------------------------


def flat_params():
    return ChainParams(
        max_target=2**252, retarget_window=2**31, require_pow=False
    )


class TestNodeStore:
    def make_pair(self, tmp_path):
        sim = Simulation(seed=11)
        params = flat_params()
        victim = Node("victim", sim, params, store_dir=str(tmp_path))
        peer = Node("peer", sim, params)
        victim.connect(peer)
        return sim, victim, peer

    def feed_blocks(self, sim, peer, n):
        chain = Blockchain(peer.params)
        for block in mine(chain, n):
            peer.submit_block(block)
        sim.run_until(sim.now + 3600.0)

    def test_restart_recovers_from_disk(self, tmp_path):
        sim, victim, peer = self.make_pair(tmp_path)
        self.feed_blocks(sim, peer, 4)
        assert victim.chain.height == 4
        tip = victim.chain.tip.block.hash
        victim.crash()
        # Sever the in-memory object entirely: prove restart reads disk.
        victim.chain = None
        victim.restart(persist_chain=True, resync=False)
        assert victim.chain.height == 4
        assert victim.chain.tip.block.hash == tip
        assert victim.chain.store is not None

    def test_restart_without_persistence_wipes_store(self, tmp_path):
        sim, victim, peer = self.make_pair(tmp_path)
        self.feed_blocks(sim, peer, 3)
        victim.crash()
        victim.restart(persist_chain=False, resync=False)
        assert victim.chain.height == 0  # storage lost, back to genesis
        # And the on-disk store really is gone: a fresh boot sees nothing.
        victim.crash()
        victim.restart(persist_chain=True, resync=False)
        assert victim.chain.height == 0

    def test_restart_resyncs_torn_suffix_only(self, tmp_path):
        sim, victim, peer = self.make_pair(tmp_path)
        self.feed_blocks(sim, peer, 5)
        victim.crash()
        inject_torn_write(
            str(tmp_path), sim.rng, mode="truncate", node=victim.name
        )
        victim.restart(persist_chain=True, resync=True)
        assert victim.chain.height == 4  # committed prefix, from disk
        sim.run_until(sim.now + 24 * 3600.0)
        assert victim.chain.height == 5  # torn block re-fetched from peer
        assert victim.chain.tip.block.hash == peer.chain.tip.block.hash


class TestKillMidWrite:
    @pytest.mark.parametrize("mode", ["truncate", "corrupt"])
    def test_scenario_recovers(self, tmp_path, mode):
        result = run_kill_mid_write(
            str(tmp_path), seed=3, mode=mode, target_height=16
        )
        assert result.tip_match
        assert result.utxo_match
        assert result.converged
        assert result.refetched_blocks <= 1
        assert result.ok

    def test_deterministic(self, tmp_path):
        a = run_kill_mid_write(
            str(tmp_path / "a"), seed=5, target_height=12
        )
        b = run_kill_mid_write(
            str(tmp_path / "b"), seed=5, target_height=12
        )
        assert (a.recovered_height, a.final_height) == (
            b.recovered_height,
            b.final_height,
        )
