"""Catch-up sync retry timeouts: capped growth and seeded jitter.

The regression being pinned: every (node, peer) pair derives its own
jitter stream from the simulation seed, so peers that time out together
retry on *decorrelated* schedules — while any given seed reproduces its
schedule exactly.
"""

from repro.backoff import backoff_delay
from repro.bitcoin.network import Simulation, build_network
from repro.bitcoin.sync import SyncConfig, SyncSession


def timeout_schedule(seed: int, attempts: int = 4, config: SyncConfig = None):
    config = config or SyncConfig()
    sim = Simulation(seed=seed)
    a, b = build_network(sim, 2)
    session = SyncSession(a, b, "test", config)
    return [
        backoff_delay(
            attempt,
            base=config.timeout,
            cap=config.max_timeout,
            factor=config.backoff,
            jitter=config.jitter,
            rng=session._backoff_rng,
        )
        for attempt in range(1, attempts + 1)
    ]


def test_distinct_seeds_give_divergent_schedules():
    schedules = [tuple(timeout_schedule(seed)) for seed in range(6)]
    assert len(set(schedules)) == 6


def test_same_seed_reproduces_schedule_exactly():
    assert timeout_schedule(42) == timeout_schedule(42)


def test_schedule_grows_within_jitter_band_and_caps():
    config = SyncConfig()
    for delay, nominal in zip(
        timeout_schedule(0, attempts=5, config=config),
        [30.0, 60.0, 120.0, 240.0, 240.0],  # doubling, capped at 240
    ):
        assert nominal * (1 - config.jitter) <= delay
        assert delay <= nominal * (1 + config.jitter)


def test_pairs_within_one_simulation_decorrelate():
    sim = Simulation(seed=0)
    a, b, c = build_network(sim, 3)
    config = SyncConfig()

    def schedule(node, peer):
        session = SyncSession(node, peer, "test", config)
        return [
            backoff_delay(
                n, base=config.timeout, cap=config.max_timeout,
                factor=config.backoff, jitter=config.jitter,
                rng=session._backoff_rng,
            )
            for n in range(1, 5)
        ]

    assert schedule(a, b) != schedule(a, c) != schedule(b, c)


def test_jitter_does_not_draw_from_the_shared_sim_stream():
    """Creating a sync session must not perturb seeded scenarios."""
    sim = Simulation(seed=7)
    a, b = build_network(sim, 2)
    session = SyncSession(a, b, "test", SyncConfig())
    session._backoff_rng.random()  # draw jitter
    # The shared stream must be wherever it would have been anyway; build
    # an identical world without the session and compare the next draw.
    control = Simulation(seed=7)
    build_network(control, 2)
    assert sim.rng.random() == control.rng.random()
