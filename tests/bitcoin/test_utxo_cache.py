"""Tests for the write-back UTXO cache hierarchy.

The cache must be observationally identical to a plain
:class:`~repro.bitcoin.utxo.UTXOSet` — same reads, same strict errors,
same apply/undo round-trips — while the base set only changes at flush.
"""

import pytest

from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import OutPoint, Transaction, TxIn, TxOut
from repro.bitcoin.utxo import UTXOEntry, UTXOSet
from repro.bitcoin.utxo_cache import UTXOCache


def entry(value=1000, height=0, tag=1):
    return UTXOEntry(TxOut(value, p2pkh_script(bytes([tag]) * 20)), height, False)


def op(n, index=0):
    return OutPoint(bytes([n]) * 32, index)


def make_cache(base_entries=()):
    base = UTXOSet()
    for outpoint, e in base_entries:
        base.add(outpoint, e)
    return UTXOCache(base), base


def oracle_size(utxos):
    return sum(e.serialized_size() for _, e in utxos.items())


def test_reads_fall_through_to_base():
    cache, base = make_cache([(op(1), entry(500))])
    assert op(1) in cache
    assert cache.get(op(1)).output.value == 500
    assert len(cache) == 1
    assert cache.serialized_size() == base.serialized_size()


def test_add_is_invisible_to_base_until_flush():
    cache, base = make_cache()
    cache.add(op(2), entry(700))
    assert op(2) in cache and op(2) not in base
    assert len(cache) == 1 and len(base) == 0
    assert cache.flush() == 1
    assert op(2) in base
    assert base.get(op(2)).output.value == 700
    assert cache.overlay_len() == 0


def test_annihilation_never_touches_base():
    cache, base = make_cache()
    cache.add(op(3), entry())
    cache.remove(op(3))
    assert op(3) not in cache
    assert len(cache) == 0
    assert cache.overlay_len() == 0
    assert cache.flush() == 0  # nothing survived to write back
    assert len(base) == 0


def test_tombstone_spends_base_entry_at_flush():
    cache, base = make_cache([(op(4), entry(900))])
    removed = cache.remove(op(4))
    assert removed.output.value == 900
    assert op(4) not in cache
    assert op(4) in base  # not yet written back
    cache.flush()
    assert op(4) not in base


def test_recreate_over_tombstone_replaces_at_flush():
    cache, base = make_cache([(op(5), entry(100, tag=1))])
    cache.remove(op(5))
    cache.add(op(5), entry(200, tag=2))
    assert cache.get(op(5)).output.value == 200
    cache.flush()
    assert base.get(op(5)).output.value == 200


def test_strict_errors_match_plain_set():
    cache, _ = make_cache([(op(6), entry())])
    with pytest.raises(KeyError, match="spending unknown or spent txout"):
        cache.remove(op(7))
    cache.remove(op(6))
    with pytest.raises(KeyError, match="spending unknown or spent txout"):
        cache.remove(op(6))
    cache.add(op(8), entry())
    with pytest.raises(ValueError, match="duplicate"):
        cache.add(op(8), entry())
    cache.flush()
    with pytest.raises(ValueError, match="duplicate"):
        cache.add(op(8), entry())  # duplicate of a base-resident entry


def test_flush_preserves_merged_view_and_sizes():
    cache, base = make_cache([(op(9), entry(1, tag=3)), (op(10), entry(2))])
    cache.remove(op(9))
    cache.add(op(11), entry(3, tag=4))
    cache.add(op(12), entry(4, tag=5))
    cache.remove(op(12))  # annihilates
    before = cache.snapshot()
    assert cache.serialized_size() == oracle_size(cache)
    assert len(cache) == len(before)
    cache.flush()
    assert cache.snapshot() == before
    assert base.snapshot() == before
    assert cache.serialized_size() == oracle_size(cache)


def coinbase_tx(tag):
    return Transaction(
        vin=[TxIn(OutPoint.null())],
        vout=[TxOut(5000, p2pkh_script(bytes([tag]) * 20))],
    )


def spend_tx(prevout, n_out=2):
    return Transaction(
        vin=[TxIn(prevout)],
        vout=[TxOut(100, p2pkh_script(bytes([i + 1]) * 20)) for i in range(n_out)],
    )


def test_apply_and_undo_round_trip_matches_plain_set():
    plain = UTXOSet()
    cache, _ = make_cache()
    cb = coinbase_tx(1)
    spend = spend_tx(cb.outpoint(0))
    for utxos in (plain, cache):
        utxos.apply_block_txs([cb], height=1)
    baseline = plain.snapshot()
    assert cache.snapshot() == baseline
    undos = [u.apply_block_txs([spend], height=2) for u in (plain, cache)]
    assert cache.snapshot() == plain.snapshot()
    # Flush mid-history, then undo across the flush boundary: the undo
    # data predates the flush, and must still round-trip exactly.
    cache.flush()
    plain.undo_block(undos[0])
    cache.undo_block(undos[1])
    assert cache.snapshot() == plain.snapshot() == baseline
    assert cache.serialized_size() == plain.serialized_size()


def test_undo_missing_created_raises_like_plain_set():
    cache, _ = make_cache()
    cb = coinbase_tx(2)
    undo = cache.apply_block_txs([cb], height=1)
    cache.remove(cb.outpoint(0))  # someone else consumed it
    with pytest.raises(KeyError, match="undo expected created txout"):
        cache.undo_block(undo)


def test_undo_after_flush_restores_via_overlay():
    cache, base = make_cache()
    cb = coinbase_tx(3)
    cache.apply_block_txs([cb], height=1)
    cache.flush()
    assert cb.outpoint(0) in base
    spend = spend_tx(cb.outpoint(0))
    undo = cache.apply_block_txs([spend], height=2)
    cache.undo_block(undo)
    assert cache.get(cb.outpoint(0)).output.value == 5000
    cache.flush()
    assert base.get(cb.outpoint(0)).output.value == 5000


def test_size_trigger_flushes_automatically():
    cache, base = make_cache()
    cache.max_entries = 3
    txs = [coinbase_tx(i + 1) for i in range(5)]
    cache.apply_block_txs(txs, height=1)
    # Overlay outgrew the budget during the block: it was written back.
    assert cache.overlay_len() == 0
    assert len(base) == 5


def test_aggregates_cover_merged_view():
    cache, _ = make_cache([(op(20), entry(11, tag=6))])
    cache.add(op(21), entry(22, tag=7))
    assert cache.total_value() == 33
    counts = cache.count_by_type()
    assert sum(counts.values()) == 2
    assert dict(cache.items()) == cache.snapshot()
