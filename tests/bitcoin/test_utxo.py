"""Tests for the unspent-txout table."""

import pytest

from repro.bitcoin.script import Op, Script
from repro.bitcoin.standard import ScriptType, op_return_script, p2pkh_script
from repro.bitcoin.transaction import OutPoint, Transaction, TxIn, TxOut
from repro.bitcoin.utxo import BlockUndo, UTXOEntry, UTXOSet


def entry(value=1000, height=0):
    return UTXOEntry(TxOut(value, p2pkh_script(b"\x01" * 20)), height, False)


def test_add_get_remove():
    utxos = UTXOSet()
    op = OutPoint(b"\x01" * 32, 0)
    utxos.add(op, entry())
    assert op in utxos
    assert utxos.get(op).output.value == 1000
    removed = utxos.remove(op)
    assert removed.output.value == 1000
    assert op not in utxos


def test_duplicate_add_rejected():
    utxos = UTXOSet()
    op = OutPoint(b"\x01" * 32, 0)
    utxos.add(op, entry())
    with pytest.raises(ValueError, match="duplicate"):
        utxos.add(op, entry())


def test_double_remove_rejected():
    utxos = UTXOSet()
    op = OutPoint(b"\x01" * 32, 0)
    utxos.add(op, entry())
    utxos.remove(op)
    with pytest.raises(KeyError):
        utxos.remove(op)


def make_spending_tx(prevout, n_out=2):
    return Transaction(
        vin=[TxIn(prevout)],
        vout=[TxOut(100, p2pkh_script(bytes([i]) * 20)) for i in range(n_out)],
    )


def test_apply_transaction_spends_and_creates():
    utxos = UTXOSet()
    op = OutPoint(b"\x01" * 32, 0)
    utxos.add(op, entry())
    tx = make_spending_tx(op)
    utxos.apply_transaction(tx, height=5)
    assert op not in utxos
    assert tx.outpoint(0) in utxos
    assert tx.outpoint(1) in utxos
    assert len(utxos) == 2


def test_op_return_outputs_never_enter_table():
    utxos = UTXOSet()
    op = OutPoint(b"\x01" * 32, 0)
    utxos.add(op, entry())
    tx = Transaction(
        vin=[TxIn(op)],
        vout=[TxOut(0, op_return_script(b"data")), TxOut(100, p2pkh_script(b"\x02" * 20))],
    )
    utxos.apply_transaction(tx, height=1)
    assert tx.outpoint(0) not in utxos
    assert tx.outpoint(1) in utxos


def test_undo_restores_exact_state():
    utxos = UTXOSet()
    op = OutPoint(b"\x01" * 32, 0)
    original = entry(value=777, height=3)
    utxos.add(op, original)
    before = utxos.snapshot()

    tx = make_spending_tx(op)
    undo = BlockUndo()
    utxos.apply_transaction(tx, height=5, undo=undo)
    assert utxos.snapshot() != before

    utxos.undo_block(undo)
    assert utxos.snapshot() == before
    assert utxos.get(op) == original


def test_block_level_apply_and_undo():
    utxos = UTXOSet()
    coinbase = Transaction(
        vin=[TxIn(OutPoint.null(), Script([b"\x01"]))],
        vout=[TxOut(5000, p2pkh_script(b"\x03" * 20))],
    )
    spend = make_spending_tx(coinbase.outpoint(0))
    # First block: coinbase only.
    undo1 = utxos.apply_block_txs([coinbase], height=1)
    snapshot = utxos.snapshot()
    undo2 = utxos.apply_block_txs([spend], height=2)
    utxos.undo_block(undo2)
    assert utxos.snapshot() == snapshot
    utxos.undo_block(undo1)
    assert len(utxos) == 0


def test_value_and_size_metrics():
    utxos = UTXOSet()
    utxos.add(OutPoint(b"\x01" * 32, 0), entry(value=100))
    utxos.add(OutPoint(b"\x01" * 32, 1), entry(value=200))
    assert utxos.total_value() == 300
    assert utxos.serialized_size() > 0
    counts = utxos.count_by_type()
    assert counts[ScriptType.P2PKH] == 2


def test_nonstandard_outputs_counted():
    """Bogus-key outputs (the rejected §3.3 strategy) stay in the table."""
    utxos = UTXOSet()
    bogus = Script([b"\x99" * 33, Op.OP_CHECKSIG])  # not a valid pubkey shape? 33 bytes starting 0x99
    utxos.add(
        OutPoint(b"\x02" * 32, 0),
        UTXOEntry(TxOut(1, bogus), 0, False),
    )
    counts = utxos.count_by_type()
    assert ScriptType.NONSTANDARD in counts


def test_undo_missing_created_output_raises():
    """Undo data that doesn't describe the current state must not be
    applied silently — a created output absent from the table raises."""
    utxos = UTXOSet()
    undo = BlockUndo(created=[OutPoint(b"\x09" * 32, 0)])
    with pytest.raises(KeyError, match="undo expected created txout"):
        utxos.undo_block(undo)


def test_undo_missing_created_output_leaves_no_partial_state():
    utxos = UTXOSet()
    present = OutPoint(b"\x0a" * 32, 0)
    utxos.add(present, entry())
    undo = BlockUndo(
        created=[OutPoint(b"\x0b" * 32, 1), present]  # second one missing
    )
    with pytest.raises(KeyError):
        utxos.undo_block(undo)
    # The present output was popped before the failure surfaced; the
    # exception is the signal that this set is no longer trustworthy.
    assert present not in utxos
