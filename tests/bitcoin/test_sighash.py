"""Tests for SIGHASH digest computation."""

import pytest

from repro.bitcoin.script import Script
from repro.bitcoin.sighash import SighashCache, SigHashType, signature_hash
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import OutPoint, Transaction, TxIn, TxOut


def make_tx(n_in=2, n_out=2):
    vin = [TxIn(OutPoint(bytes([i + 1]) * 32, i)) for i in range(n_in)]
    vout = [TxOut(1000 * (i + 1), p2pkh_script(bytes([i]) * 20)) for i in range(n_out)]
    return Transaction(vin, vout)


CODE = p2pkh_script(b"\x07" * 20)


def test_all_commits_to_outputs():
    tx = make_tx()
    base = signature_hash(tx, 0, CODE, SigHashType.ALL)
    changed = Transaction(tx.vin, [tx.vout[0], TxOut(9999, tx.vout[1].script_pubkey)])
    assert signature_hash(changed, 0, CODE, SigHashType.ALL) != base


def test_none_ignores_outputs():
    tx = make_tx()
    base = signature_hash(tx, 0, CODE, SigHashType.NONE)
    changed = Transaction(tx.vin, [TxOut(42, Script())])
    assert signature_hash(changed, 0, CODE, SigHashType.NONE) == base


def test_single_commits_to_matching_output_only():
    tx = make_tx(2, 2)
    base = signature_hash(tx, 0, CODE, SigHashType.SINGLE)
    # Changing output 1 (not matching input 0) leaves the digest alone.
    changed = Transaction(tx.vin, [tx.vout[0], TxOut(777, tx.vout[1].script_pubkey)])
    assert signature_hash(changed, 0, CODE, SigHashType.SINGLE) == base
    # Changing output 0 does not.
    changed2 = Transaction(tx.vin, [TxOut(777, tx.vout[0].script_pubkey), tx.vout[1]])
    assert signature_hash(changed2, 0, CODE, SigHashType.SINGLE) != base


def test_single_bug_digest():
    tx = make_tx(3, 1)
    digest = signature_hash(tx, 2, CODE, SigHashType.SINGLE)
    assert digest == (1).to_bytes(32, "little")


def test_anyonecanpay_ignores_other_inputs():
    tx = make_tx(2, 1)
    hash_type = SigHashType.ALL | SigHashType.ANYONECANPAY
    base = signature_hash(tx, 0, CODE, hash_type)
    # Add a third input: digest for input 0 is unchanged.
    extended = Transaction(
        list(tx.vin) + [TxIn(OutPoint(b"\xaa" * 32, 7))], tx.vout
    )
    assert signature_hash(extended, 0, CODE, hash_type) == base


def test_without_anyonecanpay_other_inputs_commit():
    tx = make_tx(2, 1)
    base = signature_hash(tx, 0, CODE, SigHashType.ALL)
    extended = Transaction(
        list(tx.vin) + [TxIn(OutPoint(b"\xaa" * 32, 7))], tx.vout
    )
    assert signature_hash(extended, 0, CODE, SigHashType.ALL) != base


def test_different_inputs_get_different_digests():
    tx = make_tx(2, 1)
    assert signature_hash(tx, 0, CODE, SigHashType.ALL) != signature_hash(
        tx, 1, CODE, SigHashType.ALL
    )


def test_script_code_commits():
    tx = make_tx()
    other_code = p2pkh_script(b"\x08" * 20)
    assert signature_hash(tx, 0, CODE, SigHashType.ALL) != signature_hash(
        tx, 0, other_code, SigHashType.ALL
    )


def test_hash_type_commits():
    tx = make_tx()
    assert signature_hash(tx, 0, CODE, SigHashType.ALL) != signature_hash(
        tx, 0, CODE, SigHashType.NONE
    )


def test_input_index_out_of_range():
    with pytest.raises(ValueError, match="out of range"):
        signature_hash(make_tx(1, 1), 5, CODE, SigHashType.ALL)
    with pytest.raises(ValueError, match="out of range"):
        signature_hash(make_tx(1, 1), -1, CODE, SigHashType.ALL)


ALL_HASH_TYPES = [
    int(base) | acp
    for base in (SigHashType.ALL, SigHashType.NONE, SigHashType.SINGLE)
    for acp in (0, int(SigHashType.ANYONECANPAY))
]


@pytest.mark.parametrize("hash_type", ALL_HASH_TYPES)
def test_cache_matches_reference_all_types(hash_type):
    tx = make_tx(3, 2)
    cache = SighashCache(tx)
    for index in range(len(tx.vin)):
        ref = signature_hash(tx, index, CODE, hash_type)
        assert cache.digest(index, CODE, hash_type) == ref
        # Memoized second call returns the same bytes.
        assert cache.digest(index, CODE, hash_type) == ref


def test_cache_single_bug_digest():
    tx = make_tx(3, 1)
    cache = SighashCache(tx)
    assert cache.digest(2, CODE, SigHashType.SINGLE) == (1).to_bytes(32, "little")
    assert cache.digest(2, CODE, SigHashType.SINGLE) == signature_hash(
        tx, 2, CODE, SigHashType.SINGLE
    )
    # The bug digest only applies when the base type is SINGLE.
    assert cache.digest(2, CODE, SigHashType.ALL) == signature_hash(
        tx, 2, CODE, SigHashType.ALL
    )


@pytest.mark.parametrize("hash_type", ALL_HASH_TYPES)
def test_cache_distinct_script_codes(hash_type):
    tx = make_tx(2, 2)
    cache = SighashCache(tx)
    other = p2pkh_script(b"\x08" * 20)
    assert cache.digest(0, CODE, hash_type) == signature_hash(tx, 0, CODE, hash_type)
    assert cache.digest(0, other, hash_type) == signature_hash(tx, 0, other, hash_type)


def test_cache_nonstandard_version_locktime_sequence():
    vin = [
        TxIn(OutPoint(b"\x01" * 32, 0), sequence=0),
        TxIn(OutPoint(b"\x02" * 32, 1), sequence=12345),
    ]
    vout = [TxOut(500, p2pkh_script(b"\x03" * 20))]
    tx = Transaction(vin, vout, version=2, locktime=700001)
    cache = SighashCache(tx)
    for hash_type in ALL_HASH_TYPES:
        for index in range(2):
            assert cache.digest(index, CODE, hash_type) == signature_hash(
                tx, index, CODE, hash_type
            )


def test_cache_input_index_out_of_range():
    cache = SighashCache(make_tx(1, 1))
    with pytest.raises(ValueError, match="out of range"):
        cache.digest(5, CODE, SigHashType.ALL)
    with pytest.raises(ValueError, match="out of range"):
        cache.digest(-1, CODE, SigHashType.ALL)


def test_open_transaction_pattern():
    """§7/§8: SIGHASH erasure lets blanks be filled without breaking sigs.

    With ALL|ANYONECANPAY on input 0, another party can attach their own
    input (the 'solution' txout) later; the digest input 0 signed is stable.
    """
    prize_input = TxIn(OutPoint(b"\x01" * 32, 0))
    outputs = [TxOut(5000, p2pkh_script(b"\x99" * 20))]
    open_tx = Transaction([prize_input], outputs)
    hash_type = SigHashType.ALL | SigHashType.ANYONECANPAY
    digest_before = signature_hash(open_tx, 0, CODE, hash_type)

    filled = Transaction(
        [prize_input, TxIn(OutPoint(b"\x02" * 32, 1))], outputs
    )
    assert signature_hash(filled, 0, CODE, hash_type) == digest_before
