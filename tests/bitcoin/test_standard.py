"""Tests for standard script schemas and relay policy."""

import pytest

from repro.bitcoin.script import Op, Script
from repro.bitcoin.standard import (
    Classified,
    ScriptType,
    classify,
    is_standard,
    multisig_script,
    op_return_script,
    p2pk_script,
    p2pkh_script,
)
from repro.crypto.keys import PrivateKey

KEY = PrivateKey.from_seed(b"standard").public


def test_p2pkh_classification():
    script = p2pkh_script(KEY.key_hash)
    result = classify(script)
    assert result.type is ScriptType.P2PKH
    assert result.data == (KEY.key_hash,)
    assert result.required_sigs == 1


def test_p2pkh_requires_20_byte_hash():
    with pytest.raises(ValueError):
        p2pkh_script(b"\x00" * 19)


def test_p2pk_classification():
    result = classify(p2pk_script(KEY.encoded))
    assert result.type is ScriptType.P2PK
    assert result.data == (KEY.encoded,)


def test_multisig_classification():
    k2 = PrivateKey.from_seed(b"second").public
    script = multisig_script(1, [KEY.encoded, k2.encoded])
    result = classify(script)
    assert result.type is ScriptType.MULTISIG
    assert result.required_sigs == 1
    assert result.data == (KEY.encoded, k2.encoded)


def test_multisig_2_of_3():
    keys = [PrivateKey.from_seed(bytes([i])).public.encoded for i in range(3)]
    result = classify(multisig_script(2, keys))
    assert result.type is ScriptType.MULTISIG
    assert result.required_sigs == 2


def test_multisig_limits():
    keys = [PrivateKey.from_seed(bytes([i])).public.encoded for i in range(4)]
    with pytest.raises(ValueError):
        multisig_script(1, keys)  # n > 3 is non-standard
    with pytest.raises(ValueError):
        multisig_script(3, keys[:2])  # m > n


def test_1of2_with_metadata_key_is_standard():
    """The paper's embedding (§3.3): one real key, one 33-byte 'key' of data."""
    metadata = b"\x02" + b"\xde\xad" * 16
    script = multisig_script(1, [KEY.encoded, metadata])
    assert is_standard(script)
    assert classify(script).type is ScriptType.MULTISIG


def test_op_return_classification():
    result = classify(op_return_script(b"hello metadata"))
    assert result.type is ScriptType.OP_RETURN
    assert result.data == (b"hello metadata",)


def test_op_return_size_cap():
    with pytest.raises(ValueError):
        op_return_script(b"\x00" * 81)


def test_nonstandard_scripts():
    assert classify(Script([Op.OP_1])).type is ScriptType.NONSTANDARD
    assert not is_standard(Script([Op.OP_ADD]))
    # Wrong-length "key hash".
    bad = Script([Op.OP_DUP, Op.OP_HASH160, b"\x00" * 19, Op.OP_EQUALVERIFY,
                  Op.OP_CHECKSIG])
    assert classify(bad).type is ScriptType.NONSTANDARD


def test_multisig_with_garbage_length_key_nonstandard():
    script = Script([Op.OP_1, b"short", Op.OP_1, Op.OP_CHECKMULTISIG])
    assert classify(script).type is ScriptType.NONSTANDARD


def test_multisig_wrong_count_nonstandard():
    # Declares 2 keys but provides 1.
    script = Script([Op.OP_1, KEY.encoded, Op.OP_2, Op.OP_CHECKMULTISIG])
    assert classify(script).type is ScriptType.NONSTANDARD


def test_standard_scripts_roundtrip_serialization():
    for script in (
        p2pkh_script(KEY.key_hash),
        p2pk_script(KEY.encoded),
        multisig_script(1, [KEY.encoded]),
        op_return_script(b"x"),
    ):
        assert classify(Script.parse(script.serialize())).type is classify(script).type
