"""Tests for the discrete-event network simulator and race models."""

import random

import pytest

from repro.bitcoin.chain import ChainParams
from repro.bitcoin.network import (
    STOP_DRAINED,
    STOP_PREDICATE,
    STOP_TIME_LIMIT,
    Node,
    PoissonMiner,
    Simulation,
    build_network,
    nakamoto_reversal_probability,
    reversal_probability_exact,
    simulate_race,
    simulate_race_full,
)
from repro.bitcoin.pow import block_work, target_to_bits


def total_rate_for_interval(interval=600.0):
    return block_work(target_to_bits(2**252)) / interval


class TestSimulation:
    def test_events_fire_in_order(self):
        sim = Simulation()
        fired = []
        sim.schedule(5, lambda: fired.append("b"))
        sim.schedule(1, lambda: fired.append("a"))
        sim.schedule(10, lambda: fired.append("c"))
        sim.run_until(7)
        assert fired == ["a", "b"]
        assert sim.now == 7

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulation().schedule(-1, lambda: None)

    def test_seeded_determinism(self):
        def run(seed):
            sim = Simulation(seed=seed)
            nodes = build_network(sim, 3)
            miner = PoissonMiner(nodes[0], total_rate_for_interval(), miner_id=1)
            miner.start()
            sim.run_until(3600)
            return nodes[0].chain.tip.block.hash

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestGossip:
    def test_blocks_propagate_to_all_nodes(self):
        sim = Simulation(seed=1)
        nodes = build_network(sim, 5)
        miner = PoissonMiner(nodes[0], total_rate_for_interval(), miner_id=1)
        miner.start()
        sim.run_until(3600 * 4)
        heights = {node.chain.height for node in nodes}
        assert len(heights) == 1
        assert heights.pop() > 0
        tips = {node.chain.tip.block.hash for node in nodes}
        assert len(tips) == 1

    def test_competing_miners_converge(self):
        sim = Simulation(seed=2)
        nodes = build_network(sim, 4)
        rate = total_rate_for_interval()
        miners = [
            PoissonMiner(nodes[i], rate / 4, miner_id=i) for i in range(4)
        ]
        for miner in miners:
            miner.start()
        sim.run_until(3600 * 8)
        tips = {node.chain.tip.block.hash for node in nodes}
        assert len(tips) == 1
        assert sum(m.blocks_found for m in miners) >= nodes[0].chain.height

    def test_block_interval_tracks_hashrate(self):
        sim = Simulation(seed=3)
        nodes = build_network(sim, 2)
        miner = PoissonMiner(nodes[0], total_rate_for_interval(600), miner_id=1)
        miner.start()
        sim.run_until(600 * 400)
        height = nodes[0].chain.height
        mean_interval = sim.now / height
        assert 450 < mean_interval < 800  # ~600 expected


class TestRace:
    def test_analytic_decreases_exponentially(self):
        probs = [nakamoto_reversal_probability(0.1, z) for z in range(8)]
        assert probs[0] == 1.0
        for earlier, later in zip(probs[1:], probs[2:]):
            assert later < earlier
        # Six confirmations against a 10% attacker: well under a percent.
        assert probs[6] < 0.001

    def test_exact_matches_nakamoto_shape(self):
        for q in (0.05, 0.15, 0.25):
            for z in (1, 3, 5):
                exact = reversal_probability_exact(q, z)
                nak = nakamoto_reversal_probability(q, z)
                assert exact == pytest.approx(nak, rel=0.75, abs=0.02)

    def test_zero_attacker_never_wins(self):
        assert nakamoto_reversal_probability(0.0, 3) == 0.0
        assert reversal_probability_exact(0.0, 3) == 0.0
        assert simulate_race(0.0, 3, 10, random.Random(0)) == 0.0

    def test_zero_depth_always_reversible(self):
        assert nakamoto_reversal_probability(0.2, 0) == 1.0
        assert reversal_probability_exact(0.2, 0) == 1.0

    def test_majority_attacker_rejected(self):
        with pytest.raises(ValueError):
            nakamoto_reversal_probability(0.6, 3)
        with pytest.raises(ValueError):
            reversal_probability_exact(0.5, 3)

    def test_monte_carlo_matches_exact(self):
        rng = random.Random(42)
        estimate = simulate_race(0.2, 2, trials=3000, rng=rng)
        exact = reversal_probability_exact(0.2, 2)
        assert estimate == pytest.approx(exact, abs=0.03)

    def test_full_simulation_race_runs(self):
        outcome = simulate_race_full(0.3, 2, sim_seed=11, horizon_blocks=60)
        assert outcome.honest_blocks > 0
        assert outcome.duration > 0

    def test_full_simulation_weak_attacker_loses(self):
        # 5% attacker against 6 confirmations: overwhelmingly loses.
        losses = sum(
            not simulate_race_full(0.05, 6, sim_seed=s, horizon_blocks=30).attacker_won
            for s in range(5)
        )
        assert losses == 5


class TestStopReasons:
    """run_until / run_while report how they stopped (satellite 2)."""

    def test_run_until_drained(self):
        sim = Simulation()
        sim.schedule(1, lambda: None)
        assert sim.run_until(10) == STOP_DRAINED
        assert sim.now == 10

    def test_run_until_time_limit(self):
        sim = Simulation()
        sim.schedule(1, lambda: None)
        sim.schedule(50, lambda: None)
        assert sim.run_until(10) == STOP_TIME_LIMIT

    def test_run_until_empty_queue_is_drained(self):
        assert Simulation().run_until(5) == STOP_DRAINED

    def test_run_while_predicate_releases(self):
        sim = Simulation()
        fired = []
        for t in range(1, 6):
            sim.schedule(t, lambda t=t: fired.append(t))
        reason = sim.run_while(lambda: len(fired) < 2, limit=100)
        assert reason == STOP_PREDICATE
        assert fired == [1, 2]

    def test_run_while_drained(self):
        sim = Simulation()
        sim.schedule(1, lambda: None)
        assert sim.run_while(lambda: True, limit=100) == STOP_DRAINED

    def test_run_while_time_limit(self):
        sim = Simulation()
        sim.schedule(1, lambda: None)
        sim.schedule(500, lambda: None)
        assert sim.run_while(lambda: True, limit=100) == STOP_TIME_LIMIT

    def test_events_processed_counts(self):
        sim = Simulation()
        for t in range(3):
            sim.schedule(t, lambda: None)
        sim.run_until(10)
        assert sim.events_processed == 3


@pytest.fixture
def obs_on():
    """Observability enabled against private state, restored afterwards."""
    from repro import obs

    was_enabled = obs.ENABLED
    saved_registry = obs.set_registry(obs.Registry())
    saved_tracer = obs.set_tracer(obs.Tracer())
    saved_events = obs.set_event_log(obs.EventLog())
    obs.enable()
    yield obs
    obs.set_registry(saved_registry)
    obs.set_tracer(saved_tracer)
    obs.set_event_log(saved_events)
    obs.ENABLED = was_enabled


class TestSeenEviction:
    """PR 10 regression: the per-node seen set is bounded, so a held
    transaction's entry can be evicted by unrelated traffic.  A late
    duplicate arriving after eviction used to be re-validated (a spurious
    mempool rejection) and could be re-relayed; now the mempool and chain
    are consulted first and the copy is suppressed outright."""

    def _junk_tx(self, i):
        from repro.bitcoin.standard import p2pkh_script
        from repro.bitcoin.transaction import (
            OutPoint,
            Transaction,
            TxIn,
            TxOut,
        )

        return Transaction(
            vin=[TxIn(OutPoint(bytes([i]) * 32, 0))],
            vout=[TxOut(1_000, p2pkh_script(b"\x22" * 20))],
        )

    def _funded_pair(self, obs_on, seed=3):
        from repro.bitcoin.population import fund_wallets
        from repro.bitcoin.wallet import Wallet

        sim = Simulation(seed=seed)
        a, b = build_network(sim, 2)
        wallet = Wallet.from_seed(b"seen-eviction")
        for block in fund_wallets([wallet.key_hash]):
            assert a.chain.add_block(block)
            assert b.chain.add_block(block)
        return sim, a, b, wallet

    def test_held_duplicate_suppressed_after_eviction(self, obs_on):
        from repro.bitcoin.standard import p2pkh_script
        from repro.bitcoin.transaction import TxOut

        sim, a, b, wallet = self._funded_pair(obs_on)
        a.seen_limit = 4
        tx = wallet.create_transaction(
            a.chain,
            [TxOut(30_000, p2pkh_script(wallet.key_hash))],
            fee=10_000,
        )
        assert a.submit_transaction(tx)
        sim.run_until(120.0)
        assert tx.txid in a.mempool and tx.txid in b.mempool

        # Unrelated junk floods the bounded seen set past its cap; the
        # held transaction's entry is evicted while the tx stays pooled.
        for i in range(1, 6):
            assert not a.submit_transaction(self._junk_tx(i))
        assert tx.txid not in a._seen_txs
        assert tx.txid in a.mempool

        registry = obs_on.registry()
        rejected_before = registry.counter("mempool.rejected_total").value
        bytes_before = dict(a.bytes_sent)

        # The late duplicate comes back from the peer: it must be
        # suppressed against the mempool — not re-validated (which
        # counted a spurious rejection pre-fix) and not re-relayed.
        assert not a.submit_transaction(tx, origin=b, hop=1)
        assert (
            registry.counter("net.duplicates_suppressed_total").value == 1
        )
        assert (
            registry.counter("mempool.rejected_total").value
            == rejected_before
        )
        assert a.bytes_sent == bytes_before
        assert a.misbehavior_score(b) == 0

    def test_confirmed_duplicate_suppressed_after_eviction(self, obs_on):
        from repro.bitcoin.miner import Miner
        from repro.bitcoin.standard import p2pkh_script
        from repro.bitcoin.transaction import TxOut

        sim, a, b, wallet = self._funded_pair(obs_on, seed=4)
        a.seen_limit = 4
        tx = wallet.create_transaction(
            a.chain,
            [TxOut(30_000, p2pkh_script(wallet.key_hash))],
            fee=10_000,
        )
        assert a.submit_transaction(tx)
        sim.run_until(120.0)

        # Confirm the transaction everywhere, then evict its seen entry.
        miner = Miner(a.chain, wallet.key_hash)
        block = miner.assemble(
            a.mempool, timestamp=a.chain.median_time_past() + 1
        )
        a.submit_block(block)
        assert a.chain.get_transaction(tx.txid) is not None
        sim.run_until(240.0)
        assert b.chain.get_transaction(tx.txid) is not None
        for i in range(1, 6):
            a.submit_transaction(self._junk_tx(i))
        assert tx.txid not in a._seen_txs

        registry = obs_on.registry()
        rejected_before = registry.counter("mempool.rejected_total").value
        assert not a.submit_transaction(tx, origin=b, hop=1)
        assert (
            registry.counter("net.duplicates_suppressed_total").value == 1
        )
        assert (
            registry.counter("mempool.rejected_total").value
            == rejected_before
        )
        assert a.misbehavior_score(b) == 0
