"""The verification service's two cache layers.

Both are sound by construction, which is the whole point — a caching
verifier that can be talked into a wrong verdict is worse than no
verifier:

* :class:`TxMemoTable` memoizes *per-transaction typecheck outcomes
  keyed by txid*.  Soundness rests on chain embedding: a carrier's txid
  commits to the Typecoin transaction's full serialization (the §3
  correspondence check), so once a transaction typechecked under a
  given txid, the same (txid, digest) pair can never name different
  content.  Every lookup re-derives the digest from the *presented*
  bytes and compares — an entry whose stored digest disagrees is
  treated as poisoned, evicted, counted, and the transaction is
  re-checked from scratch.  The memo stores only the boolean outcome;
  output propositions are always recomputed from the presented
  transaction, so a poisoned entry can at worst cause a recheck, never
  a wrong type.

* :class:`AffirmationCache` is the sigcache pattern applied to the
  proof checker's hottest leaf: ECDSA verification of ``assert`` /
  ``assert!`` affirmations.  The result is a pure function of
  (principal, pubkey, payload digest, signature), so a bounded LRU over
  that 4-tuple is malleability-safe for the same reason
  :mod:`repro.bitcoin.sigcache` is — the signature bytes are part of
  the key.  Install it with :func:`install_affirmation_cache`; the
  service installs one per worker process and one in-process, and
  *uninstalls* it on the degraded (cache-off) path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro import obs
from repro.crypto.hashing import sha256
from repro.logic import checker as _checker

__all__ = [
    "AffirmationCache",
    "LRU",
    "TxMemoTable",
    "install_affirmation_cache",
    "tx_digest",
]


def tx_digest(txn_bytes: bytes) -> bytes:
    """The memo digest of a transaction's wire encoding."""
    return sha256(txn_bytes)


class LRU:
    """A minimal thread-safe bounded LRU map (move-to-front on hit)."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def evict(self, key) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class TxMemoTable:
    """txid → typecheck-outcome memo with digest-checked lookups."""

    def __init__(self, capacity: int = 4096):
        self._lru = LRU(capacity)
        self.poison_rejected = 0

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    def lookup(self, txid: bytes, digest: bytes) -> bool:
        """True when ``txid`` is memoized as checked *for these bytes*.

        A stored digest that disagrees with the presented transaction's
        digest is a poisoned (or impossibly stale) entry: it is evicted
        and counted, and the caller re-checks from scratch — the explicit
        "rejected by digest check" path the chaos scenario exercises.
        """
        stored = self._lru.get(txid)
        if stored is None:
            if obs.ENABLED:
                obs.inc("service.memo_misses_total")
            return False
        if stored != digest:
            self.poison_rejected += 1
            self._lru.evict(txid)
            if obs.ENABLED:
                obs.inc("service.memo_poison_rejected_total")
                obs.emit("service.poison_rejected", txid=txid.hex()[:16])
            return False
        if obs.ENABLED:
            obs.inc("service.memo_hits_total")
        return True

    def record(self, txid: bytes, digest: bytes) -> None:
        """Memoize a successful typecheck of ``txid`` at ``digest``."""
        self._lru.put(txid, digest)

    def poison(self, txid: bytes, fake_digest: bytes) -> None:
        """Deliberately corrupt the entry for ``txid`` (fault injection).

        This is the chaos layer's cache-poisoning injector: it plants an
        entry whose digest cannot match any honestly-presented bytes, so
        the next lookup must take the rejection path.
        """
        self._lru.put(txid, fake_digest)


class AffirmationCache(LRU):
    """Bounded LRU over affirmation-signature verification results.

    Keys are ``(principal_key_hash, pubkey, payload_digest, signature)``
    tuples built by :func:`repro.logic.checker.verify_affirmation`; values
    are booleans.  Subclasses :class:`LRU` only to give the installed
    object a distinguishable type in introspection and tests.
    """

    def __init__(self, capacity: int = 1 << 14):
        super().__init__(capacity)


def install_affirmation_cache(cache: AffirmationCache | None):
    """Install (or, with ``None``, remove) the checker-level cache.

    Returns the previously installed cache so callers can restore it —
    the service does this around its degraded cache-off path and at
    close, keeping the global hook's lifetime exactly the service's.
    """
    previous = _checker.AFFIRMATION_CACHE
    _checker.AFFIRMATION_CACHE = cache
    return previous
