"""``repro.service`` — the fault-tolerant proof-verification service.

The paper's §3 verification protocol run as a long-lived server instead
of a one-shot library call: per-transaction typecheck results memoized
by txid (sound because chain-embedded transactions are immutable),
proof-check signature verifications shared through a bounded LRU, and
independent checks fanned across a process pool.  Every failure mode is
first-class — deadlines propagate into the recursive checkers
(:mod:`repro.cancel`), the client retries with capped jittered backoff
(:mod:`repro.backoff`), a circuit breaker sheds a sick worker pool, a
bounded admission queue sheds overload, and worker crashes respawn with
idempotent re-dispatch.  The load-bearing invariant: the service never
returns a wrong verdict; infrastructure trouble surfaces as
``timeout``/``overloaded``/``draining``/``error``, never as a false
``ok`` or ``invalid``.  See ``docs/service.md``.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.cache import (
    AffirmationCache,
    TxMemoTable,
    install_affirmation_cache,
    tx_digest,
)
from repro.service.client import RETRYABLE_STATUSES, ServiceClient
from repro.service.pool import (
    CheckJob,
    JobResult,
    PoolBroken,
    WorkerPool,
    make_job,
    run_job,
)
from repro.service.server import Verdict, VerificationService

__all__ = [
    "AffirmationCache",
    "CheckJob",
    "CircuitBreaker",
    "JobResult",
    "PoolBroken",
    "RETRYABLE_STATUSES",
    "ServiceClient",
    "TxMemoTable",
    "Verdict",
    "VerificationService",
    "WorkerPool",
    "install_affirmation_cache",
    "make_job",
    "run_job",
    "tx_digest",
]
