"""The fault-tolerant verification service.

:class:`VerificationService` answers §3 claim-verification requests
(`"is txout I's type as claimed?"`) the way the paper's verifying party
would run it *at scale*: memoized, parallel, and — the point of this
subsystem — failing in only the ways it promises to.  The one invariant
everything here defends:

    **the service never returns a wrong verdict.**

``ok`` means the full §3 protocol ran to completion; ``invalid`` means a
deterministic check (correspondence, typecheck, claim equality, spend
status) failed.  Every infrastructure problem — deadline expiry, a
saturated admission queue, a dying worker pool, a drain in progress, an
unexpected exception — maps to one of the *non-verdict* statuses
(``timeout`` / ``overloaded`` / ``draining`` / ``error``), so a caller
can always distinguish "the proof is bad" from "the service had a bad
day".  ``run_service_chaos`` (:mod:`repro.bitcoin.faults`) checks this
invariant against a trusted single-process replay under inferno-grade
fault injection.

The degradation ladder, in order of retreat:

1. **pooled** — independent transactions of one wavefront level fan out
   across the process pool, results consumed in submission order;
2. **serial** — the pool broke past its respawn budget (or the circuit
   breaker is open): checks run in-process, caches still on;
3. **cache-off serial** — the breaker is open: the txid memo is not
   consulted and the affirmation sigcache is uninstalled for the
   request, so a request that follows repeated infrastructure failures
   trusts nothing but the deterministic checkers themselves.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro import cancel, obs
from repro.core.overlay import OverlayError, check_carrier_correspondence
from repro.core.transaction import referenced_txids
from repro.core.validate import Ledger, world_at
from repro.core.verifier import ClaimBundle, VerificationError
from repro.core.wire import encode_transaction
from repro.logic.propositions import normalize_prop, props_equal
from repro.service.breaker import CircuitBreaker
from repro.service.cache import (
    AffirmationCache,
    TxMemoTable,
    install_affirmation_cache,
    tx_digest,
)
from repro.service.pool import PoolBroken, WorkerPool, make_job, run_job

__all__ = ["ServiceUnavailable", "Verdict", "VerificationService"]

# Terminal statuses a request can resolve to.  Only the first two are
# verdicts (statements about the claim); the rest are infrastructure
# outcomes and say nothing about the proof.
VERDICT_STATUSES = ("ok", "invalid")
INFRA_STATUSES = ("timeout", "overloaded", "draining", "error")


class ServiceUnavailable(Exception):
    """Internal: a request could not be admitted (shed or draining)."""


class _WorkerFault(Exception):
    """A worker returned an unexpected error for one job."""


@dataclass(frozen=True)
class Verdict:
    """The service's answer to one verification request."""

    status: str  # ok | invalid | timeout | overloaded | draining | error
    detail: str = ""
    degraded: bool = False  # served below the pooled tier

    @property
    def is_verdict(self) -> bool:
        """True when the status is a statement about the claim itself."""
        return self.status in VERDICT_STATUSES


class VerificationService:
    """A memoizing, circuit-broken, deadline-aware claim verifier.

    ``workers=0`` (the default) runs without a process pool — every
    check is in-process and serial, which is the right shape for tests
    and small upstream sets.  ``pool`` and ``breaker`` are injectable
    for deterministic fault testing.
    """

    def __init__(
        self,
        chain,
        *,
        min_confirmations: int = 1,
        require_unspent: bool = True,
        workers: int = 0,
        max_inflight: int = 4,
        memo_capacity: int = 4096,
        breaker: CircuitBreaker | None = None,
        pool: WorkerPool | None = None,
        clock=time.monotonic,
    ):
        self.chain = chain
        self.min_confirmations = min_confirmations
        self.require_unspent = require_unspent
        self.max_inflight = max_inflight
        self.clock = clock
        self.memo = TxMemoTable(memo_capacity)
        self.breaker = breaker or CircuitBreaker(clock=clock)
        if pool is not None:
            self.pool = pool
        elif workers > 0:
            self.pool = WorkerPool(workers=workers)
        else:
            self.pool = None
        self._lock = threading.Lock()
        self._drain_cv = threading.Condition(self._lock)
        self._inflight = 0
        self._draining = False
        self._closed = False
        # The in-process affirmation sigcache, shared by every request on
        # the non-degraded path (workers build their own per process).
        self._affirmations = AffirmationCache()
        self._prior_affirmation_cache = install_affirmation_cache(
            self._affirmations
        )
        # Serializes degraded (cache-off) requests: single-process mode
        # means what it says, and the global checker hook is swapped
        # while one is running.
        self._degraded_lock = threading.Lock()
        self.requests = 0
        self.shed = 0

    # -- public API ----------------------------------------------------

    def verify(
        self, bundle: ClaimBundle, *, deadline: cancel.Deadline | None = None
    ) -> Verdict:
        """Run the §3 protocol for ``bundle``; always returns a Verdict.

        No exception escapes: every failure mode is mapped to a status.
        """
        try:
            self._admit()
        except ServiceUnavailable as exc:
            return Verdict(str(exc.args[0]), detail=exc.args[1])
        try:
            if not obs.ENABLED:
                return self._verify(bundle, deadline)
            with obs.trace_span(
                "service.verify",
                metric="service.verify_seconds",
                carriers=len(bundle.transactions),
            ):
                verdict = self._verify(bundle, deadline)
            obs.inc("service.verdicts_total", status=verdict.status)
            obs.emit(
                "service.verdict",
                status=verdict.status,
                degraded=verdict.degraded,
            )
            return verdict
        finally:
            self._release()

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting requests; wait for in-flight ones to finish.

        Returns True when the service is idle (False on wait timeout).
        Idempotent, and `verify` keeps answering — with ``draining`` —
        for callers that race the shutdown.
        """
        with self._drain_cv:
            self._draining = True
            drained = self._drain_cv.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )
        return drained

    def close(self, timeout: float | None = None) -> None:
        """Graceful shutdown: drain, stop the pool, detach the caches."""
        self.drain(timeout=timeout)
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self.pool is not None:
            self.pool.close()
        install_affirmation_cache(self._prior_affirmation_cache)

    def health(self) -> dict:
        """Liveness/readiness snapshot (`/healthz` serves this)."""
        with self._lock:
            draining = self._draining
            inflight = self._inflight
        return {
            "ready": not draining,
            "draining": draining,
            "inflight": inflight,
            "breaker": self.breaker.state,
            "memo_entries": len(self.memo),
            "requests": self.requests,
            "shed": self.shed,
        }

    # -- admission -----------------------------------------------------

    def _admit(self) -> None:
        with self._lock:
            self.requests += 1
            if obs.ENABLED:
                obs.inc("service.requests_total")
            if self._draining or self._closed:
                if obs.ENABLED:
                    obs.emit(
                        "service.shed",
                        inflight=self._inflight,
                        reason="draining",
                    )
                raise ServiceUnavailable("draining", "service is draining")
            if self._inflight >= self.max_inflight:
                self.shed += 1
                if obs.ENABLED:
                    obs.inc("service.shed_total")
                    obs.emit(
                        "service.shed",
                        inflight=self._inflight,
                        reason="overloaded",
                    )
                raise ServiceUnavailable(
                    "overloaded",
                    f"admission queue full ({self._inflight} in flight)",
                )
            self._inflight += 1
            if obs.ENABLED:
                obs.gauge_max("service.inflight", self._inflight)

    def _release(self) -> None:
        with self._drain_cv:
            self._inflight -= 1
            if self._inflight == 0:
                self._drain_cv.notify_all()

    # -- the protocol --------------------------------------------------

    def _verify(
        self, bundle: ClaimBundle, deadline: cancel.Deadline | None
    ) -> Verdict:
        degraded = self.pool is not None and not self.breaker.allow()
        try:
            with cancel.deadline_scope(deadline):
                if degraded:
                    if obs.ENABLED:
                        obs.inc("service.degraded_total")
                        obs.emit("service.degraded", reason="breaker_open")
                    with self._degraded_lock:
                        prior = install_affirmation_cache(None)
                        try:
                            self._run_protocol(
                                bundle, deadline, use_pool=False,
                                use_caches=False,
                            )
                        finally:
                            install_affirmation_cache(prior)
                else:
                    self._run_protocol(
                        bundle, deadline,
                        use_pool=self.pool is not None, use_caches=True,
                    )
        except VerificationError as exc:
            return Verdict("invalid", str(exc), degraded=degraded)
        except cancel.DeadlineExceeded as exc:
            return Verdict("timeout", str(exc), degraded=degraded)
        except _WorkerFault as exc:
            return Verdict("error", str(exc), degraded=degraded)
        except Exception as exc:  # noqa: BLE001 - the no-wrong-verdict wall
            return Verdict("error", repr(exc), degraded=degraded)
        return Verdict("ok", degraded=degraded)

    def _run_protocol(
        self,
        bundle: ClaimBundle,
        deadline: cancel.Deadline | None,
        *,
        use_pool: bool,
        use_caches: bool,
    ) -> Ledger:
        """The §3 loop, restructured into dependency wavefronts.

        Raises ``VerificationError`` on any deterministic failure,
        ``DeadlineExceeded`` on expiry, ``_WorkerFault`` on unexpected
        worker errors; returns the accumulated ledger on success.
        """
        ledger = Ledger()
        for level in _wavefront_levels(bundle.transactions):
            if deadline is not None and deadline.expired():
                raise cancel.DeadlineExceeded("deadline expired between levels")
            to_check = []  # (txid, txn, txn_bytes, world, digest)
            registrations = []  # (txid, txn, digest) in level order
            for txid in level:
                txn = bundle.transactions[txid]
                if txid in ledger.transactions:
                    continue
                found = self.chain.get_transaction(txid)
                if found is None:
                    raise VerificationError(
                        f"carrier {txid[:8].hex()}… is not in the active chain"
                    )
                carrier, height = found
                confirmations = self.chain.height - height + 1
                if confirmations < self.min_confirmations:
                    raise VerificationError(
                        f"carrier {txid[:8].hex()}… has {confirmations}"
                        f" confirmations, policy requires"
                        f" {self.min_confirmations}"
                    )
                # Correspondence is checked on EVERY request, memo hit or
                # not — it binds the presented bytes to the chain, and is
                # cheap next to the typecheck it gates.
                try:
                    check_carrier_correspondence(carrier, txn)
                except OverlayError as exc:
                    raise VerificationError(
                        f"hash embedding check failed: {exc}"
                    ) from exc
                txn_bytes = encode_transaction(txn)
                digest = tx_digest(txn_bytes)
                world = world_at(self.chain, height)
                registrations.append((txid, txn, digest))
                if use_caches and self.memo.lookup(txid, digest):
                    # Typecheck memoized for exactly these bytes; outputs
                    # are still recomputed from the presented transaction
                    # at registration below, never read from any cache.
                    continue
                to_check.append((txid, txn, txn_bytes, world, digest))
            self._check_level(to_check, ledger, deadline, use_pool)
            for txid, txn, digest in registrations:
                ledger.register(txid, txn)
                if use_caches:
                    self.memo.record(txid, digest)

        target = ledger.output(bundle.outpoint.txid, bundle.outpoint.index)
        if target is None:
            raise VerificationError(
                "claimed txout is not produced by the bundle"
            )
        if not props_equal(target.prop, bundle.prop):
            raise VerificationError(
                f"claimed type {normalize_prop(bundle.prop)} but output has"
                f" type {normalize_prop(target.prop)}"
            )
        if self.require_unspent and self.chain.is_spent(bundle.outpoint):
            raise VerificationError("claimed txout has already been spent")
        return ledger

    def _check_level(self, to_check, ledger, deadline, use_pool) -> None:
        """Check one wavefront level's transactions, pooled if possible."""
        if not to_check:
            return
        budget = deadline.remaining() if deadline is not None else None
        if budget is not None and budget <= 0:
            raise cancel.DeadlineExceeded("no budget left for level")
        jobs = [
            make_job(txid, txn, txn_bytes, ledger, world, budget=budget)
            for txid, txn, txn_bytes, world, _digest in to_check
        ]
        results = None
        if use_pool and self.pool is not None:
            try:
                results = self.pool.run(jobs, deadline=deadline)
                self.breaker.record_success()
            except PoolBroken:
                # Pool health feeds the breaker; this request still gets
                # an answer — one rung down the ladder, serial in-process.
                self.breaker.record_failure()
                if obs.ENABLED:
                    obs.inc("service.degraded_total")
                    obs.emit("service.degraded", reason="pool_broken")
                results = None
        if results is None:
            results = [run_job(job) for job in jobs]
        # Submission order: the earliest failing transaction decides,
        # independent of worker scheduling.
        for result in results:
            if result.status == "ok":
                continue
            if result.status == "invalid":
                raise VerificationError(
                    f"type check failed for carrier"
                    f" {result.txid[:8].hex()}…: {result.detail}"
                )
            if result.status == "timeout":
                raise cancel.DeadlineExceeded(result.detail)
            raise _WorkerFault(
                f"worker error on {result.txid[:8].hex()}…: {result.detail}"
            )


def _wavefront_levels(transactions: dict) -> list[list[bytes]]:
    """Group the bundle into dependency levels.

    Level *n* contains transactions all of whose in-bundle dependencies
    sit in levels < *n*; members of one level share no edges, so their
    typechecks are independent given the ledger accumulated so far.
    Order within a level follows bundle insertion order, keeping the
    first-failure choice deterministic.
    """
    pending = dict(transactions)
    placed: set[bytes] = set()
    levels: list[list[bytes]] = []
    while pending:
        level = [
            txid
            for txid, txn in pending.items()
            if all(
                dep in placed or dep not in transactions or dep == txid
                for dep in referenced_txids(txn)
            )
        ]
        if not level:
            raise VerificationError("claim bundle contains a dependency cycle")
        for txid in level:
            placed.add(txid)
            del pending[txid]
        levels.append(level)
    return levels
