"""Process-pool execution of independent per-transaction typechecks.

The §3 protocol checks every transaction in the upstream set; within one
wavefront level (no dependency edges between them) those checks are
independent, so the service fans them across a ``ProcessPoolExecutor``.
This module owns the three hard parts:

* **picklable jobs** — :func:`make_job` flattens what
  ``check_typecoin_transaction`` needs into a :class:`CheckJob` of plain
  data.  The live ``Ledger`` and ``WorldView`` don't pickle (the world's
  spent oracle is a closure over the chain), so the job carries the
  global-basis snapshot, the resolved ``(prop, amount)`` of each spent
  output, the block timestamp, and the *answers* to every ``spent(...)``
  condition the transaction could evaluate — collected by a syntactic
  walk, sound because ``Spent`` holds literal txid bytes that
  substitution can never manufacture.

* **deterministic first failure** — results are consumed in submission
  order (the :class:`ParallelScriptVerifier` pattern), so the earliest
  failing transaction wins regardless of worker scheduling.

* **crash recovery** — a worker dying mid-job breaks the whole executor
  (``BrokenProcessPool``).  :meth:`WorkerPool.run` respawns the pool and
  re-dispatches every job whose result wasn't collected; jobs are pure
  functions of their payload, so re-running them is idempotent.  After
  ``max_respawns`` consecutive breaks it raises :class:`PoolBroken`,
  which the service feeds to its circuit breaker.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro import cancel, obs
from repro.logic.conditions import Spent, WorldView
from repro.service.cache import AffirmationCache, install_affirmation_cache

__all__ = ["CheckJob", "JobResult", "PoolBroken", "WorkerPool", "make_job", "run_job"]


class PoolBroken(Exception):
    """The worker pool kept dying faster than it could be respawned."""


@dataclass(frozen=True)
class CheckJob:
    """Everything one typecheck needs, as plain picklable data."""

    txid: bytes
    txn_bytes: bytes  # wire encoding; the worker re-decodes
    basis: object  # global Basis snapshot at this wavefront level
    inputs: dict  # (txid, index) -> (resolved prop, amount)
    world_time: int
    spent: frozenset  # {(txid, index)} answers for the txn's Spent atoms
    budget: float | None  # seconds of deadline remaining at dispatch


@dataclass(frozen=True)
class JobResult:
    txid: bytes
    status: str  # ok | invalid | timeout | error
    detail: str = ""


def spent_atoms(txn) -> frozenset:
    """All ``(txid, index)`` pairs named by ``Spent`` conditions anywhere
    in the transaction.

    A syntactic walk over the transaction's dataclass tree.  ``Spent``
    carries literal 32-byte txids (no variables), so no substitution
    performed during checking can introduce an atom this walk missed —
    shipping just these answers to the worker loses nothing.
    """
    found = set()

    def walk(node):
        if isinstance(node, Spent):
            found.add((node.txid, node.index))
            return
        if isinstance(node, (tuple, list)):
            for item in node:
                walk(item)
            return
        if dataclasses.is_dataclass(node) and not isinstance(node, type):
            for field_info in dataclasses.fields(node):
                walk(getattr(node, field_info.name))

    for _ref, decl in txn.basis:
        walk(decl)
    walk(txn.grant)
    for inp in txn.inputs:
        walk(inp.prop)
    for out in txn.outputs:
        walk(out.prop)
    walk(txn.proof)
    return frozenset(found)


def make_job(txid, txn, txn_bytes, ledger, world, budget=None) -> CheckJob:
    """Flatten one transaction's check against ``ledger``/``world``."""
    inputs = {}
    for inp in txn.inputs:
        known = ledger.output(inp.txid, inp.index)
        if known is not None:
            inputs[(inp.txid, inp.index)] = (known.prop, known.amount)
    spent = frozenset(
        atom for atom in spent_atoms(txn) if world.spent_oracle(*atom)
    )
    return CheckJob(
        txid=txid,
        txn_bytes=txn_bytes,
        basis=ledger.global_basis,
        inputs=inputs,
        world_time=world.time,
        spent=spent,
        budget=budget,
    )


def run_job(job: CheckJob) -> JobResult:
    """Execute one check; pure function of the job payload.

    Runs identically in a worker process or inline — the degradation
    ladder's serial mode calls this directly.  ``invalid`` comes only
    from the deterministic checkers (including malformed wire bytes);
    deadline expiry is ``timeout`` and anything unexpected is ``error``,
    so an infrastructure problem can never masquerade as a verdict.
    """
    from repro.core.validate import (
        Ledger,
        LedgerOutput,
        ValidationFailure,
        check_typecoin_transaction,
    )
    from repro.core.wire import decode_transaction
    from repro.logic.decoding import DecodingError

    deadline = None
    if job.budget is not None:
        deadline = cancel.Deadline.after(job.budget)
    try:
        with cancel.deadline_scope(deadline):
            txn = decode_transaction(job.txn_bytes)
            ledger = Ledger(global_basis=job.basis)
            for (txid, index), (prop, amount) in job.inputs.items():
                ledger.outputs[(txid, index)] = LedgerOutput(
                    prop=prop, amount=amount, principal=b"\x00" * 20
                )
            world = WorldView(
                time=job.world_time,
                spent_oracle=lambda txid, index: (txid, index) in job.spent,
            )
            check_typecoin_transaction(ledger, txn, world)
    except (ValidationFailure, DecodingError) as exc:
        return JobResult(job.txid, "invalid", str(exc))
    except cancel.DeadlineExceeded as exc:
        return JobResult(job.txid, "timeout", str(exc))
    except Exception as exc:  # noqa: BLE001 - fault boundary
        return JobResult(job.txid, "error", repr(exc))
    return JobResult(job.txid, "ok")


def _worker_init() -> None:
    """Per-process initializer: a private affirmation sigcache."""
    install_affirmation_cache(AffirmationCache())


class WorkerPool:
    """A respawning process pool running :func:`run_job`."""

    def __init__(self, workers: int = 2, max_respawns: int = 2):
        self.workers = max(1, int(workers))
        self.max_respawns = max_respawns
        self.respawns = 0
        self._executor: concurrent.futures.ProcessPoolExecutor | None = None

    def _ensure_executor(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._executor is None:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers, initializer=_worker_init
            )
        return self._executor

    def _discard_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def run(self, jobs: list, deadline=None) -> list:
        """Run every job; results in submission order.

        On ``BrokenProcessPool`` the executor is rebuilt and all
        uncollected jobs re-dispatched (idempotent).  Raises
        :class:`PoolBroken` once respawns are exhausted in a single run,
        and :class:`~repro.cancel.DeadlineExceeded` if ``deadline``
        passes while waiting on a worker.
        """
        results: list = [None] * len(jobs)
        pending = list(range(len(jobs)))
        breaks = 0
        while pending:
            executor = self._ensure_executor()
            try:
                # submit() itself raises BrokenProcessPool when a worker
                # died since the last batch, so it shares the respawn path.
                futures = [
                    (i, executor.submit(run_job, jobs[i])) for i in pending
                ]
                for i, future in futures:
                    timeout = None
                    if deadline is not None:
                        timeout = max(0.0, deadline.remaining())
                    results[i] = future.result(timeout=timeout)
                    pending.remove(i)
            except concurrent.futures.TimeoutError:
                raise cancel.DeadlineExceeded(
                    "deadline passed waiting on worker results"
                ) from None
            except BrokenProcessPool:
                self._discard_executor()
                breaks += 1
                self.respawns += 1
                if obs.ENABLED:
                    obs.inc("service.pool_respawns_total")
                    obs.emit("service.pool_respawn", pending=len(pending))
                if breaks > self.max_respawns:
                    raise PoolBroken(
                        f"worker pool broke {breaks} times in one batch"
                    ) from None
        if obs.ENABLED:
            obs.inc("service.worker_jobs_total", len(jobs))
        return results

    def kill_worker(self, timeout: float = 30.0) -> None:
        """Fault injector: crash one worker process, breaking the pool.

        Submits an ``os._exit`` pill and waits for the executor to notice
        the death, so callers observe a deterministically-broken pool on
        their next :meth:`run`.
        """
        try:
            future = self._ensure_executor().submit(os._exit, 1)
            future.result(timeout=timeout)
        except BrokenProcessPool:
            # Either the pill landed or the pool was already broken —
            # both leave the state this injector promises.  run() owns
            # the respawn (and its accounting), so don't discard here.
            pass

    def slow_worker(self, delay: float = 0.25) -> None:
        """Fault injector: occupy one worker with a straggler sleep.

        The next batch contends for one fewer worker — a latency spike
        rather than a crash, exercising deadline propagation instead of
        the respawn path.  A no-op on an already-broken pool.
        """
        try:
            self._ensure_executor().submit(time.sleep, delay)
        except BrokenProcessPool:
            pass  # run() will respawn; nothing left to slow down

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
