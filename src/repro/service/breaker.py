"""Circuit breaker over the service's worker-pool dependency.

Classic three-state breaker (closed → open → half-open → closed) with an
injectable monotonic clock so the full cycle pins under a deterministic
test without any sleeping:

* **closed** — requests flow; consecutive *infrastructure* failures are
  counted (verdicts, including ``invalid``, never count — a proof being
  wrong says nothing about the pool's health).
* **open** — after ``failure_threshold`` consecutive failures the
  breaker trips: the service stops dispatching to the pool and serves
  requests on the degraded in-process path until ``reset_timeout``
  elapses.
* **half-open** — one probe request is allowed through.  Success closes
  the breaker and resets the count; failure re-opens it for another full
  cooldown.

Thread-safe; `allow()` is the admission question ("may I use the
dependency?") and `record_success()` / `record_failure()` are the
answer's feedback.  Only one caller wins the half-open probe slot at a
time — concurrent requests during the probe stay on the degraded path
instead of stampeding a possibly-sick pool.
"""

from __future__ import annotations

import threading
import time

from repro import obs

__all__ = ["CircuitBreaker", "CLOSED", "HALF_OPEN", "OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    def _peek_state(self) -> str:
        # Lock held.  An open breaker whose cooldown has elapsed reads as
        # half-open; the transition is committed by the next allow().
        if self._state == OPEN and self.clock() - self._opened_at >= self.reset_timeout:
            return HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May the caller use the protected dependency right now?"""
        with self._lock:
            state = self._peek_state()
            if state == CLOSED:
                return True
            if state == OPEN:
                return False
            # Half-open: admit exactly one probe at a time.
            if self._state == OPEN:
                self._state = HALF_OPEN
                self._probe_in_flight = False
                if obs.ENABLED:
                    obs.emit("service.breaker_transition", state=HALF_OPEN)
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probe_in_flight = False
            if self._state != CLOSED:
                self._state = CLOSED
                if obs.ENABLED:
                    obs.emit("service.breaker_transition", state=CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            if self._state == HALF_OPEN:
                # Failed probe: straight back to open for a fresh cooldown.
                self._trip()
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        # Lock held.
        self._state = OPEN
        self._opened_at = self.clock()
        self._failures = 0
        self.trips += 1
        if obs.ENABLED:
            obs.inc("service.breaker_trips_total")
            obs.emit("service.breaker_transition", state=OPEN)
