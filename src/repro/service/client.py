"""Client-side retry discipline for the verification service.

The client owns the *policy* half of fault tolerance: which statuses are
worth retrying, how long to wait between attempts, and how long any one
attempt may run.  The rules:

* **verdicts are final** — ``ok`` and ``invalid`` come from the
  deterministic checkers; retrying them could only waste work (the
  checkers are pure, the chain prefix immutable), so the client returns
  them immediately.
* **infrastructure outcomes retry** — ``timeout``, ``overloaded`` and
  ``error`` are transient by construction, so the client retries with
  capped exponential backoff and seeded jitter
  (:mod:`repro.backoff`): delays decorrelate concurrent clients while
  every run stays reproducible from its seed.
* **draining is terminal** — a draining service is going away on
  purpose; hammering it with retries defeats the graceful shutdown, so
  the client hands the status straight back.
"""

from __future__ import annotations

import time

from repro import cancel, obs
from repro.backoff import backoff_delay, derive_rng
from repro.service.server import Verdict

__all__ = ["RETRYABLE_STATUSES", "ServiceClient"]

RETRYABLE_STATUSES = frozenset({"timeout", "overloaded", "error"})


class ServiceClient:
    """Retrying front-end to a :class:`VerificationService`.

    ``sleep`` and ``clock`` are injectable so retry schedules pin under
    deterministic tests without wall-clock waits.
    """

    def __init__(
        self,
        service,
        *,
        max_attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        jitter: float = 0.2,
        request_timeout: float | None = None,
        seed: object = 0,
        sleep=time.sleep,
        clock=time.monotonic,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.service = service
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self.request_timeout = request_timeout
        self.sleep = sleep
        self.clock = clock
        self._rng = derive_rng("service-client", seed)
        self.retries = 0
        self.last_attempts = 0

    def verify(self, bundle) -> Verdict:
        """Verify ``bundle``, retrying transient failures.

        Returns the first verdict (``ok``/``invalid``), the first
        ``draining``, or — once attempts are exhausted — the last
        transient status observed.
        """
        verdict = Verdict("error", "client made no attempts")
        for attempt in range(1, self.max_attempts + 1):
            self.last_attempts = attempt
            deadline = None
            if self.request_timeout is not None:
                deadline = cancel.Deadline.after(
                    self.request_timeout, clock=self.clock
                )
            verdict = self.service.verify(bundle, deadline=deadline)
            if verdict.status not in RETRYABLE_STATUSES:
                return verdict
            if attempt == self.max_attempts:
                break
            self.retries += 1
            if obs.ENABLED:
                obs.inc("service.retries_total")
            self.sleep(
                backoff_delay(
                    attempt,
                    base=self.base_delay,
                    cap=self.max_delay,
                    jitter=self.jitter,
                    rng=self._rng,
                )
            )
        return verdict
