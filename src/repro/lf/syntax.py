"""LF abstract syntax (paper Figure 1).

::

    kind        k ::= type | prop | Πu:τ.k
    type family τ ::= c | τ m | Πu:τ.τ | principal | nat
    index term  m ::= u | c | λu:τ.m | m m | K | n

Constants carry a *reference* to the transaction whose basis declared them:
``this`` inside the declaring transaction, its txid afterwards, or the
distinguished ``builtin`` namespace for the primitives (``nat``,
``principal``, arithmetic).  Variables are named; substitution is
capture-avoiding via on-the-fly renaming, and equality is α-equivalence
(callers β-normalize first when definitional equality is wanted).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterator, Union


class _Space(enum.Enum):
    THIS = "this"
    BUILTIN = "builtin"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.value


THIS = _Space.THIS
BUILTIN = _Space.BUILTIN

# A constant lives in a transaction (by txid bytes), in the transaction
# currently being built (THIS), or in the builtin namespace.
Namespace = Union[bytes, _Space]


@dataclass(frozen=True)
class ConstRef:
    """A fully-qualified constant name: namespace + local label."""

    space: Namespace
    name: str

    def __str__(self) -> str:
        if self.space is THIS:
            return f"this.{self.name}"
        if self.space is BUILTIN:
            return self.name
        return f"{self.space[:4].hex()}….{self.name}"

    @property
    def is_local(self) -> bool:
        return self.space is THIS

    def resolved(self, txid: bytes) -> "ConstRef":
        """Replace ``this`` with the enclosing transaction's id."""
        if self.space is THIS:
            return ConstRef(txid, self.name)
        return self


# ----------------------------------------------------------------------
# Kinds
# ----------------------------------------------------------------------


class KindSort(enum.Enum):
    """The two base kinds: ordinary LF types and Typecoin propositions."""

    TYPE = "type"
    PROP = "prop"


@dataclass(frozen=True)
class Kind:
    """A base kind: ``type`` or ``prop``."""

    sort: KindSort

    def __str__(self) -> str:
        return self.sort.value


@dataclass(frozen=True)
class KPi:
    """A dependent kind ``Πu:τ.k`` (type-family arguments)."""

    var: str
    domain: "TypeFamily"
    body: "KindT"

    def __str__(self) -> str:
        return f"Π{self.var}:{self.domain}.{self.body}"


KindT = Union[Kind, KPi]

KIND_TYPE = Kind(KindSort.TYPE)
KIND_PROP = Kind(KindSort.PROP)


# ----------------------------------------------------------------------
# Type families and terms
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TConst:
    """A type-family constant ``c``."""

    ref: ConstRef

    def __str__(self) -> str:
        return str(self.ref)


@dataclass(frozen=True)
class TApp:
    """Family application ``τ m``."""

    family: "TypeFamily"
    arg: "Term"

    def __str__(self) -> str:
        return f"{self.family} {_atom_str(self.arg)}"


@dataclass(frozen=True)
class TPi:
    """Dependent function type ``Πu:τ.τ'`` (written ``τ → τ'`` when u unused)."""

    var: str
    domain: "TypeFamily"
    body: "TypeFamily"

    def __str__(self) -> str:
        if self.var not in free_vars(self.body):
            return f"({self.domain} → {self.body})"
        return f"(Π{self.var}:{self.domain}.{self.body})"


TypeFamily = Union[TConst, TApp, TPi]


@dataclass(frozen=True)
class Var:
    """A term variable ``u``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A term constant ``c``."""

    ref: ConstRef

    def __str__(self) -> str:
        return str(self.ref)


@dataclass(frozen=True)
class Lam:
    """Abstraction ``λu:τ.m``."""

    var: str
    domain: TypeFamily
    body: "Term"

    def __str__(self) -> str:
        return f"(λ{self.var}:{self.domain}.{self.body})"


@dataclass(frozen=True)
class App:
    """Application ``m m'``."""

    func: "Term"
    arg: "Term"

    def __str__(self) -> str:
        return f"{_atom_str(self.func)} {_atom_str(self.arg)}"


@dataclass(frozen=True)
class PrincipalLit:
    """A principal literal K: the hash of a public key (20 bytes)."""

    key_hash: bytes

    def __post_init__(self) -> None:
        if len(self.key_hash) != 20:
            raise ValueError("principal literals are 20-byte key hashes")

    def __str__(self) -> str:
        return f"#{self.key_hash[:4].hex()}"


@dataclass(frozen=True)
class NatLit:
    """A natural-number literal n."""

    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("nat literals are non-negative")

    def __str__(self) -> str:
        return str(self.value)


Term = Union[Var, Const, Lam, App, PrincipalLit, NatLit]

Node = Union[KindT, TypeFamily, Term]


def _atom_str(term: Term) -> str:
    text = str(term)
    if isinstance(term, App) and not text.startswith("("):
        return f"({text})"
    return text


# ----------------------------------------------------------------------
# Free variables, substitution, α-equivalence
# ----------------------------------------------------------------------


def free_vars(node: Node) -> frozenset[str]:
    """The free term variables of a kind, family, or term."""
    if isinstance(node, (Kind, TConst, Const, PrincipalLit, NatLit)):
        return frozenset()
    if isinstance(node, Var):
        return frozenset((node.name,))
    if isinstance(node, (KPi, TPi)):
        return free_vars(node.domain) | (free_vars(node.body) - {node.var})
    if isinstance(node, Lam):
        return free_vars(node.domain) | (free_vars(node.body) - {node.var})
    if isinstance(node, TApp):
        return free_vars(node.family) | free_vars(node.arg)
    if isinstance(node, App):
        return free_vars(node.func) | free_vars(node.arg)
    raise TypeError(f"not an LF node: {node!r}")


_fresh_counter = itertools.count()


def fresh_name(base: str) -> str:
    """A globally fresh variable name derived from ``base``."""
    root = base.split("$", 1)[0]
    return f"{root}${next(_fresh_counter)}"


def substitute(node: Node, var: str, replacement: Term) -> Node:
    """Capture-avoiding substitution ``[replacement/var]node``."""
    if isinstance(node, (Kind, TConst, Const, PrincipalLit, NatLit)):
        return node
    if isinstance(node, Var):
        return replacement if node.name == var else node
    if isinstance(node, TApp):
        return TApp(
            substitute(node.family, var, replacement),
            substitute(node.arg, var, replacement),
        )
    if isinstance(node, App):
        return App(
            substitute(node.func, var, replacement),
            substitute(node.arg, var, replacement),
        )
    if isinstance(node, (KPi, TPi, Lam)):
        domain = substitute(node.domain, var, replacement)
        if node.var == var:
            return type(node)(node.var, domain, node.body)
        if node.var in free_vars(replacement):
            renamed = fresh_name(node.var)
            body = substitute(node.body, node.var, Var(renamed))
            body = substitute(body, var, replacement)
            return type(node)(renamed, domain, body)
        return type(node)(node.var, domain, substitute(node.body, var, replacement))
    raise TypeError(f"not an LF node: {node!r}")


def alpha_equal(a: Node, b: Node) -> bool:
    """Structural equality up to bound-variable renaming."""
    return _alpha(a, b, {}, {})


def _alpha(a: Node, b: Node, env_a: dict, env_b: dict) -> bool:
    if isinstance(a, Var) and isinstance(b, Var):
        return env_a.get(a.name, a.name) == env_b.get(b.name, b.name)
    if type(a) is not type(b):
        return False
    if isinstance(a, Kind):
        return a.sort is b.sort
    if isinstance(a, (TConst, Const)):
        return a.ref == b.ref
    if isinstance(a, PrincipalLit):
        return a.key_hash == b.key_hash
    if isinstance(a, NatLit):
        return a.value == b.value
    if isinstance(a, TApp):
        return _alpha(a.family, b.family, env_a, env_b) and _alpha(
            a.arg, b.arg, env_a, env_b
        )
    if isinstance(a, App):
        return _alpha(a.func, b.func, env_a, env_b) and _alpha(
            a.arg, b.arg, env_a, env_b
        )
    if isinstance(a, (KPi, TPi, Lam)):
        if not _alpha(a.domain, b.domain, env_a, env_b):
            return False
        marker = object()
        env_a2 = {**env_a, a.var: marker}
        env_b2 = {**env_b, b.var: marker}
        return _alpha(a.body, b.body, env_a2, env_b2)
    raise TypeError(f"not an LF node: {a!r}")


def substitute_this(node: Node, txid: bytes) -> Node:
    """Resolve every ``this``-reference to the given transaction id.

    Applied when a transaction enters the blockchain: "all its declarations
    are added to the global basis, with this replaced by the transaction's
    identifier" (paper §4).
    """
    if isinstance(node, (Kind, Var, PrincipalLit, NatLit)):
        return node
    if isinstance(node, TConst):
        return TConst(node.ref.resolved(txid))
    if isinstance(node, Const):
        return Const(node.ref.resolved(txid))
    if isinstance(node, TApp):
        return TApp(substitute_this(node.family, txid), substitute_this(node.arg, txid))
    if isinstance(node, App):
        return App(substitute_this(node.func, txid), substitute_this(node.arg, txid))
    if isinstance(node, (KPi, TPi, Lam)):
        return type(node)(
            node.var,
            substitute_this(node.domain, txid),
            substitute_this(node.body, txid),
        )
    raise TypeError(f"not an LF node: {node!r}")


def iter_constants(node: Node) -> Iterator[ConstRef]:
    """Yield every constant reference in a node (for freshness checks)."""
    if isinstance(node, (Kind, Var, PrincipalLit, NatLit)):
        return
    if isinstance(node, (TConst, Const)):
        yield node.ref
        return
    if isinstance(node, TApp):
        yield from iter_constants(node.family)
        yield from iter_constants(node.arg)
        return
    if isinstance(node, App):
        yield from iter_constants(node.func)
        yield from iter_constants(node.arg)
        return
    if isinstance(node, (KPi, TPi, Lam)):
        yield from iter_constants(node.domain)
        yield from iter_constants(node.body)
        return
    raise TypeError(f"not an LF node: {node!r}")


def arrow(domain: TypeFamily, body: TypeFamily) -> TPi:
    """Non-dependent function type ``τ → τ'``."""
    return TPi(fresh_name("_"), domain, body)


def apply_family(family: TypeFamily, *args: Term) -> TypeFamily:
    """Left-nested family application ``τ m₁ … mₙ``."""
    for arg in args:
        family = TApp(family, arg)
    return family


def apply_term(func: Term, *args: Term) -> Term:
    """Left-nested term application ``m m₁ … mₙ``."""
    for arg in args:
        func = App(func, arg)
    return func
