"""β-normalization (plus arithmetic δ-rules) for LF terms and families.

Definitional equality in this LF fragment is α-equivalence of β-normal
forms.  One δ-rule augments β: the builtin ``add`` applied to two ``nat``
literals reduces to their sum, which is what lets ``plus_refl n m`` inhabit
``plus n m (n+m)`` with literal numbers (see :mod:`repro.lf.basis`).
"""

from __future__ import annotations

from repro.lf import syntax
from repro.lf.syntax import (
    App,
    Const,
    Kind,
    KPi,
    Lam,
    NatLit,
    PrincipalLit,
    TApp,
    TConst,
    TPi,
    Term,
    TypeFamily,
    Var,
    alpha_equal,
    substitute,
)

# The δ-reducible arithmetic constants, filled in by repro.lf.basis at
# import time (avoiding a circular import).
_DELTA_ARITH: dict[syntax.ConstRef, object] = {}


def register_arith(ref: syntax.ConstRef, fn) -> None:
    """Register a binary nat operation for δ-reduction (add, etc.)."""
    _DELTA_ARITH[ref] = fn


def _try_delta(term: App) -> Term | None:
    """Reduce ``op l1 l2`` when op is registered and both args are literals."""
    if not isinstance(term.func, App):
        return None
    inner = term.func
    if not isinstance(inner.func, Const):
        return None
    fn = _DELTA_ARITH.get(inner.func.ref)
    if fn is None:
        return None
    a, b = inner.arg, term.arg
    if isinstance(a, NatLit) and isinstance(b, NatLit):
        return NatLit(fn(a.value, b.value))
    return None


def normalize(term: Term, _depth: int = 0) -> Term:
    """Full β(δ)-normalization of a term."""
    if _depth > 10_000:
        raise RecursionError("normalization diverged")
    if isinstance(term, (Var, Const, PrincipalLit, NatLit)):
        return term
    if isinstance(term, Lam):
        return Lam(term.var, normalize_family(term.domain), normalize(term.body))
    if isinstance(term, App):
        func = normalize(term.func, _depth + 1)
        arg = normalize(term.arg, _depth + 1)
        if isinstance(func, Lam):
            return normalize(substitute(func.body, func.var, arg), _depth + 1)
        reduced = App(func, arg)
        delta = _try_delta(reduced)
        if delta is not None:
            return delta
        return reduced
    raise TypeError(f"not an LF term: {term!r}")


def normalize_family(family: TypeFamily) -> TypeFamily:
    """Normalize the term arguments inside a type family."""
    if isinstance(family, TConst):
        return family
    if isinstance(family, TApp):
        return TApp(normalize_family(family.family), normalize(family.arg))
    if isinstance(family, TPi):
        return TPi(
            family.var, normalize_family(family.domain), normalize_family(family.body)
        )
    raise TypeError(f"not an LF family: {family!r}")


def normalize_kind(kind):
    """Normalize the families inside a kind."""
    if isinstance(kind, Kind):
        return kind
    if isinstance(kind, KPi):
        return KPi(kind.var, normalize_family(kind.domain), normalize_kind(kind.body))
    raise TypeError(f"not an LF kind: {kind!r}")


def terms_equal(a: Term, b: Term) -> bool:
    """Definitional equality of terms: α-equivalence of normal forms."""
    return alpha_equal(normalize(a), normalize(b))


def families_equal(a: TypeFamily, b: TypeFamily) -> bool:
    """Definitional equality of families."""
    return alpha_equal(normalize_family(a), normalize_family(b))


def kinds_equal(a, b) -> bool:
    """Definitional equality of kinds."""
    return alpha_equal(normalize_kind(a), normalize_kind(b))
