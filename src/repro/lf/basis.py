"""Bases: ordered sets of constant declarations (paper §4).

"A basis is a set of constant declarations.  Each constant represents a new
type family, index term, or proof term.  A transaction uses its local basis
to define concepts or rules relevant to its transaction. ...  The *global
basis* is the local basis appended to the bases of all previous
transactions."

Declarations are ordered (later ones may mention earlier ones) and each
constant may be declared at most once.  Proof-term declarations
(:class:`PropDecl`) store propositions from :mod:`repro.logic`; this module
only stores them — their formation checks live with the logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Union

from repro import obs
from repro.lf.normalize import register_arith
from repro.lf.syntax import (
    BUILTIN,
    THIS,
    ConstRef,
    KIND_TYPE,
    KindT,
    KPi,
    TApp,
    TConst,
    TPi,
    TypeFamily,
    Var,
    substitute_this,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.logic.propositions import Proposition


class BasisError(Exception):
    """Raised for duplicate, unknown, or ill-placed declarations."""


@dataclass(frozen=True)
class KindDecl:
    """Declares a type-family constant ``c : k``."""

    kind: KindT


@dataclass(frozen=True)
class TypeDecl:
    """Declares an index-term constant ``c : τ``."""

    family: TypeFamily


@dataclass(frozen=True)
class PropDecl:
    """Declares a proof-term constant ``c : A``."""

    prop: "Proposition"


Declaration = Union[KindDecl, TypeDecl, PropDecl]


@dataclass
class Basis:
    """An ordered map from constant references to declarations."""

    _decls: dict[ConstRef, Declaration] = field(default_factory=dict)

    def declare(self, ref: ConstRef, decl: Declaration) -> None:
        if ref in self._decls:
            raise BasisError(f"constant {ref} already declared")
        self._decls[ref] = decl

    def declare_local(self, name: str, decl: Declaration) -> ConstRef:
        """Declare ``this.name`` (the only form a local basis may contain)."""
        ref = ConstRef(THIS, name)
        self.declare(ref, decl)
        return ref

    def lookup(self, ref: ConstRef) -> Declaration:
        if obs.ENABLED:
            obs.inc("lf.basis_lookups_total")
        try:
            return self._decls[ref]
        except KeyError:
            raise BasisError(f"unknown constant {ref}") from None

    def __contains__(self, ref: ConstRef) -> bool:
        return ref in self._decls

    def __len__(self) -> int:
        return len(self._decls)

    def __iter__(self) -> Iterator[tuple[ConstRef, Declaration]]:
        return iter(self._decls.items())

    def all_local(self) -> bool:
        """Does every declaration use a ``this`` reference?  (Required of
        transaction-local bases: "a transaction's local basis may only
        declare local constants.")"""
        return all(ref.is_local for ref in self._decls)

    def extended(self, other: "Basis") -> "Basis":
        """A new basis: self's declarations followed by other's."""
        merged = Basis(dict(self._decls))
        for ref, decl in other:
            merged.declare(ref, decl)
        return merged

    def resolved(self, txid: bytes) -> "Basis":
        """Rewrite ``this`` to ``txid`` in names *and* bodies.

        Used when a transaction enters the chain and its local declarations
        join the global basis (paper §4).
        """
        resolved = Basis()
        for ref, decl in self._decls.items():
            new_ref = ref.resolved(txid)
            if isinstance(decl, KindDecl):
                new_decl: Declaration = KindDecl(substitute_this(decl.kind, txid))
            elif isinstance(decl, TypeDecl):
                new_decl = TypeDecl(substitute_this(decl.family, txid))
            else:
                # Imported lazily: lf must not depend on logic at load time.
                from repro.logic.propositions import substitute_this_prop

                new_decl = PropDecl(substitute_this_prop(decl.prop, txid))
            resolved.declare(new_ref, new_decl)
        return resolved


# ----------------------------------------------------------------------
# The builtin basis: nat, principal, and literal arithmetic
# ----------------------------------------------------------------------

NAT = ConstRef(BUILTIN, "nat")
PRINCIPAL = ConstRef(BUILTIN, "principal")
ADD = ConstRef(BUILTIN, "add")
PLUS = ConstRef(BUILTIN, "plus")
PLUS_REFL = ConstRef(BUILTIN, "plus_refl")

NAT_T = TConst(NAT)
PRINCIPAL_T = TConst(PRINCIPAL)


def builtin_basis() -> Basis:
    """The primitive declarations every global basis starts from.

    * ``nat : type`` and ``principal : type`` — the two special types of
      paper §4 (``time`` is "actually just nat", so it is a surface-syntax
      alias, not a separate constant).
    * ``add : nat → nat → nat`` — δ-reduces on literals.
    * ``plus : nat → nat → nat → type`` — the proof-relevant addition
      relation the §6 newcoin example depends on.
    * ``plus_refl : Πn:nat.Πm:nat. plus n m (add n m)`` — its sole
      introduction form; with δ-reduction, ``plus_refl 2 3 : plus 2 3 5``.
    """
    basis = Basis()
    basis.declare(NAT, KindDecl(KIND_TYPE))
    basis.declare(PRINCIPAL, KindDecl(KIND_TYPE))
    basis.declare(
        ADD,
        TypeDecl(TPi("_a", NAT_T, TPi("_b", NAT_T, NAT_T))),
    )
    basis.declare(
        PLUS,
        KindDecl(
            KPi("_n", NAT_T, KPi("_m", NAT_T, KPi("_p", NAT_T, KIND_TYPE)))
        ),
    )
    from repro.lf.syntax import App, Const

    plus_family = TApp(
        TApp(
            TApp(TConst(PLUS), Var("n")),
            Var("m"),
        ),
        App(App(Const(ADD), Var("n")), Var("m")),
    )
    basis.declare(
        PLUS_REFL,
        TypeDecl(TPi("n", NAT_T, TPi("m", NAT_T, plus_family))),
    )
    return basis


# Register the arithmetic δ-rule with the normalizer.
register_arith(ADD, lambda a, b: a + b)
