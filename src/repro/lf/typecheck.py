"""LF type checking: kind formation, family kinding, term typing.

Implements three of the paper's judgements (Appendix A)::

    Σ; Ψ ⊢ k kind      kind formation
    Σ; Ψ ⊢ τ : k       type-family formation
    Σ; Ψ ⊢ m : τ       term typing

The algorithm is standard bidirectional checking with definitional equality
as α-equivalence of β(δ)-normal forms.  Family-level λ is absent (per
Harper–Pfenning), so families are always constants applied to terms or Π
types — which keeps equality checking simple.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import cancel, obs
from repro.lf.basis import Basis, BasisError, KindDecl, NAT_T, PRINCIPAL_T, TypeDecl
from repro.lf.normalize import families_equal, normalize_family
from repro.lf.syntax import (
    App,
    Const,
    Kind,
    KindSort,
    KindT,
    KPi,
    Lam,
    NatLit,
    PrincipalLit,
    TApp,
    TConst,
    TPi,
    Term,
    TypeFamily,
    Var,
    substitute,
)


class LFTypeError(Exception):
    """An LF-level type error (with a human-readable reason)."""


@dataclass(frozen=True)
class LFContext:
    """The LF context Ψ: an ordered list of variable typings."""

    bindings: tuple[tuple[str, TypeFamily], ...] = ()

    def extend(self, var: str, family: TypeFamily) -> "LFContext":
        return LFContext(self.bindings + ((var, family),))

    def lookup(self, var: str) -> TypeFamily:
        for name, family in reversed(self.bindings):
            if name == var:
                return family
        raise LFTypeError(f"unbound variable {var}")

    def __contains__(self, var: str) -> bool:
        return any(name == var for name, _ in self.bindings)


EMPTY_CONTEXT = LFContext()


def check_kind(basis: Basis, ctx: LFContext, kind: KindT) -> None:
    """Judgement Σ;Ψ ⊢ k kind."""
    if isinstance(kind, Kind):
        return
    if isinstance(kind, KPi):
        check_family_is_type(basis, ctx, kind.domain)
        check_kind(basis, ctx.extend(kind.var, kind.domain), kind.body)
        return
    raise LFTypeError(f"not a kind: {kind!r}")


def infer_kind(basis: Basis, ctx: LFContext, family: TypeFamily) -> KindT:
    """Judgement Σ;Ψ ⊢ τ : k (kind synthesis)."""
    if cancel.ACTIVE:
        # Cooperative cancellation: a service-installed deadline can
        # interrupt kind synthesis between recursion steps.  Raises
        # DeadlineExceeded, which is NOT an LFTypeError — expiry is an
        # infrastructure outcome, never a typing verdict.
        cancel.checkpoint()
    prof = obs.PROFILER if obs.ENABLED else None
    if prof is not None:
        prof.enter("lf_typecheck")
    try:
        return _infer_kind(basis, ctx, family)
    finally:
        if prof is not None:
            prof.exit()


def _infer_kind(basis: Basis, ctx: LFContext, family: TypeFamily) -> KindT:
    if isinstance(family, TConst):
        try:
            decl = basis.lookup(family.ref)
        except BasisError as exc:
            raise LFTypeError(str(exc)) from exc
        if not isinstance(decl, KindDecl):
            raise LFTypeError(f"{family.ref} is not a type-family constant")
        return decl.kind
    if isinstance(family, TApp):
        head_kind = infer_kind(basis, ctx, family.family)
        if not isinstance(head_kind, KPi):
            raise LFTypeError(
                f"family {family.family} applied to an argument but has kind"
                f" {head_kind}"
            )
        check_type(basis, ctx, family.arg, head_kind.domain)
        return substitute(head_kind.body, head_kind.var, family.arg)
    if isinstance(family, TPi):
        check_family_is_type(basis, ctx, family.domain)
        body_kind = infer_kind(basis, ctx.extend(family.var, family.domain), family.body)
        if not isinstance(body_kind, Kind):
            raise LFTypeError("Π body must have a base kind")
        return body_kind
    raise LFTypeError(f"not a type family: {family!r}")


def check_family_is_type(basis: Basis, ctx: LFContext, family: TypeFamily) -> None:
    """Check τ : type (contexts may only bind at kind ``type``)."""
    kind = infer_kind(basis, ctx, family)
    if kind != Kind(KindSort.TYPE):
        raise LFTypeError(f"{family} has kind {kind}, expected type")


def infer_type(basis: Basis, ctx: LFContext, term: Term) -> TypeFamily:
    """Judgement Σ;Ψ ⊢ m : τ (type synthesis)."""
    if cancel.ACTIVE:
        cancel.checkpoint()
    prof = None
    if obs.ENABLED:
        obs.inc("lf.typecheck_total")
        prof = obs.PROFILER
        if prof is not None:
            # Recursive per-node calls re-enter the phase at the top of the
            # profiler stack, which collapses to a counter bump — no clock
            # reads on the recursion, so profiling doesn't distort the
            # typechecker's own cost.
            prof.enter("lf_typecheck")
    try:
        return _infer_type(basis, ctx, term)
    finally:
        if prof is not None:
            prof.exit()


def _infer_type(basis: Basis, ctx: LFContext, term: Term) -> TypeFamily:
    if isinstance(term, Var):
        return ctx.lookup(term.name)
    if isinstance(term, Const):
        try:
            decl = basis.lookup(term.ref)
        except BasisError as exc:
            raise LFTypeError(str(exc)) from exc
        if not isinstance(decl, TypeDecl):
            raise LFTypeError(f"{term.ref} is not an index-term constant")
        return decl.family
    if isinstance(term, PrincipalLit):
        return PRINCIPAL_T
    if isinstance(term, NatLit):
        return NAT_T
    if isinstance(term, Lam):
        check_family_is_type(basis, ctx, term.domain)
        body_type = infer_type(basis, ctx.extend(term.var, term.domain), term.body)
        return TPi(term.var, term.domain, body_type)
    if isinstance(term, App):
        func_type = normalize_family(infer_type(basis, ctx, term.func))
        if not isinstance(func_type, TPi):
            raise LFTypeError(
                f"application head {term.func} has non-function type {func_type}"
            )
        check_type(basis, ctx, term.arg, func_type.domain)
        return substitute(func_type.body, func_type.var, term.arg)
    raise LFTypeError(f"not an LF term: {term!r}")


def check_type(
    basis: Basis, ctx: LFContext, term: Term, expected: TypeFamily
) -> None:
    """Judgement Σ;Ψ ⊢ m : τ (checking against an expected type)."""
    actual = infer_type(basis, ctx, term)
    if not families_equal(actual, expected):
        raise LFTypeError(
            f"term {term} has type {normalize_family(actual)}, expected"
            f" {normalize_family(expected)}"
        )
