"""The LF logical framework: Typecoin's index-term language (paper §4).

"For maximum generality, we follow Simmons [2012] and use LF for our index
terms.  Using LF, one can define whatever language of discourse one
requires."  This package implements the LF fragment of Figure 1: kinds,
type families (no family-level λ, following Harper–Pfenning), and index
terms, with the two special types ``principal`` and ``nat`` singled out for
their role in affirmations and timestamps.

Atomic propositions reuse the type-family machinery at the extra kind
``prop`` — "it is easy to show that the addition of a new kind does not
affect the existing LF metatheory."
"""

from repro.lf.syntax import (
    BUILTIN,
    THIS,
    App,
    Const,
    ConstRef,
    KPi,
    Kind,
    KindSort,
    Lam,
    NatLit,
    PrincipalLit,
    TApp,
    TConst,
    TPi,
    Term,
    TypeFamily,
    Var,
    alpha_equal,
    free_vars,
    substitute,
    substitute_this,
)
from repro.lf.normalize import normalize, normalize_family
from repro.lf.basis import (
    Basis,
    BasisError,
    Declaration,
    KindDecl,
    PropDecl,
    TypeDecl,
    builtin_basis,
    NAT,
    PRINCIPAL,
    ADD,
    PLUS,
    PLUS_REFL,
)
from repro.lf.typecheck import LFContext, LFTypeError, check_kind, infer_kind, infer_type, check_type

__all__ = [
    "BUILTIN",
    "THIS",
    "App",
    "Const",
    "ConstRef",
    "KPi",
    "Kind",
    "KindSort",
    "Lam",
    "NatLit",
    "PrincipalLit",
    "TApp",
    "TConst",
    "TPi",
    "Term",
    "TypeFamily",
    "Var",
    "alpha_equal",
    "free_vars",
    "substitute",
    "substitute_this",
    "normalize",
    "normalize_family",
    "Basis",
    "BasisError",
    "Declaration",
    "KindDecl",
    "PropDecl",
    "TypeDecl",
    "builtin_basis",
    "NAT",
    "PRINCIPAL",
    "ADD",
    "PLUS",
    "PLUS_REFL",
    "LFContext",
    "LFTypeError",
    "check_kind",
    "infer_kind",
    "infer_type",
    "check_type",
]
