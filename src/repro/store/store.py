"""The durable block store: logs + snapshots + manifest, and recovery.

Paper §3.3 assumes nodes that "maintain a table of all unspent txouts"
across restarts without re-trusting peers.  :class:`BlockStore` is that
disk.  One directory holds:

* ``blocks.log`` — append-only connect/disconnect records (CRC framed,
  see :mod:`repro.store.framing`), the authoritative history of every
  active-chain transition in commit order;
* ``undo.log`` — one :class:`~repro.bitcoin.utxo.BlockUndo` per
  connected block, so recovery can rewind below a snapshot without
  re-deriving spends;
* ``utxo-<height>.snap`` — periodic full UTXO snapshots, written
  atomically (temp file + fsync + rename);
* ``MANIFEST.json`` — ties them together: genesis hash, the latest
  snapshot, and the log offsets that snapshot is consistent with.

Write path
----------

Appends are flushed to the OS on every record, so a *process* crash
loses at most the record being written (the torn tail recovery
truncates).  ``fsync_appends=True`` additionally fsyncs each append for
power-loss durability; snapshots and the manifest are always fsynced.

Recovery
--------

:meth:`recover` scans both logs (truncating torn/corrupt tails), loads
the newest usable snapshot, and returns a :class:`RecoveredState` that
:meth:`repro.bitcoin.chain.Blockchain.restore` replays — pre-snapshot
records rebuild the index only, the snapshot supplies the UTXO table,
and post-snapshot records replay forward (undo records, or freshly
recomputed undo, drive any disconnects).  No script re-verification, no
proof-of-work grinding, no peer traffic: committed blocks come back from
disk byte-identical.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.bitcoin.block import Block
from repro.bitcoin.utxo import BlockUndo, UTXOSet
from repro.store import codec, framing
from repro.store.snapshot import (
    SnapshotData,
    SnapshotError,
    read_snapshot_file,
    write_snapshot_file,
)

BLOCK_LOG_MAGIC = b"RPRBLKL1"
UNDO_LOG_MAGIC = b"RPRUNDO1"
MANIFEST_VERSION = 1

BLOCK_LOG_NAME = "blocks.log"
UNDO_LOG_NAME = "undo.log"
MANIFEST_NAME = "MANIFEST.json"


class StoreError(Exception):
    """The store is unusable: inconsistent manifest, undecodable state."""


@dataclass(frozen=True)
class LogRecord:
    """One net block-log record, already decoded."""

    kind: int  # codec.RECORD_CONNECT or codec.RECORD_DISCONNECT
    height: int
    offset: int  # byte offset of the record start in blocks.log
    block_hash: bytes
    block: Block | None  # present for connect records


@dataclass
class RecoveredState:
    """Everything :meth:`Blockchain.restore` needs to rebuild a node."""

    records: list[LogRecord] = field(default_factory=list)
    undo_by_hash: dict[bytes, BlockUndo] = field(default_factory=dict)
    snapshot: SnapshotData | None = None
    snapshot_offset: int = 0  # blocks.log offset the snapshot is valid at
    genesis: bytes | None = None
    blocks_truncated: int = 0
    undo_truncated: int = 0
    crc_failures: int = 0


class BlockStore:
    """Durable persistence for one node's chain (see module docstring).

    ``snapshot_interval=N`` writes a UTXO snapshot every N block
    connects (0 disables automatic snapshots; :meth:`write_snapshot`
    can still be called by hand).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        snapshot_interval: int = 0,
        fsync_appends: bool = False,
    ):
        self.root = Path(root)
        self.snapshot_interval = snapshot_interval
        self.fsync_appends = fsync_appends
        self._block_log = None
        self._undo_log = None
        self._manifest: dict = {}
        self._scan_blocks: framing.ScanResult | None = None
        self._scan_undo: framing.ScanResult | None = None
        self._connects_since_snapshot = 0
        self._opened = False

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    @property
    def block_log_path(self) -> Path:
        return self.root / BLOCK_LOG_NAME

    @property
    def undo_log_path(self) -> Path:
        return self.root / UNDO_LOG_NAME

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def snapshot_path(self, height: int) -> Path:
        return self.root / f"utxo-{height:08d}.snap"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def open(self) -> "BlockStore":
        """Scan the directory, truncate torn tails, ready the appenders."""
        if self._opened:
            return self
        self.root.mkdir(parents=True, exist_ok=True)
        self._scan_blocks = framing.scan_records(
            self.block_log_path, BLOCK_LOG_MAGIC
        )
        self._scan_undo = framing.scan_records(self.undo_log_path, UNDO_LOG_MAGIC)
        truncated = (
            self._scan_blocks.truncated_bytes + self._scan_undo.truncated_bytes
        )
        if obs.ENABLED and truncated:
            obs.inc("store.truncated_bytes_total", truncated)
            obs.inc(
                "store.truncated_records_total",
                int(self._scan_blocks.truncated_bytes > 0)
                + int(self._scan_undo.truncated_bytes > 0),
            )
            obs.inc(
                "store.crc_failures_total",
                self._scan_blocks.crc_failures + self._scan_undo.crc_failures,
            )
            obs.emit(
                "store.truncated",
                path=str(self.root),
                bytes=truncated,
            )
        self._block_log = framing.open_for_append(
            self.block_log_path, BLOCK_LOG_MAGIC, self._scan_blocks.valid_length
        )
        self._undo_log = framing.open_for_append(
            self.undo_log_path, UNDO_LOG_MAGIC, self._scan_undo.valid_length
        )
        self._manifest = self._read_manifest()
        self._opened = True
        return self

    def close(self) -> None:
        """Release file handles (flushed appends stay on disk)."""
        for fh in (self._block_log, self._undo_log):
            if fh is not None:
                try:
                    fh.close()
                except ValueError:  # pragma: no cover - already closed
                    pass
        self._block_log = None
        self._undo_log = None
        self._opened = False

    def wipe(self) -> None:
        """Delete every store file — the ``persist_chain=False`` path."""
        self.close()
        if not self.root.exists():
            return
        for entry in self.root.iterdir():
            if entry.name in (BLOCK_LOG_NAME, UNDO_LOG_NAME, MANIFEST_NAME) or (
                entry.name.startswith("utxo-")
                and entry.name.endswith((".snap", ".snap.tmp"))
            ):
                entry.unlink()
        self._manifest = {}
        self._scan_blocks = None
        self._scan_undo = None
        self._connects_since_snapshot = 0

    @property
    def is_empty(self) -> bool:
        """True when no block records survived the scan (fresh store)."""
        self._require_open()
        return not self._scan_blocks.records

    def _require_open(self) -> None:
        if not self._opened:
            raise StoreError("store is not open")

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def _read_manifest(self) -> dict:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            return {}
        except (ValueError, OSError) as exc:
            raise StoreError(f"unreadable manifest: {exc}") from exc
        if manifest.get("version") != MANIFEST_VERSION:
            raise StoreError(
                f"unsupported manifest version {manifest.get('version')!r}"
            )
        return manifest

    def _write_manifest(self) -> None:
        data = json.dumps(self._manifest, indent=2, sort_keys=True)
        tmp_path = os.fspath(self.manifest_path) + ".tmp"
        with open(tmp_path, "w") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, self.manifest_path)

    def set_genesis(self, genesis_hash: bytes) -> None:
        """Bind the store to one chain; a mismatch means a foreign store."""
        self._require_open()
        recorded = self._manifest.get("genesis")
        if recorded is not None and recorded != genesis_hash.hex():
            raise StoreError(
                "store belongs to a different chain "
                f"(genesis {recorded} != {genesis_hash.hex()})"
            )
        if recorded is None:
            self._manifest["version"] = MANIFEST_VERSION
            self._manifest["genesis"] = genesis_hash.hex()
            self._manifest.setdefault("snapshot", None)
            self._write_manifest()

    # ------------------------------------------------------------------
    # Append path (Blockchain connect/disconnect hooks)
    # ------------------------------------------------------------------

    def _append(self, fh, payload: bytes) -> int:
        record = framing.encode_record(payload)
        fh.write(record)
        fh.flush()
        if self.fsync_appends:
            os.fsync(fh.fileno())
        return len(record)

    def append_connect(self, block: Block, height: int, undo: BlockUndo) -> None:
        """Persist one block connect: the block record plus its undo."""
        self._require_open()
        prof = obs.PROFILER if obs.ENABLED else None
        if prof is not None:
            prof.enter("store_append")
        try:
            written = self._append(
                self._block_log, codec.encode_connect(block, height)
            )
            written += self._append(
                self._undo_log, codec.encode_undo_record(block.hash, height, undo)
            )
        finally:
            if prof is not None:
                prof.exit()
        self._connects_since_snapshot += 1
        if obs.ENABLED:
            obs.inc("store.blocks_appended_total")
            obs.inc("store.bytes_written_total", written)

    def append_disconnect(self, block_hash: bytes, height: int) -> None:
        """Persist one tip disconnect (reorg rollback marker)."""
        self._require_open()
        prof = obs.PROFILER if obs.ENABLED else None
        if prof is not None:
            prof.enter("store_append")
        try:
            written = self._append(
                self._block_log, codec.encode_disconnect(block_hash, height)
            )
        finally:
            if prof is not None:
                prof.exit()
        if obs.ENABLED:
            obs.inc("store.disconnects_appended_total")
            obs.inc("store.bytes_written_total", written)

    def should_snapshot(self) -> bool:
        return (
            self.snapshot_interval > 0
            and self._connects_since_snapshot >= self.snapshot_interval
        )

    def write_snapshot(self, utxos: UTXOSet, height: int, tip: bytes) -> Path:
        """Publish a UTXO snapshot consistent with the current log tails.

        Both logs are fsynced first so the recorded offsets refer to
        bytes that are guaranteed durable — a torn tail can only ever
        lie *after* the newest snapshot's offsets.
        """
        self._require_open()
        prof = obs.PROFILER if obs.ENABLED else None
        if prof is not None:
            prof.enter("store_snapshot")
        try:
            for fh in (self._block_log, self._undo_log):
                fh.flush()
                os.fsync(fh.fileno())
            path = self.snapshot_path(height)
            size = write_snapshot_file(path, utxos, height, tip)
        finally:
            if prof is not None:
                prof.exit()
        previous = self._manifest.get("snapshot") or {}
        self._manifest["version"] = MANIFEST_VERSION
        self._manifest["snapshot"] = {
            "file": path.name,
            "height": height,
            "tip": tip.hex(),
            "blocks_offset": self._block_log.tell(),
            "undo_offset": self._undo_log.tell(),
        }
        self._write_manifest()
        self._connects_since_snapshot = 0
        old_file = previous.get("file")
        if old_file and old_file != path.name:
            # The manifest no longer references it; reclaim the space.
            try:
                (self.root / old_file).unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        if obs.ENABLED:
            obs.inc("store.snapshots_total")
            obs.inc("store.bytes_written_total", size)
            obs.emit(
                "store.snapshot", height=height, tip=tip, bytes=size
            )
        return path

    def snapshot_offsets_consistent(self) -> bool:
        """Whether the manifest snapshot's log offsets are ≤ the log tails.

        A snapshot whose recorded ``blocks_offset``/``undo_offset`` lie
        beyond the bytes actually written would make recovery seek past
        the end of a log — an invariant the runtime monitors sample
        (:mod:`repro.obs.monitor`).  A store with no snapshot (or not
        currently open) is trivially consistent.
        """
        if not self._opened:
            return True
        manifest_snap = self._manifest.get("snapshot")
        if not manifest_snap:
            return True
        return (
            int(manifest_snap.get("blocks_offset", 0)) <= self._block_log.tell()
            and int(manifest_snap.get("undo_offset", 0)) <= self._undo_log.tell()
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> RecoveredState:
        """Decode the scanned logs + newest usable snapshot (see module
        docstring for the algorithm)."""
        self._require_open()
        state = RecoveredState(
            blocks_truncated=self._scan_blocks.truncated_bytes,
            undo_truncated=self._scan_undo.truncated_bytes,
            crc_failures=self._scan_blocks.crc_failures
            + self._scan_undo.crc_failures,
        )
        genesis_hex = self._manifest.get("genesis")
        state.genesis = bytes.fromhex(genesis_hex) if genesis_hex else None

        for offset, payload in self._scan_blocks.records:
            try:
                kind, height, block, block_hash = codec.decode_block_record(
                    payload
                )
            except codec.CodecError as exc:
                raise StoreError(f"corrupt block log: {exc}") from exc
            state.records.append(
                LogRecord(
                    kind=kind,
                    height=height,
                    offset=offset,
                    block_hash=block_hash,
                    block=block,
                )
            )
        for _, payload in self._scan_undo.records:
            try:
                block_hash, _height, undo = codec.decode_undo_record(payload)
            except codec.CodecError as exc:
                raise StoreError(f"corrupt undo log: {exc}") from exc
            # Last record wins: a block reconnected after a reorg logs a
            # fresh (identical) undo; the newest is always current.
            state.undo_by_hash[block_hash] = undo

        manifest_snap = self._manifest.get("snapshot")
        if manifest_snap:
            state.snapshot, state.snapshot_offset = self._load_snapshot(
                manifest_snap
            )
        return state

    def _load_snapshot(
        self, manifest_snap: dict
    ) -> tuple[SnapshotData | None, int]:
        """Validate the manifest's snapshot against the surviving logs.

        An unusable snapshot (checksum failure, or log offsets past what
        survived truncation — impossible unless the logs themselves were
        damaged *before* the snapshot was cut) degrades to a full replay
        rather than failing recovery.
        """
        blocks_offset = int(manifest_snap.get("blocks_offset", 0))
        undo_offset = int(manifest_snap.get("undo_offset", 0))
        if (
            blocks_offset > self._scan_blocks.valid_length
            or undo_offset > self._scan_undo.valid_length
        ):
            if obs.ENABLED:
                obs.inc("store.snapshot_fallbacks_total")
            return None, 0
        try:
            snapshot = read_snapshot_file(self.root / manifest_snap["file"])
        except SnapshotError:
            if obs.ENABLED:
                obs.inc("store.snapshot_fallbacks_total")
            return None, 0
        if (
            snapshot.height != int(manifest_snap.get("height", -1))
            or snapshot.tip.hex() != manifest_snap.get("tip")
        ):
            if obs.ENABLED:
                obs.inc("store.snapshot_fallbacks_total")
            return None, 0
        return snapshot, blocks_offset
