"""Periodic UTXO snapshots: one atomic file per checkpoint.

A snapshot is the full unspent-txout table at one committed chain
position, written via temp-file + fsync + atomic rename so a crash can
never leave a half-written snapshot under the published name — readers
see either the previous snapshot or the new one, never a hybrid.

Layout::

    magic(8) version(u16) height(u32) tip(32) count(u32)
    entry*                       # outpoint + UTXOEntry, count times
    crc32(u32)                   # over every preceding byte

Entries are sorted by outpoint, so the same set always produces the same
bytes — snapshots can be compared with ``cmp``.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass

from repro.bitcoin.transaction import OutPoint
from repro.bitcoin.utxo import UTXOEntry, UTXOSet
from repro.store.codec import (
    CodecError,
    _decode_outpoint,
    decode_utxo_entry,
    encode_utxo_entry,
)

SNAPSHOT_MAGIC = b"RPRUTXO1"
SNAPSHOT_VERSION = 1
_HEADER = struct.Struct("<8sHI32sI")


class SnapshotError(ValueError):
    """A snapshot file is missing, corrupt, or fails its checksum."""


@dataclass
class SnapshotData:
    """One decoded snapshot: the UTXO table at a committed position."""

    height: int
    tip: bytes
    entries: dict[OutPoint, UTXOEntry]

    def to_utxo_set(self) -> UTXOSet:
        utxos = UTXOSet()
        for outpoint, entry in self.entries.items():
            utxos.add(outpoint, entry)
        return utxos


def encode_snapshot(utxos: UTXOSet, height: int, tip: bytes) -> bytes:
    items = sorted(utxos.items(), key=lambda kv: kv[0])
    out = bytearray(
        _HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, height, tip, len(items))
    )
    for outpoint, entry in items:
        out += outpoint.serialize()
        out += encode_utxo_entry(entry)
    out += (zlib.crc32(bytes(out)) & 0xFFFFFFFF).to_bytes(4, "little")
    return bytes(out)


def decode_snapshot(data: bytes) -> SnapshotData:
    if len(data) < _HEADER.size + 4:
        raise SnapshotError("snapshot file too short")
    body, crc_bytes = data[:-4], data[-4:]
    if zlib.crc32(body) & 0xFFFFFFFF != int.from_bytes(crc_bytes, "little"):
        raise SnapshotError("snapshot checksum mismatch")
    magic, version, height, tip, count = _HEADER.unpack_from(body, 0)
    if magic != SNAPSHOT_MAGIC or version != SNAPSHOT_VERSION:
        raise SnapshotError("unrecognized snapshot header")
    entries: dict[OutPoint, UTXOEntry] = {}
    offset = _HEADER.size
    try:
        for _ in range(count):
            outpoint, offset = _decode_outpoint(body, offset)
            entry, offset = decode_utxo_entry(body, offset)
            entries[outpoint] = entry
    except CodecError as exc:
        raise SnapshotError(f"corrupt snapshot entry: {exc}") from exc
    if offset != len(body):
        raise SnapshotError("trailing bytes in snapshot")
    return SnapshotData(height=height, tip=tip, entries=entries)


def write_snapshot_file(
    path: str | os.PathLike, utxos: UTXOSet, height: int, tip: bytes
) -> int:
    """Atomically publish a snapshot at ``path``; returns bytes written.

    The data lands in ``path + ".tmp"`` first and is fsynced before the
    rename, so the published name always refers to a complete file.
    """
    data = encode_snapshot(utxos, height, tip)
    tmp_path = os.fspath(path) + ".tmp"
    with open(tmp_path, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    return len(data)


def read_snapshot_file(path: str | os.PathLike) -> SnapshotData:
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError as exc:
        raise SnapshotError(f"snapshot file missing: {path}") from exc
    return decode_snapshot(data)
