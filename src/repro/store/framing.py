"""Length + CRC record framing for the append-only log files.

Every log in :mod:`repro.store` is a file header followed by a sequence
of self-delimiting records::

    file   := magic(8) version(u16 LE) record*
    record := length(u32 LE) crc32(u32 LE) payload(length bytes)

The CRC covers the payload only; the length field is bounded by
:data:`MAX_RECORD_SIZE` so a corrupted length cannot make the scanner
swallow the rest of the file as one giant record.

A crash can leave a *torn tail*: a partially written record (short
header, short payload) or a record whose payload no longer matches its
CRC.  :func:`scan_records` stops at the first bad record and reports the
byte offset up to which the file is trustworthy; the writer truncates
there before appending again.  Everything before that offset is intact —
framing errors never propagate backwards.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass, field

FILE_VERSION = 1
_FILE_HEADER = struct.Struct("<8sH")
_RECORD_HEADER = struct.Struct("<II")

# A single record larger than this is evidence of corruption, not data
# (our largest payload is one max-size block plus a few bytes of framing).
MAX_RECORD_SIZE = 16 * 1024 * 1024


class FramingError(ValueError):
    """A log file has an unrecognized header (wrong magic or version)."""


@dataclass
class ScanResult:
    """Outcome of scanning one log file."""

    records: list[tuple[int, bytes]] = field(default_factory=list)
    """(offset_of_record_start, payload) for every intact record."""

    valid_length: int = 0
    """File is trustworthy up to this byte offset (truncate here)."""

    truncated_bytes: int = 0
    """Bytes past ``valid_length`` dropped by the torn/corrupt tail."""

    crc_failures: int = 0
    """1 if the scan stopped on a CRC mismatch (0 for a clean or torn end)."""


def write_file_header(fh, magic: bytes) -> int:
    """Write the 10-byte file header; returns its size."""
    header = _FILE_HEADER.pack(magic, FILE_VERSION)
    fh.write(header)
    return len(header)


def file_header_size() -> int:
    return _FILE_HEADER.size


def encode_record(payload: bytes) -> bytes:
    """Frame one payload as ``length crc payload``."""
    if len(payload) > MAX_RECORD_SIZE:
        raise ValueError("record exceeds maximum size")
    return (
        _RECORD_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        + payload
    )


def scan_records(path: str | os.PathLike, magic: bytes) -> ScanResult:
    """Read every intact record of ``path``; tolerate a torn/corrupt tail.

    Raises :class:`FramingError` if the file header itself is wrong (a
    log that never finished its 10-byte header counts as empty instead —
    that, too, is a torn tail).
    """
    result = ScanResult()
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return result
    header_size = _FILE_HEADER.size
    if len(data) < header_size:
        # Torn before the header finished: the whole file is discarded.
        result.truncated_bytes = len(data)
        return result
    got_magic, version = _FILE_HEADER.unpack_from(data, 0)
    if got_magic != magic or version != FILE_VERSION:
        raise FramingError(
            f"{os.fspath(path)}: bad log header "
            f"(magic={got_magic!r}, version={version})"
        )
    offset = header_size
    result.valid_length = offset
    while offset < len(data):
        if offset + _RECORD_HEADER.size > len(data):
            break  # torn record header
        length, crc = _RECORD_HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_SIZE:
            result.crc_failures = 1  # corrupt length field
            break
        start = offset + _RECORD_HEADER.size
        end = start + length
        if end > len(data):
            break  # torn payload
        payload = data[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            result.crc_failures = 1
            break
        result.records.append((offset, payload))
        offset = end
        result.valid_length = offset
    result.truncated_bytes = len(data) - result.valid_length
    return result


def open_for_append(
    path: str | os.PathLike, magic: bytes, valid_length: int
) -> io.BufferedWriter:
    """Open a log for appending, truncating any torn tail first.

    A missing or header-torn file (``valid_length == 0``) is recreated
    from scratch with a fresh file header.
    """
    if valid_length < _FILE_HEADER.size:
        fh = open(path, "wb")
        write_file_header(fh, magic)
        fh.flush()
        return fh
    fh = open(path, "r+b")
    fh.truncate(valid_length)
    fh.seek(valid_length)
    return fh
