"""``repro.store`` — durable block persistence with crash-safe recovery.

The disk a paper §3.3 node keeps its committed state on: an append-only
block log, per-block undo records, periodic atomic UTXO snapshots, and a
manifest tying them together.  A node killed mid-write recovers to the
exact committed tip — torn tails are truncated, everything durable is
replayed — without re-downloading a single committed block from peers.

Modules:

* :mod:`repro.store.framing` — length+CRC record framing, torn-tail scan;
* :mod:`repro.store.codec` — block/undo/UTXO-entry byte codecs;
* :mod:`repro.store.snapshot` — atomic UTXO snapshot files;
* :mod:`repro.store.store` — :class:`BlockStore`, the directory manager;
* :mod:`repro.store.recovery` — :func:`recover_chain`, store → chain.

See ``docs/persistence.md`` for the file formats and recovery algorithm.
"""

from repro.store.framing import FramingError, ScanResult
from repro.store.recovery import recover_chain
from repro.store.snapshot import SnapshotData, SnapshotError
from repro.store.store import (
    BlockStore,
    LogRecord,
    RecoveredState,
    StoreError,
)

__all__ = [
    "BlockStore",
    "FramingError",
    "LogRecord",
    "RecoveredState",
    "ScanResult",
    "SnapshotData",
    "SnapshotError",
    "StoreError",
    "recover_chain",
]
