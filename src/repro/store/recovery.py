"""Crash recovery: turn an on-disk store back into a live blockchain.

The one-call entry point a restarting node uses::

    store = BlockStore(path).open()       # truncates any torn tail
    chain = recover_chain(store, params)  # replays to the committed tip

The chain comes back at the exact committed tip — the last block whose
log record survived intact — with a byte-identical UTXO set, and the
store re-attached so new connects keep appending where the log left off.
Nothing is fetched from peers and no script is re-verified; recovery
cost is bounded by decode + UTXO apply of the post-snapshot suffix.
"""

from __future__ import annotations

from repro import obs
from repro.bitcoin.chain import Blockchain, ChainParams
from repro.bitcoin.validation import ParallelScriptVerifier
from repro.store.store import BlockStore


def recover_chain(
    store: BlockStore,
    params: ChainParams | None = None,
    script_verifier: ParallelScriptVerifier | None = None,
    batch_sig_verify: bool = False,
    utxo_cache: bool = False,
) -> Blockchain:
    """Rebuild a :class:`Blockchain` from ``store`` and attach it.

    The store must already be :meth:`~BlockStore.open`-ed (which is what
    truncates torn tails).  An empty store yields a fresh genesis-only
    chain with the store attached — first boot and recovery are the same
    code path.  ``batch_sig_verify`` / ``utxo_cache`` carry the pipeline
    accelerator opts into the rebuilt chain (recovery itself never
    re-verifies scripts, so only the cache opt affects the replay).
    """
    if obs.ENABLED:
        with obs.trace_span(
            "store.recover", metric="store.recover_seconds"
        ):
            chain = _recover_inner(
                store, params, script_verifier, batch_sig_verify, utxo_cache
            )
        obs.inc("store.recoveries_total")
        obs.emit(
            "store.recovered",
            height=chain.height,
            tip=chain.tip.block.hash,
            blocks=len(chain._active) - 1,
            from_snapshot=bool(store._manifest.get("snapshot")),
        )
        return chain
    return _recover_inner(
        store, params, script_verifier, batch_sig_verify, utxo_cache
    )


def _recover_inner(
    store: BlockStore,
    params: ChainParams | None,
    script_verifier: ParallelScriptVerifier | None,
    batch_sig_verify: bool = False,
    utxo_cache: bool = False,
) -> Blockchain:
    recovered = store.recover()
    chain = Blockchain.restore(
        recovered,
        params=params,
        script_verifier=script_verifier,
        batch_sig_verify=batch_sig_verify,
        utxo_cache=utxo_cache,
    )
    chain.attach_store(store)
    return chain
