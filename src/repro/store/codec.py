"""Byte codecs for the persisted consensus state.

Three payload shapes live on disk (see ``docs/persistence.md``):

* block-log records — ``kind height body`` where the body is a full
  serialized block (connect) or a 32-byte block hash (disconnect);
* undo-log records — the :class:`~repro.bitcoin.utxo.BlockUndo` needed
  to disconnect one block without re-deriving its inputs;
* UTXO snapshot entries — ``outpoint``/:class:`UTXOEntry` pairs.

Everything reuses the wire encodings of the transaction layer (varints,
scripts, txouts), so a snapshot entry is byte-compatible with the
outputs it mirrors.
"""

from __future__ import annotations

from repro.bitcoin.block import Block
from repro.bitcoin.script import Script
from repro.bitcoin.transaction import (
    OutPoint,
    TxOut,
    read_varint,
    varint,
)
from repro.bitcoin.utxo import BlockUndo, SpentInfo, UTXOEntry

# Block-log record kinds.
RECORD_CONNECT = 1
RECORD_DISCONNECT = 2

OUTPOINT_SIZE = 36


class CodecError(ValueError):
    """A persisted payload does not decode to a well-formed structure."""


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------


def _decode_outpoint(data: bytes, offset: int) -> tuple[OutPoint, int]:
    if offset + OUTPOINT_SIZE > len(data):
        raise CodecError("truncated outpoint")
    txid = data[offset : offset + 32]
    index = int.from_bytes(data[offset + 32 : offset + 36], "little")
    return OutPoint(txid, index), offset + OUTPOINT_SIZE


def _decode_txout(data: bytes, offset: int) -> tuple[TxOut, int]:
    if offset + 8 > len(data):
        raise CodecError("truncated txout value")
    value = int.from_bytes(data[offset : offset + 8], "little", signed=True)
    offset += 8
    script_len, offset = read_varint(data, offset)
    if offset + script_len > len(data):
        raise CodecError("truncated txout script")
    script = Script.parse(data[offset : offset + script_len])
    return TxOut(value, script), offset + script_len


def encode_utxo_entry(entry: UTXOEntry) -> bytes:
    return (
        entry.height.to_bytes(4, "little")
        + bytes([1 if entry.is_coinbase else 0])
        + entry.output.serialize()
    )


def decode_utxo_entry(data: bytes, offset: int) -> tuple[UTXOEntry, int]:
    if offset + 5 > len(data):
        raise CodecError("truncated UTXO entry header")
    height = int.from_bytes(data[offset : offset + 4], "little")
    is_coinbase = data[offset + 4] != 0
    output, offset = _decode_txout(data, offset + 5)
    return UTXOEntry(output, height, is_coinbase), offset


# ----------------------------------------------------------------------
# Block-log records
# ----------------------------------------------------------------------


def encode_connect(block: Block, height: int) -> bytes:
    return (
        bytes([RECORD_CONNECT])
        + height.to_bytes(4, "little")
        + block.serialize()
    )


def encode_disconnect(block_hash: bytes, height: int) -> bytes:
    return bytes([RECORD_DISCONNECT]) + height.to_bytes(4, "little") + block_hash


def decode_block_record(payload: bytes) -> tuple[int, int, Block | None, bytes]:
    """Decode one block-log payload → (kind, height, block, block_hash)."""
    if len(payload) < 5:
        raise CodecError("block-log record too short")
    kind = payload[0]
    height = int.from_bytes(payload[1:5], "little")
    if kind == RECORD_CONNECT:
        try:
            block = Block.parse(payload[5:])
        except (IndexError, ValueError) as exc:
            raise CodecError(f"unparseable block in log: {exc}") from exc
        return kind, height, block, block.hash
    if kind == RECORD_DISCONNECT:
        if len(payload) != 5 + 32:
            raise CodecError("disconnect record has wrong length")
        return kind, height, None, payload[5:]
    raise CodecError(f"unknown block-log record kind {kind}")


# ----------------------------------------------------------------------
# Undo-log records
# ----------------------------------------------------------------------


def encode_undo_record(block_hash: bytes, height: int, undo: BlockUndo) -> bytes:
    out = bytearray(block_hash)
    out += height.to_bytes(4, "little")
    out += varint(len(undo.spent))
    for spent in undo.spent:
        out += spent.outpoint.serialize()
        out += encode_utxo_entry(spent.entry)
    out += varint(len(undo.created))
    for outpoint in undo.created:
        out += outpoint.serialize()
    return bytes(out)


def decode_undo_record(payload: bytes) -> tuple[bytes, int, BlockUndo]:
    """Decode one undo-log payload → (block_hash, height, undo)."""
    if len(payload) < 36:
        raise CodecError("undo record too short")
    block_hash = payload[0:32]
    height = int.from_bytes(payload[32:36], "little")
    undo = BlockUndo()
    n_spent, offset = read_varint(payload, 36)
    for _ in range(n_spent):
        outpoint, offset = _decode_outpoint(payload, offset)
        entry, offset = decode_utxo_entry(payload, offset)
        undo.spent.append(SpentInfo(outpoint, entry))
    n_created, offset = read_varint(payload, offset)
    for _ in range(n_created):
        outpoint, offset = _decode_outpoint(payload, offset)
        undo.created.append(outpoint)
    if offset != len(payload):
        raise CodecError("trailing bytes in undo record")
    return block_hash, height, undo
