"""Typecoin: peer-to-peer affine commitment using Bitcoin.

A Python reproduction of Crary & Sullivan, PLDI 2015.  The package layers:

* :mod:`repro.crypto` — hashes, secp256k1 ECDSA, Merkle trees;
* :mod:`repro.bitcoin` — a self-contained Bitcoin implementation plus a
  discrete-event network/mining simulator;
* :mod:`repro.lf` — the LF logical framework for index terms;
* :mod:`repro.logic` — the affine authorization logic and proof checker;
* :mod:`repro.surface` — concrete syntax for the whole language;
* :mod:`repro.core` — Typecoin transactions, validation, the Bitcoin
  overlay, verification, clients, batch mode, escrow, and the paper's
  worked examples (newcoin, PCA).

Start with ``examples/quickstart.py`` or the README.
"""

__version__ = "1.0.0"
