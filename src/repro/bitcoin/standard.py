"""Standard script schemas and relay policy (paper §3.3).

The Bitcoin network "makes most scripts unavailable for normal use": only a
small number of schemas are *standard*, and nodes refuse to relay anything
else.  Typecoin's metadata embedding therefore must use a standard schema —
the 1-of-2 multisig trick — rather than arbitrary scripts.  This module
defines the standard templates and the classifier the mempool policy uses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.bitcoin.script import Op, Script

MAX_OP_RETURN_PAYLOAD = 80


class ScriptType(enum.Enum):
    """The standard output-script shapes (plus NONSTANDARD)."""

    P2PK = "pubkey"
    P2PKH = "pubkeyhash"
    MULTISIG = "multisig"
    OP_RETURN = "nulldata"
    NONSTANDARD = "nonstandard"


def p2pk_script(pubkey: bytes) -> Script:
    """Pay directly to a public key: ``<pubkey> OP_CHECKSIG``."""
    return Script([pubkey, Op.OP_CHECKSIG])


def p2pkh_script(key_hash: bytes) -> Script:
    """Pay to a public-key hash (the everyday Bitcoin output)."""
    if len(key_hash) != 20:
        raise ValueError("P2PKH requires a 20-byte key hash")
    return Script([
        Op.OP_DUP, Op.OP_HASH160, key_hash, Op.OP_EQUALVERIFY, Op.OP_CHECKSIG,
    ])


_SMALL = [
    Op.OP_1, Op.OP_2, Op.OP_3, Op.OP_4, Op.OP_5, Op.OP_6, Op.OP_7, Op.OP_8,
    Op.OP_9, Op.OP_10, Op.OP_11, Op.OP_12, Op.OP_13, Op.OP_14, Op.OP_15,
    Op.OP_16,
]


def multisig_script(m: int, pubkeys: list[bytes]) -> Script:
    """BIP-11 m-of-n multisig: ``m <key>... n OP_CHECKMULTISIG``.

    Standardness caps n at 3 on the relay network, which is exactly enough
    for Typecoin's 1-of-2 metadata embedding and 2-of-3 escrow (paper §3.3,
    §7).
    """
    n = len(pubkeys)
    if not 1 <= m <= n <= 3:
        raise ValueError("standard multisig requires 1 <= m <= n <= 3")
    return Script([_SMALL[m - 1], *pubkeys, _SMALL[n - 1], Op.OP_CHECKMULTISIG])


def op_return_script(payload: bytes) -> Script:
    """Provably unspendable data carrier: ``OP_RETURN <payload>``.

    Included because it is the modern metadata channel; the paper predates
    its general availability and uses 1-of-2 multisig instead (§3.3).
    """
    if len(payload) > MAX_OP_RETURN_PAYLOAD:
        raise ValueError("OP_RETURN payload exceeds 80 bytes")
    return Script([Op.OP_RETURN, payload])


@dataclass(frozen=True)
class Classified:
    """Result of classifying an output script."""

    type: ScriptType
    # For P2PK/MULTISIG: the public keys; for P2PKH: the key hash as the
    # single entry; for OP_RETURN: the payload.
    data: tuple[bytes, ...] = ()
    required_sigs: int = 0


def _is_pubkey_shaped(data: bytes) -> bool:
    return (len(data) == 33 and data[0] in (2, 3)) or (
        len(data) == 65 and data[0] == 4
    )


def classify(script: Script) -> Classified:
    """Decide which standard schema (if any) an output script matches."""
    els = script.elements
    if (
        len(els) == 2
        and isinstance(els[0], bytes)
        and _is_pubkey_shaped(els[0])
        and els[1] == Op.OP_CHECKSIG
    ):
        return Classified(ScriptType.P2PK, (els[0],), required_sigs=1)
    if (
        len(els) == 5
        and els[0] == Op.OP_DUP
        and els[1] == Op.OP_HASH160
        and isinstance(els[2], bytes)
        and len(els[2]) == 20
        and els[3] == Op.OP_EQUALVERIFY
        and els[4] == Op.OP_CHECKSIG
    ):
        return Classified(ScriptType.P2PKH, (els[2],), required_sigs=1)
    if (
        len(els) >= 4
        and els[0] in _SMALL
        and els[-2] in _SMALL
        and els[-1] == Op.OP_CHECKMULTISIG
    ):
        m = _SMALL.index(els[0]) + 1  # type: ignore[arg-type]
        n = _SMALL.index(els[-2]) + 1  # type: ignore[arg-type]
        keys = els[1:-2]
        if (
            n == len(keys)
            and 1 <= m <= n <= 3
            and all(isinstance(k, bytes) and _is_pubkey_shaped(k) for k in keys)
        ):
            return Classified(
                ScriptType.MULTISIG, tuple(keys), required_sigs=m  # type: ignore[arg-type]
            )
    if (
        len(els) == 2
        and els[0] == Op.OP_RETURN
        and isinstance(els[1], bytes)
        and len(els[1]) <= MAX_OP_RETURN_PAYLOAD
    ):
        return Classified(ScriptType.OP_RETURN, (els[1],))
    return Classified(ScriptType.NONSTANDARD)


def is_standard(script: Script) -> bool:
    """Relay policy: would a default node forward an output paying this?"""
    return classify(script).type is not ScriptType.NONSTANDARD
