"""A discrete-event peer-to-peer network and mining simulator.

The paper's security story (§1, items 3–6) is statistical: block discovery
is a Poisson process split between honest miners and an attacker, blocks
propagate with latency, and a transaction is "confirmed" once enough blocks
bury it that the attacker's chance of out-racing the network is negligible.
This module provides:

* :class:`Simulation` — a seeded event queue with simulated time;
* :class:`Node` — a full node (chain + mempool + orphan pool) that relays;
* :class:`PoissonMiner` — a miner finding blocks at rate hashrate/work;
* :func:`nakamoto_reversal_probability` — the analytic curve of Nakamoto's
  whitepaper, which experiment E1 compares the simulator against;
* :func:`simulate_race` — the attacker-vs-network block race.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.bitcoin.block import Block
from repro.bitcoin.chain import Blockchain, ChainParams
from repro.bitcoin.mempool import Mempool, MempoolError
from repro.bitcoin.miner import Miner
from repro.bitcoin.pow import block_work
from repro.bitcoin.transaction import Transaction
from repro.bitcoin.validation import ValidationError
from repro.bitcoin.wallet import Wallet


# How an event-loop run stopped.  Callers (and the event-loop gauges) use
# the distinction to tell starvation — the queue ran dry — from an
# intentional stop at the time limit or a satisfied predicate.
STOP_DRAINED = "drained"
STOP_TIME_LIMIT = "time_limit"
STOP_PREDICATE = "predicate"


class Simulation:
    """A seeded discrete-event scheduler with simulated seconds."""

    def __init__(self, seed: int = 0):
        self.now = 0.0
        self.rng = random.Random(seed)
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.events_processed = 0
        # First time each block hash entered the network (simulated
        # seconds); feeds the block-propagation latency histogram.
        self.block_births: dict[bytes, float] = {}

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, action))

    def _dispatch(self, time: float, action: Callable[[], None]) -> None:
        self.now = time
        self.events_processed += 1
        action()
        if obs.ENABLED:
            obs.inc("net.events_total")
            obs.gauge_set("net.queue_size", len(self._queue))

    def run_until(self, end_time: float) -> str:
        """Process events up to ``end_time``; returns how the run stopped
        (:data:`STOP_DRAINED` or :data:`STOP_TIME_LIMIT`)."""
        while self._queue and self._queue[0][0] <= end_time:
            time, _, action = heapq.heappop(self._queue)
            self._dispatch(time, action)
        self.now = max(self.now, end_time)
        return STOP_DRAINED if not self._queue else STOP_TIME_LIMIT

    def run_while(self, predicate: Callable[[], bool], limit: float) -> str:
        """Process events while ``predicate()`` holds, up to ``limit`` time.

        Returns how the run stopped: :data:`STOP_DRAINED` (queue empty —
        starvation), :data:`STOP_PREDICATE` (the predicate released the
        loop), or :data:`STOP_TIME_LIMIT` (next event lies past ``limit``).
        """
        while self._queue and predicate() and self._queue[0][0] <= limit:
            time, _, action = heapq.heappop(self._queue)
            self._dispatch(time, action)
        if not self._queue:
            return STOP_DRAINED
        if not predicate():
            return STOP_PREDICATE
        return STOP_TIME_LIMIT


@dataclass
class Node:
    """A full node participating in block and transaction gossip."""

    name: str
    sim: Simulation
    params: ChainParams
    latency: float = 2.0  # mean one-hop propagation delay, seconds
    chain: Blockchain = field(init=False)
    mempool: Mempool = field(init=False)
    peers: list["Node"] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.chain = Blockchain(self.params)
        self.mempool = Mempool(self.chain)
        self._orphans: dict[bytes, list[Block]] = {}
        self._seen_blocks: set[bytes] = {self.chain.genesis.hash}
        self._seen_txs: set[bytes] = set()

    def connect(self, other: "Node") -> None:
        if other not in self.peers:
            self.peers.append(other)
        if self not in other.peers:
            other.peers.append(self)

    def _hop_delay(self) -> float:
        # Exponential jitter around the configured mean.
        return self.sim.rng.expovariate(1.0 / self.latency)

    def submit_block(self, block: Block) -> None:
        """Accept a locally-mined or received block, then relay it."""
        if block.hash in self._seen_blocks:
            return
        self._seen_blocks.add(block.hash)
        if not self.chain.has_block(block.header.prev_hash):
            self._orphans.setdefault(block.header.prev_hash, []).append(block)
            if obs.ENABLED:
                obs.inc("mempool.orphans_total")
                obs.emit(
                    "orphan.parked",
                    hash=block.hash,
                    parent=block.header.prev_hash,
                )
            return
        try:
            self.chain.add_block(block)
        except ValidationError:
            return
        if obs.ENABLED:
            birth = self.sim.block_births.get(block.hash)
            if birth is not None:
                obs.observe(
                    "net.block_propagation_seconds", self.sim.now - birth
                )
        self.mempool.remove_confirmed(list(block.txs))
        self.mempool.revalidate()
        self._relay_block(block)
        # Adopt any orphans waiting on this block.
        for child in self._orphans.pop(block.hash, []):
            self._seen_blocks.discard(child.hash)
            if obs.ENABLED:
                obs.emit(
                    "orphan.resolved", hash=child.hash, parent=block.hash
                )
            self.submit_block(child)

    def _relay_block(self, block: Block) -> None:
        if obs.ENABLED and self.peers:
            obs.inc("net.blocks_relayed_total", len(self.peers))
        for peer in self.peers:
            self.sim.schedule(self._hop_delay(), lambda p=peer: p.submit_block(block))

    def submit_transaction(self, tx: Transaction) -> bool:
        if tx.txid in self._seen_txs:
            return False
        self._seen_txs.add(tx.txid)
        try:
            self.mempool.accept(tx)
        except MempoolError:
            return False
        if obs.ENABLED and self.peers:
            obs.inc("net.txs_relayed_total", len(self.peers))
        for peer in self.peers:
            self.sim.schedule(
                self._hop_delay(), lambda p=peer: p.submit_transaction(tx)
            )
        return True


class PoissonMiner:
    """A miner that finds blocks as a Poisson process.

    Rather than grinding real nonces, block discovery times are sampled
    exponentially with mean ``block_work(bits) / hashrate`` — statistically
    the same process, fast enough to simulate weeks of network time.  The
    memorylessness of the exponential justifies re-sampling on every tip
    change (paper §1 item 4: miners always restart on the newest block).
    """

    def __init__(
        self,
        node: Node,
        hashrate: float,
        miner_id: int,
        enabled: bool = True,
    ):
        self.node = node
        self.hashrate = hashrate
        self.miner_id = miner_id
        self.enabled = enabled
        self.blocks_found = 0
        key = Wallet.from_seed(b"miner" + miner_id.to_bytes(4, "big"))
        self._miner = Miner(node.chain, key.key_hash)
        self._extra_nonce = 0

    def start(self) -> None:
        self._schedule_next()

    def _mean_time(self) -> float:
        bits = self.node.chain.required_bits(self.node.chain.tip.block.hash)
        return block_work(bits) / self.hashrate

    def _schedule_next(self) -> None:
        delay = self.node.sim.rng.expovariate(1.0 / self._mean_time())
        self.node.sim.schedule(delay, self._on_found)

    def _on_found(self) -> None:
        if self.enabled:
            self._extra_nonce += 1
            # Anchor simulated seconds at the genesis timestamp so header
            # times track the simulation clock (the retarget rule reads them).
            wall = self.node.chain.genesis.header.timestamp + int(self.node.sim.now)
            timestamp = max(wall, self.node.chain.median_time_past() + 1)
            block = self._miner.assemble(
                self.node.mempool, timestamp=timestamp, extra_nonce=self._extra_nonce
            )
            self.blocks_found += 1
            if obs.ENABLED:
                self.node.sim.block_births.setdefault(
                    block.hash, self.node.sim.now
                )
            self.node.submit_block(block)
        self._schedule_next()


def build_network(
    sim: Simulation,
    node_count: int,
    params: ChainParams | None = None,
    latency: float = 2.0,
) -> list[Node]:
    """A ring-plus-chords topology of ``node_count`` full nodes."""
    params = params or ChainParams(
        max_target=2**252, retarget_window=2**31, require_pow=False
    )
    nodes = [Node(f"node{i}", sim, params, latency) for i in range(node_count)]
    for i, node in enumerate(nodes):
        node.connect(nodes[(i + 1) % node_count])
        if node_count > 4:
            node.connect(nodes[(i + node_count // 2) % node_count])
    return nodes


# ----------------------------------------------------------------------
# The attacker race (paper §1 item 5, experiment E1)
# ----------------------------------------------------------------------


def nakamoto_reversal_probability(q: float, z: int) -> float:
    """Nakamoto's analytic probability that an attacker with hashpower
    fraction ``q`` ever reverses a transaction buried ``z`` blocks deep.

    P = 1 - Σ_{k=0}^{z} e^{-λ} λ^k / k! · (1 - (q/p)^{z-k}),  λ = z·q/p.
    """
    if not 0 <= q < 0.5:
        raise ValueError("attacker share must be in [0, 0.5)")
    if z < 0:
        raise ValueError("depth must be non-negative")
    if q == 0:
        return 0.0 if z > 0 else 1.0
    p = 1.0 - q
    lam = z * q / p
    total = 0.0
    for k in range(z + 1):
        poisson = math.exp(-lam) * lam**k / math.factorial(k)
        total += poisson * (1.0 - (q / p) ** (z - k))
    return 1.0 - total


def simulate_race(
    q: float,
    z: int,
    trials: int,
    rng: random.Random,
    max_deficit: int = 60,
) -> float:
    """Monte-Carlo estimate of the reversal probability.

    Each trial: the attacker pre-mines while the honest network produces the
    ``z`` confirmation blocks (each new block is the attacker's with
    probability q), then the remaining race is a biased random walk the
    attacker wins by ever pulling level — Nakamoto's success criterion,
    since a tied private chain released strategically out-paces the public
    one.  A deficit beyond ``max_deficit`` is scored as a loss (the tail is
    astronomically small).
    """
    if q == 0:
        return 0.0
    wins = 0
    for _ in range(trials):
        # Phase 1: attacker mines privately while z honest blocks appear.
        attacker = 0
        honest = 0
        while honest < z:
            if rng.random() < q:
                attacker += 1
            else:
                honest += 1
        deficit = honest - attacker
        if deficit <= 0:
            wins += 1
            continue
        # Phase 2: gambler's-ruin walk from -deficit toward 0 (a tie).
        position = -deficit
        while -max_deficit < position < 0:
            position += 1 if rng.random() < q else -1
        if position >= 0:
            wins += 1
    return wins / trials


def reversal_probability_exact(q: float, z: int, max_lead: int = 400) -> float:
    """Exact reversal probability under the same model as the simulator.

    The attacker's block count while the honest chain mines its ``z``
    confirmations is negative-binomially distributed (Nakamoto approximates
    it with a Poisson); from a deficit d the catch-up probability is
    (q/p)^d.  Summing gives the exact curve :func:`simulate_race` estimates.
    """
    if not 0 <= q < 0.5:
        raise ValueError("attacker share must be in [0, 0.5)")
    if q == 0:
        return 0.0 if z > 0 else 1.0
    if z == 0:
        return 1.0
    p = 1.0 - q
    ratio = q / p
    total = 0.0
    for k in range(z + max_lead):
        # P(attacker has k blocks when the z-th honest block appears).
        weight = math.comb(z + k - 1, k) * p**z * q**k
        catch_up = 1.0 if k >= z else ratio ** (z - k)
        total += weight * catch_up
    return total


@dataclass
class RaceOutcome:
    """Result of one full-simulator double-spend race."""

    attacker_won: bool
    honest_blocks: int
    attacker_blocks: int
    duration: float


def simulate_race_full(
    q: float,
    z: int,
    sim_seed: int,
    horizon_blocks: int = 200,
) -> RaceOutcome:
    """One attacker-vs-network race on real chain objects.

    An honest miner (share 1-q) and an attacker (share q) mine from the same
    genesis; the attacker withholds blocks (its own chain) and wins if its
    branch ever exceeds the honest branch's work after the honest branch has
    buried the victim transaction ``z`` deep.  This validates the abstract
    walk in :func:`simulate_race` against full consensus machinery — when
    the attacker finally announces its branch, honest nodes *reorganize to
    it*, demonstrating the state reversal the paper guards against.
    """
    sim = Simulation(seed=sim_seed)
    params = ChainParams(
        max_target=2**252, retarget_window=2**31, require_pow=False
    )
    honest_node = Node("honest", sim, params)
    attacker_node = Node("attacker", sim, params)
    # The attacker is *not* connected: it mines in private.  Scale total
    # hashpower so the network-wide block interval is the canonical 600 s.
    total_rate = block_work(
        honest_node.chain.required_bits(honest_node.chain.tip.block.hash)
    ) / 600.0
    honest_miner = PoissonMiner(honest_node, total_rate * (1 - q), miner_id=1)
    attacker_miner = PoissonMiner(attacker_node, total_rate * q, miner_id=2)
    honest_miner.start()
    attacker_miner.start()

    def attacker_caught_up() -> bool:
        # Nakamoto's criterion: a private chain that has pulled *level* wins,
        # since the attacker releases it the moment it edges ahead.
        return honest_node.chain.height >= z and (
            attacker_node.chain.tip.chain_work
            >= honest_node.chain.tip.chain_work
        )

    def race_open() -> bool:
        if honest_node.chain.height >= horizon_blocks:
            return False
        return not attacker_caught_up()

    sim.run_while(race_open, limit=1e12)
    won = attacker_caught_up()
    if won and (
        attacker_node.chain.tip.chain_work > honest_node.chain.tip.chain_work
    ):
        # Publish the private branch: the honest node reorganizes onto it
        # (a tie is a win on paper but only a strictly heavier branch
        # displaces the public chain).
        branch = []
        entry = attacker_node.chain.tip
        while entry.prev is not None:
            branch.append(entry.block)
            entry = attacker_node.chain.entry(entry.prev)
        for block in reversed(branch):
            honest_node.submit_block(block)
    return RaceOutcome(
        attacker_won=won,
        honest_blocks=honest_node.chain.height,
        attacker_blocks=attacker_node.chain.height,
        duration=sim.now,
    )
