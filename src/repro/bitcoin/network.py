"""A discrete-event peer-to-peer network and mining simulator.

The paper's security story (§1, items 3–6) is statistical: block discovery
is a Poisson process split between honest miners and an attacker, blocks
propagate with latency, and a transaction is "confirmed" once enough blocks
bury it that the attacker's chance of out-racing the network is negligible.
This module provides:

* :class:`Simulation` — a seeded event queue with simulated time;
* :class:`Node` — a full node (chain + mempool + orphan pool) that relays;
* :class:`PoissonMiner` — a miner finding blocks at rate hashrate/work;
* :func:`nakamoto_reversal_probability` — the analytic curve of Nakamoto's
  whitepaper, which experiment E1 compares the simulator against;
* :func:`simulate_race` — the attacker-vs-network block race.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.bitcoin import compact as compact_relay_mod
from repro.bitcoin.block import Block
from repro.bitcoin.chain import Blockchain, ChainParams
from repro.bitcoin.compact import CompactBlock
from repro.bitcoin.mempool import Mempool, MempoolError, MempoolValidationError
from repro.bitcoin.miner import Miner
from repro.bitcoin.pow import block_work
from repro.bitcoin.transaction import Transaction
from repro.bitcoin.validation import ValidationError
from repro.bitcoin.wallet import Wallet

# Misbehavior points per offense (see Node.penalize).  An honest node never
# relays a consensus-invalid block — it validates before relaying — so two
# invalid blocks cross the default ban threshold.  Consensus-invalid
# transactions are nearly as damning, except a "missing or spent input"
# can reach us innocently (the input was spent while the tx was in flight,
# e.g. either side of a double-spend race), so it costs only a token amount.
# A compact-block announcement the sender then refuses to back with data
# (no blocktxn / no full block / a block that doesn't match its own hash)
# also scores: an honest sender always has the block it announced.  Short-id
# *collisions* never score — per BIP 152 they can happen to honest peers.
POINTS_INVALID_BLOCK = 50
POINTS_INVALID_TX = 10
POINTS_STALE_TX = 2
POINTS_BAD_COMPACT = 10
DEFAULT_BAN_THRESHOLD = 100

# Compact-relay round-trip recovery: how long to wait for a blocktxn or
# full-block reply before retrying, and how many attempts per stage.  The
# timeout scales with the attempt number (fixed schedule, no RNG: recovery
# scheduling must not perturb the seeded hop-delay streams).
COMPACT_TXN_TIMEOUT = 30.0
COMPACT_MAX_ATTEMPTS = 2

# Per-message-kind relay byte series (obs).  Kinds outside this table
# count toward the total only.
_BYTE_SERIES = {
    "block": "relay.block_bytes_total",
    "tx": "relay.tx_bytes_total",
    "compact": "relay.compact_bytes_total",
    "getblocktxn": "relay.getblocktxn_bytes_total",
    "blocktxn": "relay.blocktxn_bytes_total",
    "getblock": "relay.getblock_bytes_total",
    "sync": "relay.sync_bytes_total",
}


# How an event-loop run stopped.  Callers (and the event-loop gauges) use
# the distinction to tell starvation — the queue ran dry — from an
# intentional stop at the time limit or a satisfied predicate.
STOP_DRAINED = "drained"
STOP_TIME_LIMIT = "time_limit"
STOP_PREDICATE = "predicate"


class Simulation:
    """A seeded discrete-event scheduler with simulated seconds."""

    def __init__(self, seed: int = 0):
        self.now = 0.0
        self.seed = seed
        self.rng = random.Random(seed)
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.events_processed = 0
        # First time each block hash entered the network (simulated
        # seconds); feeds the block-propagation latency histogram.
        self.block_births: dict[bytes, float] = {}
        # Causal trace ids, minted at a block's or transaction's origin
        # (miner / wallet submission) and carried by every relay.hop
        # event — the propagation tree is reconstructable from the event
        # log alone.  Populated only under obs.ENABLED.
        self.trace_ids: dict[bytes, str] = {}
        self._trace_seq = 0

    def mint_trace(self, kind: str, obj_hash: bytes) -> str:
        """A deterministic trace id for a newly-originated block or tx.

        Call only behind an ``obs.ENABLED`` guard: disabled runs carry
        no trace state at all.
        """
        trace = self.trace_ids.get(obj_hash)
        if trace is None:
            self._trace_seq += 1
            trace = f"{kind}{self._trace_seq}-{obj_hash.hex()[:8]}"
            self.trace_ids[obj_hash] = trace
        return trace

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, action))

    def _dispatch(self, time: float, action: Callable[[], None]) -> None:
        self.now = time
        self.events_processed += 1
        action()
        if obs.ENABLED:
            obs.inc("net.events_total")
            obs.gauge_set("net.queue_size", len(self._queue))

    def run_until(self, end_time: float) -> str:
        """Process events up to ``end_time``; returns how the run stopped
        (:data:`STOP_DRAINED` or :data:`STOP_TIME_LIMIT`)."""
        while self._queue and self._queue[0][0] <= end_time:
            time, _, action = heapq.heappop(self._queue)
            self._dispatch(time, action)
        self.now = max(self.now, end_time)
        return STOP_DRAINED if not self._queue else STOP_TIME_LIMIT

    def run_while(self, predicate: Callable[[], bool], limit: float) -> str:
        """Process events while ``predicate()`` holds, up to ``limit`` time.

        Returns how the run stopped: :data:`STOP_DRAINED` (queue empty —
        starvation), :data:`STOP_PREDICATE` (the predicate released the
        loop), or :data:`STOP_TIME_LIMIT` (next event lies past ``limit``).
        """
        while self._queue and predicate() and self._queue[0][0] <= limit:
            time, _, action = heapq.heappop(self._queue)
            self._dispatch(time, action)
        if not self._queue:
            return STOP_DRAINED
        if not predicate():
            return STOP_PREDICATE
        return STOP_TIME_LIMIT


@dataclass
class Node:
    """A full node participating in block and transaction gossip.

    Beyond the happy path, the node carries the chaos-layer machinery:
    per-edge fault policies (``set_link_policy``), peer misbehavior
    scoring with disconnect/ban (``penalize``), crash/restart with
    optional chain persistence, and bounded seen-sets and orphan pool so
    an adversary cannot grow memory without limit.
    """

    name: str
    sim: Simulation
    params: ChainParams
    latency: float = 2.0  # mean one-hop propagation delay, seconds
    chain: Blockchain = field(init=False)
    mempool: Mempool = field(init=False)
    peers: list["Node"] = field(default_factory=list)
    seen_limit: int = 10_000  # per-kind cap on the seen-hash sets
    orphan_limit: int = 64  # cap on parked parent-less blocks
    ban_threshold: int = DEFAULT_BAN_THRESHOLD
    # Start a catch-up sync with the sender whenever an orphan arrives.
    # Off by default: on a loss-free network gossip always delivers the
    # parent, and the extra sync traffic would perturb the seeded random
    # stream of existing perfect-network experiments (E1/A1).  Chaos runs
    # (repro.bitcoin.faults.run_chaos) turn it on — with dropped messages
    # an orphan is evidence the parent may never arrive on its own.
    auto_sync: bool = False
    # BIP 152-style compact block relay (repro.bitcoin.compact).  Off by
    # default for the same reason as auto_sync: the getblocktxn/blocktxn
    # round-trips draw extra hop delays from the seeded stream, so the
    # pinned full-relay experiments must never take this path.  Compact
    # announcements are only sent when *both* endpoints opted in.
    compact_relay: bool = False
    # Durable persistence (repro.store).  None keeps the node fully
    # in-memory — the pre-store behavior, and what the seeded perfect-
    # network experiments pin.  A directory path gives the node a disk:
    # every connect/disconnect is logged there, and restart recovers from
    # it instead of replaying the in-memory chain.
    store_dir: str | None = None
    snapshot_interval: int = 16  # blocks between UTXO snapshots
    alive: bool = field(default=True, init=False)
    # Per-node telemetry (registry + tracer + event ring), created only on
    # instrumented runs; None keeps the node on the global registry alone.
    telemetry: "obs.NodeTelemetry | None" = field(default=None, init=False)

    def __post_init__(self) -> None:
        if obs.ENABLED:
            self.telemetry = obs.NodeTelemetry(self.name)
            with obs.node_scope(self.telemetry):
                self.chain = self._boot_chain()
        else:
            self.chain = self._boot_chain()
        self.mempool = Mempool(self.chain)
        # Relay-hop distance of each known block / parked orphan from its
        # origin (obs bookkeeping; written only under obs.ENABLED).
        self._block_hops: dict[bytes, int] = {}
        self._orphan_hops: dict[bytes, int] = {}
        # Orphans: block hash -> Block, insertion-ordered for eviction,
        # plus a parent-hash index for adoption on parent arrival.
        self._orphans: OrderedDict[bytes, Block] = OrderedDict()
        self._orphans_by_parent: dict[bytes, list[bytes]] = {}
        # Seen sets are insertion-ordered and bounded (LRU-ish FIFO): a
        # hash evicted and re-received is deduplicated against the chain /
        # mempool instead, so boundedness never breaks correctness.
        self._seen_blocks: OrderedDict[bytes, None] = OrderedDict()
        self._seen_blocks[self.chain.genesis.hash] = None
        self._seen_txs: OrderedDict[bytes, None] = OrderedDict()
        # Cumulative wire bytes sent, by message kind ("block", "tx",
        # "compact", ...).  Maintained unconditionally — it is plain
        # arithmetic, costs no RNG draws, and the relay-byte benchmarks
        # need it on obs-disabled runs too.
        self.bytes_sent: dict[str, int] = {}
        # Compact blocks awaiting a getblocktxn/full-block round-trip:
        # block hash -> _PendingCompact.
        self._compact_pending: dict[bytes, _PendingCompact] = {}
        # Chaos-layer state: per-peer-name outbound fault policy, active
        # sync sessions, misbehavior scores, and the ban list.
        self._link_policies: dict[str, object] = {}
        self._syncs: dict[str, object] = {}
        self._misbehavior: dict[str, int] = {}
        self._banned: set[str] = set()
        self._peers_at_crash: list["Node"] = []

    def _boot_chain(self) -> Blockchain:
        """A fresh in-memory chain, or one recovered from the store
        directory (first boot and crash recovery are the same path)."""
        if self.store_dir is None:
            return Blockchain(self.params)
        from repro.store import BlockStore, recover_chain

        store = BlockStore(
            self.store_dir, snapshot_interval=self.snapshot_interval
        ).open()
        return recover_chain(store, self.params)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def connect(self, other: "Node") -> bool:
        """Create the (bidirectional) edge to ``other``; returns True if
        any direction was newly added.

        Idempotent — concurrent partition healing and crash-recovery may
        both reconnect the same edge — and refused entirely when either
        side has banned the other (or ``other`` is this node).
        """
        if other is self:
            return False
        if other.name in self._banned or self.name in other._banned:
            return False
        changed = False
        if other not in self.peers:
            self.peers.append(other)
            changed = True
        if self not in other.peers:
            other.peers.append(self)
            changed = True
        return changed

    def disconnect(self, other: "Node") -> bool:
        """Tear down the edge to ``other`` (inverse of :meth:`connect`);
        returns True if any direction existed.  Aborts in-flight sync
        sessions over the edge."""
        changed = False
        if other in self.peers:
            self.peers.remove(other)
            changed = True
        if self in other.peers:
            other.peers.remove(self)
            changed = True
        if changed:
            self._abort_sync(other.name, "disconnected")
            other._abort_sync(self.name, "disconnected")
        return changed

    def set_link_policy(self, peer: "Node", policy: object | None) -> None:
        """Install (or clear, with None) the outbound fault policy for the
        edge to ``peer`` — an object with ``plan(rng, base_delay)``, see
        :class:`repro.bitcoin.faults.LinkPolicy`."""
        if policy is None:
            self._link_policies.pop(peer.name, None)
        else:
            self._link_policies[peer.name] = policy

    def _abort_sync(self, peer_name: str, reason: str) -> None:
        session = self._syncs.get(peer_name)
        if session is not None:
            session.abort(reason)

    def _hop_delay(self) -> float:
        # Exponential jitter around the configured mean.
        return self.sim.rng.expovariate(1.0 / self.latency)

    def send_to(
        self,
        peer: "Node",
        action: Callable[[], None],
        msg: str,
        size: int = 0,
    ) -> None:
        """Schedule delivery of one message to ``peer`` over the link.

        Without a fault policy this is exactly the pre-chaos relay path —
        one exponential hop delay, one scheduled delivery — so perfect-
        network simulations are bit-for-bit unchanged.  With a policy the
        message may be dropped, duplicated, reordered, or hit a latency
        spike, each recorded as a ``fault.*`` event.

        ``size`` is the message's wire bytes, charged to :attr:`bytes_sent`
        (and the ``relay.*_bytes_total`` obs series) at send time — a
        dropped message still cost the sender its upstream bandwidth.
        """
        if size:
            self.bytes_sent[msg] = self.bytes_sent.get(msg, 0) + size
            if obs.ENABLED:
                obs.inc("relay.bytes_total", size)
                series = _BYTE_SERIES.get(msg)
                if series is not None:
                    obs.inc(series, size)
        base = self._hop_delay()
        policy = self._link_policies.get(peer.name)
        if policy is None:
            self.sim.schedule(base, action)
            return
        plan = policy.plan(self.sim.rng, base)
        if obs.ENABLED:
            edge = f"{self.name}->{peer.name}"
            if plan.dropped:
                obs.inc("fault.msgs_dropped_total")
                obs.emit("fault.drop", edge=edge, msg=msg)
            else:
                if plan.spike:
                    obs.inc("fault.latency_spikes_total")
                    obs.emit("fault.delay", edge=edge, msg=msg, extra=plan.spike)
                if plan.duplicated:
                    obs.inc("fault.msgs_duplicated_total")
                    obs.emit("fault.duplicate", edge=edge, msg=msg)
        for delay in plan.delays:
            self.sim.schedule(delay, action)

    # ------------------------------------------------------------------
    # Misbehavior scoring
    # ------------------------------------------------------------------

    def penalize(self, origin: "Node | None", points: int, reason: str) -> None:
        """Charge ``origin`` misbehavior points; ban at the threshold.

        ``origin=None`` (a locally-produced object) is never penalized.
        Banning disconnects the peer and refuses future connects from it.
        """
        if origin is None or points <= 0:
            return
        score = self._misbehavior.get(origin.name, 0) + points
        self._misbehavior[origin.name] = score
        if obs.ENABLED:
            obs.inc("peer.misbehavior_points_total", points)
            obs.emit(
                "peer.misbehavior",
                node=self.name,
                peer=origin.name,
                points=points,
                score=score,
                reason=reason,
            )
        if score >= self.ban_threshold and origin.name not in self._banned:
            self._banned.add(origin.name)
            if obs.ENABLED:
                obs.inc("peer.bans_total")
                obs.emit(
                    "peer.banned", node=self.name, peer=origin.name, score=score
                )
            self.disconnect(origin)

    def misbehavior_score(self, peer: "Node") -> int:
        return self._misbehavior.get(peer.name, 0)

    def is_banned(self, peer: "Node") -> bool:
        return peer.name in self._banned

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: drop mempool, orphans and seen-txs, sever all edges.

        With a store directory the node's "disk" is the store (its file
        handles are closed, like a dying process's); without one the
        chain object survives in memory standing in for a disk.  Whether
        restart reloads either is :meth:`restart`'s choice.  In-flight
        deliveries to this node are silently lost (the delivery guard
        checks ``alive``), exactly like frames to a dead host.
        """
        if not self.alive:
            return
        self.alive = False
        self._peers_at_crash = list(self.peers)
        for peer in list(self.peers):
            self.disconnect(peer)
        self.mempool.clear()
        self._orphans.clear()
        self._orphans_by_parent.clear()
        self._seen_txs.clear()
        self._compact_pending.clear()
        if self.chain.store is not None:
            self.chain.store.close()
        if obs.ENABLED:
            # Abandon the dead process's in-flight spans before emitting:
            # they must not become parents of post-restart spans.
            open_spans = 0
            if self.telemetry is not None:
                open_spans = self.telemetry.tracer.abandon_open()
            obs.inc("fault.crashes_total")
            with obs.node_scope(self.telemetry):
                obs.emit("fault.crash", node=self.name)
                obs.emit("node.crash", node=self.name, open_spans=open_spans)
            from repro.obs import flight

            flight.trigger("node.crash", sim_time=self.sim.now)

    def restart(self, persist_chain: bool = True, resync: bool = True) -> None:
        """Come back up, optionally reloading the persisted chain, then
        reconnect to the pre-crash peers and catch-up sync with each.

        With a store directory, ``persist_chain=True`` runs real crash
        recovery — scan the logs, truncate any torn tail, and rebuild the
        exact committed state from disk — and ``persist_chain=False``
        **deletes the store** before booting (lost storage: the node
        restarts from genesis and must re-download everything).  Without
        one, True replays the in-memory chain's exported blocks through
        full validation (a pruned node re-reading its block files) and
        False just resets to genesis.
        """
        if self.alive:
            return
        if obs.ENABLED:
            if self.telemetry is None:
                # Observability was enabled after this node was built;
                # give the reborn process its own telemetry.
                self.telemetry = obs.NodeTelemetry(self.name)
            else:
                # Defensive: crash() already abandoned these.
                self.telemetry.tracer.abandon_open()
        if self.store_dir is not None:
            if not persist_chain:
                from repro.store import BlockStore

                BlockStore(self.store_dir).wipe()
            self.chain = self._boot_chain()
        elif persist_chain:
            blocks = self.chain.export_active()
            chain = Blockchain(self.params)
            for block in blocks:
                chain.add_block(block)
            self.chain = chain
        else:
            self.chain = Blockchain(self.params)
        self.mempool = Mempool(self.chain)
        self._seen_blocks = OrderedDict()
        self._seen_blocks[self.chain.genesis.hash] = None
        self.alive = True
        if obs.ENABLED:
            obs.inc("fault.restarts_total")
            with obs.node_scope(self.telemetry):
                obs.emit(
                    "fault.restart", node=self.name, persisted=persist_chain
                )
        peers, self._peers_at_crash = self._peers_at_crash, []
        from repro.bitcoin.sync import start_sync

        for peer in peers:
            self.connect(peer)
            if resync and peer in self.peers:
                start_sync(self, peer, reason="restart")

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------

    def _remember(self, seen: OrderedDict, key: bytes, kind: str) -> None:
        seen[key] = None
        evicted = 0
        while len(seen) > self.seen_limit:
            seen.popitem(last=False)
            evicted += 1
        if evicted and obs.ENABLED:
            obs.inc("net.seen_evicted_total", evicted)
            obs.emit("seen.evicted", node=self.name, pool=kind, count=evicted)

    def submit_block(
        self, block: Block, origin: "Node | None" = None, hop: int = 0
    ) -> None:
        """Accept a locally-mined or received block, then relay it.

        ``origin`` is the peer the block arrived from (None when locally
        produced); consensus-invalid blocks charge it misbehavior points.
        ``hop`` is the relay distance from the block's origin (0 at the
        miner) — threaded so ``relay.hop`` events carry the propagation
        tree's depth.
        """
        if not self.alive:
            return
        if obs.ENABLED and self.telemetry is not None:
            with obs.node_scope(self.telemetry):
                self._submit_block(block, origin, hop)
        else:
            self._submit_block(block, origin, hop)

    def _submit_block(
        self, block: Block, origin: "Node | None", hop: int
    ) -> None:
        if obs.ENABLED:
            self._record_hop(
                "block", block.hash, origin, hop,
                redundant=block.hash in self._seen_blocks,
            )
        if block.hash in self._seen_blocks:
            return
        self._remember(self._seen_blocks, block.hash, "block")
        if obs.ENABLED:
            self._block_hops[block.hash] = hop
        self._accept_block(block, origin, hop)

    def _accept_block(
        self, block: Block, origin: "Node | None", hop: int
    ) -> None:
        """Validate, store, and relay a block whose seen-set bookkeeping is
        done — the shared tail of full-block receipt and compact-block
        reconstruction."""
        if self.chain.has_block(block.hash):
            # Re-delivered after seen-set eviction: already stored.
            return
        if not self.chain.has_block(block.header.prev_hash):
            self._park_orphan(block, origin, hop)
            return
        try:
            self.chain.add_block(block)
        except ValidationError as exc:
            if obs.ENABLED:
                obs.inc("chain.blocks_rejected_total")
                obs.emit("block.rejected", hash=block.hash, reason=str(exc))
                from repro.obs import flight

                flight.trigger("block.rejected", sim_time=self.sim.now)
            self.penalize(
                origin, POINTS_INVALID_BLOCK, f"invalid block: {exc}"
            )
            return
        if obs.ENABLED:
            birth = self.sim.block_births.get(block.hash)
            if birth is not None:
                obs.observe(
                    "net.block_propagation_seconds", self.sim.now - birth
                )
        self.mempool.remove_confirmed(list(block.txs))
        self.mempool.revalidate()
        self._relay_block(block, hop, origin)
        # Adopt any orphans waiting on this block.
        for child_hash in self._orphans_by_parent.pop(block.hash, []):
            child = self._orphans.pop(child_hash, None)
            if child is None:
                continue  # evicted while parked
            self._seen_blocks.pop(child.hash, None)
            if obs.ENABLED:
                obs.emit(
                    "orphan.resolved", hash=child.hash, parent=block.hash
                )
            self._submit_block(
                child, None, self._orphan_hops.pop(child.hash, 0)
            )

    def _record_hop(
        self,
        kind: str,
        obj_hash: bytes,
        origin: "Node | None",
        hop: int,
        redundant: bool,
    ) -> None:
        """Emit one ``relay.hop`` event (obs-enabled paths only).

        Redundant receives are recorded too — they are part of the
        propagation story (gossip fan-in) — but flagged by counter so
        the tree reconstruction can use first-seen arrivals alone.
        """
        trace = self.sim.trace_ids.get(obj_hash)
        if trace is None:
            return  # originated before obs was enabled, or untraced kind
        obs.inc("relay.hops_total")
        if redundant:
            obs.inc("relay.redundant_total")
        obs.emit(
            "relay.hop",
            **{
                "trace": trace,
                "from": origin.name if origin is not None else self.name,
                "to": self.name,
                "hop": hop,
                "sim_time": self.sim.now,
            },
        )

    def _park_orphan(
        self, block: Block, origin: "Node | None", hop: int = 0
    ) -> None:
        """Hold a parent-less block in the bounded orphan pool and kick a
        catch-up sync with whoever sent it (we are evidently behind)."""
        if block.hash in self._orphans:
            return
        self._orphans[block.hash] = block
        self._orphans_by_parent.setdefault(
            block.header.prev_hash, []
        ).append(block.hash)
        if obs.ENABLED:
            # Remember the arrival hop so adoption (after the parent
            # arrives) resumes the propagation tree at the right depth.
            self._orphan_hops[block.hash] = hop
            obs.inc("mempool.orphans_total")
            obs.emit(
                "orphan.parked",
                hash=block.hash,
                parent=block.header.prev_hash,
            )
        while len(self._orphans) > self.orphan_limit:
            old_hash, old = self._orphans.popitem(last=False)
            siblings = self._orphans_by_parent.get(old.header.prev_hash)
            if siblings is not None:
                if old_hash in siblings:
                    siblings.remove(old_hash)
                if not siblings:
                    self._orphans_by_parent.pop(old.header.prev_hash, None)
            if obs.ENABLED:
                self._orphan_hops.pop(old_hash, None)
                obs.inc("mempool.orphans_evicted_total")
                obs.emit(
                    "orphan.evicted",
                    hash=old_hash,
                    parent=old.header.prev_hash,
                )
        if self.auto_sync and origin is not None and origin.alive:
            from repro.bitcoin.sync import start_sync

            start_sync(self, origin, reason="orphan")

    def _relay_block(
        self, block: Block, hop: int = 0, origin: "Node | None" = None
    ) -> None:
        # Never echo a block back to the peer it arrived from: the sender
        # already has it, and at swarm scale the echoes double block
        # traffic (they show up as redundant relay.hop receives).
        targets = [peer for peer in self.peers if peer is not origin]
        if not targets:
            return
        if obs.ENABLED:
            obs.inc("net.blocks_relayed_total", len(targets))
        next_hop = hop + 1
        cb: CompactBlock | None = None
        cb_size = 0
        full_size = 0
        if self.compact_relay and any(p.compact_relay for p in targets):
            # One announcement per relay, salted with the sender's name so
            # every sender keys short ids differently (grinding a collision
            # against one peer's key buys nothing against another's).
            cb = CompactBlock.from_block(block, salt=self.name.encode())
            cb_size = cb.serialized_size()
        for peer in targets:
            if cb is not None and peer.compact_relay:
                self.send_to(
                    peer,
                    lambda p=peer: p.submit_compact_block(
                        cb, origin=self, hop=next_hop
                    ),
                    msg="compact",
                    size=cb_size,
                )
            else:
                if not full_size:
                    full_size = block.serialized_size()
                self.send_to(
                    peer,
                    lambda p=peer: p.submit_block(
                        block, origin=self, hop=next_hop
                    ),
                    msg="block",
                    size=full_size,
                )

    def submit_transaction(
        self, tx: Transaction, origin: "Node | None" = None, hop: int = 0
    ) -> bool:
        if not self.alive:
            return False
        if obs.ENABLED and self.telemetry is not None:
            with obs.node_scope(self.telemetry):
                return self._submit_transaction(tx, origin, hop)
        return self._submit_transaction(tx, origin, hop)

    def _submit_transaction(
        self, tx: Transaction, origin: "Node | None", hop: int
    ) -> bool:
        if obs.ENABLED:
            if origin is None:
                # A locally-submitted transaction (wallet): the trace
                # starts here.
                self.sim.mint_trace("tx", tx.txid)
            self._record_hop(
                "tx", tx.txid, origin, hop,
                redundant=tx.txid in self._seen_txs,
            )
        if tx.txid in self._seen_txs:
            return False
        self._remember(self._seen_txs, tx.txid, "tx")
        if (
            tx.txid in self.mempool
            or self.chain.get_transaction(tx.txid) is not None
        ):
            # The seen-set is bounded, so a duplicate can outlive its
            # entry.  Consult the pools the way the block path consults
            # the chain: an already-held transaction must not be
            # re-validated (spurious stale-tx penalties for innocent
            # re-senders) or re-relayed (relay storms at swarm scale).
            if obs.ENABLED:
                obs.inc("net.duplicates_suppressed_total")
            return False
        try:
            self.mempool.accept(tx)
        except MempoolValidationError as exc:
            reason = str(exc)
            points = (
                POINTS_STALE_TX
                if "missing or spent input" in reason
                else POINTS_INVALID_TX
            )
            self.penalize(origin, points, f"invalid tx: {reason}")
            return False
        except MempoolError:
            # Policy refusals (dust, fees, non-standard, duplicates) are
            # not evidence of malice: honest peers relay under different
            # policies.
            return False
        # As with blocks, never echo a transaction back to its sender.
        targets = [peer for peer in self.peers if peer is not origin]
        if targets:
            if obs.ENABLED:
                obs.inc("net.txs_relayed_total", len(targets))
            next_hop = hop + 1
            tx_size = len(tx.serialize())
            for peer in targets:
                self.send_to(
                    peer,
                    lambda p=peer: p.submit_transaction(
                        tx, origin=self, hop=next_hop
                    ),
                    msg="tx",
                    size=tx_size,
                )
        return True

    # ------------------------------------------------------------------
    # Compact block relay (BIP 152-style; repro.bitcoin.compact)
    # ------------------------------------------------------------------

    def submit_compact_block(
        self, cb: CompactBlock, origin: "Node | None" = None, hop: int = 0
    ) -> None:
        """Receive a compact announcement: reconstruct from the mempool,
        round-trip ``getblocktxn`` for misses, fall back to the full block
        on collision or failure (see module docs in repro.bitcoin.compact).
        """
        if not self.alive:
            return
        if obs.ENABLED and self.telemetry is not None:
            with obs.node_scope(self.telemetry):
                self._submit_compact_block(cb, origin, hop)
        else:
            self._submit_compact_block(cb, origin, hop)

    def _submit_compact_block(
        self, cb: CompactBlock, origin: "Node | None", hop: int
    ) -> None:
        if obs.ENABLED:
            obs.inc("compact.blocks_total")
            self._record_hop(
                "block", cb.hash, origin, hop,
                redundant=cb.hash in self._seen_blocks,
            )
        if cb.hash in self._seen_blocks or cb.hash in self._compact_pending:
            return
        self._remember(self._seen_blocks, cb.hash, "block")
        if obs.ENABLED:
            self._block_hops[cb.hash] = hop
        if self.chain.has_block(cb.hash):
            return
        try:
            result = compact_relay_mod.reconstruct(cb, self.mempool)
        except compact_relay_mod.MalformedCompactError as exc:
            # No honest sender builds an announcement like this.  Forget
            # the hash so a real block with this header (if one exists)
            # is not shadowed by the garbage announcement.
            self._seen_blocks.pop(cb.hash, None)
            self.penalize(
                origin, POINTS_BAD_COMPACT, f"malformed compact block: {exc}"
            )
            return
        if obs.ENABLED:
            if result.collisions:
                obs.inc("compact.collisions_total", result.collisions)
            obs.emit(
                "compact.received",
                node=self.name,
                hash=cb.hash,
                txs=cb.tx_count,
                missing=len(result.missing),
            )
        if result.complete:
            block = compact_relay_mod.finalize(cb, result.txs)
            if block is not None:
                if obs.ENABLED:
                    obs.inc("compact.reconstructed_total")
                self._accept_block(block, origin, hop)
                return
            # Every slot filled, but the merkle root disagrees: a short id
            # matched the wrong mempool transaction (innocent collision).
            # Fetch the full block; nobody is penalized.
            if origin is None or not origin.alive:
                self._give_up_compact(cb.hash, resync=False)
                return
            self._compact_pending[cb.hash] = _PendingCompact(
                compact=cb, origin=origin, hop=hop,
                txs=list(result.txs), missing=list(result.missing),
            )
            self._fallback_full(cb.hash, reason="false-match")
            return
        if obs.ENABLED:
            obs.inc("compact.misses_total", len(result.missing))
        if origin is None or not origin.alive:
            # Nobody to round-trip with; forget the announcement so a
            # later full relay or sync can deliver the block.
            self._seen_blocks.pop(cb.hash, None)
            return
        self._compact_pending[cb.hash] = _PendingCompact(
            compact=cb, origin=origin, hop=hop,
            txs=list(result.txs), missing=list(result.missing),
        )
        self._request_block_txns(cb.hash, attempt=1)

    def _request_block_txns(self, block_hash: bytes, attempt: int) -> None:
        """Ask the announcing peer for the block's missing transactions."""
        pending = self._compact_pending.get(block_hash)
        if pending is None:
            return
        origin = pending.origin
        pending.req_seq += 1
        req = pending.req_seq
        indexes = tuple(pending.missing)
        if obs.ENABLED:
            with obs.node_scope(self.telemetry):
                obs.inc("compact.roundtrips_total")
                obs.emit(
                    "compact.getblocktxn",
                    node=self.name,
                    peer=origin.name,
                    hash=block_hash,
                    indexes=len(indexes),
                )
        self.send_to(
            origin,
            lambda: origin._serve_block_txns(self, block_hash, indexes, req),
            msg="getblocktxn",
            size=compact_relay_mod.getblocktxn_size(len(indexes)),
        )
        self.sim.schedule(
            COMPACT_TXN_TIMEOUT * attempt,
            lambda: self._on_compact_timeout(
                block_hash, req, attempt, stage="blocktxn"
            ),
        )

    def _serve_block_txns(
        self,
        requester: "Node",
        block_hash: bytes,
        indexes: tuple[int, ...],
        req: int,
    ) -> None:
        """Peer side of ``getblocktxn``: reply with the requested
        transactions, or None if we don't actually have the block."""
        if not self.alive:
            return
        entry = self.chain.entry(block_hash)
        payload = None
        if entry is not None and all(
            0 <= i < len(entry.block.txs) for i in indexes
        ):
            payload = tuple(entry.block.txs[i] for i in indexes)
        size = (
            compact_relay_mod.blocktxn_size(payload)
            if payload is not None
            else 40
        )
        self.send_to(
            requester,
            lambda: requester._on_block_txns(block_hash, req, payload),
            msg="blocktxn",
            size=size,
        )

    def _on_block_txns(
        self,
        block_hash: bytes,
        req: int,
        payload: "tuple[Transaction, ...] | None",
    ) -> None:
        if not self.alive:
            return
        pending = self._compact_pending.get(block_hash)
        if pending is None or pending.req_seq != req:
            return  # resolved, superseded, or timed out meanwhile
        with obs.node_scope(self.telemetry if obs.ENABLED else None):
            if payload is None or len(payload) != len(pending.missing):
                # The peer announced a block it cannot back with data: an
                # honest sender always can.  (Distinct from a short-id
                # collision, which is never penalized.)
                if obs.ENABLED:
                    obs.inc("compact.withheld_total")
                    obs.emit(
                        "compact.withheld",
                        node=self.name,
                        peer=pending.origin.name,
                        hash=block_hash,
                    )
                self.penalize(
                    pending.origin,
                    POINTS_BAD_COMPACT,
                    "compact announcement not backed by blocktxn",
                )
                self._give_up_compact(block_hash, resync=False)
                return
            for slot, tx in zip(pending.missing, payload):
                pending.txs[slot] = tx
            block = compact_relay_mod.finalize(
                pending.compact, tuple(pending.txs)
            )
            if block is None:
                # Merkle mismatch *after* an honest round-trip: one of our
                # local short-id matches was a false positive.  Innocent —
                # fall back to the full block.
                self._fallback_full(block_hash, reason="merkle-mismatch")
                return
            del self._compact_pending[block_hash]
            if obs.ENABLED:
                obs.inc("compact.reconstructed_total")
            self._accept_block(block, pending.origin, pending.hop)

    def _fallback_full(
        self, block_hash: bytes, reason: str, attempt: int = 1
    ) -> None:
        """Give up on reconstruction and request the full block."""
        pending = self._compact_pending.get(block_hash)
        if pending is None:
            return
        origin = pending.origin
        if not pending.fell_back:
            pending.fell_back = True
            if obs.ENABLED:
                obs.inc("compact.fallback_total")
                with obs.node_scope(self.telemetry):
                    obs.emit(
                        "compact.fallback",
                        node=self.name,
                        hash=block_hash,
                        reason=reason,
                    )
        pending.req_seq += 1
        req = pending.req_seq
        self.send_to(
            origin,
            lambda: origin._serve_full_block(self, block_hash, req),
            msg="getblock",
            size=compact_relay_mod.GETBLOCK_SIZE,
        )
        self.sim.schedule(
            COMPACT_TXN_TIMEOUT * attempt,
            lambda: self._on_compact_timeout(
                block_hash, req, attempt, stage="fullblock"
            ),
        )

    def _serve_full_block(
        self, requester: "Node", block_hash: bytes, req: int
    ) -> None:
        if not self.alive:
            return
        entry = self.chain.entry(block_hash)
        block = entry.block if entry is not None else None
        size = block.serialized_size() if block is not None else 40
        self.send_to(
            requester,
            lambda: requester._on_full_block(block_hash, req, block),
            msg="block",
            size=size,
        )

    def _on_full_block(
        self, block_hash: bytes, req: int, block: Block | None
    ) -> None:
        if not self.alive:
            return
        pending = self._compact_pending.get(block_hash)
        if pending is None or pending.req_seq != req:
            return
        with obs.node_scope(self.telemetry if obs.ENABLED else None):
            if block is None or block.hash != block_hash:
                if obs.ENABLED:
                    obs.inc("compact.withheld_total")
                    obs.emit(
                        "compact.withheld",
                        node=self.name,
                        peer=pending.origin.name,
                        hash=block_hash,
                    )
                self.penalize(
                    pending.origin,
                    POINTS_BAD_COMPACT,
                    "compact announcement not backed by a full block",
                )
                self._give_up_compact(block_hash, resync=False)
                return
            del self._compact_pending[block_hash]
            self._accept_block(block, pending.origin, pending.hop)

    def _on_compact_timeout(
        self, block_hash: bytes, req: int, attempt: int, stage: str
    ) -> None:
        if not self.alive:
            return
        pending = self._compact_pending.get(block_hash)
        if pending is None or pending.req_seq != req:
            return  # a reply (or a newer request) won the race
        if attempt < COMPACT_MAX_ATTEMPTS:
            if stage == "blocktxn":
                self._request_block_txns(block_hash, attempt + 1)
            else:
                self._fallback_full(
                    block_hash, reason="timeout-retry", attempt=attempt + 1
                )
        elif stage == "blocktxn":
            self._fallback_full(block_hash, reason="timeout")
        else:
            self._give_up_compact(block_hash, resync=True)

    def _give_up_compact(self, block_hash: bytes, resync: bool) -> None:
        """Abandon a pending reconstruction entirely.

        The hash is un-remembered so a later relay or catch-up sync can
        still deliver the block; with ``resync`` (the lossy-link give-up
        path) and ``auto_sync`` on, a sync with the announcing peer is
        kicked immediately.
        """
        pending = self._compact_pending.pop(block_hash, None)
        if pending is None:
            return
        if not self.chain.has_block(block_hash):
            self._seen_blocks.pop(block_hash, None)
        if (
            resync
            and self.auto_sync
            and pending.origin.alive
            and pending.origin in self.peers
        ):
            from repro.bitcoin.sync import start_sync

            start_sync(self, pending.origin, reason="compact")


@dataclass
class _PendingCompact:
    """A compact block mid-recovery (missing txs or full-block fetch)."""

    compact: CompactBlock
    origin: Node
    hop: int
    txs: list[Transaction | None]
    missing: list[int]
    req_seq: int = 0
    fell_back: bool = False


class PoissonMiner:
    """A miner that finds blocks as a Poisson process.

    Rather than grinding real nonces, block discovery times are sampled
    exponentially with mean ``block_work(bits) / hashrate`` — statistically
    the same process, fast enough to simulate weeks of network time.  The
    memorylessness of the exponential justifies re-sampling on every tip
    change (paper §1 item 4: miners always restart on the newest block).
    """

    def __init__(
        self,
        node: Node,
        hashrate: float,
        miner_id: int,
        enabled: bool = True,
        key_hash: bytes | None = None,
    ):
        self.node = node
        self.hashrate = hashrate
        self.miner_id = miner_id
        self.enabled = enabled
        self.blocks_found = 0
        if key_hash is None:
            key = Wallet.from_seed(b"miner" + miner_id.to_bytes(4, "big"))
            key_hash = key.key_hash
        self._key_hash = key_hash
        self._miner = Miner(node.chain, key_hash)
        self._extra_nonce = 0

    def start(self) -> None:
        self._schedule_next()

    def _mean_time(self) -> float:
        bits = self.node.chain.required_bits(self.node.chain.tip.block.hash)
        return block_work(bits) / self.hashrate

    def _schedule_next(self) -> None:
        delay = self.node.sim.rng.expovariate(1.0 / self._mean_time())
        self.node.sim.schedule(delay, self._on_found)

    def _on_found(self) -> None:
        if self.enabled and self.node.alive:
            if self._miner.chain is not self.node.chain:
                # The node restarted and reloaded (or reset) its chain;
                # mine on the live object, not the pre-crash one.
                self._miner = Miner(self.node.chain, self._key_hash)
            self._extra_nonce += 1
            # Anchor simulated seconds at the genesis timestamp so header
            # times track the simulation clock (the retarget rule reads them).
            wall = self.node.chain.genesis.header.timestamp + int(self.node.sim.now)
            timestamp = max(wall, self.node.chain.median_time_past() + 1)
            if obs.ENABLED and self.node.telemetry is not None:
                # Attribute the template-build span to the mining node.
                with obs.node_scope(self.node.telemetry):
                    block = self._miner.assemble(
                        self.node.mempool,
                        timestamp=timestamp,
                        extra_nonce=self._extra_nonce,
                    )
            else:
                block = self._miner.assemble(
                    self.node.mempool, timestamp=timestamp, extra_nonce=self._extra_nonce
                )
            self.blocks_found += 1
            if obs.ENABLED:
                self.node.sim.block_births.setdefault(
                    block.hash, self.node.sim.now
                )
                # The causal trace for this block starts at its miner.
                self.node.sim.mint_trace("blk", block.hash)
            self.node.submit_block(block)
        self._schedule_next()


def build_network(
    sim: Simulation,
    node_count: int,
    params: ChainParams | None = None,
    latency: float = 2.0,
    node_cls: type[Node] = Node,
) -> list[Node]:
    """A ring-plus-chords topology of ``node_count`` full nodes."""
    params = params or ChainParams(
        max_target=2**252, retarget_window=2**31, require_pow=False
    )
    nodes = [
        node_cls(f"node{i}", sim, params, latency) for i in range(node_count)
    ]
    for i, node in enumerate(nodes):
        node.connect(nodes[(i + 1) % node_count])
        if node_count > 4:
            node.connect(nodes[(i + node_count // 2) % node_count])
    return nodes


# ----------------------------------------------------------------------
# The attacker race (paper §1 item 5, experiment E1)
# ----------------------------------------------------------------------


def nakamoto_reversal_probability(q: float, z: int) -> float:
    """Nakamoto's analytic probability that an attacker with hashpower
    fraction ``q`` ever reverses a transaction buried ``z`` blocks deep.

    P = 1 - Σ_{k=0}^{z} e^{-λ} λ^k / k! · (1 - (q/p)^{z-k}),  λ = z·q/p.
    """
    if not 0 <= q < 0.5:
        raise ValueError("attacker share must be in [0, 0.5)")
    if z < 0:
        raise ValueError("depth must be non-negative")
    if q == 0:
        return 0.0 if z > 0 else 1.0
    p = 1.0 - q
    lam = z * q / p
    total = 0.0
    for k in range(z + 1):
        poisson = math.exp(-lam) * lam**k / math.factorial(k)
        total += poisson * (1.0 - (q / p) ** (z - k))
    return 1.0 - total


def simulate_race(
    q: float,
    z: int,
    trials: int,
    rng: random.Random,
    max_deficit: int = 60,
) -> float:
    """Monte-Carlo estimate of the reversal probability.

    Each trial: the attacker pre-mines while the honest network produces the
    ``z`` confirmation blocks (each new block is the attacker's with
    probability q), then the remaining race is a biased random walk the
    attacker wins by ever pulling level — Nakamoto's success criterion,
    since a tied private chain released strategically out-paces the public
    one.  A deficit beyond ``max_deficit`` is scored as a loss (the tail is
    astronomically small).
    """
    if q == 0:
        return 0.0
    wins = 0
    rand = rng.random  # bound-method hoist: ~2M draws per table row
    floor = -max_deficit
    for _ in range(trials):
        # Phase 1: attacker mines privately while z honest blocks appear.
        attacker = 0
        honest = 0
        while honest < z:
            if rand() < q:
                attacker += 1
            else:
                honest += 1
        deficit = honest - attacker
        if deficit <= 0:
            wins += 1
            continue
        # Phase 2: gambler's-ruin walk from -deficit toward 0 (a tie).
        position = -deficit
        while floor < position < 0:
            position += 1 if rand() < q else -1
        if position >= 0:
            wins += 1
    return wins / trials


def reversal_probability_exact(q: float, z: int, max_lead: int = 400) -> float:
    """Exact reversal probability under the same model as the simulator.

    The attacker's block count while the honest chain mines its ``z``
    confirmations is negative-binomially distributed (Nakamoto approximates
    it with a Poisson); from a deficit d the catch-up probability is
    (q/p)^d.  Summing gives the exact curve :func:`simulate_race` estimates.
    """
    if not 0 <= q < 0.5:
        raise ValueError("attacker share must be in [0, 0.5)")
    if q == 0:
        return 0.0 if z > 0 else 1.0
    if z == 0:
        return 1.0
    p = 1.0 - q
    ratio = q / p
    total = 0.0
    for k in range(z + max_lead):
        # P(attacker has k blocks when the z-th honest block appears).
        weight = math.comb(z + k - 1, k) * p**z * q**k
        catch_up = 1.0 if k >= z else ratio ** (z - k)
        total += weight * catch_up
    return total


@dataclass
class RaceOutcome:
    """Result of one full-simulator double-spend race."""

    attacker_won: bool
    honest_blocks: int
    attacker_blocks: int
    duration: float


def simulate_race_full(
    q: float,
    z: int,
    sim_seed: int,
    horizon_blocks: int = 200,
) -> RaceOutcome:
    """One attacker-vs-network race on real chain objects.

    An honest miner (share 1-q) and an attacker (share q) mine from the same
    genesis; the attacker withholds blocks (its own chain) and wins if its
    branch ever exceeds the honest branch's work after the honest branch has
    buried the victim transaction ``z`` deep.  This validates the abstract
    walk in :func:`simulate_race` against full consensus machinery — when
    the attacker finally announces its branch, honest nodes *reorganize to
    it*, demonstrating the state reversal the paper guards against.
    """
    sim = Simulation(seed=sim_seed)
    params = ChainParams(
        max_target=2**252, retarget_window=2**31, require_pow=False
    )
    honest_node = Node("honest", sim, params)
    attacker_node = Node("attacker", sim, params)
    # The attacker is *not* connected: it mines in private.  Scale total
    # hashpower so the network-wide block interval is the canonical 600 s.
    total_rate = block_work(
        honest_node.chain.required_bits(honest_node.chain.tip.block.hash)
    ) / 600.0
    honest_miner = PoissonMiner(honest_node, total_rate * (1 - q), miner_id=1)
    attacker_miner = PoissonMiner(attacker_node, total_rate * q, miner_id=2)
    honest_miner.start()
    attacker_miner.start()

    def attacker_caught_up() -> bool:
        # Nakamoto's criterion: a private chain that has pulled *level* wins,
        # since the attacker releases it the moment it edges ahead.
        return honest_node.chain.height >= z and (
            attacker_node.chain.tip.chain_work
            >= honest_node.chain.tip.chain_work
        )

    def race_open() -> bool:
        if honest_node.chain.height >= horizon_blocks:
            return False
        return not attacker_caught_up()

    sim.run_while(race_open, limit=1e12)
    won = attacker_caught_up()
    if won and (
        attacker_node.chain.tip.chain_work > honest_node.chain.tip.chain_work
    ):
        # Publish the private branch: the honest node reorganizes onto it
        # (a tie is a win on paper but only a strictly heavier branch
        # displaces the public chain).
        branch = []
        entry = attacker_node.chain.tip
        while entry.prev is not None:
            branch.append(entry.block)
            entry = attacker_node.chain.entry(entry.prev)
        for block in reversed(branch):
            honest_node.submit_block(block)
    return RaceOutcome(
        attacker_won=won,
        honest_blocks=honest_node.chain.height,
        attacker_blocks=attacker_node.chain.height,
        duration=sim.now,
    )
