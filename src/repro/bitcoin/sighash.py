"""Signature hashing (SIGHASH) for transaction signing.

A signature does not cover the raw transaction — scriptSigs are blanked and
the SIGHASH type selects which inputs/outputs are committed to.  The paper's
*open transactions* (§7, §8) "are inspired by and generalize Bitcoin's
SIGHASH rules, which erase parts of a transaction before checking its
signatures, thereby allowing those parts to be altered."

Two implementations live here:

* :func:`signature_hash` — the straightforward reference: build the blanked
  :class:`Transaction` and serialize it.  Signing uses it, and the tests pin
  the cache against it byte for byte.
* :class:`SighashCache` — the validation fast path.  Checking an n-input
  transaction calls ``signature_hash`` once per input (and multisig inputs
  several times), and each call re-serializes the whole transaction.  The
  cache computes the shared midstates once per transaction — the blanked
  per-input templates and the serialized-output variants — so each digest
  is a byte-join plus one double-SHA, and repeated digests (multisig trying
  several pubkeys against one signature) are memoized outright.
"""

from __future__ import annotations

import enum
from dataclasses import replace

from repro import obs
from repro.bitcoin.script import Script
from repro.bitcoin.transaction import Transaction, TxIn, TxOut, varint
from repro.crypto.hashing import sha256d


class SigHashType(enum.IntEnum):
    """Which parts of the transaction a signature commits to."""

    ALL = 0x01
    NONE = 0x02
    SINGLE = 0x03
    ANYONECANPAY = 0x80

    @staticmethod
    def base(hash_type: int) -> "SigHashType":
        return SigHashType(hash_type & 0x1F)

    @staticmethod
    def anyone_can_pay(hash_type: int) -> bool:
        return bool(hash_type & SigHashType.ANYONECANPAY)


# Returned by SIGHASH_SINGLE when the input index has no matching output —
# a historical Bitcoin bug we reproduce for fidelity (signing hashes the
# integer 1 instead of failing).
_SINGLE_BUG_DIGEST = (1).to_bytes(32, "little")

# Serialization of a blanked output (value −1, empty script), as SINGLE
# erases outputs before the signed index.
_BLANKED_TXOUT = TxOut(-1, Script()).serialize()


def signature_hash(
    tx: Transaction,
    input_index: int,
    script_code: Script,
    hash_type: int,
) -> bytes:
    """The digest that input ``input_index`` signs under ``hash_type``.

    ``script_code`` is the scriptPubKey of the output being spent (standard
    schemas only; we do not implement OP_CODESEPARATOR subtleties).

    Raises :class:`ValueError` when ``input_index`` does not name an input
    of ``tx``; validation surfaces that as a ``ValidationError``.
    """
    if input_index < 0 or input_index >= len(tx.vin):
        raise ValueError(
            f"sighash input index {input_index} out of range for"
            f" transaction with {len(tx.vin)} inputs"
        )

    prof = obs.PROFILER if obs.ENABLED else None
    if prof is not None:
        prof.enter("sighash")
    try:
        base = SigHashType.base(hash_type)
        anyonecanpay = SigHashType.anyone_can_pay(hash_type)

        if base == SigHashType.SINGLE and input_index >= len(tx.vout):
            return _SINGLE_BUG_DIGEST

        # Blank all scriptSigs; the signed input carries the script code.
        vin: list[TxIn] = []
        for i, txin in enumerate(tx.vin):
            if anyonecanpay and i != input_index:
                continue
            if i == input_index:
                vin.append(replace(txin, script_sig=script_code))
            else:
                sequence = txin.sequence
                if base in (SigHashType.NONE, SigHashType.SINGLE):
                    sequence = 0
                vin.append(
                    replace(txin, script_sig=Script(), sequence=sequence)
                )

        if base == SigHashType.NONE:
            vout: list[TxOut] = []
        elif base == SigHashType.SINGLE:
            # Keep only outputs up to the signed index; earlier ones are
            # blanked (value -1, empty script) so they can change freely.
            vout = [
                TxOut(-1, Script()) for _ in range(input_index)
            ] + [tx.vout[input_index]]
        else:
            vout = list(tx.vout)

        preimage = Transaction(
            vin, vout, version=tx.version, locktime=tx.locktime
        ).serialize() + hash_type.to_bytes(4, "little")
        return sha256d(preimage)
    finally:
        if prof is not None:
            prof.exit()


class SighashCache:
    """Per-transaction midstate cache for SIGHASH digests.

    Build one per transaction being validated and call :meth:`digest` for
    every (input, script code, hash type) combination; the blanked-input
    templates and serialized-output segments are computed once and shared
    across all of them.  Digests are byte-identical to
    :func:`signature_hash` by construction (and by test).
    """

    __slots__ = (
        "tx",
        "_head",
        "_tail",
        "_pieces_keep",
        "_pieces_zero",
        "_vout_all",
        "_vout_single",
        "_digests",
    )

    def __init__(self, tx: Transaction):
        self.tx = tx
        self._head = tx.version.to_bytes(4, "little")
        self._tail = tx.locktime.to_bytes(4, "little")
        # Per-input serializations with a blanked scriptSig; ALL keeps the
        # original sequence numbers, NONE/SINGLE zero the unsigned ones.
        self._pieces_keep: list[bytes] | None = None
        self._pieces_zero: list[bytes] | None = None
        self._vout_all: bytes | None = None
        self._vout_single: dict[int, bytes] = {}
        self._digests: dict[tuple[int, int, Script], bytes] = {}

    def _blanked_pieces(self, zero_sequence: bool) -> list[bytes]:
        if zero_sequence:
            if self._pieces_zero is None:
                self._pieces_zero = [
                    txin.prevout.serialize() + b"\x00" + b"\x00\x00\x00\x00"
                    for txin in self.tx.vin
                ]
            return self._pieces_zero
        if self._pieces_keep is None:
            self._pieces_keep = [
                txin.prevout.serialize()
                + b"\x00"
                + txin.sequence.to_bytes(4, "little")
                for txin in self.tx.vin
            ]
        return self._pieces_keep

    def _signed_piece(self, input_index: int, script_code: Script) -> bytes:
        txin = self.tx.vin[input_index]
        code = script_code.serialize()
        return (
            txin.prevout.serialize()
            + varint(len(code))
            + code
            + txin.sequence.to_bytes(4, "little")
        )

    def _outputs_segment(self, base: SigHashType, input_index: int) -> bytes:
        if base == SigHashType.NONE:
            return b"\x00"
        if base == SigHashType.SINGLE:
            segment = self._vout_single.get(input_index)
            if segment is None:
                segment = (
                    varint(input_index + 1)
                    + _BLANKED_TXOUT * input_index
                    + self.tx.vout[input_index].serialize()
                )
                self._vout_single[input_index] = segment
            return segment
        if self._vout_all is None:
            out = bytearray(varint(len(self.tx.vout)))
            for txout in self.tx.vout:
                out += txout.serialize()
            self._vout_all = bytes(out)
        return self._vout_all

    def digest(
        self, input_index: int, script_code: Script, hash_type: int
    ) -> bytes:
        """Same contract (and bytes) as :func:`signature_hash`."""
        tx = self.tx
        if input_index < 0 or input_index >= len(tx.vin):
            raise ValueError(
                f"sighash input index {input_index} out of range for"
                f" transaction with {len(tx.vin)} inputs"
            )
        key = (input_index, hash_type, script_code)
        cached = self._digests.get(key)
        if cached is not None:
            if obs.ENABLED:
                obs.inc("sighash.cache_hits_total")
            return cached
        prof = None
        if obs.ENABLED:
            obs.inc("sighash.cache_misses_total")
            prof = obs.PROFILER
            if prof is not None:
                prof.enter("sighash")
        try:
            base = SigHashType.base(hash_type)
            if base == SigHashType.SINGLE and input_index >= len(tx.vout):
                self._digests[key] = _SINGLE_BUG_DIGEST
                return _SINGLE_BUG_DIGEST

            signed = self._signed_piece(input_index, script_code)
            if SigHashType.anyone_can_pay(hash_type):
                vin_segment = b"\x01" + signed
            else:
                pieces = list(
                    self._blanked_pieces(
                        base in (SigHashType.NONE, SigHashType.SINGLE)
                    )
                )
                pieces[input_index] = signed
                vin_segment = varint(len(pieces)) + b"".join(pieces)

            preimage = (
                self._head
                + vin_segment
                + self._outputs_segment(base, input_index)
                + self._tail
                + hash_type.to_bytes(4, "little")
            )
            digest = sha256d(preimage)
            self._digests[key] = digest
            return digest
        finally:
            if prof is not None:
                prof.exit()
