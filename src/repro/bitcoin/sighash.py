"""Signature hashing (SIGHASH) for transaction signing.

A signature does not cover the raw transaction — scriptSigs are blanked and
the SIGHASH type selects which inputs/outputs are committed to.  The paper's
*open transactions* (§7, §8) "are inspired by and generalize Bitcoin's
SIGHASH rules, which erase parts of a transaction before checking its
signatures, thereby allowing those parts to be altered."
"""

from __future__ import annotations

import enum
from dataclasses import replace

from repro.bitcoin.script import Script
from repro.bitcoin.transaction import Transaction, TxIn, TxOut
from repro.crypto.hashing import sha256d


class SigHashType(enum.IntEnum):
    """Which parts of the transaction a signature commits to."""

    ALL = 0x01
    NONE = 0x02
    SINGLE = 0x03
    ANYONECANPAY = 0x80

    @staticmethod
    def base(hash_type: int) -> "SigHashType":
        return SigHashType(hash_type & 0x1F)

    @staticmethod
    def anyone_can_pay(hash_type: int) -> bool:
        return bool(hash_type & SigHashType.ANYONECANPAY)


# Returned by SIGHASH_SINGLE when the input index has no matching output —
# a historical Bitcoin bug we reproduce for fidelity (signing hashes the
# integer 1 instead of failing).
_SINGLE_BUG_DIGEST = (1).to_bytes(32, "little")


def signature_hash(
    tx: Transaction,
    input_index: int,
    script_code: Script,
    hash_type: int,
) -> bytes:
    """The digest that input ``input_index`` signs under ``hash_type``.

    ``script_code`` is the scriptPubKey of the output being spent (standard
    schemas only; we do not implement OP_CODESEPARATOR subtleties).
    """
    if input_index >= len(tx.vin):
        raise IndexError("input index out of range")

    base = SigHashType.base(hash_type)
    anyonecanpay = SigHashType.anyone_can_pay(hash_type)

    if base == SigHashType.SINGLE and input_index >= len(tx.vout):
        return _SINGLE_BUG_DIGEST

    # Blank all scriptSigs; the signed input carries the script code.
    vin: list[TxIn] = []
    for i, txin in enumerate(tx.vin):
        if anyonecanpay and i != input_index:
            continue
        if i == input_index:
            vin.append(replace(txin, script_sig=script_code))
        else:
            sequence = txin.sequence
            if base in (SigHashType.NONE, SigHashType.SINGLE):
                sequence = 0
            vin.append(replace(txin, script_sig=Script(), sequence=sequence))

    if base == SigHashType.NONE:
        vout: list[TxOut] = []
    elif base == SigHashType.SINGLE:
        # Keep only outputs up to the signed index; earlier ones are blanked
        # (value -1, empty script) so they can be changed freely.
        vout = [
            TxOut(-1, Script()) for _ in range(input_index)
        ] + [tx.vout[input_index]]
    else:
        vout = list(tx.vout)

    preimage = Transaction(
        vin, vout, version=tx.version, locktime=tx.locktime
    ).serialize() + hash_type.to_bytes(4, "little")
    return sha256d(preimage)
