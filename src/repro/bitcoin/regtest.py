"""A regtest harness: an instant-mining private network for tests and demos.

Mirrors Bitcoin Core's regtest mode: trivial difficulty, deterministic
genesis, and helpers to generate blocks to a wallet.  Every Typecoin test
and example runs on top of this.
"""

from __future__ import annotations

from repro import obs
from repro.bitcoin.block import Block
from repro.bitcoin.chain import Blockchain, ChainParams
from repro.bitcoin.mempool import Mempool, MempoolError
from repro.bitcoin.miner import Miner
from repro.bitcoin.transaction import Transaction
from repro.bitcoin.utxo import COINBASE_MATURITY
from repro.bitcoin.wallet import Wallet


class RegtestNetwork:
    """One node, one chain, instant mining.

    ``observe=True`` switches on :mod:`repro.obs` process-wide so every
    validation step this network performs is counted and timed.
    """

    def __init__(
        self,
        min_fee_rate: int = 1,
        block_time_step: int = 1,
        observe: bool = False,
    ):
        if observe:
            obs.enable()
        self.chain = Blockchain(ChainParams.regtest())
        self.mempool = Mempool(self.chain, min_fee_rate=min_fee_rate)
        self.block_time_step = block_time_step
        self._extra_nonce = 0

    def generate(self, count: int, key_hash: bytes) -> list[Block]:
        """Mine ``count`` blocks paying their coinbases to ``key_hash``.

        Block timestamps advance by ``block_time_step`` simulated seconds
        per block (never behind median-time-past), so chain time is a
        usable clock for ``before(t)`` conditions.
        """
        miner = Miner(self.chain, key_hash)
        blocks = []
        for _ in range(count):
            self._extra_nonce += 1
            timestamp = max(
                self.chain.median_time_past() + 1,
                self.chain.tip.block.header.timestamp + self.block_time_step,
            )
            blocks.append(
                miner.mine_block(
                    self.mempool,
                    timestamp=timestamp,
                    extra_nonce=self._extra_nonce,
                )
            )
        return blocks

    def fund_wallet(self, wallet: Wallet, blocks: int = 1) -> None:
        """Give ``wallet`` spendable coins: mine to it, then mature them."""
        self.generate(blocks, wallet.key_hash)
        # Mature the coinbases by mining a full maturity window to a
        # throwaway key.  The youngest funded coinbase then sits at depth
        # exactly COINBASE_MATURITY — the boundary case: the wallet's
        # (consensus-aligned) rule deems it spendable, and a spend mined
        # in the next block has depth COINBASE_MATURITY + 1 > the window,
        # so consensus agrees.
        burn = Wallet.from_seed(b"regtest-burn")
        self.generate(COINBASE_MATURITY, burn.key_hash)

    def send(self, tx: Transaction) -> bytes:
        """Submit a transaction to the mempool; returns its txid."""
        self.mempool.accept(tx)
        return tx.txid

    def send_raw(self, tx: Transaction) -> bytes:
        """Miner-assisted submission: bypass relay policy (paper §3.3:
        non-standard scripts are 'legal when they appear in blocks')."""
        saved = self.mempool.require_standard
        self.mempool.require_standard = False
        try:
            self.mempool.accept(tx)
        finally:
            self.mempool.require_standard = saved
        return tx.txid

    def confirm(self, blocks: int = 1) -> list[Block]:
        """Mine blocks (to a throwaway key) so pending transactions confirm."""
        burn = Wallet.from_seed(b"regtest-burn")
        return self.generate(blocks, burn.key_hash)

    def confirmations(self, txid: bytes) -> int:
        return self.chain.confirmations(txid)
