"""The blockchain: a block tree resolved to a list by accumulated work.

Paper §1, item 2: "In order for the blockchain to provide a commitment
mechanism, we need it to be a list, not a tree.  Otherwise, a state change
could be reversed by hopping to an alternate branch of the tree."  This
module keeps the whole tree, defines the active chain as the branch with the
most accumulated work, and reorganizes (with full UTXO undo) when a heavier
branch appears — which is exactly the attack surface experiment E1 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.obs.monitor import monitors
from repro.bitcoin.block import Block, build_block
from repro.bitcoin.pow import (
    BLOCK_INTERVAL_TARGET,
    MAX_TARGET,
    REGTEST_TARGET,
    RETARGET_WINDOW,
    bits_to_target,
    block_work,
    next_target,
    target_to_bits,
)
from repro.bitcoin.transaction import COIN, OutPoint, Script, Transaction, TxIn, TxOut
from repro.bitcoin.utxo import BlockUndo, UTXOSet
from repro.bitcoin.utxo_cache import UTXOCache
from repro.bitcoin.validation import (
    ParallelScriptVerifier,
    ScriptJob,
    ValidationError,
    check_tx_inputs,
    verify_scripts_batched,
)

HALVING_INTERVAL = 210_000
INITIAL_SUBSIDY = 50 * COIN
MEDIAN_TIME_SPAN = 11


@dataclass(frozen=True)
class ChainParams:
    """Consensus parameters; the regtest preset makes mining instant."""

    max_target: int = MAX_TARGET
    retarget_window: int = RETARGET_WINDOW
    block_interval: int = BLOCK_INTERVAL_TARGET
    require_pow: bool = True
    genesis_timestamp: int = 1_000_000_000

    @staticmethod
    def regtest() -> "ChainParams":
        return ChainParams(
            max_target=REGTEST_TARGET,
            retarget_window=2**31,  # never retarget
            require_pow=True,
        )


def make_genesis(params: ChainParams) -> Block:
    """A deterministic genesis block whose coinbase is unspendable."""
    coinbase = Transaction(
        vin=[TxIn(OutPoint.null(), Script())],
        vout=[TxOut(INITIAL_SUBSIDY, Script())],
    )
    bits = target_to_bits(params.max_target)
    block = build_block(
        prev_hash=b"\x00" * 32,
        txs=[coinbase],
        timestamp=params.genesis_timestamp,
        bits=bits,
    )
    if params.require_pow:
        nonce = 0
        while not block.header.meets_target():
            nonce += 1
            block = Block(block.header.with_nonce(nonce), block.txs)
    return block


@dataclass
class BlockIndexEntry:
    """Metadata for one block in the tree."""

    block: Block
    height: int
    chain_work: int
    prev: bytes | None
    invalid: bool = False


@dataclass
class _ConnectedState:
    """Per-connected-block bookkeeping for disconnects."""

    undo: BlockUndo
    txids: list[bytes] = field(default_factory=list)


class Blockchain:
    """The full node state: block tree, active chain, UTXO set, tx index."""

    def __init__(
        self,
        params: ChainParams | None = None,
        script_verifier: ParallelScriptVerifier | None = None,
        batch_sig_verify: bool = False,
        utxo_cache: bool = False,
    ):
        self.params = params or ChainParams.regtest()
        # workers=1 verifies serially in-process; pass a verifier with more
        # workers to fan block-connect script checks across a process pool.
        self.script_verifier = script_verifier or ParallelScriptVerifier(workers=1)
        # Opt-in pipeline accelerators (verdicts and state are identical
        # either way; see docs/performance.md, "The block pipeline"):
        # batch_sig_verify defers single-key CHECKSIGs into one
        # multi-scalar multiplication (single-process verifiers only —
        # a worker pool already owns the script jobs); utxo_cache layers
        # a write-back dirty-entry cache over the UTXO set, flushed at
        # snapshot boundaries.
        self.batch_sig_verify = bool(batch_sig_verify)
        self._use_utxo_cache = bool(utxo_cache)
        self.genesis = make_genesis(self.params)
        genesis_hash = self.genesis.hash
        self._index: dict[bytes, BlockIndexEntry] = {
            genesis_hash: BlockIndexEntry(
                block=self.genesis,
                height=0,
                chain_work=block_work(self.genesis.header.bits),
                prev=None,
            )
        }
        self._active: list[bytes] = [genesis_hash]
        self.utxos = UTXOCache(UTXOSet()) if self._use_utxo_cache else UTXOSet()
        self._connected: dict[bytes, _ConnectedState] = {}
        # txid -> hash of the active-chain block containing it.
        self._tx_index: dict[bytes, bytes] = {}
        # outpoint -> txid of the active-chain transaction that spent it.
        self._spenders: dict[OutPoint, bytes] = {}
        # Optional durable store (repro.store.BlockStore); every connect /
        # disconnect is appended once attached.  Duck-typed so this module
        # never has to import repro.store.
        self.store = None
        # Called as listener(disconnected, connected) after every
        # successful reorg, with lists of BlockIndexEntry: the losing
        # branch tip-first, the winning branch in height order.
        self._reorg_listeners: list = []
        self._connect(self._index[genesis_hash])

    # ------------------------------------------------------------------
    # Persistence / notification hooks
    # ------------------------------------------------------------------

    def attach_store(self, store) -> None:
        """Start mirroring every connect/disconnect into ``store``.

        The store must already be open; its manifest is bound to this
        chain's genesis (a store from a different chain raises).
        """
        store.set_genesis(self.genesis.hash)
        self.store = store

    def add_reorg_listener(self, listener) -> None:
        """Register ``listener(disconnected, connected)`` for successful
        reorgs (both are lists of :class:`BlockIndexEntry`; the losing
        branch arrives tip-first, the winning branch in height order)."""
        self._reorg_listeners.append(listener)

    @classmethod
    def restore(
        cls,
        recovered,
        params: ChainParams | None = None,
        script_verifier: ParallelScriptVerifier | None = None,
        batch_sig_verify: bool = False,
        utxo_cache: bool = False,
    ) -> "Blockchain":
        """Rebuild a chain from a :class:`repro.store.RecoveredState`.

        Replays the durable transition log without script verification or
        proof-of-work re-grinding — every record already passed full
        validation before it was committed.  Records up to the snapshot's
        offset rebuild the block index only; the snapshot supplies the
        UTXO set (and the undo log supplies per-block undo data for the
        blocks beneath it); records past the snapshot replay forward
        through the normal UTXO apply path.  With no usable snapshot the
        whole log replays from genesis.

        The returned chain has **no store attached** — appends during
        replay would duplicate the log.  Call :meth:`attach_store` after.
        """
        chain = cls(
            params,
            script_verifier,
            batch_sig_verify=batch_sig_verify,
            utxo_cache=utxo_cache,
        )
        if (
            recovered.genesis is not None
            and recovered.genesis != chain.genesis.hash
        ):
            raise ValidationError(
                "store belongs to a different chain (genesis mismatch)"
            )
        snapshot = recovered.snapshot
        boundary = recovered.snapshot_offset if snapshot is not None else 0
        replayed = 0
        for record in recovered.records:
            if snapshot is not None and record.offset < boundary:
                chain._replay_index_only(record)
            else:
                if snapshot is not None:
                    chain._install_snapshot(snapshot, recovered.undo_by_hash)
                    snapshot = None  # installed exactly once
                chain._replay_forward(record)
                replayed += 1
        if snapshot is not None:
            # Every surviving record predates the snapshot (or there were
            # none): install it now to finish.
            chain._install_snapshot(snapshot, recovered.undo_by_hash)
        if obs.ENABLED:
            obs.inc("store.recovered_blocks_total", replayed)
        return chain

    def _replay_index_only(self, record) -> None:
        """Phase-1 replay: maintain the block tree and active list only
        (the snapshot will supply the UTXO set these records produced)."""
        if record.kind == 2:  # disconnect
            popped = self._active.pop()
            assert popped == record.block_hash, "log/active-chain divergence"
            return
        block = record.block
        entry = self._index.get(record.block_hash)
        if entry is None:
            prev = self._index[block.header.prev_hash]
            entry = BlockIndexEntry(
                block=block,
                height=prev.height + 1,
                chain_work=prev.chain_work + block_work(block.header.bits),
                prev=block.header.prev_hash,
            )
            self._index[record.block_hash] = entry
        self._active.append(record.block_hash)

    def _install_snapshot(self, snapshot, undo_by_hash: dict) -> None:
        """Adopt a snapshot's UTXO set and backfill per-block state for
        the active blocks beneath it (undo from the durable undo log)."""
        if self.tip.block.hash != snapshot.tip or self.height != snapshot.height:
            raise ValidationError(
                "snapshot tip does not match replayed index "
                f"(height {self.height} vs {snapshot.height})"
            )
        base = snapshot.to_utxo_set()
        # The snapshot's set becomes the cache's *base* (it is exactly the
        # flushed state the running chain wrote), with a fresh empty
        # overlay for the post-snapshot replay.
        self.utxos = UTXOCache(base) if self._use_utxo_cache else base
        for block_hash in self._active[1:]:
            undo = undo_by_hash.get(block_hash)
            if undo is None:
                raise ValidationError(
                    "undo record missing for committed block "
                    f"{block_hash.hex()}"
                )
            state = _ConnectedState(undo=undo)
            block = self._index[block_hash].block
            for tx in block.txs:
                self._tx_index[tx.txid] = block_hash
                state.txids.append(tx.txid)
                if not tx.is_coinbase:
                    for txin in tx.vin:
                        self._spenders[txin.prevout] = tx.txid
            self._connected[block_hash] = state

    def _replay_forward(self, record) -> None:
        """Phase-2 replay: re-apply one logged transition to the UTXO set
        and indexes (undo data is recomputed by the apply itself)."""
        if record.kind == 2:  # disconnect
            assert self._active[-1] == record.block_hash, (
                "log/active-chain divergence"
            )
            self._disconnect_tip()
            return
        block = record.block
        entry = self._index.get(record.block_hash)
        if entry is None:
            prev = self._index[block.header.prev_hash]
            entry = BlockIndexEntry(
                block=block,
                height=prev.height + 1,
                chain_work=prev.chain_work + block_work(block.header.bits),
                prev=block.header.prev_hash,
            )
            self._index[record.block_hash] = entry
        undo = self.utxos.apply_block_txs(list(block.txs), entry.height)
        state = _ConnectedState(undo=undo)
        for tx in block.txs:
            self._tx_index[tx.txid] = record.block_hash
            state.txids.append(tx.txid)
            if not tx.is_coinbase:
                for txin in tx.vin:
                    self._spenders[txin.prevout] = tx.txid
        self._connected[record.block_hash] = state
        self._active.append(record.block_hash)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def tip(self) -> BlockIndexEntry:
        return self._index[self._active[-1]]

    @property
    def height(self) -> int:
        return len(self._active) - 1

    def block_at(self, height: int) -> Block:
        return self._index[self._active[height]].block

    def entry(self, block_hash: bytes) -> BlockIndexEntry | None:
        return self._index.get(block_hash)

    def has_block(self, block_hash: bytes) -> bool:
        return block_hash in self._index

    def in_active_chain(self, block_hash: bytes) -> bool:
        entry = self._index.get(block_hash)
        return (
            entry is not None
            and entry.height < len(self._active)
            and self._active[entry.height] == block_hash
        )

    def get_transaction(self, txid: bytes) -> tuple[Transaction, int] | None:
        """Find a confirmed transaction; returns (tx, height) or None."""
        block_hash = self._tx_index.get(txid)
        if block_hash is None:
            return None
        entry = self._index[block_hash]
        for tx in entry.block.txs:
            if tx.txid == txid:
                return tx, entry.height
        return None  # pragma: no cover - index is kept consistent

    def confirmations(self, txid: bytes) -> int:
        """How many blocks deep a transaction is (0 = unconfirmed)."""
        found = self.get_transaction(txid)
        if found is None:
            return 0
        _, height = found
        return self.height - height + 1

    def is_spent(self, outpoint: OutPoint) -> bool:
        """Has this outpoint been consumed on the active chain?

        Paper §5: "To show that a txout is spent, one can point to an earlier
        transaction that spent it."  This is the oracle behind the
        ``spent(txid.n)`` condition.
        """
        return outpoint in self._spenders

    def spender_of(self, outpoint: OutPoint) -> bytes | None:
        """The txid that spent ``outpoint`` on the active chain, if any."""
        return self._spenders.get(outpoint)

    def median_time_past(self, block_hash: bytes | None = None) -> int:
        """Median of the last 11 block timestamps (the consensus clock)."""
        entry = self._index[block_hash] if block_hash else self.tip
        times: list[int] = []
        current: BlockIndexEntry | None = entry
        while current is not None and len(times) < MEDIAN_TIME_SPAN:
            times.append(current.block.header.timestamp)
            current = self._index.get(current.prev) if current.prev else None
        times.sort()
        return times[len(times) // 2]

    def required_bits(self, prev_hash: bytes) -> int:
        """The compact target the block after ``prev_hash`` must meet."""
        prev = self._index[prev_hash]
        next_height = prev.height + 1
        window = self.params.retarget_window
        if next_height % window != 0:
            return prev.block.header.bits
        # Walk back to the first block of the closing period.
        first = prev
        for _ in range(window - 1):
            assert first.prev is not None
            first = self._index[first.prev]
        new_target = next_target(
            bits_to_target(prev.block.header.bits),
            first.block.header.timestamp,
            prev.block.header.timestamp,
            max_target=self.params.max_target,
            window=window,
            interval=self.params.block_interval,
        )
        return target_to_bits(new_target)

    # ------------------------------------------------------------------
    # Sync support (headers-first catch-up, see repro.bitcoin.sync)
    # ------------------------------------------------------------------

    def locator(self) -> list[bytes]:
        """Block-locator hashes: dense near the tip, exponentially sparse
        toward genesis (genesis always included).

        A peer scans the list for the first hash on *its* active chain —
        the common ancestor survives any reorg depth with O(log height)
        hashes exchanged.
        """
        hashes: list[bytes] = []
        step = 1
        height = self.height
        while height > 0:
            hashes.append(self._active[height])
            if len(hashes) >= 10:
                step *= 2
            height -= step
        hashes.append(self._active[0])
        return hashes

    def hashes_after(self, locator: list[bytes], limit: int = 2000) -> list[bytes]:
        """Active-chain hashes after the first locator hash we recognize.

        The serving side of a getheaders round: the requester learns, in
        order, which blocks it is missing.  Unknown locators degrade to
        "everything after genesis" (the locator always carries genesis).
        """
        start = 0
        for block_hash in locator:
            entry = self._index.get(block_hash)
            if entry is not None and self.in_active_chain(block_hash):
                start = entry.height
                break
        return self._active[start + 1 : start + 1 + limit]

    def export_active(self) -> list[Block]:
        """The active chain's blocks after genesis, in height order.

        This is the "on-disk" state a crashed node reloads: side branches
        and all in-memory indexes are rebuilt (or lost) on restart, exactly
        like a pruned node replaying its block files.
        """
        return [self._index[h].block for h in self._active[1:]]

    # ------------------------------------------------------------------
    # Block acceptance
    # ------------------------------------------------------------------

    def add_block(self, block: Block) -> bool:
        """Validate and store a block; reorganize if its branch has most work.

        Returns True if the block is now on the active chain.
        Raises :class:`ValidationError` for malformed or rule-breaking blocks.
        """
        block_hash = block.hash
        if block_hash in self._index:
            return self.in_active_chain(block_hash)
        prev = self._index.get(block.header.prev_hash)
        if prev is None:
            raise ValidationError("orphan block: unknown parent")
        if prev.invalid:
            raise ValidationError("parent block is invalid")

        block.validate_structure()
        expected_bits = self.required_bits(block.header.prev_hash)
        if block.header.bits != expected_bits:
            raise ValidationError("incorrect difficulty bits")
        if self.params.require_pow and not block.header.meets_target():
            raise ValidationError("insufficient proof of work")
        if block.header.timestamp <= self.median_time_past(block.header.prev_hash):
            raise ValidationError("timestamp not after median time past")

        entry = BlockIndexEntry(
            block=block,
            height=prev.height + 1,
            chain_work=prev.chain_work + block_work(block.header.bits),
            prev=block.header.prev_hash,
        )
        self._index[block_hash] = entry

        if entry.chain_work > self.tip.chain_work:
            self._reorganize_to(entry)
            if self.store is not None and self.store.should_snapshot():
                # Snapshot only at a settled tip, never mid-reorg.  A
                # write-back cache flushes first so the durable snapshot
                # (taken from the base set) holds the full merged state.
                flush = getattr(self.utxos, "flush", None)
                if flush is not None:
                    flush(reason="snapshot")
                self.store.write_snapshot(
                    self.utxos, self.height, self.tip.block.hash
                )
        if obs.ENABLED:
            # Tip-work monotonicity is checked here — at the *end* of
            # add_block, never per-connect — because mid-reorg the tip
            # legitimately dips below the old branch's work.
            monitors().check_tip_work(self)
        return self.in_active_chain(block_hash)

    def _reorganize_to(self, new_tip: BlockIndexEntry) -> None:
        """Switch the active chain to end at ``new_tip``.

        Finds the fork point, disconnects the old branch, and connects the
        new branch; if a new-branch block fails contextual validation the
        whole reorg is rolled back and that block is marked invalid.
        """
        # Collect the new branch back to a block on the active chain.
        branch: list[BlockIndexEntry] = []
        cursor: BlockIndexEntry | None = new_tip
        while cursor is not None and not self.in_active_chain(cursor.block.hash):
            branch.append(cursor)
            cursor = self._index.get(cursor.prev) if cursor.prev else None
        assert cursor is not None, "branches always join at genesis"
        fork_height = cursor.height
        branch.reverse()

        disconnected: list[BlockIndexEntry] = []
        while self.height > fork_height:
            disconnected.append(self._disconnect_tip())
        if disconnected and obs.ENABLED:
            # A true reorg (not a plain tip extension): the active chain
            # lost blocks before adopting the heavier branch.
            obs.inc("chain.reorg_total")
            obs.observe(
                "chain.reorg_depth", len(disconnected), obs.COUNT_BUCKETS
            )
            obs.emit(
                "chain.reorg",
                depth=len(disconnected),
                fork_height=fork_height,
            )

        connected: list[BlockIndexEntry] = []
        try:
            for entry in branch:
                self._connect(entry)
                connected.append(entry)
        except ValidationError:
            # Roll back: disconnect what we connected, restore the old chain.
            bad = branch[len(connected)]
            bad.invalid = True
            for _ in connected:
                self._disconnect_tip()
            for entry in reversed(disconnected):
                self._connect(entry)
            raise
        if disconnected:
            for listener in self._reorg_listeners:
                listener(disconnected, connected)

    def _connect(self, entry: BlockIndexEntry) -> None:
        """Attach a block to the active tip, updating UTXOs and indexes."""
        if obs.ENABLED:
            with obs.trace_span(
                "chain.connect_block",
                metric="chain.connect_seconds",
                height=entry.height,
                txs=len(entry.block.txs),
            ):
                self._connect_inner(entry)
            obs.inc("chain.blocks_connected_total")
            obs.gauge_set("utxo.set_size", len(self.utxos))
            obs.emit(
                "block.connected",
                hash=entry.block.hash,
                height=entry.height,
                txs=len(entry.block.txs),
            )
            monitors().check_supply(self)
        else:
            self._connect_inner(entry)

    def _connect_inner(self, entry: BlockIndexEntry) -> None:
        block = entry.block
        height = entry.height
        if height > 0:
            from repro.bitcoin.validation import is_final

            fees = 0
            script_jobs: list[ScriptJob] = []
            for tx in block.txs[1:]:
                if not is_final(tx, height, block.header.timestamp):
                    raise ValidationError("non-final transaction in block")
                # Contextual checks first (inputs exist, maturity, fee); the
                # script work is collected and run as one batch below so it
                # can fan out across the verifier's workers.
                result = check_tx_inputs(
                    tx, self.utxos, height, verify_scripts=False
                )
                fees += result.fee
                for index, txin in enumerate(tx.vin):
                    utxo_entry = self.utxos.get(txin.prevout)
                    assert utxo_entry is not None  # check_tx_inputs passed
                    script_jobs.append(
                        (tx, index, utxo_entry.output.script_pubkey)
                    )
            if self.batch_sig_verify and self.script_verifier.workers == 1:
                verify_scripts_batched(script_jobs)
            else:
                self.script_verifier.verify_all(script_jobs)
            coinbase_value = block.txs[0].total_output_value()
            if coinbase_value > block_subsidy(height) + fees:
                raise ValidationError("coinbase pays more than subsidy plus fees")
        undo = self.utxos.apply_block_txs(list(block.txs), height)
        state = _ConnectedState(undo=undo)
        for tx in block.txs:
            self._tx_index[tx.txid] = block.hash
            state.txids.append(tx.txid)
            if not tx.is_coinbase:
                for txin in tx.vin:
                    self._spenders[txin.prevout] = tx.txid
        self._connected[block.hash] = state
        if height > 0:
            self._active.append(block.hash)
            if self.store is not None:
                self.store.append_connect(block, height, undo)
        # height == 0 is genesis, already in _active at construction
        # (and implied by the store manifest, so it is never logged).

    def _disconnect_tip(self) -> BlockIndexEntry:
        """Detach the tip block, restoring UTXOs and indexes."""
        tip_hash = self._active.pop()
        entry = self._index[tip_hash]
        state = self._connected.pop(tip_hash)
        self.utxos.undo_block(state.undo)
        if self.store is not None:
            self.store.append_disconnect(tip_hash, entry.height)
        for txid in state.txids:
            self._tx_index.pop(txid, None)
        for tx in entry.block.txs:
            if not tx.is_coinbase:
                for txin in tx.vin:
                    self._spenders.pop(txin.prevout, None)
        if obs.ENABLED:
            obs.inc("chain.blocks_disconnected_total")
            obs.gauge_set("utxo.set_size", len(self.utxos))
            obs.emit(
                "block.disconnected", hash=tip_hash, height=entry.height
            )
            monitors().check_supply(self)
        return entry


def block_subsidy(height: int) -> int:
    """The new-coin reward at a given height (halves every 210k blocks)."""
    halvings = height // HALVING_INTERVAL
    if halvings >= 64:
        return 0
    return INITIAL_SUBSIDY >> halvings
