"""Synthetic user populations for swarm-scale simulation.

The paper's setting is a *population* of mutually-untrusting principals
committing to affine contracts over a shared chain — not the handful of
named wallets the small experiments use.  This module generates that
population synthetically, at the million-user scale the swarm benchmarks
need, without holding a million key pairs in memory:

* **Power-law activity** — real transaction-issuing activity is heavily
  skewed (a few exchanges and services dominate; most users transact
  rarely).  Wallet ``i`` gets weight ``(i + 1) ** -alpha``; senders are
  drawn by binary search over the cumulative weights, so a draw costs
  O(log n) regardless of population size.
* **Bursty arrivals** — submissions cluster (market moves, settlement
  batches) rather than arriving as a flat Poisson stream.  Cluster starts
  are exponential with rate ``burst_rate``; each cluster holds a
  geometric number of events (mean ``burst_mean``) spread uniformly over
  ``burst_spread`` seconds.
* **Deterministic streams** — every stream is derived via
  :func:`repro.backoff.derive_rng` from the population seed plus the
  identity of the thing being drawn (the event window, the wallet), so
  the same configuration always reproduces the same trace byte for byte
  (:meth:`SyntheticPopulation.trace_digest` pins exactly that), and
  per-wallet streams are decorrelated from the global event stream.

The population is pure schedule: it yields ``(time, wallet)`` events and
never touches a simulation's RNG.  Mapping events to signed transactions
is the consumer's job; :func:`fund_wallets` builds the scratch-chain
prefix that gives the active (transacting) subset real P2PKH outputs to
spend, under the same chain parameters the simulator's nodes boot with.
"""

from __future__ import annotations

import hashlib
import struct
from array import array
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from random import Random

from repro.backoff import derive_rng
from repro.bitcoin.block import Block
from repro.bitcoin.chain import Blockchain, ChainParams
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.miner import Miner
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import TxOut
from repro.bitcoin.utxo import COINBASE_MATURITY
from repro.bitcoin.wallet import Wallet

__all__ = [
    "PopulationConfig",
    "SyntheticPopulation",
    "fund_wallets",
    "sim_chain_params",
]

#: Geometric cluster sizes are capped so one unlucky draw cannot stall
#: event generation (P(hitting the cap) is astronomically small for any
#: sane ``burst_mean``).
MAX_BURST = 10_000


@dataclass(frozen=True)
class PopulationConfig:
    """Shape of a synthetic population and its submission process."""

    wallets: int = 1_000_000  # population size (distinct potential senders)
    seed: int = 0
    alpha: float = 1.16  # power-law exponent (~80/20 at 1.16)
    burst_rate: float = 1.0 / 120.0  # cluster arrivals per simulated second
    burst_mean: float = 6.0  # mean events per cluster (geometric)
    burst_spread: float = 45.0  # seconds one cluster's events span

    def __post_init__(self) -> None:
        if self.wallets <= 0:
            raise ValueError("population needs at least one wallet")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.burst_rate <= 0 or self.burst_mean < 1 or self.burst_spread < 0:
            raise ValueError("burst parameters out of range")


class SyntheticPopulation:
    """A seeded population of power-law-active synthetic users.

    The cumulative weight table is built once (an ``array('d')``, ~8 bytes
    per wallet, so a million users cost ~8 MB); every other operation is
    O(log n) or O(events).
    """

    def __init__(self, config: PopulationConfig):
        self.config = config
        weights = (
            (i + 1) ** -config.alpha for i in range(config.wallets)
        )
        self._cum = array("d", accumulate(weights))
        self._total = self._cum[-1]

    # -- sampling ------------------------------------------------------

    def pick_wallet(self, rng: Random) -> int:
        """One power-law-weighted sender index, via binary search."""
        return bisect_right(self._cum, rng.random() * self._total)

    def wallet_rng(self, wallet: int) -> Random:
        """The wallet's private stream (decorrelated from every other
        wallet's and from the event stream)."""
        return derive_rng("population-wallet", self.config.seed, wallet)

    def activity_share(self, top_k: int) -> float:
        """Fraction of all submission activity owed to the ``top_k`` most
        active wallets (wallet 0 is the heaviest) — the skew the tests
        assert instead of eyeballing a histogram."""
        if top_k <= 0:
            return 0.0
        top_k = min(top_k, self.config.wallets)
        return self._cum[top_k - 1] / self._total

    # -- the event schedule --------------------------------------------

    def events(self, start: float, duration: float):
        """Yield ``(time, wallet)`` submission events in ``[start, start +
        duration)``, time-ordered.

        The stream is a function of (seed, population shape, window)
        alone: the same call always yields the identical schedule, and
        disjoint windows are decorrelated.
        """
        cfg = self.config
        rng = derive_rng(
            "population-events",
            cfg.seed,
            cfg.wallets,
            cfg.alpha,
            start,
            duration,
        )
        end = start + duration
        out: list[tuple[float, int]] = []
        t = start
        while True:
            t += rng.expovariate(cfg.burst_rate)
            if t >= end:
                break
            size = 1
            while rng.random() > 1.0 / cfg.burst_mean and size < MAX_BURST:
                size += 1
            for _ in range(size):
                at = t + rng.uniform(0.0, cfg.burst_spread)
                wallet = self.pick_wallet(rng)
                if at < end:
                    out.append((at, wallet))
        out.sort()
        yield from out

    def trace(self, start: float, duration: float) -> list[tuple[float, int]]:
        """The full event schedule for one window, as a list."""
        return list(self.events(start, duration))

    def trace_digest(self, start: float, duration: float) -> str:
        """SHA-256 over the struct-packed event schedule — the
        determinism pin: same (config, window) must mean same digest."""
        digest = hashlib.sha256()
        for at, wallet in self.events(start, duration):
            digest.update(struct.pack("<dI", at, wallet))
        return digest.hexdigest()


# ----------------------------------------------------------------------
# Funding the active subset
# ----------------------------------------------------------------------


def sim_chain_params() -> ChainParams:
    """The parameters :func:`repro.bitcoin.network.build_network` defaults
    to — funding blocks must be minted under the same params (same
    genesis) or the simulator's nodes would reject them."""
    return ChainParams(max_target=2**252, retarget_window=2**31, require_pow=False)


def fund_wallets(
    key_hashes: list[bytes],
    value: int = 50_000,
    fee: int = 10_000,
    params: ChainParams | None = None,
    batch: int = 500,
) -> list[Block]:
    """A scratch-chain block sequence crediting each key hash one P2PKH
    output of ``value`` satoshis.

    A bank wallet mines itself ``COINBASE_MATURITY`` + enough subsidy,
    then fans out to the population keys in ``batch``-output transactions
    (one mature coinbase funds each).  Returns the full active chain —
    feed every simulated node these blocks before the swarm starts, so
    all of them boot at the same funded tip.  Repeat a key hash to give
    that wallet several independent outputs (one per planned spend).

    Deterministic: no RNG anywhere, timestamps follow median-time-past.
    """
    params = params or sim_chain_params()
    chain = Blockchain(params)
    mempool = Mempool(chain)
    bank = Wallet.from_seed(b"population-bank")
    miner = Miner(chain, bank.key_hash)
    extra_nonce = 0

    def mine() -> None:
        nonlocal extra_nonce
        extra_nonce += 1
        block = miner.assemble(
            mempool,
            timestamp=chain.median_time_past() + 1,
            extra_nonce=extra_nonce,
        )
        if not chain.add_block(block):
            raise RuntimeError("funding chain rejected its own block")
        mempool.remove_confirmed(block.txs)

    groups = [
        key_hashes[i : i + batch] for i in range(0, len(key_hashes), batch)
    ]
    for _ in range(COINBASE_MATURITY + len(groups)):
        mine()

    spent: set = set()
    for group in groups:
        outputs = [TxOut(value, p2pkh_script(kh)) for kh in group]
        tx = bank.create_transaction(chain, outputs, fee=fee, exclude=spent)
        floor = mempool.min_fee_rate * len(tx.serialize())
        if fee < floor:
            # Wide fanouts (hundreds of outputs) outgrow a flat fee; pay
            # double the floor so the rebuilt, slightly larger tx still
            # clears the mempool's rate check.
            tx = bank.create_transaction(
                chain, outputs, fee=2 * floor, exclude=spent
            )
        spent.update(txin.prevout for txin in tx.vin)
        mempool.accept(tx)
    while mempool.transactions():
        mine()
    return chain.export_active()
